#!/usr/bin/env python
"""Quickstart: safety optimization in ~40 lines.

Builds a tiny two-hazard system with one free parameter (a sensor
tolerance), wires it into a :class:`SafetyModel`, and finds the optimal
tolerance — the paper's air-speed-indicator example (Sect. III) in code:
a tighter tolerance makes unsafe flight less likely but grounds more safe
aircraft.

Run:  python examples/quickstart.py
"""

from repro.core import (
    CostModel,
    HazardCost,
    Parameter,
    ParameterSpace,
    SafetyModel,
    SafetyOptimizer,
    exceedance,
    from_cdf,
)
from repro.stats import Normal

# A healthy indicator shows a small benign aberration; a defective one
# (1 in 1000 aircraft) shows a large dangerous aberration.  The free
# parameter is the accepted tolerance (in knots).
HEALTHY_ABERRATION = Normal(mu=0.0, sigma=1.5)
DEFECT_ABERRATION = Normal(mu=8.0, sigma=3.0)
DEFECT_RATE = 1e-3

# Hazard 1: an unsafe aircraft passes the check — likelier the *wider*
# the tolerance is (the defect's aberration stays within tolerance).
unsafe_flight = (from_cdf(DEFECT_ABERRATION, "tolerance") *
                 DEFECT_RATE).rename("P(unsafe pass)(tolerance)")

# Hazard 2: a safe aircraft fails the check — likelier the *tighter* the
# tolerance is (benign aberrations get rejected).
grounded_safe = exceedance(HEALTHY_ABERRATION, "tolerance",
                           label="P(safe grounded)(tolerance)")

model = SafetyModel(
    space=ParameterSpace([
        Parameter("tolerance", 0.5, 15.0, default=5.0, unit="kn"),
    ]),
    hazards={
        "unsafe_flight": unsafe_flight,
        "grounded_safe": grounded_safe,
    },
    cost_model=CostModel([
        HazardCost("unsafe_flight", 5_000.0, "crash risk"),
        HazardCost("grounded_safe", 1.0, "delay or cancellation"),
    ]),
    name="pre-flight check")


def main() -> None:
    result = SafetyOptimizer(model).optimize("zoom")
    print(result.summary())
    print()
    tolerance = result.optimum[0]
    print(f"Optimal tolerance: {tolerance:.2f} kn "
          f"(baseline guess was 5.00 kn)")


if __name__ == "__main__":
    main()
