#!/usr/bin/env python
"""Robustness of the Elbtunnel conclusions under input uncertainty.

"The results of this analysis depend a lot on how well the statistical
model reflects reality" (paper Sect. V).  This example stress-tests the
published conclusions:

1. **Propagation** — put log-normal uncertainty (±~35 %) on the four
   calibrated inputs nobody measured precisely and look at the induced
   spread of the optimal timer settings and of the cost improvement.
2. **Sobol indices** — which uncertain input actually drives the
   variance of the cost at the optimum?
3. **Stochastic programming** — instead of optimizing for one nominal
   environment, optimize the *expected* cost over light/nominal/heavy
   traffic scenarios (the paper's future-work suggestion), and compare
   against the risk-averse CVaR and worst-case formulations.

Run:  python examples/uncertainty_study.py   (~1 minute)
"""

import math

from repro.core import SafetyOptimizer, propagate_many, sobol_first_order
from repro.elbtunnel import ElbtunnelConfig, build_safety_model
from repro.opt import (
    Box,
    ScenarioObjective,
    optimize_stochastic,
    value_of_stochastic_solution,
)
from repro.stats import LogNormal

NOMINAL = ElbtunnelConfig()

#: Plausible uncertainty on the four calibrated inputs: log-normal,
#: median at the calibrated value, sigma = 0.3 (~±35 % at one sigma).
UNCERTAIN_INPUTS = {
    "p_ohv": LogNormal(math.log(NOMINAL.p_ohv_present), 0.3),
    "hv_rate": LogNormal(math.log(NOMINAL.hv_odfinal_rate), 0.3),
    "p_const1": LogNormal(math.log(NOMINAL.p_const1), 0.3),
    "p_const2": LogNormal(math.log(NOMINAL.p_const2), 0.3),
}


def config_from(draw):
    return ElbtunnelConfig(
        p_ohv_present=min(draw["p_ohv"], 0.5),
        hv_odfinal_rate=draw["hv_rate"],
        p_const1=min(draw["p_const1"], 1e-5),
        p_const2=min(draw["p_const2"], 0.1))


def optimal_t2(draw):
    model = build_safety_model(config_from(draw))
    return SafetyOptimizer(model).optimize("nelder_mead").optimum[1]


def improvement_percent(draw):
    model = build_safety_model(config_from(draw))
    baseline = model.cost((30.0, 30.0))
    return 100.0 * (baseline - model.cost((19.0, 15.6))) / baseline


def cost_at_optimum(draw):
    return build_safety_model(config_from(draw)).cost((19.0, 15.6))


def main() -> None:
    print("1. Propagating input uncertainty (60 Latin hypercube draws)")
    results = propagate_many(
        UNCERTAIN_INPUTS,
        {"optimal T2 [min]": optimal_t2,
         "cost improvement [%]": improvement_percent},
        samples=60, seed=7)
    for name, result in results.items():
        lo, hi = result.interval(0.9)
        print(f"   {name:<22s} mean {result.mean:8.3f}   "
              f"90% interval [{lo:.3f}, {hi:.3f}]")
    print("   -> the optimized configuration stays a strict improvement "
          "across the whole input range")

    print()
    print("2. Sobol first-order indices of the cost at the optimum")
    indices = sobol_first_order(UNCERTAIN_INPUTS, cost_at_optimum,
                                samples=400, seed=11)
    for name, value in sorted(indices.items(), key=lambda kv: -kv[1]):
        print(f"   {name:<10s} S1 = {value:.3f}")
    print("   -> the accumulated constant Pconst1 dominates: better "
          "statistics there pay off first")

    print()
    print("3. Stochastic programming over traffic scenarios")
    scenarios = [
        ScenarioObjective(
            "light", build_safety_model(
                NOMINAL.with_rates(hv_odfinal_rate=2e-3,
                                   p_ohv_present=7e-4)).cost, 0.25),
        ScenarioObjective("nominal", build_safety_model(NOMINAL).cost,
                          0.55),
        ScenarioObjective(
            "heavy", build_safety_model(
                NOMINAL.with_rates(hv_odfinal_rate=1.2e-2,
                                   p_ohv_present=4e-3)).cost, 0.20),
    ]
    box = Box([(5.0, 30.0), (5.0, 30.0)])
    for formulation in ("expected", "cvar", "worst_case"):
        result = optimize_stochastic(scenarios, box, formulation,
                                     alpha=0.8)
        print(f"   {formulation:<11s} optimum "
              f"({result.x[0]:5.2f}, {result.x[1]:5.2f})  "
              f"objective {result.fun:.6f}")
    vss, _stochastic, _deterministic = value_of_stochastic_solution(
        scenarios, box)
    print(f"   value of the stochastic solution: {vss:.3e} "
          "(expected-cost gain over optimizing the nominal scenario "
          "only)")


if __name__ == "__main__":
    main()
