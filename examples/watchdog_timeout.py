#!/usr/bin/env python
"""Optimizing a watchdog timeout — "accepted time delay between request
and answers" (paper Sect. I) — with trade-off and scenario analysis.

A controller supervises a replicated service with a watchdog: if a
heartbeat does not arrive within the timeout, the node is declared dead
and failed over.

* Hazard "missed_failure": the node really is dead but the timeout is so
  generous that the failover comes too late for the deadline.
* Hazard "false_failover": a slow-but-healthy heartbeat (network jitter)
  trips the watchdog, causing a disruptive spurious failover.

Demonstrates: Pareto front between opposed hazards
(:func:`repro.core.hazard_front`), the opposition check, cost-ratio
sensitivity (how far the optimum moves when the assessed cost of a missed
failure is scaled), and environment scaling (higher network jitter), the
paper's Fig. 6-style analysis.

Run:  python examples/watchdog_timeout.py
"""

from repro.core import (
    CostModel,
    HazardCost,
    Parameter,
    ParameterSpace,
    SafetyModel,
    SafetyOptimizer,
    Scenario,
    cost_ratio_sensitivity,
    from_cdf,
    hazard_front,
    hazards_opposed,
    scenario_series,
    scaled,
)
from repro.stats import LogNormal


def build_model(jitter_sigma: float = 0.6) -> SafetyModel:
    """Watchdog model; ``jitter_sigma`` controls heartbeat tail weight."""
    # Healthy heartbeat latency (ms): log-normal around ~20 ms.
    heartbeat = LogNormal(mu=3.0, sigma=jitter_sigma)

    # A healthy node trips the watchdog when latency > timeout; scaled by
    # the fraction of intervals with a node under load.
    false_failover = scaled(
        ~from_cdf(heartbeat, "timeout", label="P(latency<=timeout)"),
        0.4).rename("P(false failover)(timeout)")

    # A dead node is detected only after the full timeout; missing the
    # recovery deadline becomes likelier the longer we wait.  Deadline
    # slack is ~150 ms with heavy-tailed recovery time.
    recovery = LogNormal(mu=4.0, sigma=0.5)   # ~55 ms typical recovery

    def missed(values):
        slack = 150.0 - values["timeout"]
        if slack <= 0.0:
            return 1.0
        return recovery.sf(slack)

    from repro.core import from_function
    missed_failure = (from_function(missed, {"timeout"}) *
                      1e-2).rename("P(missed failure)(timeout)")

    return SafetyModel(
        space=ParameterSpace([
            Parameter("timeout", 5.0, 140.0, default=60.0, unit="ms"),
        ]),
        hazards={
            "missed_failure": missed_failure,
            "false_failover": false_failover,
        },
        cost_model=CostModel([
            HazardCost("missed_failure", 500.0, "deadline violation"),
            HazardCost("false_failover", 1.0, "spurious failover churn"),
        ]),
        name=f"watchdog (jitter sigma={jitter_sigma})")


def main() -> None:
    model = build_model()

    report = hazards_opposed(model, "missed_failure", "false_failover",
                             points_per_dim=60)
    print(f"Hazards opposed: {report.opposed} "
          f"(missed-failure argmin at timeout="
          f"{report.argmin_a[0]:.1f} ms, false-failover argmin at "
          f"timeout={report.argmin_b[0]:.1f} ms)")

    result = SafetyOptimizer(model).optimize("zoom")
    print()
    print(result.summary())

    print()
    print("Pareto front (first 8 non-dominated configurations):")
    for point in hazard_front(model, points_per_dim=40)[:8]:
        ff, mf = point.objectives
        print(f"   timeout={point.x[0]:6.1f} ms  "
              f"P(false_failover)={ff:.4f}  P(missed_failure)={mf:.6f}")

    print()
    print("Cost-ratio sensitivity (missed-failure cost scaled):")
    for factor, (optimum, cost) in sorted(cost_ratio_sensitivity(
            model, "missed_failure", [0.1, 1.0, 10.0]).items()):
        print(f"   x{factor:<5g} -> optimal timeout {optimum[0]:6.1f} ms "
              f"(cost {cost:.4f})")

    print()
    print("Environment scaling (paper Fig. 6 style): false-failover "
          "probability vs. timeout under rising network jitter")
    scenarios = [
        Scenario("jitter_low", lambda: build_model(0.4)),
        Scenario("jitter_ref", lambda: build_model(0.6)),
        Scenario("jitter_high", lambda: build_model(0.9)),
    ]
    series = scenario_series(scenarios, "timeout",
                             point=(60.0,), hazard="false_failover",
                             points=7)
    for name, curve in sorted(series.items()):
        rendered = "  ".join(f"{x:.0f}:{y:.3f}" for x, y in curve)
        print(f"   {name:<12s} {rendered}")


if __name__ == "__main__":
    main()
