#!/usr/bin/env python
"""Safety optimization of a maintenance interval (fault-tree driven).

The paper names "the average maintenance interval" as a typical free
parameter (Sect. I).  This example builds a small redundant cooling
system as a *fault tree* (not a closed formula), parameterizes its pump
wear-out with the maintenance interval, and optimizes:

* Hazard "overheat": both pumps fail (2-of-2 AND) while the plant is
  running (an INHIBIT condition — the paper's cooling-unit example from
  Sect. II-D.1) — longer intervals mean more wear, higher risk.
* Hazard "outage": each maintenance takes the plant down — shorter
  intervals mean more planned downtime.

Demonstrates: fault tree DSL, INHIBIT constraint probabilities,
parameterized leaf probabilities via a Weibull wear-out model,
importance measures, and optimization with a baseline comparison.

Run:  python examples/maintenance_interval.py
"""

from repro.core import (
    CostModel,
    FaultTreeHazard,
    HazardCost,
    Parameter,
    ParameterSpace,
    SafetyModel,
    SafetyOptimizer,
    from_function,
    from_model,
)
from repro.fta import FaultTree, importance_measures, mocus
from repro.fta.dsl import AND, INHIBIT, condition, hazard, primary
from repro.stats import WeibullHazardModel

#: Pump wear-out: noticeable beyond ~200 days without maintenance.
PUMP_WEAR = WeibullHazardModel(shape=2.5, scale=400.0)


def cooling_tree() -> FaultTree:
    """Overheat = both pumps worn out, while the plant is running."""
    plant_running = condition("plant_running", probability=0.85)
    both_pumps = AND(
        "Both pumps failed",
        primary("pump_A_failed"),
        primary("pump_B_failed"),
    )
    top = hazard("overheat",
                 gate=INHIBIT("Cooling lost while running", both_pumps,
                              plant_running).gate)
    return FaultTree(top)


def build_model() -> SafetyModel:
    wear = from_model(PUMP_WEAR, "interval", label="P(worn)(interval)")
    overheat = FaultTreeHazard(
        cooling_tree(),
        assignments={"pump_A_failed": wear, "pump_B_failed": wear})

    # Outage risk: each maintenance visit has a fixed chance of a
    # shutdown-extending problem; visits per year = 365 / interval.
    per_visit = 0.02

    def outage_probability(values):
        visits_per_year = 365.0 / values["interval"]
        return 1.0 - (1.0 - per_visit) ** visits_per_year

    outage = from_function(outage_probability, {"interval"},
                           label="P(outage)(interval)")

    return SafetyModel(
        space=ParameterSpace([
            Parameter("interval", 10.0, 365.0, default=180.0, unit="days",
                      description="days between maintenance visits"),
        ]),
        hazards={"overheat": overheat, "outage": outage},
        cost_model=CostModel([
            HazardCost("overheat", 2_000.0, "plant damage"),
            HazardCost("outage", 1.0, "extended planned downtime"),
        ]),
        name="redundant cooling")


def main() -> None:
    model = build_model()

    print("Minimal cut sets of the overheat tree:")
    for cs in mocus(cooling_tree()):
        print(f"   {cs}")

    print()
    print("Importance at the 180-day baseline:")
    wear_at_baseline = PUMP_WEAR(180.0)
    for row in importance_measures(
            cooling_tree(),
            {"pump_A_failed": wear_at_baseline,
             "pump_B_failed": wear_at_baseline}):
        print(f"   {row.event:<16s} Birnbaum={row.birnbaum:.4g}  "
              f"FV={row.fussell_vesely:.4g}  RAW={row.raw:.4g}")

    print()
    result = SafetyOptimizer(model).optimize("zoom")
    print(result.summary())


if __name__ == "__main__":
    main()
