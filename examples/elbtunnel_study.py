#!/usr/bin/env python
"""The complete Elbtunnel case study (paper Sect. IV), end to end.

Reproduces, in order:

1. the qualitative FTA — minimal cut sets of the collision tree (Fig. 2),
2. the optimization of the timer runtimes (Fig. 5 and the quoted
   optimum of roughly 19 / 15.6 minutes vs. the engineers' 30 / 30),
3. the environment-scaling analysis that exposed the design flaw
   (Fig. 6: over 80 % of correctly driving OHVs trip a false alarm) and
   the two proposed fixes (extra light barrier LB4, LB at ODfinal),
4. a discrete-event traffic simulation cross-checking the analytic
   Fig. 6 numbers.

Run:  python examples/elbtunnel_study.py
"""

from repro.elbtunnel import (
    DesignVariant,
    SimulationConfig,
    TrafficConfig,
    compare_variants,
    correct_ohv_alarm_probability,
    fig2_fault_tree,
    full_study,
    simulate,
)
from repro.fta import mocus
from repro.viz import format_series, format_surface


def main() -> None:
    print("=" * 68)
    print("1. Qualitative FTA: minimal cut sets of the collision tree")
    print("=" * 68)
    cut_sets = mocus(fig2_fault_tree())
    for cs in cut_sets:
        print(f"   {cs}")
    print(f"   -> {len(cut_sets.single_points_of_failure)} single points "
          "of failure (every cut set has order 1)")

    print()
    print("=" * 68)
    print("2. Safety optimization of the timer runtimes")
    print("=" * 68)
    study = full_study()
    print(study.summary())

    print()
    print("Cost surface around the minimum (Fig. 5):")
    print(format_surface(study.fig5.t1_values, study.fig5.t2_values,
                         study.fig5.cost,
                         title="   z = f_cost(T1 rows, T2 columns)"))

    print()
    print("=" * 68)
    print("3. Environment scaling: false alarms per correct OHV (Fig. 6)")
    print("=" * 68)
    print(format_series(study.fig6.series,
                        title="P(false alarm | correct OHV) vs. T2"))

    print()
    print("=" * 68)
    print("4. Discrete-event simulation cross-check (one year of traffic)")
    print("=" * 68)
    traffic = TrafficConfig(ohv_rate=1 / 120.0, p_correct=1.0,
                            hv_odfinal_rate=0.13)
    for variant in DesignVariant:
        config = SimulationConfig(
            duration=60.0 * 24 * 365, timer1=30.0, timer2=15.6,
            variant=variant, traffic=traffic, seed=42)
        result = simulate(config)
        analytic = correct_ohv_alarm_probability(15.6, variant)
        lo, hi = result.correct_ohv_alarm_ci()
        print(f"   {variant.value:<15s} simulated "
              f"{result.correct_ohv_alarm_fraction:6.3f} "
              f"[{lo:.3f}, {hi:.3f}]  analytic {analytic:6.3f}  "
              f"({result.ohvs_correct} OHVs)")

    print()
    print("=" * 68)
    print("5. Integrated yearly risk per design (event-tree PRA)")
    print("=" * 68)
    for variant, assessment in compare_variants().items():
        print(f"   {variant.value:<15s} "
              f"collisions/yr {assessment.collisions_per_year:.2e}   "
              f"false alarms/yr {assessment.false_alarms_per_year:7.1f}  "
              f"cost/yr {assessment.expected_cost_per_year:8.1f}")
    print("   -> the variants trade only usability; collision risk is "
          "negligible in all three")


if __name__ == "__main__":
    main()
