#!/usr/bin/env python
"""Closing the loop: from field data back to model inputs.

The paper's statistical model needs numbers nobody hands you: driving
time distributions, HV rule-violation rates, sensor fault probabilities.
This example plays the full calibration workflow on *simulated* field
data (the DES stands in for a year of real tunnel operation):

1. run the traffic simulation and collect the "logs" a real deployment
   would produce (per-OHV transit times, HV crossing counts, alarm
   counts),
2. estimate the model inputs from those logs — a normal fit for the
   driving times (the paper's mu=4, sigma=2 claim, recovered), a
   Gamma-Poisson posterior for the HV rate, a Beta-Binomial posterior
   for the per-OHV alarm probability,
3. rebuild the analytic model from the *estimated* inputs and check the
   optimization conclusion is unchanged — the estimate-then-optimize
   loop a real operator would run every year.

Run:  python examples/field_data_calibration.py
"""

import math

from repro.core import SafetyOptimizer
from repro.elbtunnel import (
    DesignVariant,
    ElbtunnelConfig,
    SimulationConfig,
    TrafficConfig,
    TrafficGenerator,
    build_safety_model,
    simulate,
)
from repro.stats import (
    fit_normal_moments,
    jeffreys_prior,
    update_binomial,
    update_poisson_exposure,
    wilson_ci,
)

TRUE_CONFIG = ElbtunnelConfig()
DAYS = 365.0
MINUTES = 60.0 * 24 * DAYS


def collect_field_data():
    """One simulated year of operation = the operator's logbook."""
    traffic = TrafficConfig(ohv_rate=1 / 120.0, p_correct=1.0,
                            hv_odfinal_rate=TRUE_CONFIG.
                            hv_odfinal_rate_heavy)
    generator = TrafficGenerator(traffic, seed=2024)
    transit_samples = [v.zone1_time
                       for v in generator.ohvs_until(MINUTES)]
    result = simulate(SimulationConfig(
        duration=MINUTES, timer1=30.0, timer2=15.6,
        variant=DesignVariant.WITHOUT_LB4, traffic=traffic, seed=2024))
    return transit_samples, result


def main() -> None:
    transit_samples, result = collect_field_data()

    print("1. Driving-time model from logged transit times")
    fit = fit_normal_moments(transit_samples)
    print(f"   paper model : Normal(mu=4.00, sigma=2.00), truncated at 0")
    print(f"   fitted      : Normal(mu={fit.mu:.2f}, "
          f"sigma={fit.sigma:.2f})  ({len(transit_samples)} OHVs)")
    print("   (the left truncation at 0 biases the naive moments "
          "slightly upward/downward — visible and expected)")

    print()
    print("2. HV rule-violation rate from ODfinal crossing counts")
    posterior_rate = update_poisson_exposure(
        0.5, 1e-6, result.hv_crossings, MINUTES)
    lo, hi = posterior_rate.credible_interval(0.95)
    print(f"   true rate   : {TRUE_CONFIG.hv_odfinal_rate_heavy:.4f}/min")
    print(f"   posterior   : {posterior_rate.mean:.4f}/min  "
          f"95% CI [{lo:.4f}, {hi:.4f}]  "
          f"({result.hv_crossings} crossings)")

    print()
    print("3. Per-OHV false-alarm probability from alarm counts")
    posterior_alarm = update_binomial(
        jeffreys_prior(), result.correct_ohvs_alarmed,
        result.ohvs_correct)
    w_lo, w_hi = wilson_ci(result.correct_ohvs_alarmed,
                           result.ohvs_correct)
    print(f"   posterior mean {posterior_alarm.mean:.3f}  "
          f"(Wilson CI [{w_lo:.3f}, {w_hi:.3f}]; "
          f"analytic model: 0.868)")

    print()
    print("4. Re-optimize with the *estimated* inputs")
    estimated = TRUE_CONFIG.with_rates(
        transit_mean=fit.mu, transit_std=fit.sigma)
    true_result = SafetyOptimizer(
        build_safety_model(TRUE_CONFIG)).optimize("coordinate")
    estimated_result = SafetyOptimizer(
        build_safety_model(estimated)).optimize("coordinate")
    t1_true, t2_true = true_result.optimum
    t1_est, t2_est = estimated_result.optimum
    print(f"   optimum (true inputs)      : ({t1_true:.2f}, "
          f"{t2_true:.2f}) min")
    print(f"   optimum (estimated inputs) : ({t1_est:.2f}, "
          f"{t2_est:.2f}) min")
    drift = math.hypot(t1_true - t1_est, t2_true - t2_est)
    print(f"   drift: {drift:.2f} min — one year of logs pins the "
          "optimal configuration to within minutes")


if __name__ == "__main__":
    main()
