#!/usr/bin/env python
"""Tour of the FTA substrate on a classic pressure-tank system.

A pump keeps a pressure tank filled; a relay chain should cut the pump
when pressure is reached (the NUREG-0492 fault tree handbook's running
example, simplified).  Demonstrates the full quantitative-FTA toolchain:

* building trees with the DSL (AND/OR/K-of-N, INHIBIT),
* MOCUS minimal cut sets vs. the BDD extraction (they must agree),
* the four quantification methods and the rare-event approximation error,
* importance measures,
* beta-factor common-cause analysis,
* JSON round-trip, Galileo text and Graphviz DOT export,
* Monte Carlo cross-validation.

Run:  python examples/fta_toolbox.py
"""

from repro.bdd import BDDManager, minimal_cut_sets
from repro.fta import (
    FaultTree,
    apply_beta_factor,
    approximation_error,
    hazard_probability,
    importance_measures,
    mocus,
    to_bdd,
    tree_from_json,
    tree_to_dot,
    tree_to_galileo,
    tree_to_json,
)
from repro.fta.dsl import AND, KOFN, OR, condition, hazard, INHIBIT, primary
from repro.sim import monte_carlo_probability


def pressure_tank_tree() -> FaultTree:
    """Tank rupture: overpressure while the relief path is unavailable."""
    relay_k1 = primary("relay_K1_stuck", 3e-2)
    relay_k2 = primary("relay_K2_stuck", 3e-2)
    pressure_switch = primary("pressure_switch_fails", 1e-2)
    # The pump keeps pumping when the switch fails or both relays stick.
    pump_not_cut = OR("Pump not cut off",
                      pressure_switch,
                      AND("Relay chain stuck", relay_k1, relay_k2))
    relief_valves = KOFN("Relief capacity lost", 2,
                         primary("valve_V1_stuck", 1e-1),
                         primary("valve_V2_stuck", 1e-1),
                         primary("valve_V3_stuck", 1e-1))
    overpressure = AND("Overpressure", pump_not_cut, relief_valves)
    tank_in_service = condition("tank_in_service", 0.9)
    top = hazard("tank_rupture",
                 gate=INHIBIT("Overpressure in service", overpressure,
                              tank_in_service).gate)
    return FaultTree(top)


def main() -> None:
    tree = pressure_tank_tree()
    print(f"Tree: {tree}")

    print()
    print("Minimal cut sets (MOCUS):")
    cut_sets = mocus(tree)
    for cs in cut_sets:
        print(f"   {cs}")

    manager = BDDManager()
    root = to_bdd(tree, manager)
    bdd_sets = minimal_cut_sets(manager, root)
    mocus_sets = {cs.failures | cs.conditions for cs in cut_sets}
    print(f"BDD agrees with MOCUS: "
          f"{mocus_sets == {frozenset(s) for s in bdd_sets}} "
          f"({manager.node_count} BDD nodes)")

    print()
    print("Quantification methods:")
    for method in ("rare_event", "mcub", "inclusion_exclusion", "exact"):
        value = hazard_probability(tree, method=method)
        print(f"   {method:<20s} P(rupture) = {value:.6e}")
    err = approximation_error(tree)
    print(f"   rare-event relative error vs exact: "
          f"{err['relative_error']:.3%}")

    print()
    print("Importance measures (exact, by Birnbaum):")
    for row in importance_measures(tree)[:4]:
        print(f"   {row.event:<22s} Birnbaum={row.birnbaum:.4g}  "
              f"FV={row.fussell_vesely:.4g}  criticality="
              f"{row.criticality:.4g}")

    print()
    print("Common cause: relays share a 10% beta factor:")
    cc_tree = apply_beta_factor(
        tree, ["relay_K1_stuck", "relay_K2_stuck"], beta=0.10)
    for method in ("rare_event", "exact"):
        before = hazard_probability(tree, method=method)
        after = hazard_probability(cc_tree, method=method)
        print(f"   {method:<12s} {before:.6e} -> {after:.6e} "
              f"({after / before:.1f}x)")

    print()
    print("Monte Carlo cross-check (exact must fall inside the CI):")
    estimate = monte_carlo_probability(tree, samples=400_000, seed=1)
    exact = hazard_probability(tree, method="exact")
    print(f"   {estimate}")
    print(f"   exact={exact:.3e}  inside CI: {estimate.agrees_with(exact)}")

    print()
    round_trip = tree_from_json(tree_to_json(tree))
    same = {cs.failures for cs in mocus(round_trip)} == \
        {cs.failures for cs in cut_sets}
    print(f"JSON round-trip preserves cut sets: {same}")
    print(f"Galileo export: {len(tree_to_galileo(tree).splitlines())} lines;"
          f" DOT export: {len(tree_to_dot(tree).splitlines())} lines")


if __name__ == "__main__":
    main()
