"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation --no-use-pep517`` uses this file;
all metadata lives in pyproject.toml.  The version is single-sourced
from ``repro.__version__`` (read textually so the build does not import
the package or its dependencies).
"""

import pathlib
import re

from setuptools import find_packages, setup


def read_version() -> str:
    init = pathlib.Path(__file__).parent / "src" / "repro" / "__init__.py"
    match = re.search(r'^__version__\s*=\s*"([^"]+)"',
                      init.read_text(), re.MULTILINE)
    if not match:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro",
    version=read_version(),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
