"""Engine benchmarks: warm-cache sweep speedup, Monte Carlo shard scaling.

The engine's two performance claims, measured on the Elbtunnel trees:

* a repeated parameter sweep served from the content-addressed cache is
  at least an order of magnitude faster than the cold quantification;
* a sharded Monte Carlo run distributes its sample budget across worker
  processes with identical (deterministic) results, scaling toward the
  machine's core count.
"""

import os
import time

from repro.core import identity
from repro.elbtunnel import ElbtunnelConfig
from repro.elbtunnel.faulttrees import (
    false_alarm_fault_tree,
    odfinal_armed_probability,
)
from repro.elbtunnel.model import p_hv_odfinal
from repro.engine import Engine, MonteCarloJob, SweepJob, WorkerPool
from repro.fta import FaultTree
from repro.fta.dsl import AND, KOFN, hazard, primary
from repro.viz import format_table

#: Scaled configuration (as in the Monte Carlo benchmark): realistic
#: hazard probabilities (~1e-4) would need 1e8 samples to resolve.
SCALED = ElbtunnelConfig(p_ohv_present=0.15, p_const2=0.05,
                         hv_odfinal_rate=0.08)


def voting_tree(width: int = 12) -> "FaultTree":
    """A 3-of-``width`` vote over AND pairs — 2*width BDD variables.

    Sized so one exact quantification costs about a millisecond: large
    enough that the sweep's cold run dwarfs fingerprinting, small enough
    to keep the benchmark quick.
    """
    branches = [AND(f"br{i}",
                    primary(f"a{i}", 0.01), primary(f"b{i}", 0.02))
                for i in range(width)]
    return FaultTree(hazard("H", gate=KOFN("vote", 3, *branches).gate))


def sweep_job(points_per_axis: int = 9) -> SweepJob:
    """A Fig. 5-shaped 2-D sweep, quantified exactly at every point.

    Pinned to the interpreted per-point path: this benchmark measures
    the *cache's* speedup over recomputation, so the cold run must pay
    the full per-point cost (the compiled path has its own benchmark in
    ``test_bench_compile.py``).
    """
    values = [0.01 + 0.005 * i for i in range(points_per_axis)]
    return SweepJob.from_axes(
        voting_tree(), {"a0": identity("pa0"), "b0": identity("pb0")},
        {"pa0": values, "pb0": values}, method="exact", compiled=False)


def test_warm_cache_sweep_speedup(report):
    engine = Engine(workers=1)
    # Two distinct job objects over two distinct tree objects: the warm
    # hit comes from content addressing, not object identity.
    cold_job = sweep_job()
    warm_job = sweep_job()

    start = time.perf_counter()
    cold_result = engine.run(cold_job)
    cold = time.perf_counter() - start

    start = time.perf_counter()
    warm_result = engine.run(warm_job)
    warm = time.perf_counter() - start

    assert warm_result == cold_result
    assert engine.executed == 1
    speedup = cold / warm if warm > 0 else float("inf")
    report(format_table(
        ["run", "time [s]", "points"],
        [["cold (exact BDD per point)", f"{cold:.4f}", len(cold_result)],
         ["warm (content-addressed cache)", f"{warm:.6f}",
          len(warm_result)],
         ["speedup", f"{speedup:.0f}x", ""]],
        title="Engine — warm-cache repeat of a Fig. 5-shaped sweep"))
    assert speedup >= 10.0, \
        f"warm cache only {speedup:.1f}x faster than cold run"


def test_monte_carlo_shard_scaling(report):
    config = SCALED
    tree = false_alarm_fault_tree(config)
    values = {"T1": 19.0, "T2": 15.6}
    overrides = {
        "HV_ODfinal": p_hv_odfinal(config)(values),
        "ODfinal_armed": odfinal_armed_probability(config)(values),
    }
    shards = 4
    job = MonteCarloJob(tree, overrides, samples=80_000, seed=7,
                        shards=shards)

    rows = []
    timings = {}
    estimates = {}
    for workers in (1, 2, shards):
        if workers > 1 and workers > (os.cpu_count() or 1):
            rows.append([workers, "skipped (not enough cores)", ""])
            continue
        start = time.perf_counter()
        estimates[workers] = job.run(WorkerPool(workers))
        timings[workers] = time.perf_counter() - start
        rows.append([workers, f"{timings[workers]:.3f}",
                     f"{timings[1] / timings[workers]:.2f}x"])

    # Shard merging is deterministic: worker count never changes the
    # estimate, only the wall clock.
    assert len(set(estimates.values())) == 1
    report(format_table(
        ["workers", "time [s]", "speedup vs serial"], rows,
        title=f"Engine — Monte Carlo shard scaling "
              f"({job.samples} samples, {shards} shards)"))
    if (os.cpu_count() or 1) >= 2 and 2 in timings:
        # Near-linear on unloaded multi-core hardware; asserted loosely
        # so a busy CI box cannot flake the suite.
        assert timings[2] < timings[1] * 1.25


def test_sweep_parallel_matches_serial(benchmark):
    job = sweep_job(points_per_axis=5)
    serial = job.run(WorkerPool(1))
    parallel = benchmark(job.run, WorkerPool(min(4, os.cpu_count() or 1)))
    assert parallel == serial
