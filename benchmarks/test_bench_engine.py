"""Engine benchmarks: warm-cache speedup, shard scaling, cache backends.

The engine's performance claims, measured on the Elbtunnel trees:

* a repeated parameter sweep served from the content-addressed cache is
  at least an order of magnitude faster than the cold quantification;
* a sharded Monte Carlo run distributes its sample budget across worker
  processes with identical (deterministic) results, scaling toward the
  machine's core count;
* on the contended warm-read workload — several fresh processes each
  opening the persisted store and reading their own slice of hot
  entries, the serve/CI deployment pattern — the sqlite backend beats
  the JSON backend, because a JSON reader must re-parse the whole store
  per process while sqlite pays one ``open()`` plus per-key reads.

Cold/warm/contended timings for both backends land in the
``backend_*`` entries of ``BENCH_ENGINE_JSON`` (the CI benchmark-smoke
job uploads it as ``BENCH_engine.json``); set ``BENCH_QUICK=1`` to
shrink the workloads for smoke runs.
"""

import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.core import identity
from repro.elbtunnel import ElbtunnelConfig
from repro.elbtunnel.faulttrees import (
    false_alarm_fault_tree,
    odfinal_armed_probability,
)
from repro.elbtunnel.model import p_hv_odfinal
from repro.engine import (
    Engine,
    MonteCarloJob,
    ResultCache,
    SqliteCache,
    SweepJob,
    WorkerPool,
)
from repro.engine.cache import MISS
from repro.fta import FaultTree
from repro.fta.dsl import AND, KOFN, hazard, primary
from repro.viz import format_table

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

#: Collected measurements, dumped to BENCH_ENGINE_JSON at each record.
_RESULTS = {}


def _record(name, **measures):
    _RESULTS[name] = measures
    path = os.environ.get("BENCH_ENGINE_JSON")
    if path:
        with open(path, "w") as handle:
            json.dump({"quick": QUICK, "benchmarks": _RESULTS}, handle,
                      indent=2, sort_keys=True)


#: Scaled configuration (as in the Monte Carlo benchmark): realistic
#: hazard probabilities (~1e-4) would need 1e8 samples to resolve.
SCALED = ElbtunnelConfig(p_ohv_present=0.15, p_const2=0.05,
                         hv_odfinal_rate=0.08)


def voting_tree(width: int = 12) -> "FaultTree":
    """A 3-of-``width`` vote over AND pairs — 2*width BDD variables.

    Sized so one exact quantification costs about a millisecond: large
    enough that the sweep's cold run dwarfs fingerprinting, small enough
    to keep the benchmark quick.
    """
    branches = [AND(f"br{i}",
                    primary(f"a{i}", 0.01), primary(f"b{i}", 0.02))
                for i in range(width)]
    return FaultTree(hazard("H", gate=KOFN("vote", 3, *branches).gate))


def sweep_job(points_per_axis: int = 9) -> SweepJob:
    """A Fig. 5-shaped 2-D sweep, quantified exactly at every point.

    Pinned to the interpreted per-point path: this benchmark measures
    the *cache's* speedup over recomputation, so the cold run must pay
    the full per-point cost (the compiled path has its own benchmark in
    ``test_bench_compile.py``).
    """
    values = [0.01 + 0.005 * i for i in range(points_per_axis)]
    return SweepJob.from_axes(
        voting_tree(), {"a0": identity("pa0"), "b0": identity("pb0")},
        {"pa0": values, "pb0": values}, method="exact", compiled=False)


def test_warm_cache_sweep_speedup(report):
    engine = Engine(workers=1)
    # Two distinct job objects over two distinct tree objects: the warm
    # hit comes from content addressing, not object identity.
    cold_job = sweep_job()
    warm_job = sweep_job()

    start = time.perf_counter()
    cold_result = engine.run(cold_job)
    cold = time.perf_counter() - start

    start = time.perf_counter()
    warm_result = engine.run(warm_job)
    warm = time.perf_counter() - start

    assert warm_result == cold_result
    assert engine.executed == 1
    speedup = cold / warm if warm > 0 else float("inf")
    report(format_table(
        ["run", "time [s]", "points"],
        [["cold (exact BDD per point)", f"{cold:.4f}", len(cold_result)],
         ["warm (content-addressed cache)", f"{warm:.6f}",
          len(warm_result)],
         ["speedup", f"{speedup:.0f}x", ""]],
        title="Engine — warm-cache repeat of a Fig. 5-shaped sweep"))
    _record("warm_cache_sweep", cold_s=cold, warm_s=warm,
            speedup=speedup, points=len(cold_result))
    assert speedup >= 10.0, \
        f"warm cache only {speedup:.1f}x faster than cold run"


def test_monte_carlo_shard_scaling(report):
    config = SCALED
    tree = false_alarm_fault_tree(config)
    values = {"T1": 19.0, "T2": 15.6}
    overrides = {
        "HV_ODfinal": p_hv_odfinal(config)(values),
        "ODfinal_armed": odfinal_armed_probability(config)(values),
    }
    shards = 4
    job = MonteCarloJob(tree, overrides, samples=80_000, seed=7,
                        shards=shards)

    rows = []
    timings = {}
    estimates = {}
    for workers in (1, 2, shards):
        if workers > 1 and workers > (os.cpu_count() or 1):
            rows.append([workers, "skipped (not enough cores)", ""])
            continue
        start = time.perf_counter()
        estimates[workers] = job.run(WorkerPool(workers))
        timings[workers] = time.perf_counter() - start
        rows.append([workers, f"{timings[workers]:.3f}",
                     f"{timings[1] / timings[workers]:.2f}x"])

    # Shard merging is deterministic: worker count never changes the
    # estimate, only the wall clock.
    assert len(set(estimates.values())) == 1
    report(format_table(
        ["workers", "time [s]", "speedup vs serial"], rows,
        title=f"Engine — Monte Carlo shard scaling "
              f"({job.samples} samples, {shards} shards)"))
    _record("monte_carlo_shard_scaling",
            **{f"workers_{w}_s": t for w, t in timings.items()})
    if (os.cpu_count() or 1) >= 2 and 2 in timings:
        # Near-linear on unloaded multi-core hardware; asserted loosely
        # so a busy CI box cannot flake the suite.
        assert timings[2] < timings[1] * 1.25


def test_sweep_parallel_matches_serial(benchmark):
    job = sweep_job(points_per_axis=5)
    serial = job.run(WorkerPool(1))
    parallel = benchmark(job.run, WorkerPool(min(4, os.cpu_count() or 1)))
    assert parallel == serial


# ----------------------------------------------------------------------
# Cache backends: cold / warm / contended access
# ----------------------------------------------------------------------
#: Store population: matrix-shaped payloads the size of a real sweep.
N_ENTRIES = 16 if QUICK else 64
FLOATS_PER_ENTRY = 1000 if QUICK else 4000
#: Reads per worker in the thread-contention scenario (process workers
#: each read their disjoint slice of the key space once instead).
READS = 32 if QUICK else 128
PROCESSES = 4
THREADS = 4


def _payload(index: int) -> dict:
    return {
        "points": [{"T1": float(index), "T2": float(j)}
                   for j in range(FLOATS_PER_ENTRY // 20)],
        "values": [index + j * 1e-6 for j in range(FLOATS_PER_ENTRY)],
    }


def _keys():
    return [f"fp-{i:04d}" for i in range(N_ENTRIES)]


def _open_store(backend: str, path: str, **kwargs):
    if backend == "sqlite":
        return SqliteCache(path, capacity=N_ENTRIES * 2, **kwargs)
    return ResultCache(capacity=N_ENTRIES * 2, path=path)


def _populate(backend: str, path: str) -> float:
    """Cold write: populate and persist the whole store."""
    start = time.perf_counter()
    cache = _open_store(backend, path)
    for i, key in enumerate(_keys()):
        cache.put(key, _payload(i))
    cache.save()
    cache.close()
    return time.perf_counter() - start


def _warm_read(backend: str, path: str) -> float:
    """Warm read in a fresh process-like context: open + read all."""
    start = time.perf_counter()
    cache = _open_store(backend, path)
    for key in _keys():
        assert cache.get(key) is not MISS
    elapsed = time.perf_counter() - start
    cache.close()
    return elapsed


def _contended_worker(backend, path, offset, out):
    """One contending reader: fresh store handle, its own slice of keys.

    Each worker reads the disjoint slice ``keys[offset::PROCESSES]``
    once — the deployment shape, where concurrent serve workers or CI
    machines each need *their* hot fingerprints, not the whole store.
    It reports its own CPU seconds (``time.process_time``): the
    wall-clock span of one of several concurrent readers on a saturated
    box mostly measures the scheduler, while CPU seconds capture the
    work a reader actually pays — the JSON backend parses the entire
    store to serve any key, sqlite reads only the keys asked for.
    """
    keys = _keys()[offset::PROCESSES]
    start = time.process_time()
    cache = _open_store(backend, path)
    try:
        found = sum(1 for key in keys if cache.get(key) is not MISS)
        out.put((found, time.process_time() - start))
    finally:
        cache.close()


def _contended_processes(backend: str, path: str):
    """Returns (aggregate reader CPU seconds, wall seconds)."""
    context = multiprocessing.get_context("fork")
    out = context.Queue()
    procs = [context.Process(target=_contended_worker,
                             args=(backend, path, offset, out))
             for offset in range(PROCESSES)]
    start = time.perf_counter()
    for proc in procs:
        proc.start()
    results = [out.get(timeout=120) for _ in procs]
    for proc in procs:
        proc.join(timeout=120)
    wall = time.perf_counter() - start
    expected = [len(_keys()[offset::PROCESSES])
                for offset in range(PROCESSES)]
    assert [found for found, _ in results] == expected
    return sum(elapsed for _, elapsed in results), wall


def _contended_threads(backend: str, path: str) -> float:
    """Thread contention against one shared in-process store handle."""
    cache = _open_store(backend, path)
    keys = _keys()
    barrier = threading.Barrier(THREADS)
    errors = []

    def reader(offset):
        try:
            barrier.wait()
            for i in range(READS):
                assert cache.get(keys[(offset + i) % len(keys)]) \
                    is not MISS
        except BaseException as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=reader, args=(t,))
               for t in range(THREADS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    cache.close()
    assert errors == []
    return elapsed


@pytest.fixture
def backend_stores(tmp_path):
    """Both backends populated with identical matrix-shaped payloads."""
    paths = {"json": str(tmp_path / "bench.json"),
             "sqlite": str(tmp_path / "bench.db")}
    cold = {name: _populate(name, path) for name, path in paths.items()}
    return paths, cold


def test_backend_cold_warm_contended(report, backend_stores):
    paths, cold = backend_stores
    warm = {name: _warm_read(name, path)
            for name, path in paths.items()}
    threaded = {name: _contended_threads(name, path)
                for name, path in paths.items()}
    contended = {}
    contended_wall = {}
    for name, path in paths.items():
        contended[name], contended_wall[name] = \
            _contended_processes(name, path)

    rows = []
    for name in ("json", "sqlite"):
        rows.append([name, f"{cold[name]:.4f}", f"{warm[name]:.4f}",
                     f"{threaded[name]:.4f}", f"{contended[name]:.4f}"])
    speedup = contended["json"] / contended["sqlite"] \
        if contended["sqlite"] > 0 else float("inf")
    rows.append(["sqlite speedup", "", "",
                 "", f"{speedup:.1f}x"])
    report(format_table(
        ["backend", "cold write [s]", "warm read [s]",
         f"{THREADS}-thread warm [s]",
         f"{PROCESSES}-process warm [CPU s]"], rows,
        title=f"Engine — cache backends, {N_ENTRIES} sweep-shaped "
              f"entries ({FLOATS_PER_ENTRY} floats each)"))
    for name in ("json", "sqlite"):
        _record(f"backend_{name}",
                cold_write_s=cold[name], warm_read_s=warm[name],
                contended_threads_s=threaded[name],
                contended_processes_cpu_s=contended[name],
                contended_processes_wall_s=contended_wall[name],
                entries=N_ENTRIES, thread_reads_per_worker=READS,
                process_reads_per_worker=N_ENTRIES // PROCESSES,
                processes=PROCESSES, threads=THREADS)
    _record("backend_contended_speedup", sqlite_over_json=speedup)
    # The acceptance claim: on the deployment-shaped contended warm-read
    # workload (fresh process per reader), sqlite must beat JSON — the
    # JSON backend re-parses the entire store in every reader process.
    assert contended["sqlite"] < contended["json"], \
        (f"sqlite contended warm read ({contended['sqlite']:.4f}s) not "
         f"faster than json ({contended['json']:.4f}s)")


def test_backend_warm_hit_equivalence(backend_stores):
    """Both stores return value-equal payloads for every fingerprint."""
    paths, _cold = backend_stores
    json_cache = _open_store("json", paths["json"])
    sqlite_cache = _open_store("sqlite", paths["sqlite"])
    for i, key in enumerate(_keys()):
        expected = _payload(i)
        assert json_cache.get(key) == expected
        assert sqlite_cache.get(key) == expected
    sqlite_cache.close()
