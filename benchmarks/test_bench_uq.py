"""UQ benchmarks: vectorized propagation vs. the scalar reference loop.

The ISSUE-4 acceptance benchmark: pushing a 10k-sample Latin-hypercube
design through the corridor tree as one compiled batch must be at least
20x faster than the scalar per-sample reference loop — and bit-identical
to it at the same seed (the loop is the oracle, not an approximation).

Set ``BENCH_UQ_JSON`` to a path to dump the measurements (the CI
benchmark-smoke job uploads it as ``BENCH_uq.json``); set
``BENCH_QUICK=1`` to shrink the workloads for smoke runs.
"""

import json
import os
import time

from repro.compile import compile_tree
from repro.elbtunnel import corridor_fault_tree, corridor_uncertain_model
from repro.uq import propagation_matrix, sobol_indices
from repro.viz import format_table

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

#: Collected measurements, dumped to BENCH_UQ_JSON at session end.
_RESULTS = {}


def _record(name, **measures):
    _RESULTS[name] = measures
    path = os.environ.get("BENCH_UQ_JSON")
    if path:
        with open(path, "w") as handle:
            json.dump({"quick": QUICK, "benchmarks": _RESULTS}, handle,
                      indent=2, sort_keys=True)


def test_vectorized_lhs_propagation_speedup(report):
    tree = corridor_fault_tree()
    model = corridor_uncertain_model()
    samples = 1_000 if QUICK else 10_000
    evaluator = compile_tree(tree, "exact")
    names = evaluator.leaf_names
    # Both paths consume the same seeded design matrix; sampling is not
    # part of the propagation being measured.
    matrix = propagation_matrix(tree, model, samples, seed=7,
                                sampler="lhs")

    start = time.perf_counter()
    reference = [evaluator.scalar(
        {name: float(row[j]) for j, name in enumerate(names)})
        for row in matrix]
    slow = time.perf_counter() - start

    start = time.perf_counter()
    vectorized = evaluator.evaluate_matrix(matrix)
    fast = time.perf_counter() - start

    assert [float(v) for v in vectorized] == reference, \
        "vectorized propagation is not bit-identical to the scalar loop"
    speedup = slow / fast if fast > 0 else float("inf")
    _record("lhs_propagation", samples=samples, leaves=len(names),
            scalar_s=slow, vectorized_s=fast, speedup=speedup)
    report(format_table(
        ["run", "time [s]", "samples"],
        [["scalar reference loop (per sample)", f"{slow:.4f}", samples],
         ["vectorized (one compiled batch)", f"{fast:.4f}", samples],
         ["speedup", f"{speedup:.0f}x", ""]],
        title=f"UQ — LHS propagation through the corridor tree "
              f"({len(names)} uncertain leaves)"))
    assert speedup >= 20.0, \
        f"vectorized propagation only {speedup:.1f}x faster than the " \
        f"scalar reference loop"


def test_sobol_batch_cost(report):
    """A full Sobol analysis runs as one batch in reasonable time.

    ``(d + 2) * n`` exact quantifications of the corridor tree; the
    point is that global sensitivity at production scale is a batch
    call, not an overnight job.  Timing is recorded, not asserted —
    the correctness of the indices is pinned in ``tests/uq``.
    """
    sections = 4 if QUICK else 16
    tree = corridor_fault_tree(sections=sections)
    model = corridor_uncertain_model(sections=sections)
    samples = 128 if QUICK else 512

    start = time.perf_counter()
    indices = sobol_indices(tree, model, n_samples=samples, seed=3)
    elapsed = time.perf_counter() - start

    evaluations = (len(model) + 2) * samples
    top = indices.ranking()[0]
    _record("sobol", samples=samples, events=len(model),
            evaluations=evaluations, elapsed_s=elapsed,
            top_event=top[0], top_total=top[2])
    report(format_table(
        ["measure", "value"],
        [["uncertain events", len(model)],
         ["model evaluations", evaluations],
         ["elapsed [s]", f"{elapsed:.4f}"],
         ["top total-order event", top[0]]],
        title="UQ — Sobol sensitivity of the corridor tree"))
    assert 0.0 <= top[2] <= 1.0
