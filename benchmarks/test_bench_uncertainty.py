"""Ablation A5: robustness of the published conclusions.

Propagates plausible uncertainty over the calibrated (unpublished)
inputs and checks that the paper's qualitative conclusions survive: the
optimized timers beat the (30, 30) baseline in every sampled world, and
the optimal T2 stays near 15.6 minutes.
"""

import math


from repro.core import propagate_many, sobol_first_order
from repro.elbtunnel import ElbtunnelConfig, build_safety_model
from repro.stats import LogNormal
from repro.viz import format_table

NOMINAL = ElbtunnelConfig()
INPUTS = {
    "p_ohv": LogNormal(math.log(NOMINAL.p_ohv_present), 0.3),
    "hv_rate": LogNormal(math.log(NOMINAL.hv_odfinal_rate), 0.3),
    "p_const2": LogNormal(math.log(NOMINAL.p_const2), 0.3),
}


def _config(draw):
    return ElbtunnelConfig(p_ohv_present=min(draw["p_ohv"], 0.5),
                           hv_odfinal_rate=draw["hv_rate"],
                           p_const2=min(draw["p_const2"], 0.1))


def _gain(draw):
    model = build_safety_model(_config(draw))
    return model.cost((30.0, 30.0)) - model.cost((19.0, 15.6))


def _alarm_improvement(draw):
    from repro.elbtunnel import FALSE_ALARM
    model = build_safety_model(_config(draw))
    base = model.hazard_probability(FALSE_ALARM, (30.0, 30.0))
    opt = model.hazard_probability(FALSE_ALARM, (19.0, 15.6))
    return 100.0 * (base - opt) / base


def test_conclusions_survive_input_uncertainty(benchmark, report):
    results = benchmark.pedantic(
        propagate_many, args=(INPUTS,
                              {"gain": _gain,
                               "alarm_improvement": _alarm_improvement}),
        kwargs={"samples": 60, "seed": 7}, rounds=1, iterations=1)

    gain = results["gain"]
    improvement = results["alarm_improvement"]
    lo, _hi = gain.interval(0.9)
    assert lo > 0.0          # optimized setting wins in all worlds
    assert improvement.mean > 5.0

    rows = []
    for result in results.values():
        low, high = result.interval(0.9)
        rows.append([result.name, f"{result.mean:.4g}",
                     f"[{low:.4g}, {high:.4g}]"])
    report(format_table(
        ["output", "mean", "90% interval"],
        rows,
        title="A5 — conclusions under +-35% input uncertainty "
              "(60 LHS draws)"))


def test_sobol_ranking(benchmark, report):
    def cost_at_optimum(draw):
        return build_safety_model(_config(draw)).cost((19.0, 15.6))

    indices = benchmark.pedantic(
        sobol_first_order, args=(INPUTS, cost_at_optimum),
        kwargs={"samples": 300, "seed": 3}, rounds=1, iterations=1)
    # With Pconst1 held fixed, Pconst2 dominates the false-alarm side.
    assert indices["p_const2"] > indices["p_ohv"]
    report(format_table(
        ["uncertain input", "Sobol S1"],
        [[name, f"{value:.3f}"]
         for name, value in sorted(indices.items(),
                                   key=lambda kv: -kv[1])],
        title="A5 — variance attribution of the optimal cost"))
