"""Benchmark harness configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark prints the paper's rows/series (via ``capsys.disabled()``)
in addition to timing, so the reproduction artifacts are visible in the
bench output; EXPERIMENTS.md records the paper-vs-measured comparison.
"""

import pytest


@pytest.fixture
def report(capsys):
    """Print reproduction artifacts through pytest's capture."""

    def _print(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _print
