"""Service benchmarks: warm-cache throughput and request coalescing.

The service layer's two performance claims, measured over real HTTP on
a loopback socket:

* a warm-cache quantification of the Fig. 5 operating point sustains at
  least 100 requests/second end to end (parse, fingerprint, cache hit,
  stream the NDJSON envelope);
* K concurrent submissions of one identical heavy job trigger exactly
  one engine computation — the other K-1 coalesce onto the leader and
  receive byte-equal results.

Set ``BENCH_SERVE_JSON`` to a path to dump the measurements (the CI
benchmark-smoke job uploads it as ``BENCH_serve.json``); set
``BENCH_QUICK=1`` to shrink the workloads for smoke runs.
"""

import json
import os
import threading
import time

from repro.serve import RiskServer, ServeClient, ServerConfig
from repro.viz import format_table

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

#: Collected measurements, dumped to BENCH_SERVE_JSON at session end.
_RESULTS = {}

#: The Fig. 5 operating point: the collision tree quantified exactly at
#: the paper's optimal detection thresholds (OT1/OT2 at their tuned
#: failure probabilities).
FIG5_QUANTIFY = {
    "type": "quantify",
    "tree": "collision",
    "method": "exact",
    "probabilities": {"OT1": 0.01, "OT2": 0.01,
                      "Other collision causes": 0.001},
}


def _record(name, **measures):
    _RESULTS[name] = measures
    path = os.environ.get("BENCH_SERVE_JSON")
    if path:
        with open(path, "w") as handle:
            json.dump({"quick": QUICK, "benchmarks": _RESULTS}, handle,
                      indent=2, sort_keys=True)


def _percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q / 100.0 * len(ordered))))
    return ordered[index]


def test_warm_cache_throughput(report):
    requests = 100 if QUICK else 400
    clients = 4
    server = RiskServer(ServerConfig(
        port=0, workers=1, max_concurrency=8,
        queue_limit=clients * 4)).start()
    try:
        # One cold request computes and fills the cache; everything
        # after is the steady multi-tenant state the service optimises.
        with ServeClient(server.host, server.port) as warmup:
            cold = warmup.results([FIG5_QUANTIFY])[0]
            assert cold["cache_hit"] is False

        latencies = [[] for _ in range(clients)]
        per_client = requests // clients

        def tenant(index):
            # One keep-alive connection per tenant, as a real client
            # would hold.
            with ServeClient(server.host, server.port) as client:
                for _ in range(per_client):
                    start = time.perf_counter()
                    envelope = client.results([FIG5_QUANTIFY])[0]
                    latencies[index].append(
                        time.perf_counter() - start)
                    assert envelope["result"] == cold["result"]

        threads = [threading.Thread(target=tenant, args=(i,))
                   for i in range(clients)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start

        flat = [sample for series in latencies for sample in series]
        total = len(flat)
        rps = total / elapsed
        p50 = _percentile(flat, 50)
        p99 = _percentile(flat, 99)
        stats = ServeClient(server.host, server.port).stats()
        assert stats["engine"]["executed"] == 1  # every request warm
    finally:
        server.shutdown(drain=True, timeout=10.0)

    report(format_table(
        ["metric", "value"],
        [["requests (4 tenants, warm cache)", total],
         ["wall time [s]", f"{elapsed:.3f}"],
         ["throughput [req/s]", f"{rps:.0f}"],
         ["latency p50 [ms]", f"{p50 * 1e3:.2f}"],
         ["latency p99 [ms]", f"{p99 * 1e3:.2f}"]],
        title="Serve — warm-cache Fig. 5 quantification over HTTP"))
    _record("warm_cache_throughput", requests=total, clients=clients,
            wall_s=elapsed, rps=rps, p50_ms=p50 * 1e3,
            p99_ms=p99 * 1e3)
    assert rps >= 100.0, \
        f"warm-cache service only sustained {rps:.0f} req/s"


def test_concurrent_identical_submissions_coalesce(report):
    k = 6
    samples = 50_000 if QUICK else 400_000
    spec = {"type": "montecarlo", "tree": "corridor",
            "samples": samples, "seed": 9}
    server = RiskServer(ServerConfig(
        port=0, workers=1, max_concurrency=8,
        queue_limit=k * 2)).start()
    try:
        envelopes = []
        lock = threading.Lock()

        def tenant(index):
            with ServeClient(server.host, server.port,
                             timeout=120.0) as client:
                envelope = client.results([spec])[0]
            with lock:
                envelopes.append(envelope)

        threads = [threading.Thread(target=tenant, args=(i,))
                   for i in range(k)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start

        executed = server.engine.executed
        coalesced = sum(1 for e in envelopes if e["coalesced"])
        cache_hits = sum(1 for e in envelopes if e["cache_hit"])
        distinct = {json.dumps(e["result"], sort_keys=True)
                    for e in envelopes}
    finally:
        server.shutdown(drain=True, timeout=10.0)

    assert len(envelopes) == k
    assert executed == 1, \
        f"{executed} computations for {k} identical submissions"
    assert coalesced + cache_hits == k - 1
    assert len(distinct) == 1  # byte-equal results for every tenant

    report(format_table(
        ["metric", "value"],
        [["identical submissions", k],
         ["engine computations", executed],
         ["coalesced onto leader", coalesced],
         ["served from cache", cache_hits],
         ["wall time [s]", f"{elapsed:.3f}"]],
        title=f"Serve — request coalescing "
              f"({samples} Monte Carlo samples)"))
    _record("request_coalescing", submissions=k, executed=executed,
            coalesced=coalesced, cache_hits=cache_hits,
            coalesce_rate=(k - 1) / k, wall_s=elapsed,
            samples=samples)
