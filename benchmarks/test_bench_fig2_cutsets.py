"""Fig. 2 reproduction: qualitative FTA of the collision tree.

Regenerates the minimal cut sets of the paper's collision fault tree —
every one a single point of failure — and benchmarks the MOCUS run.
"""

from repro.elbtunnel import fig2_fault_tree
from repro.fta import mocus
from repro.viz import format_table


def test_fig2_minimal_cut_sets(benchmark, report):
    tree = fig2_fault_tree()
    cut_sets = benchmark(mocus, tree)

    assert len(cut_sets) == 6
    assert all(cs.is_single_point for cs in cut_sets)
    report(format_table(
        ["minimal cut set", "order", "single point of failure"],
        [[str(cs), cs.order, "yes" if cs.is_single_point else "no"]
         for cs in cut_sets],
        title="Fig. 2 — collision tree minimal cut sets "
              "(paper: all single points of failure)"))
