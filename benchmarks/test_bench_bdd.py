"""BDD kernel benchmarks: arena kernel vs. the seed's linked-node kernel.

The ISSUE-3 acceptance benchmark: the *cold analysis path* — fault tree
to BDD, minimal cut sets (both the BDD minsol route and MOCUS), exact
top-event probability — run end to end on the arena kernel
(:mod:`repro.bdd` / :mod:`repro.fta.cutsets`) and on the seed's
recursive object-graph kernel, kept executable verbatim in
``tests/bdd/_reference.py``.  This is the path every engine cache miss,
new scenario and fingerprint-invalidating model edit pays before the
PR-1/PR-2 warm paths can help.

Workloads:

* the largest Elbtunnel tree (:func:`corridor_fault_tree`) — the
  headline ``>= 5x`` acceptance measurement;
* the paper's Fig. 2 tree — small-tree overhead check (recorded, no
  speedup gate: at seven leaves both kernels are interpreter-bound);
* a synthetic wide K-of-N voting tree — stresses apply and the
  quadratic absorption the bitmask rewrite removed;
* a synthetic 5,000-gate deep chain — arena-only: the seed kernel's
  recursion blows the stack, which is the point of the explicit-stack
  rewrite (recorded with ``seed_s: null``).

Set ``BENCH_BDD_JSON`` to a path to dump the measurements (the CI
benchmark-smoke job uploads it as ``BENCH_bdd.json``); set
``BENCH_QUICK=1`` to shrink the workloads for smoke runs.
"""

import json
import os
import time

from repro.bdd import BDDManager, minimal_cut_sets, probability
from repro.elbtunnel.faulttrees import corridor_fault_tree, fig2_fault_tree
from repro.fta import FaultTree, mocus, to_bdd
from repro.fta.cutsets import CutSetCollection
from repro.fta.dsl import AND, KOFN, hazard, primary
from repro.fta.events import Condition, PrimaryFailure
from repro.viz import format_table
from tests.bdd._reference import (
    RefManager,
    build_chain_tree,
    ref_minimal_cut_sets,
    ref_minimize,
    ref_mocus_cut_sets,
    ref_probability,
    ref_to_bdd,
)

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

#: Collected measurements, dumped to BENCH_BDD_JSON at session end.
_RESULTS = {}


def _record(name, **measures):
    _RESULTS[name] = measures
    path = os.environ.get("BENCH_BDD_JSON")
    if path:
        with open(path, "w") as handle:
            json.dump({"quick": QUICK, "benchmarks": _RESULTS}, handle,
                      indent=2, sort_keys=True)


def leaf_probabilities(tree):
    """Uniform leaf probabilities (values don't matter for timing)."""
    return {event.name: 0.01 for event in tree.iter_events()
            if isinstance(event, (PrimaryFailure, Condition))}


def arena_cold_path(tree, probs):
    """tree -> BDD -> MCS (both routes) -> exact probability, rewritten
    kernel."""
    manager = BDDManager()
    root = to_bdd(tree, manager)
    return (minimal_cut_sets(manager, root), list(mocus(tree)),
            probability(manager, root, probs))


def seed_cold_path(tree, probs):
    """The same pipeline on the seed kernel (linked nodes, frozensets)."""
    manager = RefManager()
    root = ref_to_bdd(tree, manager)
    cut_sets = ref_minimize(ref_mocus_cut_sets(tree))
    collection = sorted(cut_sets,
                        key=lambda cs: (cs.order, sorted(cs.failures),
                                        sorted(cs.conditions)))
    return (ref_minimal_cut_sets(manager, root), collection,
            ref_probability(manager, root, probs))


def timed_speedup(tree, iters):
    """Time both kernels on the identical cold path; verify agreement."""
    probs = leaf_probabilities(tree)
    seed = seed_cold_path(tree, probs)       # also serves as warm-up
    arena = arena_cold_path(tree, probs)
    assert seed[0] == arena[0]               # BDD-route MCS identical
    assert seed[1] == arena[1]               # MOCUS collection identical
    assert seed[2] == arena[2]               # probability bit-identical

    def best_of_two(pipeline):
        # Best-of-two absorbs one CPU-contention / GC pause on shared
        # CI runners without inflating the recorded times.
        samples = []
        for _ in range(2):
            start = time.perf_counter()
            for _ in range(iters):
                pipeline(tree, probs)
            samples.append(time.perf_counter() - start)
        return min(samples)

    seed_s = best_of_two(seed_cold_path)
    arena_s = best_of_two(arena_cold_path)
    speedup = seed_s / arena_s if arena_s > 0 else float("inf")
    return seed_s, arena_s, speedup, len(arena[1])


def test_elbtunnel_corridor_cold_path(report):
    """Acceptance: >= 5x on the largest Elbtunnel tree (the full run;
    the CI quick smoke uses a looser floor to absorb shared-runner
    timing noise — the measured ratio ships in BENCH_bdd.json either
    way)."""
    tree = corridor_fault_tree(sections=72)
    seed_s, arena_s, speedup, cuts = timed_speedup(
        tree, iters=5 if QUICK else 10)
    _record("elbtunnel_corridor", tree=tree.name, cut_sets=cuts,
            seed_s=seed_s, arena_s=arena_s, speedup=speedup)
    report(format_table(
        ["kernel", "time [s]", "cut sets"],
        [["seed (linked nodes, frozensets)", f"{seed_s:.4f}", cuts],
         ["arena (index arrays, bitmasks)", f"{arena_s:.4f}", cuts],
         ["speedup", f"{speedup:.1f}x", ""]],
        title="BDD — cold analysis path, largest Elbtunnel tree "
              "(corridor, 72 sections)"))
    floor = 3.5 if QUICK else 5.0
    assert speedup >= floor, \
        f"cold path only {speedup:.1f}x faster than the seed kernel"


def test_elbtunnel_fig2_cold_path(report):
    """The paper's own (seven-leaf) tree: recorded, no speedup gate —
    at this size both kernels are bound by interpreter overhead."""
    tree = fig2_fault_tree()
    seed_s, arena_s, speedup, cuts = timed_speedup(
        tree, iters=50 if QUICK else 300)
    _record("elbtunnel_fig2", tree=tree.name, cut_sets=cuts,
            seed_s=seed_s, arena_s=arena_s, speedup=speedup)
    report(format_table(
        ["kernel", "time [s]", "cut sets"],
        [["seed", f"{seed_s:.4f}", cuts],
         ["arena", f"{arena_s:.4f}", cuts],
         ["speedup", f"{speedup:.2f}x", ""]],
        title="BDD — cold analysis path, Fig. 2 tree"))
    # No regression on the toy tree (loose: both sides are tens of
    # microseconds, so shared-runner noise dominates).
    assert speedup >= 0.33


def test_wide_voting_cold_path(report):
    """Synthetic wide tree: K-of-N voting over AND pairs."""
    width = 10 if QUICK else 14
    branches = [AND(f"br{i}", primary(f"a{i}", 0.01),
                    primary(f"b{i}", 0.02))
                for i in range(width)]
    tree = FaultTree(hazard("H", gate=KOFN("vote", 3, *branches).gate))
    seed_s, arena_s, speedup, cuts = timed_speedup(tree, iters=3)
    _record("wide_voting", width=width, cut_sets=cuts,
            seed_s=seed_s, arena_s=arena_s, speedup=speedup)
    report(format_table(
        ["kernel", "time [s]", "cut sets"],
        [["seed", f"{seed_s:.4f}", cuts],
         ["arena", f"{arena_s:.4f}", cuts],
         ["speedup", f"{speedup:.1f}x", ""]],
        title=f"BDD — cold analysis path, 3-of-{width} voting tree"))
    floor = 1.5 if QUICK else 2.0  # quick mode shrinks the tree
    assert speedup >= floor, \
        f"wide-tree cold path only {speedup:.1f}x faster"


def test_deep_chain_arena_only(report):
    """5,000-gate chain: completes on the arena kernel; the seed
    kernel's recursive traversals cannot run it at all (RecursionError),
    so its time is recorded as null."""
    depth = 1_000 if QUICK else 5_000
    tree = build_chain_tree(depth)
    probs = leaf_probabilities(tree)

    start = time.perf_counter()
    cuts, collection, prob = arena_cold_path(tree, probs)
    arena_s = time.perf_counter() - start
    assert isinstance(collection, list) and prob >= 0.0
    assert {cs.failures for cs in collection} == set(cuts)
    _record("deep_chain", depth=depth, cut_sets=len(cuts),
            seed_s=None, arena_s=arena_s, speedup=None)
    report(format_table(
        ["kernel", "time [s]", "cut sets"],
        [["seed", "RecursionError", ""],
         ["arena", f"{arena_s:.4f}", len(cuts)]],
        title=f"BDD — cold analysis path, {depth}-gate chain"))


def test_collection_construction_not_reminimized():
    """Guard: mocus feeds its already-minimal cut sets through the
    collection fast path; rebuilding the collection from raw cut sets
    must agree with it."""
    tree = corridor_fault_tree(sections=8)
    fast = mocus(tree)
    rebuilt = CutSetCollection(fast.hazard_name, list(fast))
    assert list(rebuilt) == list(fast)