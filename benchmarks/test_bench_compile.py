"""Compiler benchmarks: compiled vs. interpreted quantification.

The :mod:`repro.compile` performance claims, measured on a Fig. 5-shaped
exact sweep (the ISSUE-2 acceptance benchmark), a cut-set sweep and the
vectorized Monte Carlo sampler:

* a compiled exact sweep is at least 10x faster than the per-point cold
  path (which rebuilds the BDD at every grid point), with identical
  values;
* the compiled cut-set sweep beats the interpreted per-point walk;
* the vectorized sampler beats the per-sample structure-function walk,
  bit-for-bit.

Set ``BENCH_COMPILE_JSON`` to a path to dump the measurements (the CI
benchmark-smoke job uploads it as ``BENCH_compile.json``); set
``BENCH_QUICK=1`` to shrink the workloads for smoke runs.
"""

import json
import os
import time

from repro.core import identity
from repro.engine import SweepJob
from repro.fta import FaultTree
from repro.fta.dsl import AND, KOFN, hazard, primary
from repro.sim.montecarlo import monte_carlo_counts
from repro.viz import format_table

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

#: Collected measurements, dumped to BENCH_COMPILE_JSON at session end.
_RESULTS = {}


def _record(name, **measures):
    _RESULTS[name] = measures
    path = os.environ.get("BENCH_COMPILE_JSON")
    if path:
        with open(path, "w") as handle:
            json.dump({"quick": QUICK, "benchmarks": _RESULTS}, handle,
                      indent=2, sort_keys=True)


def voting_tree(width: int = 12) -> "FaultTree":
    """A 3-of-``width`` vote over AND pairs — 2*width BDD variables.

    The same shape as the engine benchmark's tree: one exact
    quantification costs about a millisecond interpreted, so the
    per-point cost dominates fingerprinting and setup.
    """
    branches = [AND(f"br{i}",
                    primary(f"a{i}", 0.01), primary(f"b{i}", 0.02))
                for i in range(width)]
    return FaultTree(hazard("H", gate=KOFN("vote", 3, *branches).gate))


def sweep_jobs(method: str, points_per_axis: int):
    """Identical Fig. 5-shaped sweeps, compiled and interpreted."""
    values = [0.01 + 0.005 * i for i in range(points_per_axis)]
    axes = {"pa0": values, "pb0": values}
    assignments = {"a0": identity("pa0"), "b0": identity("pb0")}
    return (SweepJob.from_axes(voting_tree(), assignments, axes,
                               method=method, compiled=True),
            SweepJob.from_axes(voting_tree(), assignments, axes,
                               method=method, compiled=False))


def test_compiled_exact_sweep_speedup(report):
    compiled_job, interpreted_job = sweep_jobs(
        "exact", points_per_axis=5 if QUICK else 13)

    start = time.perf_counter()
    interpreted = interpreted_job.run_serial()
    cold = time.perf_counter() - start

    start = time.perf_counter()
    compiled = compiled_job.run_serial()
    fast = time.perf_counter() - start

    delta = max(abs(a - b) for a, b
                in zip(compiled.values, interpreted.values))
    assert delta <= 1e-12
    speedup = cold / fast if fast > 0 else float("inf")
    _record("exact_sweep", points=len(compiled),
            interpreted_s=cold, compiled_s=fast, speedup=speedup,
            max_abs_delta=delta)
    report(format_table(
        ["run", "time [s]", "points"],
        [["interpreted (exact BDD per point)", f"{cold:.4f}",
          len(interpreted)],
         ["compiled (one tape, one batch)", f"{fast:.4f}",
          len(compiled)],
         ["speedup", f"{speedup:.0f}x", ""]],
        title="Compile — Fig. 5-shaped exact sweep, "
              "compiled vs. per-point"))
    assert speedup >= 10.0, \
        f"compiled sweep only {speedup:.1f}x faster than per-point path"


def test_compiled_cutset_sweep_speedup(report):
    compiled_job, interpreted_job = sweep_jobs(
        "rare_event", points_per_axis=15 if QUICK else 21)

    start = time.perf_counter()
    interpreted = interpreted_job.run_serial()
    cold = time.perf_counter() - start

    start = time.perf_counter()
    compiled = compiled_job.run_serial()
    fast = time.perf_counter() - start

    assert compiled == interpreted
    speedup = cold / fast if fast > 0 else float("inf")
    _record("cutset_sweep", points=len(compiled),
            interpreted_s=cold, compiled_s=fast, speedup=speedup)
    report(format_table(
        ["run", "time [s]", "points"],
        [["interpreted (per-point cut sets)", f"{cold:.4f}",
          len(interpreted)],
         ["compiled (column reductions)", f"{fast:.4f}", len(compiled)],
         ["speedup", f"{speedup:.1f}x", ""]],
        title="Compile — rare-event sweep, compiled vs. per-point"))
    # Cut-set interpretation is much cheaper than exact BDD rebuilds, so
    # the bar is lower; the point is that batching still wins.
    assert speedup >= 1.5, \
        f"compiled cut-set sweep only {speedup:.1f}x faster"


def test_vectorized_sampler_speedup(report):
    tree = voting_tree(width=6)
    samples = 4_000 if QUICK else 40_000

    start = time.perf_counter()
    interpreted = monte_carlo_counts(tree, samples=samples, seed=11,
                                     vectorized=False)
    slow = time.perf_counter() - start

    start = time.perf_counter()
    vectorized = monte_carlo_counts(tree, samples=samples, seed=11)
    fast = time.perf_counter() - start

    assert vectorized == interpreted  # bit-for-bit, not approximately
    speedup = slow / fast if fast > 0 else float("inf")
    _record("sampler", samples=samples, interpreted_s=slow,
            compiled_s=fast, speedup=speedup,
            occurrences=vectorized[0])
    report(format_table(
        ["run", "time [s]", "occurrences"],
        [["interpreted (per-sample walk)", f"{slow:.4f}",
          interpreted[0]],
         ["vectorized (block evaluation)", f"{fast:.4f}",
          vectorized[0]],
         ["speedup", f"{speedup:.1f}x", ""]],
        title=f"Compile — Monte Carlo sampling of {samples} draws"))
    assert speedup >= 2.0, \
        f"vectorized sampler only {speedup:.1f}x faster"
