"""Ablation A6: modular vs. monolithic exact quantification.

Module detection lets each independent subtree be quantified on its own
small BDD; this bench measures the speedup on trees of growing width,
verifies exact agreement with monolithic quantification, and times the
linear-visit-date module detector on wide and chain-shaped trees.

Set ``BENCH_MODULES_JSON`` to a path to dump the measurements (the CI
benchmark-smoke job uploads it as ``BENCH_modules.json``); set
``BENCH_QUICK=1`` to shrink the workloads for smoke runs.
"""

import json
import os
import time

import pytest

from repro.fta import (
    FaultTree,
    find_modules,
    hazard_probability,
    modular_probability,
)
from repro.fta.dsl import AND, OR, hazard, primary
from repro.viz import format_table

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

#: Collected measurements, dumped to BENCH_MODULES_JSON at session end.
_RESULTS = {}

WIDTHS = [4, 16] if QUICK else [4, 16, 48]
CHAIN_DEPTH = 1000 if QUICK else 5000


def _record(name, **measures):
    _RESULTS[name] = measures
    path = os.environ.get("BENCH_MODULES_JSON")
    if path:
        with open(path, "w") as handle:
            json.dump({"quick": QUICK, "benchmarks": _RESULTS}, handle,
                      indent=2, sort_keys=True)


def _best_of(fn, repeats=2):
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def wide_modular_tree(blocks: int) -> FaultTree:
    """OR of `blocks` independent 2-of-2 blocks."""
    parts = [
        AND(f"block{i}", primary(f"a{i}", 0.01), primary(f"b{i}", 0.02))
        for i in range(blocks)
    ]
    return FaultTree(hazard("H", OR_gate=parts))


def chain_tree(depth: int) -> FaultTree:
    """A linear gate chain sharing one leaf — zero chain modules."""
    shared = primary("shared", 0.01)
    node = OR("g0", shared, primary("base", 0.02))
    for i in range(1, depth):
        node = OR(f"g{i}", shared, node)
    side = AND("side", primary("s1", 0.1), primary("s2", 0.2))
    return FaultTree(hazard("H", OR_gate=[node, side, shared]))


def test_modular_vs_monolithic(report):
    rows = []
    for blocks in WIDTHS:
        tree = wide_modular_tree(blocks)
        mono_s, mono = _best_of(
            lambda: hazard_probability(tree, method="exact"))
        mod_s, modular = _best_of(
            lambda: modular_probability(tree, method="exact"))
        assert modular == pytest.approx(mono, rel=1e-12)
        _record(f"quantify_{blocks}_blocks",
                monolithic_s=mono_s, modular_s=mod_s,
                probability=modular)
        rows.append([str(blocks), f"{mono_s * 1e3:.2f}",
                     f"{mod_s * 1e3:.2f}", f"{modular:.3e}"])
    report(format_table(
        ["blocks", "monolithic ms", "modular ms", "P"], rows,
        title="A6: modular vs monolithic exact quantification"))


def test_module_detection_wide(report):
    blocks = 32
    tree = wide_modular_tree(blocks)
    elapsed, modules = _best_of(lambda: find_modules(tree))
    assert len(modules) == blocks
    _record("detect_wide_32", seconds=elapsed, modules=len(modules))
    report(f"module detection, {blocks} blocks: "
           f"{elapsed * 1e3:.2f} ms")


def test_module_detection_chain(report):
    """The visit-date detector stays linear on deep shared chains.

    The quadratic path-counting formulation took ~30 s on the full
    5,000-gate chain; anything over a second here is a regression.
    """
    tree = chain_tree(CHAIN_DEPTH)
    elapsed, modules = _best_of(lambda: find_modules(tree))
    assert [m.root for m in modules] == ["side"]
    assert elapsed < 1.0
    _record("detect_chain", depth=CHAIN_DEPTH, seconds=elapsed)
    report(f"module detection, {CHAIN_DEPTH}-gate chain: "
           f"{elapsed * 1e3:.2f} ms")
