"""Ablation A6: modular vs. monolithic exact quantification.

Module detection lets each independent subtree be quantified on its own
small BDD; this bench measures the speedup on trees of growing width and
verifies exact agreement with monolithic quantification.
"""

import pytest

from repro.fta import (
    FaultTree,
    find_modules,
    hazard_probability,
    modular_probability,
)
from repro.fta.dsl import AND, OR, hazard, primary


def wide_modular_tree(blocks: int) -> FaultTree:
    """OR of `blocks` independent 2-of-2 blocks."""
    parts = [
        AND(f"block{i}", primary(f"a{i}", 0.01), primary(f"b{i}", 0.02))
        for i in range(blocks)
    ]
    return FaultTree(hazard("H", OR_gate=parts))


@pytest.mark.parametrize("blocks", [4, 16, 48])
def test_monolithic_exact(benchmark, blocks):
    tree = wide_modular_tree(blocks)
    value = benchmark(hazard_probability, tree, None, "exact")
    assert 0.0 < value < 1.0


@pytest.mark.parametrize("blocks", [4, 16, 48])
def test_modular_exact(benchmark, blocks):
    tree = wide_modular_tree(blocks)
    value = benchmark(modular_probability, tree, None, "exact")
    assert value == pytest.approx(
        hazard_probability(tree, method="exact"), rel=1e-12)


def test_module_detection(benchmark):
    tree = wide_modular_tree(32)
    modules = benchmark(find_modules, tree)
    assert len(modules) == 32
