"""Ablation A4: constraint probabilities on/off (Sect. II-D.1).

Classic quantitative FTA sets P(Constraints) = 1 (worst case); the
paper's refinement models it.  On the Elbtunnel false-alarm tree the
worst-case analysis overstates the risk by orders of magnitude — the gap
that makes safety optimization's conclusions possible at all.
"""

import pytest

from repro.elbtunnel import ElbtunnelConfig
from repro.elbtunnel.faulttrees import (
    false_alarm_fault_tree,
    odfinal_armed_probability,
)
from repro.elbtunnel.model import p_hv_odfinal
from repro.fta import ConstraintPolicy, hazard_probability
from repro.viz import format_table

CFG = ElbtunnelConfig()


def overrides(t1: float, t2: float):
    values = {"T1": t1, "T2": t2}
    return {
        "HV_ODfinal": p_hv_odfinal(CFG)(values),
        "ODfinal_armed": odfinal_armed_probability(CFG)(values),
    }


@pytest.mark.parametrize("policy", list(ConstraintPolicy),
                         ids=lambda p: p.value)
def test_policy_quantification(benchmark, policy):
    tree = false_alarm_fault_tree(CFG)
    probs = overrides(19.0, 15.6)
    value = benchmark(hazard_probability, tree, probs, "rare_event",
                      policy)
    assert 0.0 < value <= 1.0


def test_constraint_refinement_table(benchmark, report):
    tree = false_alarm_fault_tree(CFG)
    probs = overrides(19.0, 15.6)

    def run():
        return {policy: hazard_probability(tree, probs, "rare_event",
                                           policy)
                for policy in ConstraintPolicy}

    values = benchmark.pedantic(run, rounds=1, iterations=1)
    worst = values[ConstraintPolicy.WORST_CASE]
    modelled = values[ConstraintPolicy.INDEPENDENT]
    # The worst-case analysis overstates the dominating cut set's
    # contribution by ~1/P(OHV) ~ 700x.
    assert worst > 50 * modelled

    report(format_table(
        ["constraint policy", "P(H_Alr)(19, 15.6)", "vs modelled"],
        [[policy.value, f"{value:.6e}",
          f"{value / modelled:.1f}x"]
         for policy, value in values.items()],
        title="A4 — constraint probabilities on/off "
              "(Sect. II-D.1 refinement)"))
