"""Ablation A2: cut set algorithms and quantification accuracy.

MOCUS vs. BDD minimal-solutions on growing trees, and the error of the
paper's rare-event formula (Eq. 1) against the exact BDD probability as
failure probabilities grow — quantifying the paper's 'this is in
practice no problem as failure probabilities are very small'.
"""

import pytest

from repro.bdd import BDDManager, minimal_cut_sets
from repro.fta import FaultTree, approximation_error, mocus, to_bdd
from repro.fta.dsl import AND, OR, hazard, primary
from repro.viz import format_table


def layered_tree(width: int, probability: float = 1e-3) -> FaultTree:
    """OR of `width` AND-pairs with one shared common leaf."""
    shared = primary("shared", probability)
    branches = [AND(f"b{i}", shared, primary(f"e{i}", probability))
                for i in range(width)]
    branches.extend(primary(f"s{i}", probability) for i in range(width))
    return FaultTree(hazard("H", OR_gate=branches))


@pytest.mark.parametrize("width", [4, 16, 64])
def test_mocus_scaling(benchmark, width):
    tree = layered_tree(width)
    result = benchmark(mocus, tree)
    assert len(result) == 2 * width


@pytest.mark.parametrize("width", [4, 16, 64])
def test_bdd_mcs_scaling(benchmark, width):
    tree = layered_tree(width)

    def run():
        manager = BDDManager()
        return minimal_cut_sets(manager, to_bdd(tree, manager))

    result = benchmark(run)
    assert len(result) == 2 * width


def test_mocus_and_bdd_agree(benchmark):
    tree = layered_tree(32)

    def both():
        manager = BDDManager()
        bdd_sets = set(minimal_cut_sets(manager, to_bdd(tree, manager)))
        mocus_sets = {frozenset(cs.failures) for cs in mocus(tree)}
        return bdd_sets, mocus_sets

    bdd_sets, mocus_sets = benchmark(both)
    assert bdd_sets == mocus_sets


def test_rare_event_error_growth(benchmark, report):
    """Eq. 1's error vs. the exact value as probabilities grow."""

    def sweep():
        rows = []
        for p in (1e-4, 1e-3, 1e-2, 1e-1, 0.3):
            tree = layered_tree(8, probability=p)
            err = approximation_error(tree)
            rows.append([f"{p:g}", f"{err['rare_event']:.6e}",
                         f"{err['exact']:.6e}",
                         f"{err['relative_error'] * 100:.3f} %"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(format_table(
        ["P(leaf)", "rare-event (Eq. 1)", "exact (BDD)",
         "relative error"],
        rows,
        title="A2 — rare-event approximation error "
              "(paper: negligible for small probabilities)"))
    # The paper's claim holds at small p and visibly fails at large p
    # (at p = 0.3 the clipped rare-event sum saturates at 1, shrinking
    # the error again, so check the maximum across the sweep).
    errors = [float(row[3].rstrip(" %")) for row in rows]
    assert errors[0] < 0.1
    assert max(errors) > 5.0
