"""Sect. IV-C.2 headline results: optimal runtimes and risk changes.

Paper: optimum ~(19, 15.6) minutes vs. the engineers' (30, 30); ~10 %
false-alarm improvement; collision risk change < 0.1 %.
"""

import pytest

from repro.elbtunnel import COLLISION, FALSE_ALARM, optimum_study
from repro.viz import format_table


def test_optimum_and_baseline_comparison(benchmark, report):
    result = benchmark(optimum_study, method="zoom")

    t1, t2 = result.optimum
    comparisons = result.hazard_comparisons()
    alarm = comparisons[FALSE_ALARM]
    collision = comparisons[COLLISION]

    assert t1 == pytest.approx(19.0, abs=0.5)
    assert t2 == pytest.approx(15.6, abs=0.5)
    assert alarm.improvement_percent == pytest.approx(10.0, abs=2.0)
    assert abs(collision.relative_change) < 0.001

    report(format_table(
        ["quantity", "paper", "measured"],
        [
            ["optimal T1 [min]", "~19", f"{t1:.2f}"],
            ["optimal T2 [min]", "~15.6", f"{t2:.2f}"],
            ["cost at optimum", "~0.0046", f"{result.optimal_cost:.5f}"],
            ["false-alarm improvement", "~10 %",
             f"{alarm.improvement_percent:.2f} %"],
            ["collision risk change", "< 0.1 %",
             f"{abs(collision.relative_change) * 100:.3f} %"],
            ["baseline (engineers)", "(30, 30)",
             f"({result.baseline[0]:g}, {result.baseline[1]:g})"],
        ],
        title="Sect. IV-C.2 — safety optimization of the timer runtimes"))
