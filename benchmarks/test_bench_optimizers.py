"""Ablation A1: optimizer comparison on the Elbtunnel cost function.

Which of the paper's optimization options (plot-and-zoom, gradient, and
the 'more elaborate' alternatives) finds the published optimum, and at
what evaluation cost?
"""

import pytest

from repro.core import SafetyOptimizer
from repro.elbtunnel import build_safety_model
from repro.viz import format_table

METHODS = ["zoom", "grid", "gradient", "coordinate", "nelder_mead",
           "annealing", "differential_evolution", "scipy"]


@pytest.mark.parametrize("method", METHODS)
def test_optimizer_on_elbtunnel(benchmark, method):
    model = build_safety_model()
    optimizer = SafetyOptimizer(model)
    options = {"seed": 0} if method in ("annealing",
                                        "differential_evolution") else {}
    result = benchmark(optimizer.optimize, method, **options)
    reference = model.cost((19.0, 15.6))
    # Every method must reach a cost within 1% of the true optimum.
    assert result.optimal_cost <= reference * 1.01


def test_optimizer_accuracy_table(benchmark, report):
    model = build_safety_model()
    optimizer = SafetyOptimizer(model)
    reference = model.cost((19.0, 15.6))

    def run_all():
        rows = []
        for method in METHODS:
            options = {"seed": 0} if method in (
                "annealing", "differential_evolution") else {}
            result = optimizer.optimize(method, **options)
            rows.append([
                method,
                f"({result.optimum[0]:.2f}, {result.optimum[1]:.2f})",
                f"{result.optimal_cost:.6f}",
                f"{(result.optimal_cost / reference - 1) * 100:.4f} %",
                result.opt_result.evaluations,
            ])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(format_table(
        ["method", "optimum (T1, T2)", "cost", "excess vs best",
         "evaluations"],
        rows,
        title="A1 — optimizers on the Elbtunnel cost function "
              "(paper optimum ~(19, 15.6), cost ~0.0046)"))
