"""Ablation A7: integrated yearly risk of the three designs.

The paper compares the design variants by the per-OHV false-alarm
probability (Fig. 6); this bench folds collision and alarm rates into a
single expected-cost-per-year figure via the event-tree PRA layer —
the money form of the paper's verdict.
"""

from repro.elbtunnel import DesignVariant, compare_variants
from repro.viz import format_table


def test_variant_risk_comparison(benchmark, report):
    results = benchmark(compare_variants)

    without = results[DesignVariant.WITHOUT_LB4]
    lb_at = results[DesignVariant.LB_AT_ODFINAL]
    assert without.expected_cost_per_year > \
        results[DesignVariant.WITH_LB4].expected_cost_per_year > \
        lb_at.expected_cost_per_year

    rows = []
    for variant in DesignVariant:
        assessment = results[variant]
        rows.append([
            variant.value,
            f"{assessment.collisions_per_year:.3e}",
            f"{assessment.false_alarms_per_year:.1f}",
            f"{assessment.expected_cost_per_year:.1f}",
        ])
    report(format_table(
        ["design variant", "collisions/yr", "false alarms/yr",
         "expected cost/yr"],
        rows,
        title="A7 — integrated yearly risk at (T1, T2) = (19, 15.6), "
              "heavy traffic"))
