"""Incremental what-if analysis: warm edits vs. cold recompilation.

The tentpole claim of the incremental layer: once a corridor-scale tree
has been compiled, re-quantifying after a single-event rate edit costs a
tape evaluation, not a BDD rebuild.  This bench measures the warm edit
path of :class:`repro.incremental.IncrementalSession` against the cold
compiled path (``CompiledTape`` rebuilt per edit) and asserts a >=20x
speedup on the full corridor (>=2x in quick mode), with every warm
value bit-identical to the monolithic exact quantification.  A second
bench pins the sifting win on an adversarial declaration order.

Set ``BENCH_INCR_JSON`` to a path to dump the measurements (the CI
benchmark-smoke job uploads it as ``BENCH_incr.json``); set
``BENCH_QUICK=1`` to shrink the workloads for smoke runs.
"""

import json
import os
import time

from repro.bdd import BDDManager
from repro.compile import CompiledTape
from repro.elbtunnel import corridor_fault_tree
from repro.fta import FaultTree, hazard_probability, probability_map
from repro.fta.dsl import AND, hazard, primary
from repro.fta.quantify import to_bdd
from repro.incremental import IncrementalSession
from repro.viz import format_table

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

#: Collected measurements, dumped to BENCH_INCR_JSON at session end.
_RESULTS = {}

SECTIONS = 16 if QUICK else 64
SPEEDUP_FLOOR = 2.0 if QUICK else 20.0

#: Distinct rates per edit AND per timing cycle, so neither the session
#: memo nor a cache can serve a stale value inside the measurement.
CYCLES = 3
EDITS_PER_CYCLE = 6
RATE_CYCLES = [
    [1e-4 * (cycle * EDITS_PER_CYCLE + step + 2)
     for step in range(EDITS_PER_CYCLE)]
    for cycle in range(CYCLES)
]


def _record(name, **measures):
    _RESULTS[name] = measures
    path = os.environ.get("BENCH_INCR_JSON")
    if path:
        with open(path, "w") as handle:
            json.dump({"quick": QUICK, "benchmarks": _RESULTS}, handle,
                      indent=2, sort_keys=True)


def test_warm_edit_beats_cold_recompile(report):
    tree = corridor_fault_tree(SECTIONS)
    event = "Signal not shown"

    # Warm path: one session, the compile amortised across all edits.
    session = IncrementalSession(tree)
    session.quantify()

    cold_s = float("inf")
    warm_s = float("inf")
    values = {}
    for rates in RATE_CYCLES:
        # Cold: every edit pays a fresh BDD compile + tape lowering.
        start = time.perf_counter()
        cold_values = []
        for rate in rates:
            tape = CompiledTape(tree)
            cold_values.append(
                tape.scalar(probability_map(tree, {event: rate})))
        cold_s = min(cold_s, time.perf_counter() - start)

        # Warm: the same edits through the live session.
        start = time.perf_counter()
        warm_values = []
        for rate in rates:
            warm_values.append(session.apply(
                [{"op": "set_rate", "event": event,
                  "probability": rate}]).value)
        warm_s = min(warm_s, time.perf_counter() - start)

        for rate, warm, cold in zip(rates, warm_values, cold_values):
            assert warm == cold
            values[rate] = warm

    # Bit-identical to the monolithic quantification, edit by edit: the
    # corridor's shared signalling leaf leaves no modules to fold, so
    # the incremental path degenerates to the single monolithic tape.
    assert session.modules == []
    for rate, warm in values.items():
        assert warm == hazard_probability(tree, {event: rate},
                                          method="exact")

    speedup = cold_s / warm_s
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm edit path only {speedup:.1f}x faster than cold "
        f"recompilation (floor {SPEEDUP_FLOOR}x)")
    stats = session.stats.as_dict()
    assert stats["module_compiles"] == 1
    _record("corridor_single_event_edit",
            sections=SECTIONS, edits=EDITS_PER_CYCLE, cycles=CYCLES,
            cold_s=cold_s, warm_s=warm_s, speedup=speedup,
            module_compiles=stats["module_compiles"],
            requantifications=stats["requantifications"])
    report(format_table(
        ["sections", "edits", "cold s", "warm s", "speedup"],
        [[str(SECTIONS), str(EDITS_PER_CYCLE), f"{cold_s:.3f}",
          f"{warm_s:.4f}", f"{speedup:.1f}x"]],
        title="Incremental: warm single-event edits vs cold compile"))


def adversarial_tree(n):
    """(x1&..&xn) | OR_i (xi&yi): exponential under declaration order."""
    xs = [primary(f"x{i}", 0.01) for i in range(n)]
    ys = [primary(f"y{i}", 0.02) for i in range(n)]
    probe = AND("probe", *xs)
    pairs = [AND(f"pair{i}", xs[i], ys[i]) for i in range(n)]
    return FaultTree(hazard("H", OR_gate=[probe] + pairs))


def test_sifting_shrinks_adversarial_order(report):
    n = 8 if QUICK else 10
    tree = adversarial_tree(n)
    manager = BDDManager()
    root = to_bdd(tree, manager)
    start = time.perf_counter()
    result = manager.sift(root)
    sift_s = time.perf_counter() - start
    assert result.shrank
    assert result.size_after < result.size_before // 4
    _record("sift_adversarial", n=n, size_before=result.size_before,
            size_after=result.size_after, swaps=result.swaps,
            seconds=sift_s)
    report(f"sifting n={n}: {result.size_before} -> "
           f"{result.size_after} nodes "
           f"({result.swaps} swaps, {sift_s * 1e3:.1f} ms)")
