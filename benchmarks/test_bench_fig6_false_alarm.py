"""Fig. 6 reproduction: false alarms per correctly driving OHV.

Regenerates both curves of Fig. 6 ("without_LB4" vs. "with_LB4") over
T2 in [5, 25] in the increased-OHV-traffic environment, plus the
LB-at-ODfinal improvement, and checks the four quoted checkpoints:
> 80 % at the optimized runtime, > 95 % at 30 minutes, ~40 % with LB4,
~4 % with the light barrier at ODfinal.
"""

import pytest

from repro.elbtunnel import fig6_study
from repro.viz import format_series, format_table


def test_fig6_curves_and_checkpoints(benchmark, report):
    study = benchmark(fig6_study)

    cp = study.checkpoints
    assert cp.without_lb4_at_opt > 0.80
    assert cp.without_lb4_at_30 > 0.95
    assert cp.with_lb4_at_opt == pytest.approx(0.40, abs=0.05)
    assert cp.lb_at_odfinal == pytest.approx(0.04, abs=0.01)

    report(format_series(
        study.series,
        title="Fig. 6 — P(false alarm | correct OHV) vs. runtime of "
              "timer 2"))
    report(format_table(
        ["checkpoint", "paper", "measured"],
        [
            ["without LB4 @ T2=15.6", "> 80 %",
             f"{cp.without_lb4_at_opt * 100:.1f} %"],
            ["without LB4 @ T2=30", "> 95 %",
             f"{cp.without_lb4_at_30 * 100:.1f} %"],
            ["with LB4 @ T2=15.6", "~40 %",
             f"{cp.with_lb4_at_opt * 100:.1f} %"],
            ["LB at ODfinal", "~4 %",
             f"{cp.lb_at_odfinal * 100:.1f} %"],
        ],
        title="Fig. 6 checkpoints (Sect. IV-C.2)"))


def test_fig6_simulation_cross_check(benchmark, report):
    """The DES traffic simulation reproduces the analytic curve point."""
    from repro.elbtunnel import (
        DesignVariant,
        SimulationConfig,
        TrafficConfig,
        correct_ohv_alarm_probability,
        simulate,
    )

    traffic = TrafficConfig(ohv_rate=1 / 120.0, p_correct=1.0,
                            hv_odfinal_rate=0.13)
    config = SimulationConfig(duration=60.0 * 24 * 180, timer1=30.0,
                              timer2=15.6,
                              variant=DesignVariant.WITHOUT_LB4,
                              traffic=traffic, seed=42)
    result = benchmark(simulate, config)

    analytic = correct_ohv_alarm_probability(15.6,
                                             DesignVariant.WITHOUT_LB4)
    lo, hi = result.correct_ohv_alarm_ci()
    assert lo - 0.02 <= analytic <= hi + 0.02
    report(format_table(
        ["source", "P(alarm | correct OHV)"],
        [["analytic model", f"{analytic:.4f}"],
         ["DES (180 days)", f"{result.correct_ohv_alarm_fraction:.4f} "
          f"[{lo:.4f}, {hi:.4f}]"]],
        title="Fig. 6 cross-check — analytic vs. discrete-event "
              "simulation"))
