"""DES benchmarks: batched replications vs. the sequential scalar loop.

The ISSUE-5 acceptance benchmark: 64 replications of the 30-day Fig. 6
corridor simulation run as one batch (:mod:`repro.elbtunnel.batch`) must
be at least 5x faster than 64 sequential ``simulate()`` calls — and
every replication's counters must be **bit-identical** to the scalar
kernel at the same seed (the scalar path is the oracle, not an
approximation).

Set ``BENCH_SIM_JSON`` to a path to dump the measurements (the CI
benchmark-smoke job uploads it as ``BENCH_sim.json``); set
``BENCH_QUICK=1`` to shrink the auxiliary workloads for smoke runs (the
acceptance workload itself always runs at full size).
"""

import json
import os
import time
from dataclasses import replace

from repro.elbtunnel import (
    COUNTER_FIELDS,
    DesignVariant,
    SimulationConfig,
    TrafficConfig,
    simulate,
)
from repro.elbtunnel.batch import simulate_batch
from repro.elbtunnel.study import CORRIDOR_OHV_RATE
from repro.engine import Engine, SimulationJob
from repro.sim.batch import replication_seeds
from repro.viz import format_table

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

#: The 30-day Fig. 6 corridor run: heavy HV traffic, correct-only OHVs.
CORRIDOR = SimulationConfig(
    duration=60.0 * 24 * 30, timer1=30.0, timer2=15.6,
    variant=DesignVariant.WITHOUT_LB4,
    traffic=TrafficConfig(ohv_rate=CORRIDOR_OHV_RATE, p_correct=1.0,
                          hv_odfinal_rate=0.13),
    seed=0)

#: Collected measurements, dumped to BENCH_SIM_JSON at session end.
_RESULTS = {}


def _record(name, **measures):
    _RESULTS[name] = measures
    path = os.environ.get("BENCH_SIM_JSON")
    if path:
        with open(path, "w") as handle:
            json.dump({"quick": QUICK, "benchmarks": _RESULTS}, handle,
                      indent=2, sort_keys=True)


def test_batched_replication_speedup(report):
    replications = 64
    seeds = replication_seeds(CORRIDOR.seed, replications)

    start = time.perf_counter()
    sequential = [simulate(replace(CORRIDOR, seed=seed))
                  for seed in seeds]
    slow = time.perf_counter() - start

    start = time.perf_counter()
    batch = simulate_batch(CORRIDOR, replications)
    fast = time.perf_counter() - start

    for index, result in enumerate(sequential):
        assert batch.counters.row(index) == result.counters(), \
            f"replication {index} (seed {seeds[index]}) is not " \
            f"bit-identical to the scalar kernel"
    speedup = slow / fast if fast > 0 else float("inf")
    pooled = batch.pooled()
    _record("batched_replications", replications=replications,
            days=CORRIDOR.duration / (60.0 * 24),
            sequential_s=slow, batched_s=fast, speedup=speedup,
            pooled_alarm_fraction=pooled.correct_ohv_alarm_fraction)
    report(format_table(
        ["run", "time [s]", "replications"],
        [["sequential scalar simulate() loop", f"{slow:.4f}",
          replications],
         ["batched replication engine", f"{fast:.4f}", replications],
         ["speedup", f"{speedup:.1f}x", ""]],
        title="DES — 30-day corridor simulation, batched vs. sequential"))
    assert speedup >= 5.0, \
        f"batched replications only {speedup:.1f}x faster than the " \
        f"sequential scalar loop"


def test_sharded_simulation_job(report):
    """Sharding across the pool reproduces the batch rows exactly.

    Timing is recorded, not asserted — CI core counts vary; the
    bit-identity of every row at any worker/shard count is the contract.
    """
    replications = 8 if QUICK else 32
    config = replace(CORRIDOR,
                     duration=60.0 * 24 * (5 if QUICK else 15))
    reference = simulate_batch(config, replications)

    start = time.perf_counter()
    sharded = Engine(workers=4).run(
        SimulationJob(config, replications=replications, shards=8))
    elapsed = time.perf_counter() - start

    assert list(sharded.counters.rows()) == \
        list(reference.counters.rows()), \
        "sharded job rows differ from the in-process batch"
    _record("sharded_job", replications=replications, workers=4,
            shards=8, elapsed_s=elapsed)
    report(format_table(
        ["measure", "value"],
        [["replications", replications],
         ["workers x shards", "4 x 8"],
         ["elapsed [s]", f"{elapsed:.4f}"],
         ["rows bit-identical", "yes"]],
        title="DES — SimulationJob sharded across the worker pool"))
    for name in COUNTER_FIELDS:
        assert (sharded.counters.column(name) >= 0).all()
