"""Resilience benchmarks: hook overhead and crash-recovery cost.

The resilience layer's two performance claims:

* with a fault plan attached but never firing, the injection hooks add
  **under 5 %** to a warm-cache Fig. 5 sweep (and cost literally
  nothing when no plan is attached — the hot paths test one attribute);
* recovering a shard lost to a worker crash is **bounded**: the
  chaos run finishes within a small multiple of the fault-free wall
  time, never a hang.

Set ``BENCH_RESILIENCE_JSON`` to a path to dump the measurements (the
CI chaos job uploads it as ``BENCH_resilience.json``); set
``BENCH_QUICK=1`` to shrink the workloads for smoke runs.
"""

import json
import os
import time

from repro.engine import Engine, SqliteCache, WorkerPool, job_from_spec
from repro.engine.pool import run_monte_carlo_shard
from repro.fta import FaultTree
from repro.fta.dsl import hazard, primary
from repro.resilience import FaultPlan, RetryPolicy
from repro.viz import format_table

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

#: Collected measurements, dumped to BENCH_RESILIENCE_JSON.
_RESULTS = {}

#: A spec that keeps every hook live but never fires: the pure
#: bookkeeping cost of an attached plan.
_NEVER = 10 ** 9


def _record(name, **measures):
    _RESULTS[name] = measures
    path = os.environ.get("BENCH_RESILIENCE_JSON")
    if path:
        with open(path, "w") as handle:
            json.dump({"quick": QUICK, "benchmarks": _RESULTS}, handle,
                      indent=2, sort_keys=True)


def _fig5_sweep_specs(points):
    """Fig. 5 operating points: the collision tree quantified on a
    grid of detection-threshold failure probabilities."""
    specs = []
    for i in range(points):
        for j in range(points):
            specs.append({
                "type": "quantify",
                "tree": "collision",
                "method": "exact",
                "probabilities": {"OT1": 0.005 + 0.005 * i,
                                  "OT2": 0.005 + 0.005 * j,
                                  "Other collision causes": 0.001},
            })
    return specs


def _sweep_pass(engine, specs):
    start = time.perf_counter()
    results = [engine.run(job_from_spec(spec)) for spec in specs]
    return time.perf_counter() - start, results


def _warm_sweep_time(tmp_path, specs, passes, plan=None):
    """Best-of warm-pass wall time over a sqlite-backed engine."""
    cache = SqliteCache(str(tmp_path))
    engine = Engine(workers=1, cache=cache, fault_plan=plan)
    _cold, baseline = _sweep_pass(engine, specs)  # fills the cache
    best, results = min(
        (_sweep_pass(engine, specs) for _ in range(passes)),
        key=lambda pair: pair[0])
    assert results == baseline
    stats = engine.stats()
    cache.close()
    return best, stats


def test_fault_free_hook_overhead(report, tmp_path):
    points = 5 if QUICK else 9
    passes = 3 if QUICK else 5
    specs = _fig5_sweep_specs(points)

    bare, bare_stats = _warm_sweep_time(tmp_path / "bare.db", specs,
                                        passes)
    plan = (FaultPlan(seed=1)
            .inject("cache.get", "io_error", after=_NEVER)
            .inject("cache.put", "io_error", after=_NEVER)
            .inject("payload.decode", "truncate", after=_NEVER)
            .inject("pool.shard", "crash", after=_NEVER))
    hooked, hooked_stats = _warm_sweep_time(tmp_path / "hooked.db",
                                            specs, passes, plan=plan)

    assert bare_stats.faults_injected == 0
    assert hooked_stats.faults_injected == 0
    assert plan.calls("cache.get") > 0  # the hooks really ran
    overhead = hooked / bare - 1.0

    report(format_table(
        ["metric", "value"],
        [["sweep points (warm cache)", len(specs)],
         ["bare wall [ms]", f"{bare * 1e3:.2f}"],
         ["hooked wall [ms]", f"{hooked * 1e3:.2f}"],
         ["hook overhead", f"{overhead:+.2%}"]],
        title="Resilience — armed-but-silent fault hooks on a warm "
              "Fig. 5 sweep"))
    _record("fault_free_hook_overhead", points=len(specs),
            bare_s=bare, hooked_s=hooked, overhead=overhead)
    # 5 % relative budget, with a 5 ms absolute grace so scheduler
    # noise on a millisecond-scale sweep cannot fail the gate.
    assert hooked < bare * 1.05 + 0.005, \
        f"silent fault hooks cost {overhead:.1%} (budget: 5%)"


def test_crash_recovery_wall_time_is_bounded(report):
    shards = 6
    samples = 20_000 if QUICK else 100_000
    tree = FaultTree(hazard("H", OR_gate=[primary("A", 0.1),
                                          primary("B", 0.2)]))
    payloads = [(tree, None, samples, seed) for seed in range(shards)]
    retry = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)

    start = time.perf_counter()
    serial = WorkerPool(1).map(run_monte_carlo_shard, payloads)
    serial_wall = time.perf_counter() - start

    plan = FaultPlan(seed=2).inject("pool.shard", "crash", indices=(2,))
    pool = WorkerPool(2, retry=retry, fault_plan=plan)
    start = time.perf_counter()
    recovered = pool.map(run_monte_carlo_shard, payloads)
    chaos_wall = time.perf_counter() - start

    assert recovered == serial  # bit-identical after the crash
    assert pool.recovered >= 1
    ratio = chaos_wall / serial_wall

    report(format_table(
        ["metric", "value"],
        [["shards × samples", f"{shards} × {samples}"],
         ["fault-free serial wall [s]", f"{serial_wall:.3f}"],
         ["crash + recovery wall [s]", f"{chaos_wall:.3f}"],
         ["slowdown vs serial", f"{ratio:.2f}x"],
         ["shards recovered serially", pool.recovered]],
        title="Resilience — worker crash mid-map, serial re-execution"))
    _record("crash_recovery_wall_time", shards=shards, samples=samples,
            serial_s=serial_wall, chaos_s=chaos_wall, ratio=ratio,
            recovered=pool.recovered)
    # Bounded: a crashed executor costs at most a restart plus a
    # serial re-run of the lost shards — far from a hang, and on the
    # same order as running everything serially in the first place.
    assert chaos_wall < serial_wall * 4.0 + 5.0, \
        f"crash recovery took {chaos_wall:.1f}s " \
        f"(serial baseline {serial_wall:.1f}s)"
