"""Ablation A3: Monte Carlo validation of the analytic formulas.

Samples the Elbtunnel fault trees directly and compares against the
rare-event (Eq. 1/2) and exact quantifications — the analytic values must
fall inside the sampling confidence intervals.
"""

import pytest

from repro.elbtunnel import ElbtunnelConfig
from repro.elbtunnel.faulttrees import false_alarm_fault_tree
from repro.elbtunnel.model import p_hv_odfinal
from repro.elbtunnel.faulttrees import odfinal_armed_probability
from repro.fta import hazard_probability
from repro.sim import monte_carlo_probability
from repro.viz import format_table

#: Scale factor: the real hazard probabilities (~1e-4) would need 1e8
#: samples; a scaled configuration exercises the same code path at
#: benchmark-friendly sample counts.
SCALED = ElbtunnelConfig(p_ohv_present=0.15, p_const2=0.05,
                         hv_odfinal_rate=0.08)


def scaled_probabilities(t1: float, t2: float):
    values = {"T1": t1, "T2": t2}
    return {
        "HV_ODfinal": p_hv_odfinal(SCALED)(values),
        "ODfinal_armed": odfinal_armed_probability(SCALED)(values),
    }


def test_monte_carlo_vs_analytic(benchmark, report):
    tree = false_alarm_fault_tree(SCALED)
    overrides = scaled_probabilities(19.0, 15.6)

    estimate = benchmark(monte_carlo_probability, tree, overrides,
                         200_000, 7)

    rare = hazard_probability(tree, overrides, method="rare_event")
    exact = hazard_probability(tree, overrides, method="exact")
    assert estimate.agrees_with(exact)

    report(format_table(
        ["method", "P(false alarm)"],
        [
            ["rare-event (Eq. 2)", f"{rare:.6f}"],
            ["exact (BDD)", f"{exact:.6f}"],
            ["Monte Carlo (200k)",
             f"{estimate.probability:.6f} "
             f"[{estimate.ci_low:.6f}, {estimate.ci_high:.6f}]"],
        ],
        title="A3 — Monte Carlo cross-validation "
              "(scaled Elbtunnel false-alarm tree)"))


@pytest.mark.parametrize("samples", [10_000, 100_000])
def test_monte_carlo_scaling(benchmark, samples):
    tree = false_alarm_fault_tree(SCALED)
    overrides = scaled_probabilities(19.0, 15.6)
    estimate = benchmark(monte_carlo_probability, tree, overrides,
                         samples, 3)
    assert 0.0 <= estimate.probability <= 1.0
