"""Fig. 5 reproduction: the cost function around its minimum.

Regenerates the surface f_cost(T1, T2) on the paper's plot window
(T1 in [15, 20], T2 in [15, 18]) and checks the z-scale (~0.0046) and the
location of the minimum (~(19, 15.6)).
"""

import pytest

from repro.elbtunnel import fig5_surface
from repro.viz import format_surface


def test_fig5_cost_surface(benchmark, report):
    surface = benchmark(fig5_surface, points=21)

    t1, t2, z = surface.minimum()
    assert t1 == pytest.approx(19.0, abs=0.5)
    assert t2 == pytest.approx(15.6, abs=0.5)
    assert z == pytest.approx(0.0046, rel=0.05)
    flat = [v for row in surface.cost for v in row]
    # Fig. 5's z axis spans roughly 0.0046..0.0047 on this window.
    assert min(flat) > 0.0044
    assert max(flat) < 0.0049

    report(format_surface(
        surface.t1_values, surface.t2_values, surface.cost,
        title="Fig. 5 — f_cost(T1 rows, T2 cols); paper minimum "
              "~0.0046 at (19, 15.6)"))
