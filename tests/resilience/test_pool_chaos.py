"""Pool chaos: dead workers, transient failures, deadlines.

The contract under test: a shard lost to infrastructure — a worker
process killed outright, an out-of-memory abort, an injected I/O error,
a stuck worker — is re-executed serially in the parent and the final
result list is **bit-identical** to the fault-free serial run, because
every payload is a pure function of its contents.
"""

import os
import time

import pytest

from repro.engine import WorkerPool
from repro.engine.pool import run_monte_carlo_shard
from repro.errors import QuantificationError
from repro.fta import ConstraintPolicy, FaultTree
from repro.fta.dsl import hazard, primary
from repro.resilience import FaultPlan, RetryPolicy

_PARENT_PID = os.getpid()

#: A fast no-sleep retry policy for chaos tests.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


def small_tree():
    return FaultTree(hazard("H", OR_gate=[primary("A", 0.1),
                                          primary("B", 0.2)]))


def mc_payloads(shards=6, samples=400):
    tree = small_tree()
    return [(tree, None, samples, seed) for seed in range(shards)]


def _die_in_worker(payload):
    """Kill the worker process on shard 2 (parent-side runs survive)."""
    index, value = payload
    if index == 2 and os.getpid() != _PARENT_PID:
        os._exit(70)
    return value * value


def _oom_in_worker(payload):
    """Raise MemoryError on shard 1 inside a worker process only."""
    index, value = payload
    if index == 1 and os.getpid() != _PARENT_PID:
        raise MemoryError("injected worker OOM")
    return value + 10


def _slow_shard(payload):
    """Sleep long on shard 0 inside a worker (parent runs are fast)."""
    index, value = payload
    if index == 0 and os.getpid() != _PARENT_PID:
        time.sleep(30.0)
    return value - 1


class TestWorkerDeath:
    """Satellite: worker death pinned bit-identical to the serial run."""

    def test_os_exit_recovers_bit_identical(self):
        payloads = [(i, i) for i in range(6)]
        serial = [value * value for _i, value in payloads]
        pool = WorkerPool(2, retry=FAST_RETRY)
        assert pool.map(_die_in_worker, payloads) == serial
        assert pool.recovered >= 1

    def test_memory_error_recovers_bit_identical(self):
        payloads = [(i, i) for i in range(6)]
        serial = [value + 10 for _i, value in payloads]
        pool = WorkerPool(2, retry=FAST_RETRY)
        assert pool.map(_oom_in_worker, payloads) == serial
        assert pool.recovered >= 1

    def test_injected_crash_on_real_job_matches_serial(self):
        payloads = mc_payloads()
        serial = WorkerPool(1).map(run_monte_carlo_shard, payloads)
        plan = FaultPlan(seed=3).inject("pool.shard", "crash",
                                        indices=(2,))
        pool = WorkerPool(3, retry=FAST_RETRY, fault_plan=plan)
        assert pool.map(run_monte_carlo_shard, payloads) == serial
        assert pool.recovered >= 1

    def test_stuck_worker_bounded_by_deadline(self):
        payloads = [(i, i) for i in range(4)]
        serial = [value - 1 for _i, value in payloads]
        pool = WorkerPool(2, retry=FAST_RETRY)
        start = time.monotonic()
        assert pool.map(_slow_shard, payloads, timeout=1.0) == serial
        # Far below the 30s sleep: the deadline abandoned the shard
        # and the parent recovered it serially.
        assert time.monotonic() - start < 10.0
        assert pool.recovered >= 1


class TestTransientRetry:
    def test_serial_io_error_retried_in_place(self):
        payloads = mc_payloads(shards=4)
        baseline = WorkerPool(1).map(run_monte_carlo_shard, payloads)
        plan = FaultPlan(seed=1).inject("pool.shard", "io_error",
                                        indices=(1,))
        pool = WorkerPool(1, retry=FAST_RETRY, fault_plan=plan)
        assert pool.map(run_monte_carlo_shard, payloads) == baseline
        assert pool.retries == 1
        assert plan.fired("pool.shard") == 1

    def test_serial_crash_retried_in_place(self):
        # In-process (serial) execution turns a crash fault into an
        # InjectedCrash exception, which the retry budget absorbs.
        payloads = mc_payloads(shards=3)
        baseline = WorkerPool(1).map(run_monte_carlo_shard, payloads)
        plan = FaultPlan(seed=2).inject("pool.shard", "crash",
                                        indices=(0,))
        pool = WorkerPool(1, retry=FAST_RETRY, fault_plan=plan)
        assert pool.map(run_monte_carlo_shard, payloads) == baseline
        assert pool.retries == 1

    def test_latency_fault_only_delays(self):
        payloads = mc_payloads(shards=3)
        baseline = WorkerPool(1).map(run_monte_carlo_shard, payloads)
        plan = FaultPlan().inject("pool.shard", "latency",
                                  latency_s=0.01, times=None)
        pool = WorkerPool(1, retry=FAST_RETRY, fault_plan=plan)
        assert pool.map(run_monte_carlo_shard, payloads) == baseline
        assert pool.retries == 0
        assert plan.fired("pool.shard") == 3

    def test_retry_budget_exhaustion_propagates(self):
        payloads = mc_payloads(shards=2)
        plan = FaultPlan().inject("pool.shard", "io_error", times=None,
                                  indices=(0,))
        pool = WorkerPool(1,
                          retry=RetryPolicy(max_attempts=2,
                                            base_delay=0.0, jitter=0.0),
                          fault_plan=plan)
        # Retries run with injection disabled, so even an always-on
        # spec cannot defeat the budget: shard 0 recovers on retry.
        assert pool.map(run_monte_carlo_shard, payloads) == \
            WorkerPool(1).map(run_monte_carlo_shard, payloads)

    def test_deterministic_errors_never_retried(self):
        tree = small_tree()
        from repro.engine.pool import run_quantify_chunk
        payloads = [(tree, None, "no_such_method",
                     ConstraintPolicy.INDEPENDENT, [(0, {})])]
        pool = WorkerPool(1, retry=FAST_RETRY)
        with pytest.raises(QuantificationError):
            pool.map(run_quantify_chunk, payloads)
        assert pool.retries == 0
