"""The site × kind chaos matrix, driven through a full Engine workload.

For every fault site the engine touches and every fault kind, the same
workload must produce results **identical** to the fault-free run —
either through bit-identical recovery (pool retries, cache put-retry)
or through honest degradation (cache reads as a miss, the value is
recomputed).  The stats must confess every injected fault.

``serve.stream`` is exercised end-to-end in ``test_serve_chaos``; this
matrix covers the four engine-side sites.
"""

import pytest

from repro.engine import Engine, MonteCarloJob, QuantifyJob, SqliteCache
from repro.fta import FaultTree
from repro.fta.dsl import AND, hazard, primary
from repro.resilience import KINDS, FaultPlan, RetryPolicy

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)

ENGINE_SITES = ("pool.shard", "cache.get", "cache.put", "payload.decode")

#: ``truncate`` only has meaning where bytes move (the payload-decode
#: pulse); at the other sites the spec is registered but never due.
def _can_fire(site, kind):
    return kind != "truncate" or site == "payload.decode"


def build_tree():
    return FaultTree(hazard("H", OR_gate=[
        AND("AB", primary("A", 0.1), primary("B", 0.2)),
        primary("C", 0.05)]))


def run_workload(tmp_path, plan=None):
    """Two passes of quantify + sharded Monte-Carlo over sqlite cache.

    The second pass replays every job against the cache so the read
    path (``cache.get`` and the ``payload.decode`` pulse) is hot.
    """
    cache = SqliteCache(str(tmp_path / "matrix.db"))
    engine = Engine(workers=1, cache=cache, fault_plan=plan,
                    retry=FAST_RETRY)
    results = []
    for _ in range(2):
        results.append(engine.run(QuantifyJob(build_tree())))
        results.append(engine.run(MonteCarloJob(
            build_tree(), samples=1500, seed=3, shards=2)))
    stats = engine.stats()
    cache.close()
    return results, stats


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    results, stats = run_workload(tmp_path_factory.mktemp("baseline"))
    assert stats.faults_injected == 0
    return results


@pytest.mark.parametrize(
    "site,kind",
    [(site, kind) for site in ENGINE_SITES for kind in KINDS])
def test_results_identical_under_fault(site, kind, tmp_path, baseline):
    options = {"times": 1}
    if kind == "latency":
        options["latency_s"] = 0.01
    if kind == "truncate":
        options["keep_bytes"] = 5
    plan = FaultPlan(seed=11).inject(site, kind, **options)

    results, stats = run_workload(tmp_path, plan)

    assert results == baseline, (
        f"{kind} at {site} changed the workload results")
    assert stats.faults_injected == plan.total_fired
    if _can_fire(site, kind):
        assert plan.fired(site) >= 1, (
            f"{kind} at {site} never fired — the matrix case is vacuous")
        if kind in ("crash", "io_error"):
            # A raised fault must leave a trace: a retry, a recovered
            # shard, or a degraded cache operation.
            assert stats.retries + stats.recovered + stats.degraded >= 1


def test_combined_plan_all_sites_at_once(tmp_path, baseline):
    plan = (FaultPlan(seed=23)
            .inject("pool.shard", "crash", indices=(1,))
            .inject("cache.put", "io_error", times=1)
            .inject("cache.get", "io_error", times=1, after=1)
            .inject("payload.decode", "truncate", times=1, keep_bytes=3))
    results, stats = run_workload(tmp_path, plan)
    assert results == baseline
    assert plan.total_fired >= 3
    assert stats.faults_injected == plan.total_fired


def test_rate_based_storm_still_correct(tmp_path, baseline):
    # A seeded Bernoulli storm across both cache sites: whatever
    # subset of calls the seed picks, results never change.
    plan = (FaultPlan(seed=41)
            .inject("cache.get", "io_error", rate=0.5, times=None)
            .inject("cache.put", "io_error", rate=0.5, times=None))
    results, stats = run_workload(tmp_path, plan)
    assert results == baseline
    assert stats.faults_injected == plan.total_fired
