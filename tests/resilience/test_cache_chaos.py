"""Cache chaos: the degradation chain under injected and real faults.

Contract: a failing cache never fails a job and never returns a wrong
value.  Reads degrade to misses, writes degrade to retry → in-memory
fallback, and every degradation is visible in the stats.
"""

import os

import pytest

from repro.engine import ResultCache, SqliteCache
from repro.engine.cache import MISS
from repro.errors import EngineError
from repro.resilience import FaultPlan


class TestResultCacheFaults:
    def test_get_fault_reads_as_miss(self):
        cache = ResultCache()
        cache.put("k", 42)
        plan = FaultPlan().inject("cache.get", "io_error", times=1)
        cache.set_fault_plan(plan)
        assert cache.get("k") is MISS
        assert cache.get("k") == 42  # fault window exhausted
        assert cache.stats.degraded == 1
        assert cache.stats.misses == 1

    def test_put_fault_drops_write_silently(self):
        cache = ResultCache()
        plan = FaultPlan().inject("cache.put", "io_error", times=1)
        cache.set_fault_plan(plan)
        cache.put("k", 42)
        assert cache.peek("k") is MISS
        assert cache.stats.degraded == 1
        cache.put("k", 42)
        assert cache.get("k") == 42


class TestSqliteGetFaults:
    def test_get_fault_resets_store_and_recovers(self, tmp_path):
        cache = SqliteCache(str(tmp_path / "c.db"))
        cache.put("k", [1, 2, 3])
        plan = FaultPlan().inject("cache.get", "io_error", times=1)
        cache.set_fault_plan(plan)
        # The failed lookup reads as a miss; the reset wipes the store.
        assert cache.get("k") is MISS
        assert cache.stats.degraded == 1
        assert not cache.degraded_mode
        cache.put("k", [1, 2, 3])
        assert cache.get("k") == [1, 2, 3]
        cache.close()

    def test_truncated_payload_drops_entry_only(self, tmp_path):
        cache = SqliteCache(str(tmp_path / "c.db"))
        cache.put("bad", list(range(64)))
        cache.put("good", "intact")
        plan = FaultPlan().inject("payload.decode", "truncate",
                                  indices=(0,), keep_bytes=4)
        cache.set_fault_plan(plan)
        # The mangled entry is dropped — a corrupt *entry*, not a
        # corrupt store, so the healthy entry survives untouched.
        assert cache.get("bad") is MISS
        assert cache.stats.degraded == 1
        assert cache.get("good") == "intact"
        assert cache.get("bad") is MISS
        cache.close()

    def test_real_mid_operation_corruption(self, tmp_path):
        path = str(tmp_path / "c.db")
        cache = SqliteCache(path)
        cache.put("k", list(range(5000)))
        cache.close()
        # Smash pages past the header: the file still opens, but the
        # row lookup hits the corrupt page mid-operation.
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(min(4096, size // 2))
            handle.write(b"\xff" * 4096)
        reopened = SqliteCache(path)
        assert reopened.get("k") is MISS
        assert reopened.stats.degraded >= 1
        # The quarantine + reinit left a healthy store behind.
        reopened.put("k2", "fresh")
        assert reopened.get("k2") == "fresh"
        assert not reopened.degraded_mode
        reopened.close()


class TestSqlitePutFaults:
    def test_put_fault_retries_once_and_lands(self, tmp_path):
        cache = SqliteCache(str(tmp_path / "c.db"))
        plan = FaultPlan().inject("cache.put", "io_error", times=1)
        cache.set_fault_plan(plan)
        cache.put("k", {"a": 1})
        assert cache.stats.retries == 1
        assert cache.stats.degraded == 1
        # The retry wrote through to the (reset) persistent store.
        assert cache.get("k") == {"a": 1}
        assert not cache.degraded_mode
        cache.close()

    def test_put_fault_with_dead_store_falls_back_to_memory(
            self, tmp_path):
        import shutil
        directory = tmp_path / "store"
        cache = SqliteCache(str(directory / "c.db"))
        plan = FaultPlan().inject("cache.put", "io_error", times=None)
        cache.set_fault_plan(plan)
        shutil.rmtree(str(directory))  # reset can no longer reinit
        cache.put("k", 7)
        # The write survived in memory even though the store is gone.
        assert cache.get("k") == 7
        assert cache.degraded_mode
        cache.close()


class TestPermanentDegradation:
    def _degrade(self, tmp_path):
        cache = SqliteCache(str(tmp_path / "c.db"))
        plan = FaultPlan().inject("cache.get", "io_error", times=None)
        cache.set_fault_plan(plan)
        for _ in range(cache._MAX_STORE_FAILURES):
            assert cache.get("k") is MISS
        assert cache.degraded_mode
        return cache

    def test_three_consecutive_failures_degrade_permanently(
            self, tmp_path):
        cache = self._degrade(tmp_path)
        # Further reads no longer touch the store at all.
        calls_before = cache._plan.calls("cache.get")
        assert cache.get("k") is MISS
        assert cache._plan.calls("cache.get") == calls_before
        cache.close()

    def test_degraded_cache_still_serves_from_memory(self, tmp_path):
        cache = self._degrade(tmp_path)
        cache.put("k", "memory-only")
        assert cache.get("k") == "memory-only"
        assert "k" in cache
        cache.close()

    def test_degraded_mode_is_honest_in_stats(self, tmp_path):
        cache = self._degrade(tmp_path)
        info = cache.info()
        assert info["degraded_mode"] is True
        assert cache.stats.degraded >= cache._MAX_STORE_FAILURES
        assert "degraded" in cache.stats.as_dict()
        cache.close()

    def test_degraded_save_and_load_refuse_quietly(self, tmp_path):
        cache = self._degrade(tmp_path)
        cache.put("k", 1)
        assert cache.save(str(tmp_path / "snap.json")) == 0
        with pytest.raises(EngineError):
            cache.load(str(tmp_path / "snap.json"))
        cache.close()


class TestHealthySuppression:
    def test_no_plan_means_zero_overhead_paths(self, tmp_path):
        cache = SqliteCache(str(tmp_path / "c.db"))
        cache.put("k", 1)
        assert cache.get("k") == 1
        assert cache.stats.degraded == 0
        assert cache.stats.retries == 0
        assert cache.info()["degraded_mode"] is False
        cache.close()

    def test_success_resets_consecutive_failure_count(self, tmp_path):
        cache = SqliteCache(str(tmp_path / "c.db"))
        # Two failures, a success, two more failures: never reaches
        # the permanent-degradation threshold of three *consecutive*.
        plan = FaultPlan().inject("cache.get", "io_error",
                                  indices=(0, 1, 3, 4))
        cache.set_fault_plan(plan)
        for _ in range(2):
            assert cache.get("k") is MISS
        assert cache.get("k") is MISS  # healthy miss resets the count
        for _ in range(2):
            assert cache.get("k") is MISS
        assert not cache.degraded_mode
        cache.close()
