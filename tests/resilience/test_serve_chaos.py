"""Serve chaos: cut streams, unavailable servers, back-pressure,
deadline propagation, and signal-driven shutdown.

Contract: the client either returns results identical to an
undisturbed run (replay over the content-addressed cache) or raises a
typed error in bounded time.  No hangs, no silent wrong answers.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.engine import job_from_spec
from repro.errors import ServeError, ServeUnavailableError
from repro.resilience import CircuitBreaker, FaultPlan, RetryPolicy
from repro.serve import RiskServer, ServeClient, ServerConfig

QUANTIFY = {"type": "quantify", "tree": "corridor", "method": "exact"}
MONTECARLO = {"type": "montecarlo", "tree": "corridor",
              "samples": 50_000, "seed": 7}

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


def start_server(fault_plan=None, **overrides):
    config = dict(port=0, workers=1, max_concurrency=2, queue_limit=4,
                  request_timeout=30.0, fault_plan=fault_plan)
    config.update(overrides)
    return RiskServer(ServerConfig(**config)).start()


@pytest.fixture
def baseline_results():
    instance = start_server()
    try:
        with ServeClient(instance.host, instance.port,
                         timeout=30.0) as client:
            results = client.results([QUANTIFY, MONTECARLO])
        return [(r["index"], r["result"]) for r in results]
    finally:
        instance.shutdown(drain=True, timeout=10.0)


class TestStreamFaults:
    @pytest.mark.parametrize("kind,options", [
        ("truncate", {"keep_bytes": 10}),
        ("io_error", {}),
        ("crash", {}),
    ])
    def test_cut_stream_replays_bit_identical(self, kind, options,
                                              baseline_results):
        # Fire on the second event of the first stream: the client
        # sees a torn response and replays; the replay is served from
        # the content-addressed cache and matches the clean run.
        plan = FaultPlan(seed=5).inject("serve.stream", kind,
                                        indices=(1,), **options)
        instance = start_server(fault_plan=plan)
        try:
            with ServeClient(instance.host, instance.port,
                             timeout=30.0, retry=FAST_RETRY) as client:
                results = client.results([QUANTIFY, MONTECARLO],
                                         replays=2)
                assert [(r["index"], r["result"]) for r in results] \
                    == baseline_results
                assert client.replays >= 1
            assert plan.fired("serve.stream") >= 1
            payload = instance.stats_payload()
            assert payload["resilience"]["faults_injected"] >= 1
        finally:
            instance.shutdown(drain=True, timeout=10.0)

    def test_latency_fault_only_slows_the_stream(self, baseline_results):
        plan = FaultPlan().inject("serve.stream", "latency",
                                  latency_s=0.01, times=2)
        instance = start_server(fault_plan=plan)
        try:
            with ServeClient(instance.host, instance.port,
                             timeout=30.0) as client:
                results = client.results([QUANTIFY, MONTECARLO])
                assert [(r["index"], r["result"]) for r in results] \
                    == baseline_results
                assert client.replays == 0
        finally:
            instance.shutdown(drain=True, timeout=10.0)

    def test_replay_budget_exhaustion_is_a_typed_error(self):
        # Every stream is cut: after the replay budget the client
        # reports the failure instead of hanging or fabricating data.
        plan = FaultPlan().inject("serve.stream", "io_error",
                                  times=None)
        instance = start_server(fault_plan=plan)
        try:
            with ServeClient(instance.host, instance.port,
                             timeout=10.0, retry=FAST_RETRY) as client:
                with pytest.raises(ServeError):
                    client.results([QUANTIFY], replays=1)
        finally:
            instance.shutdown(drain=True, timeout=10.0)


class TestUnavailableServer:
    def test_connection_refused_is_typed_and_bounded(self):
        with ServeClient("127.0.0.1", 1, timeout=1.0,
                         retry=FAST_RETRY) as client:
            start = time.monotonic()
            with pytest.raises(ServeUnavailableError):
                client.health()
            assert time.monotonic() - start < 5.0
            assert client.retries >= 1

    def test_open_breaker_fails_fast_without_connecting(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0)
        with ServeClient("127.0.0.1", 1, timeout=1.0,
                         retry=FAST_RETRY, breaker=breaker) as client:
            with pytest.raises(ServeUnavailableError):
                client.health()
            assert breaker.state == "open"
            start = time.monotonic()
            with pytest.raises(ServeUnavailableError):
                client.health()
            # No socket work at all: the breaker refused instantly.
            assert time.monotonic() - start < 0.5
            assert breaker.refused >= 1


class TestBackPressureRetry:
    def test_retry_after_back_pressure_clears(self):
        instance = start_server()
        try:
            for _ in range(instance.config.queue_limit):
                assert instance.try_admit()
            releaser = threading.Timer(0.5, lambda: [
                instance.release()
                for _ in range(instance.config.queue_limit)])
            releaser.start()
            try:
                with ServeClient(instance.host, instance.port,
                                 timeout=10.0, busy_retries=3,
                                 max_busy_wait=2.0) as client:
                    # The 429 carries Retry-After; the client waits it
                    # out and the retried submission succeeds.
                    results = client.results([QUANTIFY])
                    assert results[0]["result"] > 0.0
            finally:
                releaser.join()
        finally:
            instance.shutdown(drain=True, timeout=10.0)

    def test_busy_budget_exhausted_raises_429(self):
        instance = start_server()
        try:
            for _ in range(instance.config.queue_limit):
                assert instance.try_admit()
            try:
                with ServeClient(instance.host, instance.port,
                                 timeout=5.0, busy_retries=1,
                                 max_busy_wait=0.2) as client:
                    start = time.monotonic()
                    with pytest.raises(ServeError) as excinfo:
                        client.submit([QUANTIFY])
                    assert excinfo.value.status == 429
                    assert time.monotonic() - start < 5.0
            finally:
                for _ in range(instance.config.queue_limit):
                    instance.release()
        finally:
            instance.shutdown(drain=True, timeout=10.0)


class TestDeadlinePropagation:
    def test_expired_deadline_is_an_error_event_not_a_hang(self):
        instance = start_server()
        try:
            events = []
            instance.process_jobs([job_from_spec(QUANTIFY)],
                                  events.append,
                                  deadline=time.monotonic() - 1.0)
            errors = [e for e in events if e["event"] == "error"]
            assert len(errors) == 1
            assert "deadline exceeded" in errors[0]["error"]
        finally:
            instance.shutdown(drain=True, timeout=10.0)

    def test_header_bounds_the_slot_wait(self):
        # request_timeout is 30 s; the client budget of 1 s must win.
        instance = start_server(max_concurrency=1)
        try:
            assert instance._slots.acquire(timeout=1.0)
            conn = HTTPConnection(instance.host, instance.port,
                                  timeout=10.0)
            try:
                start = time.monotonic()
                conn.request("POST", "/jobs",
                             body=json.dumps({"jobs": [QUANTIFY]}),
                             headers={"Content-Type": "application/json",
                                      "X-Repro-Timeout": "1.0"})
                body = conn.getresponse().read().decode()
                elapsed = time.monotonic() - start
            finally:
                conn.close()
                instance._slots.release()
            assert elapsed < 8.0
            assert "error" in body and "compute slot" in body
        finally:
            instance.shutdown(drain=True, timeout=10.0)


_SIGNAL_SCRIPT = """
import sys, time
from repro.serve import RiskServer, ServerConfig

server = RiskServer(ServerConfig(port=0, workers=1)).start()
server.install_signal_handlers()
print(server.port, flush=True)
while not server._shut_down:
    time.sleep(0.05)
print("CLEAN", flush=True)
"""


class TestSignalShutdown:
    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_signal_triggers_draining_shutdown(self, signum):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [p for p in (env.get("PYTHONPATH"), "src") if p])
        proc = subprocess.Popen(
            [sys.executable, "-c", _SIGNAL_SCRIPT],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, cwd=os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__)))),
            text=True)
        try:
            port = int(proc.stdout.readline())
            # The server is live before the signal...
            with ServeClient("127.0.0.1", port, timeout=10.0) as client:
                assert client.health()["status"] == "ok"
            proc.send_signal(signum)
            out, err = proc.communicate(timeout=15.0)
        except BaseException:
            proc.kill()
            proc.wait()
            raise
        assert proc.returncode == 0, err
        assert "CLEAN" in out
