"""FaultPlan semantics: determinism, trigger rules, serialization."""

import json
import pickle

import pytest

from repro.errors import ResilienceError
from repro.resilience import (
    KINDS,
    SITES,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    load_fault_plan,
)


class TestFaultSpec:
    def test_rejects_unknown_site(self):
        with pytest.raises(ResilienceError):
            FaultSpec(site="nope", kind="io_error")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ResilienceError):
            FaultSpec(site="cache.get", kind="explode")

    def test_rejects_bad_times_after_rate(self):
        with pytest.raises(ResilienceError):
            FaultSpec(site="cache.get", kind="io_error", times=0)
        with pytest.raises(ResilienceError):
            FaultSpec(site="cache.get", kind="io_error", after=-1)
        with pytest.raises(ResilienceError):
            FaultSpec(site="cache.get", kind="io_error", rate=1.5)

    def test_window_rule(self):
        spec = FaultSpec(site="cache.get", kind="io_error",
                         after=2, times=2)
        fires = [spec.triggers(0, i) for i in range(6)]
        assert fires == [False, False, True, True, False, False]

    def test_indices_rule_overrides_window(self):
        spec = FaultSpec(site="pool.shard", kind="crash",
                         indices=(1, 3))
        assert [spec.triggers(0, i) for i in range(5)] == \
            [False, True, False, True, False]

    def test_rate_rule_is_seed_deterministic(self):
        spec = FaultSpec(site="cache.get", kind="io_error", rate=0.5)
        draws_a = [spec.triggers(7, i) for i in range(64)]
        draws_b = [spec.triggers(7, i) for i in range(64)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)
        # A different seed gives a different (but still fixed) pattern.
        assert draws_a != [spec.triggers(8, i) for i in range(64)]


class TestFaultPlan:
    def test_no_specs_fire_nothing(self):
        plan = FaultPlan(seed=1)
        for site in SITES:
            plan.fire(site)
        assert plan.total_fired == 0
        assert plan.calls("cache.get") == 1

    def test_io_error_fires_and_counts(self):
        plan = FaultPlan().inject("cache.get", "io_error", times=1)
        with pytest.raises(InjectedFault):
            plan.fire("cache.get")
        plan.fire("cache.get")  # window exhausted
        assert plan.fired("cache.get") == 1
        assert plan.calls("cache.get") == 2

    def test_crash_raises_injected_crash_in_process(self):
        plan = FaultPlan().inject("pool.shard", "crash", indices=(0,))
        with pytest.raises(InjectedCrash):
            plan.fire("pool.shard", index=0)
        plan.fire("pool.shard", index=1)

    def test_injected_fault_is_an_oserror(self):
        # The whole design leans on this: real I/O handlers absorb
        # injected faults with no special-casing.
        assert issubclass(InjectedFault, OSError)
        assert issubclass(InjectedCrash, InjectedFault)

    def test_latency_sleeps_without_raising(self):
        plan = FaultPlan().inject("serve.stream", "latency",
                                  latency_s=0.0)
        plan.fire("serve.stream")
        assert plan.total_fired == 1

    def test_mangle_truncates(self):
        plan = FaultPlan().inject("payload.decode", "truncate",
                                  times=1, keep_bytes=3)
        assert plan.mangle("payload.decode", b"0123456789") == b"012"
        assert plan.mangle("payload.decode", b"0123456789") == \
            b"0123456789"

    def test_pulse_advances_once_per_call(self):
        # mangle+fire as separate calls would double-advance the site
        # counter; pulse is the combined injection point byte-moving
        # sites use.
        plan = FaultPlan() \
            .inject("serve.stream", "truncate", indices=(1,),
                    keep_bytes=2) \
            .inject("serve.stream", "io_error", indices=(2,))
        assert plan.pulse("serve.stream", b"abcdef") == b"abcdef"
        assert plan.pulse("serve.stream", b"abcdef") == b"ab"
        with pytest.raises(InjectedFault):
            plan.pulse("serve.stream", b"abcdef")
        assert plan.calls("serve.stream") == 3
        assert plan.fired("serve.stream") == 2

    def test_reset_counters_keeps_specs(self):
        plan = FaultPlan().inject("cache.put", "io_error", times=1)
        with pytest.raises(InjectedFault):
            plan.fire("cache.put")
        plan.reset_counters()
        with pytest.raises(InjectedFault):
            plan.fire("cache.put")

    def test_pickle_round_trip(self):
        plan = FaultPlan(seed=9).inject("pool.shard", "crash",
                                        indices=(2,))
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.seed == 9
        assert [s.as_dict() for s in clone.specs] == \
            [s.as_dict() for s in plan.specs]
        # The clone's counters are its own (per-process semantics).
        with pytest.raises(InjectedCrash):
            clone.fire("pool.shard", index=2)
        assert plan.total_fired == 0

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(seed=5) \
            .inject("cache.get", "io_error", times=2, after=1) \
            .inject("serve.stream", "truncate", keep_bytes=4) \
            .inject("pool.shard", "crash", indices=(0, 2)) \
            .inject("pool.shard", "latency", latency_s=0.5, rate=0.1)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.as_dict()))
        loaded = load_fault_plan(str(path))
        assert loaded.as_dict() == plan.as_dict()

    def test_load_rejects_malformed_plans(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{\"version\": 99}")
        with pytest.raises(ResilienceError):
            load_fault_plan(str(path))
        path.write_text("not json")
        with pytest.raises(ResilienceError):
            load_fault_plan(str(path))
        with pytest.raises(ResilienceError):
            FaultPlan.from_dict({"version": 1,
                                 "faults": [{"kind": "io_error"}]})

    def test_every_site_and_kind_is_registrable(self):
        plan = FaultPlan()
        for site in SITES:
            for kind in KINDS:
                plan.inject(site, kind)
        assert len(plan.specs) == len(SITES) * len(KINDS)
