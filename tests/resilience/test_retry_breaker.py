"""RetryPolicy backoff math and CircuitBreaker state machine."""

import pytest

from repro.errors import ResilienceError
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    NO_RETRY,
    OPEN,
    CircuitBreaker,
    RetryPolicy,
    call_with_retry,
)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ResilienceError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ResilienceError):
            RetryPolicy(jitter=2.0)

    def test_exponential_capped(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.4)
        assert policy.delay(3) == pytest.approx(0.5)  # capped
        assert policy.delay(9) == pytest.approx(0.5)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=1.0, jitter=0.25)
        delays = [policy.delay(0, key=f"k{i}") for i in range(32)]
        assert delays == [policy.delay(0, key=f"k{i}")
                          for i in range(32)]
        assert all(0.75 <= d < 1.25 for d in delays)
        assert len(set(delays)) > 1  # different keys spread out

    def test_no_retry_constant(self):
        assert NO_RETRY.max_attempts == 1
        assert NO_RETRY.retries == 0

    def test_call_with_retry_recovers(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        seen = []
        result = call_with_retry(
            flaky, policy, (OSError,),
            on_retry=lambda attempt, exc: seen.append(attempt))
        assert result == "ok"
        assert len(calls) == 3
        assert seen == [0, 1]

    def test_call_with_retry_budget_exhausted(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        with pytest.raises(OSError):
            call_with_retry(lambda: (_ for _ in ()).throw(OSError("x")),
                            policy, (OSError,))

    def test_non_transient_propagates_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("deterministic")

        policy = RetryPolicy(max_attempts=5, base_delay=0.0, jitter=0.0)
        with pytest.raises(ValueError):
            call_with_retry(broken, policy, (OSError,))
        assert len(calls) == 1


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ResilienceError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ResilienceError):
            CircuitBreaker(reset_timeout=0)

    def test_trips_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=_Clock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1
        assert not breaker.allow()
        assert breaker.refused == 1

    def test_half_open_probe_success_closes(self):
        clock = _Clock()
        breaker = CircuitBreaker(failure_threshold=1,
                                 reset_timeout=10.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.now = 10.0
        assert breaker.state == HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock = _Clock()
        breaker = CircuitBreaker(failure_threshold=5,
                                 reset_timeout=1.0, clock=clock)
        for _ in range(5):
            breaker.record_failure()
        clock.now = 1.0
        assert breaker.state == HALF_OPEN
        breaker.record_failure()  # failed probe re-opens immediately
        assert breaker.state == OPEN
        assert breaker.trips == 2
        clock.now = 1.5
        assert not breaker.allow()

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=_Clock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_reset_forces_closed(self):
        clock = _Clock()
        breaker = CircuitBreaker(failure_threshold=1, clock=clock)
        breaker.record_failure()
        assert breaker.state == OPEN
        breaker.reset()
        assert breaker.state == CLOSED
        assert breaker.allow()
