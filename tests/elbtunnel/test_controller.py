"""Height-control state machine: arming, timers, variants."""

import pytest

from repro.elbtunnel import DesignVariant, HeightControl, Lane
from repro.errors import SimulationError


def make(variant=DesignVariant.WITHOUT_LB4, t1=30.0, t2=30.0):
    return HeightControl(t1, t2, variant, lb_passage_time=0.3)


class TestArming:
    def test_initially_disarmed(self):
        hc = make()
        assert not hc.lbpost_armed(0.0)
        assert not hc.odfinal_armed(0.0)

    def test_lbpre_arms_lbpost_for_timer1(self):
        hc = make(t1=30.0)
        hc.lbpre_triggered(10.0)
        assert hc.lbpost_armed(10.0)
        assert hc.lbpost_armed(40.0)
        assert not hc.lbpost_armed(40.1)

    def test_lbpost_arms_odfinal_for_timer2(self):
        hc = make(t2=15.6)
        hc.lbpre_triggered(0.0)
        hc.lbpost_triggered(5.0, Lane.RIGHT)
        assert hc.odfinal_armed(5.0)
        assert hc.odfinal_armed(20.6)
        assert not hc.odfinal_armed(20.7)

    def test_lbpost_ignored_when_disarmed(self):
        """The paper's timer-1 rationale: LBpost off after expiry, so a
        spurious LBpre trigger cannot arm ODfinal forever."""
        hc = make(t1=30.0)
        hc.lbpre_triggered(0.0)
        assert hc.lbpost_triggered(31.0, Lane.RIGHT) is None
        assert not hc.odfinal_armed(31.0)

    def test_rearming_extends_window(self):
        hc = make(t1=10.0)
        hc.lbpre_triggered(0.0)
        hc.lbpre_triggered(8.0)
        assert hc.lbpost_armed(17.0)


class TestAlarms:
    def test_left_lane_with_odleft_raises_immediately(self):
        hc = make()
        hc.lbpre_triggered(0.0)
        alarm = hc.lbpost_triggered(5.0, Lane.LEFT, od_left_high=True)
        assert alarm is not None
        assert alarm.source == "od_left"

    def test_left_lane_without_odleft_confirmation_arms_odfinal(self):
        """OD left misses: no immediate stop, detection falls through."""
        hc = make()
        hc.lbpre_triggered(0.0)
        assert hc.lbpost_triggered(5.0, Lane.LEFT,
                                   od_left_high=False) is None
        assert hc.odfinal_armed(5.0)

    def test_odfinal_high_raises_while_armed(self):
        hc = make(t2=15.6)
        hc.lbpre_triggered(0.0)
        hc.lbpost_triggered(5.0, Lane.RIGHT)
        alarm = hc.odfinal_high(10.0)
        assert alarm is not None and alarm.source == "od_final"

    def test_odfinal_high_silent_when_disarmed(self):
        hc = make(t2=15.6)
        assert hc.odfinal_high(10.0) is None

    def test_alarms_recorded(self):
        hc = make()
        hc.lbpre_triggered(0.0)
        hc.lbpost_triggered(1.0, Lane.RIGHT)
        hc.odfinal_high(2.0)
        hc.odfinal_high(3.0)
        assert len(hc.alarms) == 2


class TestWithLB4:
    def test_lb4_disarms_when_zone_empties(self):
        """The paper's proposed fix: LB4 stops timer 2 once the OHV has
        entered tube 4 (with an OHV counter for zone 2)."""
        hc = make(DesignVariant.WITH_LB4, t2=30.0)
        hc.lbpre_triggered(0.0)
        hc.lbpost_triggered(5.0, Lane.RIGHT)
        assert hc.odfinal_armed(6.0)
        hc.lb4_triggered(9.0)   # OHV entered tube 4
        assert not hc.odfinal_armed(9.1)

    def test_counter_tracks_multiple_ohvs(self):
        hc = make(DesignVariant.WITH_LB4, t2=30.0)
        hc.lbpre_triggered(0.0)
        hc.lbpost_triggered(5.0, Lane.RIGHT)
        hc.lbpost_triggered(6.0, Lane.RIGHT)
        hc.lb4_triggered(9.0)
        assert hc.odfinal_armed(9.1)    # one OHV still in zone 2
        hc.lb4_triggered(10.0)
        assert not hc.odfinal_armed(10.1)

    def test_timer_still_bounds_window(self):
        hc = make(DesignVariant.WITH_LB4, t2=10.0)
        hc.lbpre_triggered(0.0)
        hc.lbpost_triggered(5.0, Lane.RIGHT)
        assert not hc.odfinal_armed(15.1)   # timer 2 expired anyway


class TestLBAtODfinal:
    def test_alarm_only_during_passage_window(self):
        hc = make(DesignVariant.LB_AT_ODFINAL, t2=30.0)
        hc.lbpre_triggered(0.0)
        hc.lbpost_triggered(5.0, Lane.RIGHT)
        # Armed, but no OHV passing the co-located light barrier.
        assert hc.odfinal_high(10.0) is None
        hc.lb4_triggered(12.0)   # OHV passes the LB at ODfinal
        assert hc.odfinal_high(12.1) is not None
        assert hc.odfinal_high(12.4) is None   # window (0.3 min) closed

    def test_still_requires_armed(self):
        hc = make(DesignVariant.LB_AT_ODFINAL, t2=30.0)
        hc.lb4_triggered(1.0)
        assert hc.odfinal_high(1.1) is None


class TestGuards:
    def test_rejects_nonpositive_timers(self):
        with pytest.raises(SimulationError):
            HeightControl(0.0, 10.0)
        with pytest.raises(SimulationError):
            HeightControl(10.0, -1.0)

    def test_rejects_time_regression(self):
        hc = make()
        hc.lbpre_triggered(10.0)
        with pytest.raises(SimulationError):
            hc.lbpre_triggered(5.0)


class TestSingleOhvAssumptionFlaw:
    """The pre-fix design flaw found by model checking (Sect. IV-A)."""

    def test_second_ohv_unsupervised_with_flaw(self):
        hc = HeightControl(30.0, 30.0, single_ohv_assumption=True)
        hc.lbpre_triggered(0.0)      # two OHVs enter together: one pulse
        hc.lbpost_triggered(4.0, Lane.RIGHT)     # first OHV detected
        # Supervision dropped: the second, wrong-headed OHV slips by.
        alarm = hc.lbpost_triggered(4.5, Lane.LEFT, od_left_high=True)
        assert alarm is None

    def test_fixed_design_catches_second_ohv(self):
        hc = HeightControl(30.0, 30.0, single_ohv_assumption=False)
        hc.lbpre_triggered(0.0)
        hc.lbpost_triggered(4.0, Lane.RIGHT)
        alarm = hc.lbpost_triggered(4.5, Lane.LEFT, od_left_high=True)
        assert alarm is not None

    def test_rearming_by_new_lbpre_pulse(self):
        """A separate LBpre pulse re-arms supervision even in the flawed
        design — the flaw needs *simultaneous* passage."""
        hc = HeightControl(30.0, 30.0, single_ohv_assumption=True)
        hc.lbpre_triggered(0.0)
        hc.lbpost_triggered(4.0, Lane.RIGHT)
        hc.lbpre_triggered(5.0)
        alarm = hc.lbpost_triggered(9.0, Lane.LEFT, od_left_high=True)
        assert alarm is not None
