"""Integrated PRA risk assessment of the design variants."""

import pytest

from repro.elbtunnel import (
    DesignVariant,
    ElbtunnelConfig,
    assess_variant,
    collision_event_tree,
    compare_variants,
)
from repro.errors import ModelError

CFG = ElbtunnelConfig()


class TestCollisionEventTree:
    def test_collision_requires_all_barriers_failing(self):
        tree = collision_event_tree(CFG, 19.0, 15.6,
                                    incorrect_ohv_rate_per_year=40.0)
        result = tree.evaluate()
        worst = result.dominant_sequence("collision")
        assert all(worst.failures)
        assert result.frequency_of("collision") + \
            result.frequency_of("stopped") == pytest.approx(40.0)

    def test_shorter_timers_raise_collision_frequency(self):
        short = collision_event_tree(CFG, 6.0, 6.0, 40.0).evaluate()
        long = collision_event_tree(CFG, 30.0, 30.0, 40.0).evaluate()
        assert short.frequency_of("collision") > \
            long.frequency_of("collision")


class TestAssessVariant:
    def test_false_alarm_rate_scales_with_fig6_probability(self):
        from repro.elbtunnel import correct_ohv_alarm_probability
        assessment = assess_variant(DesignVariant.WITHOUT_LB4)
        p_alarm = correct_ohv_alarm_probability(
            15.6, DesignVariant.WITHOUT_LB4)
        ohvs = (1.0 / 120.0) * 60 * 24 * 365 * 0.99
        assert assessment.false_alarms_per_year == pytest.approx(
            ohvs * p_alarm, rel=1e-9)

    def test_collision_chain_identical_across_variants(self):
        results = compare_variants()
        rates = {a.collisions_per_year for a in results.values()}
        assert len(rates) == 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(ModelError):
            assess_variant(DesignVariant.WITHOUT_LB4, p_incorrect=1.5)
        with pytest.raises(ModelError):
            assess_variant(DesignVariant.WITHOUT_LB4,
                           ohv_rate_per_minute=0.0)


class TestVariantComparison:
    def test_paper_verdict_ordering(self):
        """The design fixes reduce total risk in the paper's order."""
        results = compare_variants()
        without = results[DesignVariant.WITHOUT_LB4]
        with_lb4 = results[DesignVariant.WITH_LB4]
        lb_at = results[DesignVariant.LB_AT_ODFINAL]
        assert without.expected_cost_per_year > \
            with_lb4.expected_cost_per_year > \
            lb_at.expected_cost_per_year

    def test_false_alarms_dominate_cost_in_deployed_design(self):
        """With heavy OHV traffic the alarms, not collisions, drive the
        deployed design's cost — the paper's design-flaw finding in
        money terms."""
        assessment = compare_variants()[DesignVariant.WITHOUT_LB4]
        alarm_cost = assessment.false_alarms_per_year * \
            CFG.cost_false_alarm
        collision_cost = assessment.collisions_per_year * \
            CFG.cost_collision
        assert alarm_cost > collision_cost

    def test_improvement_factors(self):
        """LB at ODfinal cuts the yearly alarm count by ~20x vs the
        deployed design (87% -> 4% of OHVs)."""
        results = compare_variants()
        ratio = results[DesignVariant.WITHOUT_LB4].false_alarms_per_year \
            / results[DesignVariant.LB_AT_ODFINAL].false_alarms_per_year
        assert 15.0 < ratio < 30.0
