"""Elbtunnel configuration: published values and validation."""

import pytest

from repro.elbtunnel import DEFAULT_CONFIG, DesignVariant, ElbtunnelConfig
from repro.errors import ModelError


class TestPublishedValues:
    def test_driving_time_model(self):
        """Sect. IV-C: Normal with mu = 4 min, sigma = 2 min."""
        assert DEFAULT_CONFIG.transit_mean == 4.0
        assert DEFAULT_CONFIG.transit_std == 2.0

    def test_cost_ratio(self):
        """Sect. IV-C.1: collision = 100000 x false alarm."""
        assert DEFAULT_CONFIG.cost_collision / \
            DEFAULT_CONFIG.cost_false_alarm == 100_000.0

    def test_engineer_baseline(self):
        """Sect. IV-C.2: 'initial guesses of 30 minutes'."""
        assert DEFAULT_CONFIG.timer1_default == 30.0
        assert DEFAULT_CONFIG.timer2_default == 30.0


class TestValidation:
    def test_rejects_bad_transit(self):
        with pytest.raises(ModelError):
            ElbtunnelConfig(transit_mean=-1.0)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ModelError):
            ElbtunnelConfig(p_ohv_present=1.5)
        with pytest.raises(ModelError):
            ElbtunnelConfig(p_const1=-0.1)

    def test_rejects_negative_rates(self):
        with pytest.raises(ModelError):
            ElbtunnelConfig(hv_odfinal_rate=-0.1)

    def test_rejects_bad_timer_domain(self):
        with pytest.raises(ModelError):
            ElbtunnelConfig(timer_min=30.0, timer_max=5.0)


class TestVariants:
    def test_three_design_variants(self):
        assert {v.value for v in DesignVariant} == {
            "without_LB4", "with_LB4", "lb_at_odfinal"}

    def test_heavy_traffic_scales_hv_rate(self):
        heavy = DEFAULT_CONFIG.heavy_traffic()
        assert heavy.hv_odfinal_rate == DEFAULT_CONFIG.hv_odfinal_rate_heavy
        assert heavy.hv_odfinal_rate > DEFAULT_CONFIG.hv_odfinal_rate

    def test_with_rates_override(self):
        custom = DEFAULT_CONFIG.with_rates(p_ohv_present=0.01)
        assert custom.p_ohv_present == 0.01
        assert custom.transit_mean == DEFAULT_CONFIG.transit_mean
