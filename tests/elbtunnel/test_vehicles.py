"""Traffic generation: rates, routes, timelines."""

import pytest

from repro.elbtunnel import (
    Lane,
    Route,
    TrafficConfig,
    TrafficGenerator,
    VehicleType,
)
from repro.errors import SimulationError


class TestTrafficConfig:
    def test_rejects_bad_rates(self):
        with pytest.raises(SimulationError):
            TrafficConfig(ohv_rate=0.0)
        with pytest.raises(SimulationError):
            TrafficConfig(hv_odfinal_rate=-1.0)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(SimulationError):
            TrafficConfig(p_correct=1.5)


class TestOHVStream:
    def test_arrival_rate_approximation(self):
        config = TrafficConfig(ohv_rate=0.1)
        generator = TrafficGenerator(config, seed=1)
        vehicles = list(generator.ohvs_until(50_000.0))
        # Poisson: expect ~5000 arrivals, allow 5 sigma.
        assert 4650 <= len(vehicles) <= 5350

    def test_all_are_overhigh(self):
        generator = TrafficGenerator(TrafficConfig(), seed=2)
        for vehicle in generator.ohvs_until(10_000.0):
            assert vehicle.vtype is VehicleType.OVERHIGH

    def test_correct_fraction(self):
        config = TrafficConfig(ohv_rate=0.2, p_correct=0.8)
        generator = TrafficGenerator(config, seed=3)
        vehicles = list(generator.ohvs_until(50_000.0))
        fraction = sum(v.is_correct for v in vehicles) / len(vehicles)
        assert fraction == pytest.approx(0.8, abs=0.02)

    def test_arrivals_sorted_and_unique_ids(self):
        generator = TrafficGenerator(TrafficConfig(ohv_rate=0.5), seed=4)
        vehicles = list(generator.ohvs_until(1000.0))
        times = [v.arrival_time for v in vehicles]
        assert times == sorted(times)
        assert len({v.vehicle_id for v in vehicles}) == len(vehicles)

    def test_transit_times_positive_with_paper_mean(self):
        generator = TrafficGenerator(TrafficConfig(ohv_rate=0.5), seed=5)
        vehicles = list(generator.ohvs_until(20_000.0))
        zone1 = [v.zone1_time for v in vehicles]
        assert all(t >= 0.0 for t in zone1)
        mean = sum(zone1) / len(zone1)
        # Truncated Normal(4, 2) at 0 has mean ~4.05.
        assert mean == pytest.approx(4.05, abs=0.1)

    def test_deterministic_under_seed(self):
        a = list(TrafficGenerator(TrafficConfig(), seed=9)
                 .ohvs_until(5000.0))
        b = list(TrafficGenerator(TrafficConfig(), seed=9)
                 .ohvs_until(5000.0))
        assert [(v.arrival_time, v.route) for v in a] == \
            [(v.arrival_time, v.route) for v in b]


class TestRoutes:
    def test_timeline_ordering(self):
        generator = TrafficGenerator(TrafficConfig(), seed=6)
        for vehicle in generator.ohvs_until(10_000.0):
            assert vehicle.arrival_time < vehicle.time_at_lbpost \
                <= vehicle.time_at_odfinal

    def test_lane_and_odfinal_by_route(self):
        generator = TrafficGenerator(
            TrafficConfig(ohv_rate=0.5, p_correct=0.5), seed=7)
        seen = set()
        for vehicle in generator.ohvs_until(5000.0):
            seen.add(vehicle.route)
            if vehicle.route is Route.TUBE4:
                assert vehicle.lane_at_lbpost is Lane.RIGHT
                assert not vehicle.crosses_odfinal
            elif vehicle.route is Route.LEFT_AT_LBPOST:
                assert vehicle.lane_at_lbpost is Lane.LEFT
                assert vehicle.crosses_odfinal
            else:
                assert vehicle.lane_at_lbpost is Lane.RIGHT
                assert vehicle.crosses_odfinal
        assert seen == set(Route)


class TestHVStream:
    def test_rate_approximation(self):
        config = TrafficConfig(hv_odfinal_rate=0.13)
        generator = TrafficGenerator(config, seed=8)
        crossings = list(generator.hv_crossings_until(100_000.0))
        assert len(crossings) == pytest.approx(13_000, abs=500)

    def test_zero_rate_yields_nothing(self):
        config = TrafficConfig(hv_odfinal_rate=0.0)
        generator = TrafficGenerator(config, seed=8)
        assert list(generator.hv_crossings_until(1000.0)) == []
