"""Study artifacts: surfaces, checkpoints, report plumbing."""

import pytest

from repro.elbtunnel import fig5_surface, fig6_study
from repro.elbtunnel.study import Fig5Surface
from repro.errors import ModelError


class TestFig5Surface:
    def test_dimensions(self):
        surface = fig5_surface(points=5)
        assert len(surface.t1_values) == 5
        assert len(surface.t2_values) == 5
        assert len(surface.cost) == 5
        assert all(len(row) == 5 for row in surface.cost)

    def test_ranges_match_figure(self):
        surface = fig5_surface(points=5)
        assert surface.t1_values[0] == 15.0
        assert surface.t1_values[-1] == 20.0
        assert surface.t2_values[0] == 15.0
        assert surface.t2_values[-1] == 18.0

    def test_minimum_returns_grid_argmin(self):
        surface = Fig5Surface((1.0, 2.0), (3.0, 4.0),
                              ((5.0, 2.0), (3.0, 4.0)))
        assert surface.minimum() == (1.0, 4.0, 2.0)

    def test_minimum_breaks_ties_on_first_occurrence(self):
        """Regression: equal minima must resolve to the row-major first
        occurrence (smallest t1 index, then smallest t2 index)."""
        surface = Fig5Surface((1.0, 2.0, 3.0), (10.0, 20.0),
                              ((5.0, 2.0),
                               (2.0, 9.0),
                               (7.0, 2.0)))
        assert surface.minimum() == (1.0, 20.0, 2.0)

    def test_minimum_tie_within_one_row(self):
        surface = Fig5Surface((1.0,), (10.0, 20.0, 30.0),
                              ((4.0, 4.0, 4.0),))
        assert surface.minimum() == (1.0, 10.0, 4.0)

    def test_minimum_matches_exhaustive_scan_on_real_surface(self):
        surface = fig5_surface(points=7)
        best = min(
            ((t1, t2, surface.cost[i][j])
             for i, t1 in enumerate(surface.t1_values)
             for j, t2 in enumerate(surface.t2_values)),
            key=lambda item: item[2])
        assert surface.minimum() == best

    def test_custom_window(self):
        surface = fig5_surface(t1_range=(10.0, 12.0),
                               t2_range=(10.0, 12.0), points=3)
        assert surface.t1_values == (10.0, 11.0, 12.0)

    def test_rejects_single_point(self):
        with pytest.raises(ModelError):
            fig5_surface(points=1)


class TestFig6Study:
    def test_checkpoints_consistent_with_series(self):
        study = fig6_study()
        # The without_LB4 series at its largest plotted T2 approaches the
        # checkpoint values monotonically.
        curve = dict(study.series["without_LB4"])
        assert max(curve.values()) <= study.checkpoints.without_lb4_at_30

    def test_series_monotone_without_lb4(self):
        study = fig6_study()
        ys = [y for _x, y in study.series["without_LB4"]]
        assert all(b >= a for a, b in zip(ys, ys[1:]))

    def test_custom_optimal_t2(self):
        study = fig6_study(optimal_t2=10.0)
        base = fig6_study(optimal_t2=20.0)
        assert study.checkpoints.without_lb4_at_opt < \
            base.checkpoints.without_lb4_at_opt

    def test_simulation_check_is_opt_in(self):
        assert fig6_study().simulation is None


class TestFig6SimulationCheck:
    def test_batched_check_agrees_with_analytic(self):
        from repro.elbtunnel import DesignVariant
        study = fig6_study(simulation_replications=2,
                           simulation_days=20.0)
        check = study.simulation
        assert check is not None
        assert check.replications == 2
        assert set(check.measured) == {v.value for v in DesignVariant}
        for variant, (fraction, low, high, analytic) in \
                check.measured.items():
            assert 0.0 <= low <= fraction <= high <= 1.0
            # Sampling tolerance: the DES must track the analytic model
            # (pinned tightly in tests/elbtunnel/test_simulation.py).
            assert fraction == pytest.approx(analytic, abs=0.08), variant

    def test_summary_reports_every_variant(self):
        from repro.elbtunnel import DesignVariant, fig6_simulation_check
        check = fig6_simulation_check(replications=2, days=10.0)
        text = check.summary()
        for variant in DesignVariant:
            assert variant.value in text
        assert "analytic" in text and "measured" in text


class TestFullStudyObject:
    def test_full_study_components_consistent(self):
        from repro.elbtunnel import full_study
        study = full_study(method="coordinate")
        # The Fig. 5 grid minimum and the optimizer agree.
        t1, t2, cost = study.fig5.minimum()
        assert abs(t1 - study.optimum.optimum[0]) < 0.3
        assert abs(t2 - study.optimum.optimum[1]) < 0.2
        assert cost == pytest.approx(study.optimum.optimal_cost,
                                     rel=1e-4)
        # Fig. 6 checkpoints evaluated at the found optimum's T2.
        assert study.fig6.checkpoints.without_lb4_at_opt > 0.8

    def test_summary_is_single_screen(self):
        from repro.elbtunnel import full_study
        text = full_study().summary()
        assert 5 < len(text.splitlines()) < 20
