"""Analytic Elbtunnel model: paper formulas and monotonicities."""

import math

import pytest

from repro.elbtunnel import (
    COLLISION,
    FALSE_ALARM,
    DesignVariant,
    ElbtunnelConfig,
    build_safety_model,
    correct_ohv_alarm_probability,
    cost_function,
    fig6_series,
    transit_distribution,
)
from repro.elbtunnel.model import (
    collision_probability,
    false_alarm_probability,
    p_fd_lbpost,
    p_hv_odfinal,
    p_overtime_zone1,
    p_overtime_zone2,
)
from repro.errors import ModelError

CFG = ElbtunnelConfig()


class TestParameterizedProbabilities:
    def test_overtime_formula(self):
        """P(OT1)(T1) = 1 - P_OHV(Time <= T1) (Sect. IV-C)."""
        ot1 = p_overtime_zone1(CFG)
        transit = transit_distribution(CFG)
        for t in (5.0, 15.6, 19.0, 30.0):
            assert ot1({"T1": t}) == pytest.approx(1.0 - transit.cdf(t))

    def test_overtime_decreases_with_runtime(self):
        ot2 = p_overtime_zone2(CFG)
        values = [ot2({"T2": t}) for t in (5, 10, 20, 30)]
        assert values == sorted(values, reverse=True)

    def test_exposure_probabilities_increase_with_runtime(self):
        fd = p_fd_lbpost(CFG)
        hv = p_hv_odfinal(CFG)
        assert fd({"T1": 30.0}) > fd({"T1": 10.0})
        assert hv({"T2": 30.0}) > hv({"T2": 10.0})

    def test_overtime_negligible_at_baseline(self):
        """At T = 30 min the overtime risk is essentially zero
        (z = 13 sigma) — why the engineers' guess was 'safe'."""
        assert p_overtime_zone1(CFG)({"T1": 30.0}) < 1e-30


class TestHazardFormulas:
    def test_collision_formula_matches_paper(self):
        """P(HCol) = Pconst1 + P(OHVcrit)(P(OT1) + (1-P(OT1))P(OT2))."""
        col = collision_probability(CFG)
        ot1 = p_overtime_zone1(CFG)
        ot2 = p_overtime_zone2(CFG)
        for t1, t2 in ((10.0, 12.0), (19.0, 15.6), (30.0, 30.0)):
            values = {"T1": t1, "T2": t2}
            o1, o2 = ot1(values), ot2(values)
            expected = CFG.p_const1 + CFG.p_ohv_critical * (
                o1 + (1 - o1) * o2)
            assert col(values) == pytest.approx(expected, rel=1e-12)

    def test_false_alarm_formula_matches_paper(self):
        """P(HAlr) = Pconst2 + (P(OHV) + (1-P(OHV)) P(FDpre)
        P(FDpost)(T1)) * P(HV ODfinal)(T2)."""
        alr = false_alarm_probability(CFG)
        fd_post = p_fd_lbpost(CFG)
        hv = p_hv_odfinal(CFG)
        for t1, t2 in ((10.0, 12.0), (19.0, 15.6), (30.0, 30.0)):
            values = {"T1": t1, "T2": t2}
            armed = CFG.p_ohv_present + (1 - CFG.p_ohv_present) * \
                CFG.p_fd_lbpre * fd_post(values)
            expected = CFG.p_const2 + armed * hv(values)
            assert alr(values) == pytest.approx(expected, rel=1e-12)

    def test_hazards_move_in_opposite_directions(self):
        """Longer runtimes: collisions down, false alarms up."""
        col = collision_probability(CFG)
        alr = false_alarm_probability(CFG)
        short = {"T1": 8.0, "T2": 8.0}
        long = {"T1": 28.0, "T2": 28.0}
        assert col(short) > col(long)
        assert alr(short) < alr(long)


class TestCostFunction:
    def test_weighted_sum(self):
        f = cost_function(CFG)
        model = build_safety_model(CFG)
        for t1, t2 in ((19.0, 15.6), (30.0, 30.0)):
            probs = model.hazard_probabilities((t1, t2))
            expected = 100_000.0 * probs[COLLISION] + probs[FALSE_ALARM]
            assert f(t1, t2) == pytest.approx(expected, rel=1e-12)

    def test_interior_minimum_exists(self):
        """The cost rises towards both the short and long timer corners."""
        f = cost_function(CFG)
        mid = f(19.0, 15.6)
        assert f(6.0, 6.0) > mid
        assert f(30.0, 30.0) > mid


class TestFig6Variants:
    def test_without_lb4_closed_form(self):
        lam = CFG.hv_odfinal_rate_heavy
        assert correct_ohv_alarm_probability(
            15.6, DesignVariant.WITHOUT_LB4, CFG) == pytest.approx(
            1.0 - math.exp(-lam * 15.6))

    def test_variant_ordering(self):
        """without_LB4 > with_LB4 > lb_at_odfinal at every runtime."""
        for t2 in (8.0, 15.6, 25.0):
            without = correct_ohv_alarm_probability(
                t2, DesignVariant.WITHOUT_LB4, CFG)
            with_lb4 = correct_ohv_alarm_probability(
                t2, DesignVariant.WITH_LB4, CFG)
            lb_at = correct_ohv_alarm_probability(
                t2, DesignVariant.LB_AT_ODFINAL, CFG)
            assert without > with_lb4 > lb_at

    def test_with_lb4_saturates_in_t2(self):
        """Once T2 exceeds the transit time, LB4 caps the window: the
        curve flattens."""
        early = correct_ohv_alarm_probability(
            20.0, DesignVariant.WITH_LB4, CFG)
        late = correct_ohv_alarm_probability(
            25.0, DesignVariant.WITH_LB4, CFG)
        assert late - early < 1e-4

    def test_lb_at_odfinal_independent_of_t2(self):
        a = correct_ohv_alarm_probability(
            10.0, DesignVariant.LB_AT_ODFINAL, CFG)
        b = correct_ohv_alarm_probability(
            25.0, DesignVariant.LB_AT_ODFINAL, CFG)
        assert a == b

    def test_rejects_nonpositive_runtime(self):
        with pytest.raises(ModelError):
            correct_ohv_alarm_probability(0.0)

    def test_series_cover_all_variants(self):
        series = fig6_series(CFG, points=5)
        assert set(series) == {v.value for v in DesignVariant}
        for curve in series.values():
            assert len(curve) == 5
            assert curve[0][0] == 5.0
            assert curve[-1][0] == 25.0


class TestModelWiring:
    def test_hazard_names(self):
        model = build_safety_model(CFG)
        assert set(model.hazards) == {COLLISION, FALSE_ALARM}

    def test_parameter_names_and_defaults(self):
        model = build_safety_model(CFG)
        assert model.space.names == ("T1", "T2")
        assert model.space.defaults() == (30.0, 30.0)
