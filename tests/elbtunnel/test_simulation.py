"""Entrance simulation: hazard counting and analytic agreement."""

import pytest

from repro.elbtunnel import (
    COUNTER_FIELDS,
    DesignVariant,
    SimulationConfig,
    TrafficConfig,
    correct_ohv_alarm_probability,
    pool_results,
    simulate,
)
from repro.errors import SimulationError
from repro.stats.estimation import pooled_wilson_ci, wilson_ci

#: Correct-only OHV traffic in the heavy-HV environment of Fig. 6.
FIG6_TRAFFIC = TrafficConfig(ohv_rate=1 / 120.0, p_correct=1.0,
                             hv_odfinal_rate=0.13)


def run(variant, timer2=15.6, duration=60.0 * 24 * 120, seed=0,
        traffic=FIG6_TRAFFIC, **kwargs):
    config = SimulationConfig(duration=duration, timer1=30.0,
                              timer2=timer2, variant=variant,
                              traffic=traffic, seed=seed, **kwargs)
    return simulate(config)


class TestConfigValidation:
    def test_rejects_bad_duration(self):
        with pytest.raises(SimulationError):
            SimulationConfig(duration=0.0)

    def test_rejects_bad_timers(self):
        with pytest.raises(SimulationError):
            SimulationConfig(timer1=0.0)

    def test_rejects_bad_rates(self):
        with pytest.raises(SimulationError):
            SimulationConfig(fd_lbpre_rate=-1.0)
        with pytest.raises(SimulationError):
            SimulationConfig(od_miss_probability=2.0)


class TestCounters:
    def test_vehicle_counts_consistent(self):
        result = run(DesignVariant.WITHOUT_LB4, duration=60.0 * 24 * 30)
        assert result.ohvs_total == result.ohvs_correct + \
            result.ohvs_incorrect
        assert result.ohvs_correct > 0

    def test_alarm_counts_consistent(self):
        result = run(DesignVariant.WITHOUT_LB4, duration=60.0 * 24 * 30)
        assert result.alarms_total == result.false_alarms + \
            result.justified_alarms

    def test_deterministic_under_seed(self):
        a = run(DesignVariant.WITHOUT_LB4, duration=60.0 * 24 * 20, seed=5)
        b = run(DesignVariant.WITHOUT_LB4, duration=60.0 * 24 * 20, seed=5)
        assert a.false_alarms == b.false_alarms
        assert a.correct_ohvs_alarmed == b.correct_ohvs_alarmed


class TestFig6Agreement:
    @pytest.mark.parametrize("variant", list(DesignVariant),
                             ids=lambda v: v.value)
    def test_simulation_matches_analytic(self, variant):
        """The DES must reproduce the analytic Fig. 6 probabilities."""
        result = run(variant, duration=60.0 * 24 * 365, seed=42)
        analytic = correct_ohv_alarm_probability(15.6, variant)
        assert result.ohvs_correct > 3000
        # 4-sigma binomial tolerance plus a small modelling slack for
        # overlapping arming windows.
        sigma = (analytic * (1 - analytic) / result.ohvs_correct) ** 0.5
        tolerance = 4.0 * sigma + 0.02
        assert result.correct_ohv_alarm_fraction == pytest.approx(
            analytic, abs=tolerance)

    def test_longer_timer2_causes_more_false_alarms(self):
        short = run(DesignVariant.WITHOUT_LB4, timer2=8.0,
                    duration=60.0 * 24 * 120)
        long = run(DesignVariant.WITHOUT_LB4, timer2=28.0,
                   duration=60.0 * 24 * 120)
        assert long.correct_ohv_alarm_fraction > \
            short.correct_ohv_alarm_fraction

    def test_design_fix_ordering(self):
        """The paper's verdict: LB4 helps, LB at ODfinal helps most."""
        results = {variant: run(variant, duration=60.0 * 24 * 240)
                   for variant in DesignVariant}
        assert results[DesignVariant.WITHOUT_LB4] \
            .correct_ohv_alarm_fraction > \
            results[DesignVariant.WITH_LB4].correct_ohv_alarm_fraction > \
            results[DesignVariant.LB_AT_ODFINAL] \
            .correct_ohv_alarm_fraction


class TestCollisions:
    def test_no_collisions_with_perfect_sensors(self):
        """Incorrect OHVs are always caught when nothing fails."""
        traffic = TrafficConfig(ohv_rate=1 / 60.0, p_correct=0.5,
                                hv_odfinal_rate=0.0)
        result = run(DesignVariant.WITHOUT_LB4, traffic=traffic,
                     duration=60.0 * 24 * 60)
        assert result.ohvs_incorrect > 100
        assert result.collisions == 0

    def test_od_misses_cause_collisions(self):
        """With blind overhead detectors every wrong-headed OHV slips
        through — the single-point-of-failure finding of the FTA."""
        traffic = TrafficConfig(ohv_rate=1 / 60.0, p_correct=0.5,
                                hv_odfinal_rate=0.0)
        result = run(DesignVariant.WITHOUT_LB4, traffic=traffic,
                     duration=60.0 * 24 * 30, od_miss_probability=1.0)
        assert result.collisions == result.ohvs_incorrect > 0

    def test_partial_miss_rate_scales_collisions(self):
        traffic = TrafficConfig(ohv_rate=1 / 30.0, p_correct=0.5,
                                hv_odfinal_rate=0.0)
        result = run(DesignVariant.WITHOUT_LB4, traffic=traffic,
                     duration=60.0 * 24 * 60, od_miss_probability=0.3)
        fraction = result.collisions / result.ohvs_incorrect
        # Wrong-early OHVs need two misses (ODleft, then ODfinal when
        # they cross its area): 0.3^2 = 0.09.  Lane switchers need one:
        # 0.3.  At a 50/50 route split the expectation is ~0.195.
        assert 0.13 < fraction < 0.27

    def test_justified_alarms_for_incorrect_ohvs(self):
        traffic = TrafficConfig(ohv_rate=1 / 60.0, p_correct=0.5,
                                hv_odfinal_rate=0.0)
        result = run(DesignVariant.WITHOUT_LB4, traffic=traffic,
                     duration=60.0 * 24 * 30)
        assert result.justified_alarms > 0
        assert result.false_alarms == 0


class TestSpuriousDetections:
    def test_lbpre_fd_alone_is_harmless(self):
        """A false LBpre trigger arms LBpost but raises no alarm."""
        traffic = TrafficConfig(ohv_rate=1e-9, p_correct=1.0,
                                hv_odfinal_rate=0.0)
        result = run(DesignVariant.WITHOUT_LB4, traffic=traffic,
                     duration=60.0 * 24 * 30, fd_lbpre_rate=0.01)
        assert result.alarms_total == 0

    def test_fd_chain_plus_hv_causes_false_alarm(self):
        """The paper's constraint: both LBs false-detect AND an HV is
        misread at ODfinal."""
        traffic = TrafficConfig(ohv_rate=1e-9, p_correct=1.0,
                                hv_odfinal_rate=0.2)
        result = run(DesignVariant.WITHOUT_LB4, traffic=traffic,
                     duration=60.0 * 24 * 365,
                     fd_lbpre_rate=0.005, fd_lbpost_rate=0.005)
        assert result.false_alarms > 0
        assert result.ohvs_total == 0


class TestCounterRows:
    def test_counters_round_trip(self):
        from repro.elbtunnel import SimulationResult
        result = run(DesignVariant.WITHOUT_LB4, duration=60.0 * 24 * 5)
        row = result.counters()
        assert len(row) == len(COUNTER_FIELDS)
        rebuilt = SimulationResult.from_counters(result.duration, row)
        assert rebuilt == result

    def test_from_counters_rejects_wrong_width(self):
        from repro.elbtunnel import SimulationResult
        with pytest.raises(SimulationError):
            SimulationResult.from_counters(10.0, (1, 2, 3))


class TestPoolResults:
    def run_three(self):
        return [run(DesignVariant.WITHOUT_LB4, duration=60.0 * 24 * 10,
                    seed=seed) for seed in range(3)]

    def test_counters_are_summed(self):
        results = self.run_three()
        pooled = pool_results(results)
        assert pooled.replications == 3
        for name in COUNTER_FIELDS:
            assert getattr(pooled.result, name) == \
                sum(getattr(r, name) for r in results)
        assert pooled.result.duration == \
            sum(r.duration for r in results)

    def test_ci_matches_manual_pooling(self):
        """The pooled interval is pooled_wilson_ci over the raw counts —
        equivalently, one Wilson interval of the summed counts."""
        results = self.run_three()
        pooled = pool_results(results, confidence=0.9)
        counts = [(r.correct_ohvs_alarmed, r.ohvs_correct)
                  for r in results]
        assert pooled.alarm_ci == pooled_wilson_ci(counts, 0.9)[2]
        assert pooled.alarm_ci == wilson_ci(
            sum(c for c, _n in counts), sum(n for _c, n in counts), 0.9)

    def test_pooled_fraction_is_count_weighted(self):
        results = self.run_three()
        pooled = pool_results(results)
        expected = sum(r.correct_ohvs_alarmed for r in results) / \
            sum(r.ohvs_correct for r in results)
        assert pooled.correct_ohv_alarm_fraction == \
            pytest.approx(expected)

    def test_between_variance_matches_manual_formula(self):
        results = self.run_three()
        fractions = [r.correct_ohv_alarm_fraction for r in results]
        mean = sum(fractions) / 3
        expected = sum((f - mean) ** 2 for f in fractions) / 2
        assert pool_results(results).between_variance == \
            pytest.approx(expected)

    def test_single_result_pools_to_itself(self):
        result = run(DesignVariant.WITHOUT_LB4,
                     duration=60.0 * 24 * 10)
        pooled = pool_results([result])
        assert pooled.result == result
        assert pooled.between_variance == 0.0
        assert pooled.alarm_ci == result.correct_ohv_alarm_ci()

    def test_rejects_empty_input(self):
        with pytest.raises(SimulationError):
            pool_results([])

    def test_zero_data_replications_do_not_distort_statistics(self):
        """A replication without correct OHVs contributes its counters
        but neither a fake 0.0 fraction nor interval weight."""
        from repro.elbtunnel import SimulationResult
        informative = self.run_three()
        empty = SimulationResult(duration=10.0)
        with_empty = pool_results(informative + [empty])
        without = pool_results(informative)
        assert with_empty.alarm_ci == without.alarm_ci
        assert with_empty.between_variance == without.between_variance
        assert with_empty.replications == 4
        assert with_empty.result.duration == \
            without.result.duration + 10.0

    def test_rejects_batches_without_correct_ohvs(self):
        from repro.elbtunnel import SimulationResult
        with pytest.raises(SimulationError):
            pool_results([SimulationResult(duration=10.0)])


class TestSingleOhvAssumptionFlaw:
    """End-to-end reproduction of the two-OHV design flaw (Sect. IV-A)."""

    def test_flawed_design_causes_collisions(self):
        # The flaw needs a second OHV inside zone 1 when the first exits
        # (~18 % at this rate) AND ODfinal disarmed when the missed OHV
        # crosses — hence mostly-wrong traffic, all wrong-early, and a
        # short timer 2 so correct OHVs rarely mask the miss.
        traffic = TrafficConfig(ohv_rate=0.05, p_correct=0.1,
                                p_wrong_early=1.0, hv_odfinal_rate=0.0)
        flawed = SimulationConfig(
            duration=60.0 * 24 * 10, timer1=30.0, timer2=10.0,
            variant=DesignVariant.WITHOUT_LB4, traffic=traffic,
            seed=3, single_ohv_assumption=True)
        fixed = SimulationConfig(
            duration=60.0 * 24 * 10, timer1=30.0, timer2=10.0,
            variant=DesignVariant.WITHOUT_LB4, traffic=traffic,
            seed=3, single_ohv_assumption=False)
        flawed_result = simulate(flawed)
        fixed_result = simulate(fixed)
        assert fixed_result.collisions == 0
        assert flawed_result.collisions > 0
