"""Elbtunnel fault trees: cut sets and agreement with the closed forms."""

import pytest

from repro.elbtunnel import (
    ElbtunnelConfig,
    build_fault_tree_model,
    build_safety_model,
    collision_fault_tree,
    false_alarm_fault_tree,
    fig2_fault_tree,
)
from repro.elbtunnel.faulttrees import ODFINAL_ARMED, OHV_CRITICAL
from repro.fta import mocus

CFG = ElbtunnelConfig()


class TestFig2Tree:
    def test_all_cut_sets_are_single_points(self):
        """Sect. IV-B.2: 'almost all cut sets are single point of
        failures' — in the Fig. 2 expansion, all of them."""
        cut_sets = mocus(fig2_fault_tree())
        assert len(cut_sets) == 6
        assert all(cs.is_single_point for cs in cut_sets)

    def test_contains_paper_failures(self):
        names = mocus(fig2_fault_tree()).failure_names()
        assert {"OT1", "OT2", "MD_ODleft", "MD_ODfinal",
                "OHV ignores signal", "Signal out of order"} == names


class TestCollisionTree:
    def test_cut_sets_match_section_iv_b2(self):
        """MCS: {OT1}, {OT2} (guarded by OHV critical), plus Pconst1."""
        cut_sets = mocus(collision_fault_tree(CFG))
        by_failures = {frozenset(cs.failures): cs for cs in cut_sets}
        assert frozenset({"OT1"}) in by_failures
        assert frozenset({"OT2"}) in by_failures
        assert by_failures[frozenset({"OT1"})].conditions == \
            frozenset({OHV_CRITICAL})
        assert by_failures[frozenset({"OT2"})].conditions == \
            frozenset({OHV_CRITICAL})

    def test_condition_probability_from_config(self):
        tree = collision_fault_tree(CFG)
        assert tree.event(OHV_CRITICAL).probability == CFG.p_ohv_critical


class TestFalseAlarmTree:
    def test_dominating_cut_set_is_hv_odfinal(self):
        """Sect. IV-B.2: HV_ODfinal dominates the false alarm hazard."""
        cut_sets = mocus(false_alarm_fault_tree(CFG))
        guarded = [cs for cs in cut_sets
                   if cs.failures == frozenset({"HV_ODfinal"})]
        assert len(guarded) == 1
        assert guarded[0].conditions == frozenset({ODFINAL_ARMED})


class TestAgreementWithClosedForm:
    @pytest.fixture
    def formula_model(self):
        return build_safety_model(CFG)

    @pytest.mark.parametrize("point", [(30.0, 30.0), (19.0, 15.6),
                                       (12.0, 25.0)])
    def test_rare_event_matches_in_realistic_region(self, formula_model,
                                                    point):
        """For T >= 10 min all probabilities are tiny and the rare-event
        quantification agrees with the paper's closed forms."""
        tree_model = build_fault_tree_model(CFG, method="rare_event")
        assert tree_model.cost(point) == pytest.approx(
            formula_model.cost(point), rel=1e-4)

    @pytest.mark.parametrize("method", ["exact", "inclusion_exclusion"])
    @pytest.mark.parametrize("point", [(30.0, 30.0), (19.0, 15.6),
                                       (5.0, 5.0)])
    def test_exact_methods_match_everywhere(self, formula_model, method,
                                            point):
        """Exact quantification agrees with the closed form up to the
        top-level rare-event term the paper itself uses (~1e-5 rel)."""
        tree_model = build_fault_tree_model(CFG, method=method)
        assert tree_model.cost(point) == pytest.approx(
            formula_model.cost(point), rel=5e-5)

    def test_both_models_find_the_same_optimum(self, formula_model):
        from repro.core import SafetyOptimizer
        tree_result = SafetyOptimizer(
            build_fault_tree_model(CFG)).optimize("nelder_mead")
        formula_result = SafetyOptimizer(formula_model).optimize(
            "nelder_mead")
        assert tree_result.optimum[0] == pytest.approx(
            formula_result.optimum[0], abs=0.1)
        assert tree_result.optimum[1] == pytest.approx(
            formula_result.optimum[1], abs=0.1)


class TestCorridorTree:
    def test_structure_scales_with_sections(self):
        from repro.elbtunnel import corridor_fault_tree
        tree = corridor_fault_tree(sections=5)
        leaves = tree.primary_failures
        assert len(leaves) == 2 * 5 + 1  # per-section OHV + residual, shared

    def test_cut_sets_are_pairs_plus_residual_singletons(self):
        from repro.elbtunnel import corridor_fault_tree
        tree = corridor_fault_tree(sections=4)
        cuts = mocus(tree)
        pairs = [cs for cs in cuts if cs.order == 2]
        singles = cuts.single_points_of_failure
        assert len(pairs) == 4 and len(singles) == 4
        for cs in pairs:
            assert "Signal not shown" in cs.failures

    def test_bdd_route_agrees_and_quantifies(self):
        from repro.bdd import BDDManager, minimal_cut_sets, probability
        from repro.elbtunnel import corridor_fault_tree
        from repro.fta import hazard_probability, to_bdd
        tree = corridor_fault_tree(sections=6)
        manager = BDDManager()
        root = to_bdd(tree, manager)
        assert {cs.failures for cs in mocus(tree)} == \
            set(minimal_cut_sets(manager, root))
        from repro.fta.quantify import probability_map
        probs = probability_map(tree)
        exact = probability(manager, root, probs)
        assert exact == pytest.approx(
            hazard_probability(tree, method="exact"))
        # Rare-event approximation stays close for these probabilities.
        rare = hazard_probability(tree, method="rare_event")
        assert rare == pytest.approx(exact, rel=1e-2)
