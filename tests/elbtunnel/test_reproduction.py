"""THE paper-checkpoint tests: every number Sect. IV-C.2 reports.

These are the acceptance tests of the whole reproduction.  Tolerances are
set by how precisely the paper states each figure ("approximately 19",
"more than 80%", "about 10%").
"""

import pytest

from repro.elbtunnel import (
    COLLISION,
    FALSE_ALARM,
    build_safety_model,
    full_study,
    optimum_study,
)


@pytest.fixture(scope="module")
def study():
    return full_study()


class TestOptimalRuntimes:
    def test_timer1_approximately_19(self, study):
        """Paper: 'optimal parameters ... of approximately 19 ... minutes
        for timer 1'."""
        assert study.optimum.optimum[0] == pytest.approx(19.0, abs=0.5)

    def test_timer2_approximately_15_6(self, study):
        """Paper: '... resp. 15.6 minutes for ... timer 2'."""
        assert study.optimum.optimum[1] == pytest.approx(15.6, abs=0.5)

    def test_much_less_than_engineer_guess(self, study):
        """Paper: 'much less than the initial guesses of 30 minutes'."""
        assert study.optimum.optimum[0] < 25.0
        assert study.optimum.optimum[1] < 25.0

    def test_timer1_more_conservative_than_timer2(self, study):
        """Paper: 'timer 1 may be chosen more conservatively than
        timer 2' — the asymmetry of the optimum."""
        assert study.optimum.optimum[0] > study.optimum.optimum[1]


class TestRiskChanges:
    def test_false_alarm_improvement_about_10_percent(self, study):
        """Paper: 'an improvement of about 10% in false alarm risk'."""
        comparison = study.optimum.hazard_comparisons()[FALSE_ALARM]
        assert comparison.improvement_percent == pytest.approx(10.0,
                                                               abs=2.0)

    def test_collision_change_below_0_1_percent(self, study):
        """Paper: 'the risk for collision does not change (less than
        0.1%)'."""
        comparison = study.optimum.hazard_comparisons()[COLLISION]
        assert abs(comparison.relative_change) < 0.001


class TestFig5:
    def test_cost_near_minimum_matches_z_axis(self, study):
        """Fig. 5's z-axis shows ~0.0046-0.0047 around the minimum."""
        assert study.optimum.optimal_cost == pytest.approx(0.0046,
                                                           rel=0.05)

    def test_surface_minimum_in_figure_window(self, study):
        """Fig. 5 plots T1 in [15, 20], T2 in [15, 18] 'around the
        minimum' — the grid minimum must be interior to that window."""
        t1, t2, _cost = study.fig5.minimum()
        assert 15.0 < t1 < 20.0
        assert 15.0 < t2 < 18.0

    def test_surface_consistent_with_model(self, study):
        model = build_safety_model()
        surface = study.fig5
        assert surface.cost[0][0] == pytest.approx(
            model.cost((surface.t1_values[0], surface.t2_values[0])))


class TestFig6:
    def test_more_than_80_percent_at_optimum(self, study):
        """Paper: 'more than 80% of the correct driving OHVs will
        trigger an alarm' at the reduced runtime of 15.6 min."""
        assert study.fig6.checkpoints.without_lb4_at_opt > 0.80

    def test_more_than_95_percent_at_30(self, study):
        """Paper footnote 4: 'For a runtime of 30 minutes it is more
        than 95%'."""
        assert study.fig6.checkpoints.without_lb4_at_30 > 0.95

    def test_lb4_reduces_to_about_40_percent(self, study):
        """Paper: 'still ring the bell for a very high number (~40%)'."""
        assert study.fig6.checkpoints.with_lb4_at_opt == pytest.approx(
            0.40, abs=0.05)

    def test_lb_at_odfinal_about_4_percent(self, study):
        """Paper: 'would lower the false alarm rate to approx. 4%'."""
        assert study.fig6.checkpoints.lb_at_odfinal == pytest.approx(
            0.04, abs=0.01)

    def test_design_flaw_shape(self, study):
        """The design flaw: even the optimized deployed design alarms on
        most correct OHVs; the fixes change that qualitatively."""
        cp = study.fig6.checkpoints
        assert cp.without_lb4_at_opt > 2 * cp.with_lb4_at_opt
        assert cp.with_lb4_at_opt > 5 * cp.lb_at_odfinal


class TestMethodRobustness:
    @pytest.mark.parametrize("method", ["zoom", "nelder_mead",
                                        "coordinate"])
    def test_direct_search_methods_resolve_full_optimum(self, method):
        """Direct-search optimizers land on the paper's configuration in
        both coordinates."""
        result = optimum_study(method=method)
        assert result.optimum[0] == pytest.approx(19.0, abs=0.6)
        assert result.optimum[1] == pytest.approx(15.6, abs=0.6)

    @pytest.mark.parametrize("method", ["gradient", "scipy"])
    def test_derivative_methods_find_equivalent_cost(self, method):
        """Derivative-based methods nail T2 but stall along T1, whose
        slope is ~1e-10 (relative cost variation ~2e-8 — near machine
        noise); the cost they reach is indistinguishable from the true
        optimum, consistent with the paper's own observation that
        timer 1's setting barely matters."""
        result = optimum_study(method=method)
        reference = optimum_study(method="zoom")
        assert result.optimum[1] == pytest.approx(15.6, abs=0.6)
        assert result.optimal_cost == pytest.approx(
            reference.optimal_cost, rel=1e-4)

    def test_summary_runs(self, study):
        text = study.summary()
        assert "19" in text and "15.6" in text
