"""Sensor models: detection rules and failure modes."""

import random

import pytest

from repro.elbtunnel import Route, Vehicle, VehicleType
from repro.elbtunnel.sensors import LightBarrier, OverheadDetector
from repro.errors import SimulationError


def make_vehicle(vtype: VehicleType) -> Vehicle:
    return Vehicle(vehicle_id=1, vtype=vtype, route=Route.TUBE4,
                   arrival_time=0.0, zone1_time=4.0, zone2_time=4.0)


class TestLightBarrier:
    def test_detects_only_overhigh(self):
        lb = LightBarrier("LBpre")
        assert lb.detects(make_vehicle(VehicleType.OVERHIGH))
        assert not lb.detects(make_vehicle(VehicleType.HIGH))
        assert not lb.detects(make_vehicle(VehicleType.CAR))

    def test_false_detection_gaps_match_rate(self):
        lb = LightBarrier("LBpre", fd_rate=0.01)
        rng = random.Random(1)
        gaps = [lb.next_false_detection(rng) for _ in range(20_000)]
        assert sum(gaps) / len(gaps) == pytest.approx(100.0, rel=0.05)

    def test_zero_rate_never_fires(self):
        lb = LightBarrier("LBpre")
        assert lb.next_false_detection(random.Random(0)) == float("inf")

    def test_rejects_negative_rate(self):
        with pytest.raises(SimulationError):
            LightBarrier("bad", fd_rate=-1.0)


class TestOverheadDetector:
    def test_senses_high_and_overhigh_alike(self):
        """The paper: ODs cannot distinguish HVs from OHVs."""
        od = OverheadDetector("ODfinal")
        rng = random.Random(0)
        assert od.senses(make_vehicle(VehicleType.HIGH), rng)
        assert od.senses(make_vehicle(VehicleType.OVERHIGH), rng)

    def test_ignores_cars(self):
        od = OverheadDetector("ODfinal")
        assert not od.senses(make_vehicle(VehicleType.CAR),
                             random.Random(0))

    def test_miss_probability(self):
        od = OverheadDetector("ODfinal", p_miss=0.3)
        rng = random.Random(2)
        hits = sum(od.senses_crossing(rng) for _ in range(50_000))
        assert hits / 50_000 == pytest.approx(0.7, abs=0.01)

    def test_certain_miss(self):
        od = OverheadDetector("ODfinal", p_miss=1.0)
        assert not od.senses(make_vehicle(VehicleType.HIGH),
                             random.Random(0))

    def test_rejects_bad_parameters(self):
        with pytest.raises(SimulationError):
            OverheadDetector("bad", p_miss=1.5)
        with pytest.raises(SimulationError):
            OverheadDetector("bad", fd_rate=-0.1)
