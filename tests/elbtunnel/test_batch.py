"""Batched replication engine vs. the scalar oracle kernel.

The scalar :func:`repro.elbtunnel.simulation.simulate` path is the
oracle (mirroring ``tests/bdd/_reference.py``): every replication of a
batch must reproduce its counters **bit-identically** at the same seed,
for every design variant and failure-mode configuration.
"""

from dataclasses import replace

import pytest

from repro.elbtunnel import (
    COUNTER_FIELDS,
    DesignVariant,
    SimulationConfig,
    TrafficConfig,
    fast_path_supported,
    simulate,
    simulate_batch,
)
from repro.elbtunnel.batch import BatchSimulationResult, replicate_counters
from repro.errors import SimulationError
from repro.sim.batch import replication_seeds

DAY = 60.0 * 24

#: Correct-only OHV traffic in the heavy-HV environment of Fig. 6.
CORRIDOR = TrafficConfig(ohv_rate=1 / 120.0, p_correct=1.0,
                         hv_odfinal_rate=0.13)
#: Dense mixed traffic: wrong-headed OHVs on both error routes.
MIXED = TrafficConfig(ohv_rate=1 / 30.0, p_correct=0.5,
                      p_wrong_early=0.4, hv_odfinal_rate=0.1)


def config(variant=DesignVariant.WITHOUT_LB4, days=10.0,
           traffic=CORRIDOR, timer2=15.6, **kwargs):
    return SimulationConfig(duration=DAY * days, timer1=30.0,
                            timer2=timer2, variant=variant,
                            traffic=traffic, **kwargs)


def scalar_rows(cfg, seeds):
    return [simulate(replace(cfg, seed=seed)).counters()
            for seed in seeds]


class TestBitIdentity:
    """Batch rows == scalar counters, integer-exact."""

    @pytest.mark.parametrize("variant", list(DesignVariant),
                             ids=lambda v: v.value)
    def test_corridor_traffic(self, variant):
        cfg = config(variant)
        batch = simulate_batch(cfg, 4)
        assert list(batch.counters.rows()) == \
            scalar_rows(cfg, batch.seeds)

    @pytest.mark.parametrize("variant", list(DesignVariant),
                             ids=lambda v: v.value)
    def test_mixed_traffic_with_od_misses(self, variant):
        cfg = config(variant, traffic=MIXED, od_miss_probability=0.3,
                     timer2=12.0)
        batch = simulate_batch(cfg, 4)
        assert list(batch.counters.rows()) == \
            scalar_rows(cfg, batch.seeds)

    def test_blind_detectors(self):
        cfg = config(traffic=MIXED, od_miss_probability=1.0)
        batch = simulate_batch(cfg, 3)
        assert list(batch.counters.rows()) == \
            scalar_rows(cfg, batch.seeds)
        assert batch.counters.column("collisions").sum() > 0

    def test_single_ohv_assumption_flaw(self):
        traffic = TrafficConfig(ohv_rate=0.05, p_correct=0.1,
                                p_wrong_early=1.0, hv_odfinal_rate=0.0)
        cfg = config(traffic=traffic, timer2=10.0,
                     single_ohv_assumption=True)
        batch = simulate_batch(cfg, 3)
        assert list(batch.counters.rows()) == \
            scalar_rows(cfg, batch.seeds)

    def test_custom_lb_passage_time(self):
        cfg = config(DesignVariant.LB_AT_ODFINAL, traffic=MIXED,
                     od_miss_probability=0.05, lb_passage_time=0.7)
        batch = simulate_batch(cfg, 3)
        assert list(batch.counters.rows()) == \
            scalar_rows(cfg, batch.seeds)

    def test_no_crossing_traffic(self):
        traffic = TrafficConfig(ohv_rate=1 / 60.0, p_correct=0.5,
                                hv_odfinal_rate=0.0)
        cfg = config(traffic=traffic)
        batch = simulate_batch(cfg, 3)
        assert list(batch.counters.rows()) == \
            scalar_rows(cfg, batch.seeds)

    def test_fd_chain_configs_fall_back_to_the_scalar_kernel(self):
        """Spurious-detection chains draw lazily; still batchable."""
        traffic = TrafficConfig(ohv_rate=1e-9, p_correct=1.0,
                                hv_odfinal_rate=0.2)
        cfg = config(traffic=traffic, days=30.0,
                     fd_lbpre_rate=0.005, fd_lbpost_rate=0.005)
        assert not fast_path_supported(cfg)
        batch = simulate_batch(cfg, 3)
        assert list(batch.counters.rows()) == \
            scalar_rows(cfg, batch.seeds)

    def test_explicit_base_seed_overrides_config(self):
        cfg = config()
        batch = simulate_batch(cfg, 2, seed=99)
        assert batch.seeds == tuple(replication_seeds(99, 2))
        assert list(batch.counters.rows()) == \
            scalar_rows(cfg, batch.seeds)


class TestFastPathSupported:
    def test_default_config_is_fast(self):
        assert fast_path_supported(config())

    @pytest.mark.parametrize("field", ["fd_lbpre_rate", "fd_lbpost_rate",
                                       "fd_odfinal_rate"])
    def test_fd_rates_disable_the_fast_path(self, field):
        assert not fast_path_supported(config(**{field: 0.01}))


class TestReplicateCounters:
    def test_rows_are_pure_functions_of_seed(self):
        """Any partition of the seed list reassembles the same batch."""
        cfg = config(days=5.0)
        seeds = replication_seeds(0, 6)
        whole = replicate_counters(cfg, seeds)
        split = replicate_counters(cfg, seeds[:2]) + \
            replicate_counters(cfg, seeds[2:5]) + \
            replicate_counters(cfg, seeds[5:])
        assert whole == split


class TestBatchSimulationResult:
    def test_results_match_scalar_shapes(self):
        cfg = config(days=5.0)
        batch = simulate_batch(cfg, 3)
        for index, result in enumerate(batch.results):
            assert result.duration == cfg.duration
            assert result.counters() == batch.counters.row(index)
            assert result.ohvs_total == \
                result.ohvs_correct + result.ohvs_incorrect

    def test_pooled_equals_pool_results_over_rows(self):
        cfg = config(days=5.0)
        batch = simulate_batch(cfg, 4)
        pooled = batch.pooled()
        assert pooled.replications == 4
        totals = batch.counters.totals()
        for name in COUNTER_FIELDS:
            assert getattr(pooled.result, name) == totals[name]

    def test_alarm_fractions_and_cis(self):
        batch = simulate_batch(config(days=5.0), 3)
        fractions = batch.alarm_fractions()
        assert len(fractions) == 3
        for replication, (low, high) in enumerate(batch.alarm_cis()):
            assert low <= fractions[replication] <= high
        assert batch.between_variance() >= 0.0

    def test_between_variance_excludes_zero_data_replications(self):
        """Same contract as pool_results: a replication without correct
        OHVs contributes no placeholder 0.0 observation."""
        width = len(COUNTER_FIELDS)
        correct_at = COUNTER_FIELDS.index("ohvs_correct")
        alarmed_at = COUNTER_FIELDS.index("correct_ohvs_alarmed")

        def row(correct, alarmed):
            values = [0] * width
            values[correct_at] = correct
            values[alarmed_at] = alarmed
            return tuple(values)

        batch = BatchSimulationResult.from_rows(
            10.0, [0, 1, 2],
            [row(10, 5), row(0, 0), row(10, 5)])
        assert batch.between_variance() == 0.0
        assert batch.between_variance() == \
            batch.pooled().between_variance

    def test_encode_decode_round_trip(self):
        batch = simulate_batch(config(days=5.0), 3)
        decoded = BatchSimulationResult.decode(batch.encode())
        assert decoded.seeds == batch.seeds
        assert decoded.duration == batch.duration
        assert list(decoded.counters.rows()) == \
            list(batch.counters.rows())

    def test_from_rows_rejects_row_seed_mismatch(self):
        with pytest.raises(SimulationError):
            BatchSimulationResult.from_rows(
                10.0, [1, 2], [tuple(range(len(COUNTER_FIELDS)))])

    def test_rejects_zero_replications(self):
        with pytest.raises(SimulationError):
            simulate_batch(config(days=5.0), 0)
