"""ASCII rendering helpers."""

import pytest

from repro.errors import ReproError
from repro.viz import format_series, format_surface, format_table, sparkline


class TestFormatTable:
    def test_aligned_columns(self):
        text = format_table(["name", "value"],
                            [["a", 1.0], ["long-name", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len({len(line) for line in lines[:2]}) >= 1
        assert "long-name" in lines[3]

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_compaction(self):
        text = format_table(["x"], [[0.000123456789]])
        assert "0.000123457" in text

    def test_rejects_ragged_rows(self):
        with pytest.raises(ReproError):
            format_table(["a", "b"], [[1]])

    def test_rejects_empty_headers(self):
        with pytest.raises(ReproError):
            format_table([], [])


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_constant_series(self):
        assert len(set(sparkline([5, 5, 5]))) == 1

    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_series_uses_increasing_blocks(self):
        strip = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8, 9])
        assert strip[0] == " " and strip[-1] == "@"


class TestFormatSeries:
    def test_renders_all_series(self):
        series = {"a": [(0.0, 0.1), (1.0, 0.2)],
                  "b": [(0.0, 0.3), (1.0, 0.4)]}
        text = format_series(series)
        assert "a" in text and "b" in text
        assert "0.1000" in text and "0.4000" in text

    def test_rejects_mismatched_grids(self):
        series = {"a": [(0.0, 0.1)], "b": [(5.0, 0.3)]}
        with pytest.raises(ReproError):
            format_series(series)

    def test_subsamples_long_series(self):
        series = {"a": [(float(i), 0.0) for i in range(100)]}
        text = format_series(series, max_points=5)
        data_lines = [l for l in text.splitlines()
                      if l and l[0].isdigit()]
        assert len(data_lines) <= 6

    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            format_series({})


class TestFormatSurface:
    def test_marks_minimum(self):
        z = [[3.0, 2.0], [1.0, 4.0]]
        text = format_surface([0.0, 1.0], [0.0, 1.0], z)
        assert "m" in text
        assert "z=1" in text

    def test_reports_minimum_location(self):
        z = [[3.0, 2.0], [0.5, 4.0]]
        text = format_surface([10.0, 20.0], [30.0, 40.0], z)
        assert "(20, 30)" in text

    def test_rejects_empty_axes(self):
        with pytest.raises(ReproError):
            format_surface([], [1.0], [[1.0]])


class TestTornadoTable:
    def test_ranked_by_total_with_bars(self):
        from repro.viz import tornado_table
        first = {"a": 0.1, "b": 0.5}
        total = {"a": 0.2, "b": 0.8}
        text = tornado_table(first, total, title="Sobol", width=10)
        lines = text.splitlines()
        assert lines[0] == "Sobol"
        assert "S1" in lines[1] and "ST" in lines[1]
        rows = lines[3:]
        assert rows[0].startswith("b") and rows[1].startswith("a")
        assert "#" * 10 in rows[0]          # peak bar at full width
        assert "##" in rows[1]              # 0.2 / 0.8 * 10 = 2.5 -> 2
        assert "###" not in rows[1]

    def test_single_column_mode(self):
        from repro.viz import tornado_table
        text = tornado_table({"x": 0.3, "y": 0.6}, width=4)
        lines = text.splitlines()
        assert "value" in lines[0]
        assert lines[2].startswith("y")

    def test_zero_values_render_empty_bars(self):
        from repro.viz import tornado_table
        text = tornado_table({"x": 0.0, "y": 0.0})
        assert "#" not in text

    def test_validation(self):
        from repro.viz import tornado_table
        with pytest.raises(ReproError):
            tornado_table({})
        with pytest.raises(ReproError):
            tornado_table({"a": 1.0}, {"b": 1.0})
        with pytest.raises(ReproError):
            tornado_table({"a": 1.0}, width=0)
