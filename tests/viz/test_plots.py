"""ASCII charts: structure and content."""

import pytest

from repro.errors import ReproError
from repro.viz import histogram, line_chart


class TestLineChart:
    @pytest.fixture
    def series(self):
        return {
            "rising": [(float(i), float(i)) for i in range(10)],
            "flat": [(float(i), 4.0) for i in range(10)],
        }

    def test_contains_legend(self, series):
        text = line_chart(series)
        assert "rising" in text and "flat" in text

    def test_height_and_axis(self, series):
        text = line_chart(series, height=8, title="chart")
        lines = text.splitlines()
        assert lines[0] == "chart"
        axis_lines = [l for l in lines if l.lstrip().startswith("+")]
        assert len(axis_lines) == 1

    def test_markers_placed(self, series):
        text = line_chart(series)
        assert "o" in text and "x" in text

    def test_y_range_override(self, series):
        text = line_chart(series, y_min=0.0, y_max=100.0)
        assert "100" in text

    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            line_chart({})

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ReproError):
            line_chart({"a": [(0.0, 0.0)]}, width=2)

    def test_fig6_shape_visible(self):
        """The real use: the Fig. 6 curves render without error."""
        from repro.elbtunnel import fig6_series
        text = line_chart(fig6_series(points=15), y_min=0.0, y_max=1.0)
        assert "without_LB4" in text


class TestHistogram:
    def test_bins_and_counts(self):
        text = histogram([1.0] * 5 + [2.0] * 10, bins=2)
        lines = text.splitlines()
        assert lines[0].endswith("5")
        assert lines[1].endswith("10")

    def test_peak_bar_has_full_width(self):
        text = histogram([0.0, 1.0, 1.0, 1.0], bins=2, width=10)
        assert "#" * 10 in text

    def test_constant_values(self):
        text = histogram([3.0, 3.0], bins=3)
        assert "2" in text

    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            histogram([])

    def test_rejects_bad_bins(self):
        with pytest.raises(ReproError):
            histogram([1.0], bins=0)


class TestLineChartBands:
    def band(self):
        xs = [0.0, 0.5, 1.0]
        return {"90% band": [(x, 0.2, 0.8) for x in xs]}

    def series(self):
        return {"median": [(0.0, 0.5), (0.5, 0.5), (1.0, 0.5)]}

    def test_band_fill_is_rendered(self):
        text = line_chart(self.series(), bands=self.band(),
                          width=20, height=8)
        assert "." in text
        assert ". = 90% band" in text

    def test_markers_draw_over_the_fill(self):
        text = line_chart(self.series(), bands=self.band(),
                          width=20, height=8)
        assert "o" in text          # the median series marker survives

    def test_bands_extend_the_autoscaled_axis(self):
        wide = {"band": [(0.0, -1.0, 2.0)]}
        text = line_chart(self.series(), bands=wide,
                          width=20, height=8)
        assert "-1" in text         # y axis reaches the band's low

    def test_band_low_above_high_rejected(self):
        from repro.errors import ReproError
        bad = {"band": [(0.0, 0.9, 0.1)]}
        with pytest.raises(ReproError):
            line_chart(self.series(), bands=bad)

    def test_chart_without_bands_is_unchanged(self):
        plain = line_chart(self.series(), width=20, height=8)
        explicit = line_chart(self.series(), bands=None,
                              width=20, height=8)
        assert plain == explicit
        assert ". =" not in plain    # no band legend entry

    def test_uncertainty_band_around_fig6_style_series(self):
        xs = [float(i) for i in range(6)]
        median = {"p50": [(x, 0.5 + 0.05 * x) for x in xs]}
        band = {"p5-p95": [(x, 0.4 + 0.05 * x, 0.6 + 0.05 * x)
                           for x in xs]}
        text = line_chart(median, bands=band, width=30, height=10)
        assert text.count(".") > 10
