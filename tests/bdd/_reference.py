"""The seed's linked-node BDD kernel, kept verbatim as a test oracle.

This is the recursive object-graph implementation that
:mod:`repro.bdd` replaced with the arena kernel: interned ``Node``
objects, string-keyed apply cache, recursive ``negate`` and probability
walk, frozenset-based minimal solutions and frozenset MOCUS
minimization.  Property tests pin the arena kernel against it
(bit-identical probabilities, identical cut-set families and orderings),
and ``benchmarks/test_bench_bdd.py`` times the cold analysis path
against it.

Nothing here is exported by the library — it exists only so the old
semantics stay executable.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.fta.events import (
    Condition,
    Event,
    HouseEvent,
    IntermediateEvent,
    PrimaryFailure,
)
from repro.fta.gates import GateType


def build_chain_tree(depth: int):
    """A ``depth``-gate chain, AND-heavy with OR branches near the top.

    ``g_i = AND(e_i, g_{i+1})`` for most levels; the top 50 levels
    alternate ``OR`` so the minimal cut set family is non-trivial (one
    cut per OR branch) without exploding.  Shared by the deep-tree
    regression tests and the cold-path benchmark so both always exercise
    the same workload shape.
    """
    from repro.fta.dsl import AND, OR, hazard, primary
    from repro.fta.tree import FaultTree

    node = AND("g_tail", primary(f"e{depth}", 0.5),
               primary(f"e{depth + 1}", 0.5))
    for i in range(depth - 1, 0, -1):
        leaf = primary(f"e{i}", 0.5)
        if i < 50 and i % 2 == 0:
            node = OR(f"g{i}", leaf, node)
        else:
            node = AND(f"g{i}", leaf, node)
    return FaultTree(hazard("H", AND_gate=[primary("e0", 0.5), node]))


class RefNode:
    """Seed BDD node: terminal or ``(var, low, high)`` decision node."""

    __slots__ = ("var", "low", "high", "value")

    def __init__(self, var, low, high, value=None):
        self.var = var
        self.low = low
        self.high = high
        self.value = value

    @property
    def is_terminal(self):
        return self.var is None


REF_TRUE = RefNode(None, None, None, True)
REF_FALSE = RefNode(None, None, None, False)


class RefManager:
    """Seed ROBDD manager: unique table + string-keyed compute table."""

    def __init__(self):
        self._unique: Dict[Tuple[int, int, int], RefNode] = {}
        self._apply_cache: Dict[Tuple[str, int, int], RefNode] = {}
        self._not_cache: Dict[int, RefNode] = {}
        self._var_names: List[str] = []
        self._var_index: Dict[str, int] = {}

    def add_var(self, name: str) -> int:
        if name in self._var_index:
            return self._var_index[name]
        index = len(self._var_names)
        self._var_names.append(name)
        self._var_index[name] = index
        return index

    def var(self, name: str) -> RefNode:
        return self._mk(self.add_var(name), REF_FALSE, REF_TRUE)

    def var_name(self, index: int) -> str:
        return self._var_names[index]

    @property
    def var_count(self) -> int:
        return len(self._var_names)

    def _mk(self, var, low, high):
        if low is high:
            return low
        key = (var, id(low), id(high))
        node = self._unique.get(key)
        if node is None:
            node = RefNode(var, low, high)
            self._unique[key] = node
        return node

    def apply_and(self, a, b):
        return self._apply("and", a, b)

    def apply_or(self, a, b):
        return self._apply("or", a, b)

    def apply_xor(self, a, b):
        return self._apply("xor", a, b)

    def negate(self, a):
        if a is REF_TRUE:
            return REF_FALSE
        if a is REF_FALSE:
            return REF_TRUE
        cached = self._not_cache.get(id(a))
        if cached is not None:
            return cached
        result = self._mk(a.var, self.negate(a.low), self.negate(a.high))
        self._not_cache[id(a)] = result
        return result

    def and_all(self, nodes):
        result = REF_TRUE
        for node in nodes:
            result = self.apply_and(result, node)
        return result

    def or_all(self, nodes):
        result = REF_FALSE
        for node in nodes:
            result = self.apply_or(result, node)
        return result

    def at_least(self, k, nodes):
        n = len(nodes)
        if k <= 0:
            return REF_TRUE
        if k > n:
            return REF_FALSE
        state = [REF_TRUE] + [REF_FALSE] * k
        for node in nodes:
            for j in range(k, 0, -1):
                state[j] = self.apply_or(
                    state[j], self.apply_and(state[j - 1], node))
        return state[k]

    def _apply(self, op, a, b):
        terminal = self._apply_terminal(op, a, b)
        if terminal is not None:
            return terminal
        key = (op, id(a), id(b))
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        a_var = a.var if not a.is_terminal else None
        b_var = b.var if not b.is_terminal else None
        if b_var is None or (a_var is not None and a_var < b_var):
            var = a_var
            a_low, a_high = a.low, a.high
            b_low, b_high = b, b
        elif a_var is None or b_var < a_var:
            var = b_var
            a_low, a_high = a, a
            b_low, b_high = b.low, b.high
        else:
            var = a_var
            a_low, a_high = a.low, a.high
            b_low, b_high = b.low, b.high
        result = self._mk(var,
                          self._apply(op, a_low, b_low),
                          self._apply(op, a_high, b_high))
        self._apply_cache[key] = result
        return result

    @staticmethod
    def _apply_terminal(op, a, b):
        if op == "and":
            if a is REF_FALSE or b is REF_FALSE:
                return REF_FALSE
            if a is REF_TRUE:
                return b
            if b is REF_TRUE:
                return a
            if a is b:
                return a
        elif op == "or":
            if a is REF_TRUE or b is REF_TRUE:
                return REF_TRUE
            if a is REF_FALSE:
                return b
            if b is REF_FALSE:
                return a
            if a is b:
                return a
        else:
            if a is b:
                return REF_FALSE
            if a is REF_FALSE:
                return b
            if b is REF_FALSE:
                return a
            if a is REF_TRUE and b is REF_TRUE:
                return REF_FALSE
        return None

    def restrict(self, node, var_name, value):
        index = self._var_index[var_name]
        cache: Dict[int, RefNode] = {}

        def walk(n):
            if n.is_terminal or n.var > index:
                return n
            hit = cache.get(id(n))
            if hit is not None:
                return hit
            if n.var == index:
                result = n.high if value else n.low
            else:
                result = self._mk(n.var, walk(n.low), walk(n.high))
            cache[id(n)] = result
            return result

        return walk(node)

    def support(self, node) -> set:
        names = set()
        seen = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if n.is_terminal or id(n) in seen:
                continue
            seen.add(id(n))
            names.add(self._var_names[n.var])
            stack.append(n.low)
            stack.append(n.high)
        return names


def ref_probability(manager: RefManager, node: RefNode,
                    var_probs: Dict[str, float]) -> float:
    """Seed probability pass: recursive walk with per-node cache."""
    if node is REF_TRUE:
        return 1.0
    if node is REF_FALSE:
        return 0.0
    prob_by_index = {manager.add_var(name): var_probs[name]
                     for name in manager.support(node)}
    cache: Dict[int, float] = {}

    def walk(n):
        if n is REF_TRUE:
            return 1.0
        if n is REF_FALSE:
            return 0.0
        hit = cache.get(id(n))
        if hit is not None:
            return hit
        p = prob_by_index[n.var]
        value = (1.0 - p) * walk(n.low) + p * walk(n.high)
        cache[id(n)] = value
        return value

    return walk(node)


def ref_minimal_cut_sets(manager: RefManager,
                         node: RefNode) -> List[FrozenSet[str]]:
    """Seed minimal solutions: frozenset families with quadratic
    absorption."""
    cache: Dict[int, Set[FrozenSet[str]]] = {}

    def walk(n):
        if n is REF_TRUE:
            return {frozenset()}
        if n is REF_FALSE:
            return set()
        hit = cache.get(id(n))
        if hit is not None:
            return hit
        name = manager.var_name(n.var)
        low_sets = walk(n.low)
        high_sets = walk(n.high)
        result = set(low_sets)
        for cut in high_sets:
            extended = cut | {name}
            if not any(existing <= extended for existing in low_sets):
                result.add(extended)
        result = _ref_minimize_sets(result)
        cache[id(n)] = result
        return result

    return sorted(walk(node), key=lambda cs: (len(cs), sorted(cs)))


def _ref_minimize_sets(sets):
    ordered = sorted(sets, key=len)
    kept = []
    for cut in ordered:
        if not any(existing <= cut for existing in kept):
            kept.append(cut)
    return set(kept)


def ref_to_bdd(tree, manager: RefManager) -> RefNode:
    """Seed tree translation: recursive build, declaration order."""
    for event in tree.iter_events():
        if isinstance(event, (PrimaryFailure, Condition)):
            manager.add_var(event.name)

    memo: Dict[int, RefNode] = {}

    def build(event: Event) -> RefNode:
        key = id(event)
        if key in memo:
            return memo[key]
        if isinstance(event, (PrimaryFailure, Condition)):
            node = manager.var(event.name)
        elif isinstance(event, HouseEvent):
            node = REF_TRUE if event.state else REF_FALSE
        else:
            node = build_gate(event)
        memo[key] = node
        return node

    def build_gate(event: IntermediateEvent) -> RefNode:
        gate = event.gate
        children = [build(child) for child in gate.inputs]
        gt = gate.gate_type
        if gt is GateType.AND:
            return manager.and_all(children)
        if gt is GateType.OR:
            return manager.or_all(children)
        if gt is GateType.KOFN:
            return manager.at_least(gate.k, children)
        if gt is GateType.XOR:
            result = children[0]
            for child in children[1:]:
                result = manager.apply_xor(result, child)
            return result
        if gt is GateType.NOT:
            return manager.negate(children[0])
        if gt is GateType.INHIBIT:
            return manager.apply_and(children[0],
                                     manager.var(gate.condition.name))
        raise AssertionError(f"unknown gate type {gt!r}")

    return build(tree.top)


def ref_minimize(cut_sets: list) -> list:
    """Seed MOCUS minimization: frozenset subsumption, O(n^2)."""
    unique = list(dict.fromkeys(cut_sets))
    unique.sort(key=lambda cs: (cs.order, len(cs.conditions)))
    kept = []
    for candidate in unique:
        if not any(existing.subsumes(candidate) and existing != candidate
                   for existing in kept):
            kept.append(candidate)
    return kept


def ref_mocus_cut_sets(tree) -> list:
    """Seed MOCUS expansion: recursive, frozenset-based :class:`CutSet`
    lists (minimized but unsorted — feed to ``CutSetCollection`` or sort
    with the collection key to compare orderings)."""
    import itertools

    from repro.fta.cutsets import CutSet

    memo: Dict[int, list] = {}

    def expand(event):
        key = id(event)
        if key in memo:
            return memo[key]
        if isinstance(event, PrimaryFailure):
            result = [CutSet(frozenset([event.name]))]
        elif isinstance(event, HouseEvent):
            result = [CutSet(frozenset())] if event.state else []
        elif isinstance(event, IntermediateEvent):
            result = expand_gate(event)
        else:
            raise AssertionError(type(event).__name__)
        result = ref_minimize(result)
        memo[key] = result
        return result

    def expand_gate(event):
        gate = event.gate
        children = [expand(child) for child in gate.inputs]
        gt = gate.gate_type
        if gt is GateType.OR:
            return [cs for group in children for cs in group]
        if gt is GateType.AND:
            return _conjoin(children)
        if gt is GateType.KOFN:
            combined = []
            for combo in itertools.combinations(children, gate.k):
                combined.extend(_conjoin(list(combo)))
            return combined
        if gt is GateType.INHIBIT:
            condition = gate.condition
            return [CutSet(cs.failures, cs.conditions | {condition.name})
                    for cs in children[0]]
        raise AssertionError(f"unsupported gate type {gt!r}")

    def _conjoin(groups):
        import itertools

        from repro.fta.cutsets import CutSet
        current = [CutSet(frozenset())]
        for group in groups:
            combined = [CutSet(left.failures | right.failures,
                               left.conditions | right.conditions)
                        for left, right in itertools.product(current, group)]
            current = ref_minimize(combined)
            if not current:
                return []
        return current

    return expand(tree.top)
