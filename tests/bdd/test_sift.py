"""Dynamic variable reordering: swap soundness, shrinkage, edge cases."""

import itertools
import random

import pytest

from repro.bdd import BDDManager, FALSE, TRUE, sift
from repro.bdd.sift import _Levelized
from repro.errors import BDDError
from repro.fta.dsl import AND, hazard, primary
from repro.fta.quantify import hazard_probability, to_bdd
from repro.fta.tree import FaultTree


def random_diagram(rng, variables):
    """A random BDD over ``variables`` built from random connectives."""
    manager = BDDManager()
    nodes = [manager.var(f"v{i}") for i in range(variables)]
    result = nodes[0]
    for _ in range(rng.randint(2, 12)):
        operand = nodes[rng.randrange(variables)]
        op = rng.choice(["and", "or", "xor", "not"])
        if op == "and":
            result = manager.apply_and(result, operand)
        elif op == "or":
            result = manager.apply_or(result, operand)
        elif op == "xor":
            result = manager.apply_xor(result, operand)
        else:
            result = manager.negate(result)
    return manager, result


def assert_same_function(m1, root1, m2, root2, variables):
    names = [f"v{i}" for i in range(variables)]
    for bits in itertools.product([False, True], repeat=variables):
        assignment = dict(zip(names, bits))
        assert m1.evaluate(root1, assignment) == \
            m2.evaluate(root2, assignment), assignment


def adversarial_tree(n):
    """f = (x1 & ... & xn) | OR_i (xi & yi).

    Declaration order registers every ``x`` before any ``y`` (the probe
    AND comes first) — the textbook order under which the pair-matching
    part needs exponentially many nodes; interleaved ``xi, yi`` is
    linear.
    """
    xs = [primary(f"x{i}", 0.01) for i in range(n)]
    ys = [primary(f"y{i}", 0.02) for i in range(n)]
    probe = AND("probe", *xs)
    pairs = [AND(f"pair{i}", xs[i], ys[i]) for i in range(n)]
    return FaultTree(hazard("H", OR_gate=[probe] + pairs))


class TestSwapPrimitive:
    def test_single_swap_preserves_function(self):
        rng = random.Random(7)
        for _ in range(25):
            variables = rng.randint(3, 6)
            manager, root = random_diagram(rng, variables)
            if root.index < 2:
                continue
            levelized = _Levelized(manager, root)
            level = rng.randrange(variables - 1)
            levelized.swap(level)
            rebuilt_manager, rebuilt_root = levelized.rebuild(
                list(manager.var_names))
            assert_same_function(manager, root, rebuilt_manager,
                                 rebuilt_root, variables)

    def test_double_swap_restores_size(self):
        manager, root = random_diagram(random.Random(3), 5)
        levelized = _Levelized(manager, root)
        before = levelized.size
        levelized.swap(1)
        levelized.swap(1)
        assert levelized.size == before
        assert levelized._var_at == list(range(5))

    def test_refcounts_stay_garbage_free(self):
        rng = random.Random(11)
        manager, root = random_diagram(rng, 6)
        levelized = _Levelized(manager, root)
        for _ in range(40):
            levelized.swap(rng.randrange(5))
        # Every table entry must be reachable from the root.
        reachable = set()
        stack = [levelized.root]
        while stack:
            node = stack.pop()
            if node < 2 or node in reachable:
                continue
            reachable.add(node)
            stack.append(levelized._low[node])
            stack.append(levelized._high[node])
        assert set(levelized._var) == reachable
        assert set(levelized._unique.values()) == reachable


class TestSift:
    def test_preserves_function_exhaustively(self):
        rng = random.Random(0)
        for _ in range(40):
            variables = rng.randint(3, 7)
            manager, root = random_diagram(rng, variables)
            result = manager.sift(root, rounds=2)
            assert_same_function(manager, root, result.manager,
                                 result.root, variables)
            assert result.size_after <= result.size_before
            assert sorted(result.order) == sorted(manager.var_names)

    def test_shrinks_adversarial_declaration_order(self):
        tree = adversarial_tree(8)
        manager = BDDManager()
        root = to_bdd(tree, manager)
        result = manager.sift(root)
        assert result.size_before == manager.size(root)
        # The static order is exponential (~2^n); sifting finds the
        # interleaved order, which is linear in n.
        assert result.size_after < result.size_before // 4
        assert result.shrank

    def test_sift_preserves_probability(self):
        tree = adversarial_tree(6)
        manager = BDDManager()
        root = to_bdd(tree, manager)
        result = manager.sift(root)
        from repro.bdd import probability
        probs = {f"x{i}": 0.01 for i in range(6)}
        probs.update({f"y{i}": 0.02 for i in range(6)})
        exact = hazard_probability(tree, method="exact")
        assert probability(result.manager, result.root, probs) == \
            pytest.approx(exact, rel=1e-12)

    def test_terminal_root_is_trivial(self):
        manager = BDDManager()
        manager.add_var("a")
        result = sift(manager, TRUE)
        assert result.root.index == 1
        assert result.size_before == result.size_after == 0
        assert sift(manager, FALSE).root.index == 0

    def test_small_diagrams_pass_through(self):
        manager = BDDManager()
        node = manager.apply_and(manager.var("a"), manager.var("b"))
        result = manager.sift(node)
        assert result.size_after == result.size_before == 2
        for a in (False, True):
            for b in (False, True):
                assignment = {"a": a, "b": b}
                assert result.manager.evaluate(result.root, assignment) \
                    == manager.evaluate(node, assignment)
        assert result.manager.sat_count(result.root) == \
            manager.sat_count(node)

    def test_rejects_foreign_node_and_bad_params(self):
        manager = BDDManager()
        other = BDDManager()
        node = other.var("a")
        with pytest.raises(BDDError):
            sift(manager, node)
        with pytest.raises(BDDError):
            sift(other, node, max_growth=0.5)
        with pytest.raises(BDDError):
            sift(other, node, rounds=0)

    def test_input_arena_left_valid(self):
        manager, root = random_diagram(random.Random(5), 5)
        count = manager.node_count
        sat = manager.sat_count(root)
        manager.sift(root, rounds=2)
        assert manager.node_count == count
        assert manager.sat_count(root) == sat


class TestSiftedTape:
    def test_sifted_tape_matches_exact_probability(self):
        from repro.compile import CompiledTape
        tree = adversarial_tree(7)
        manager = BDDManager()
        root = to_bdd(tree, manager)
        result = manager.sift(root)
        tape = CompiledTape.from_bdd(result.manager, result.root,
                                     tree.name)
        assert tape.size == result.size_after
        probs = {f"x{i}": 0.01 for i in range(7)}
        probs.update({f"y{i}": 0.02 for i in range(7)})
        assert tape.scalar(probs) == pytest.approx(
            hazard_probability(tree, method="exact"), rel=1e-12)
