"""BDD manager: canonicity, boolean algebra, structural queries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import FALSE, TRUE, BDDManager
from repro.errors import BDDError


@pytest.fixture
def mgr():
    return BDDManager()


class TestVariables:
    def test_add_var_is_idempotent(self, mgr):
        assert mgr.add_var("x") == 0
        assert mgr.add_var("x") == 0
        assert mgr.add_var("y") == 1
        assert mgr.var_count == 2

    def test_var_name_roundtrip(self, mgr):
        mgr.add_var("a")
        assert mgr.var_name(0) == "a"
        with pytest.raises(BDDError):
            mgr.var_name(5)

    def test_var_nodes_are_interned(self, mgr):
        assert mgr.var("x") is mgr.var("x")


class TestCanonicity:
    def test_equal_functions_share_node(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        # x and y == y and x (commutativity -> same canonical node)
        assert mgr.apply_and(x, y) is mgr.apply_and(y, x)

    def test_tautology_collapses_to_true(self, mgr):
        x = mgr.var("x")
        assert mgr.apply_or(x, mgr.negate(x)) is TRUE

    def test_contradiction_collapses_to_false(self, mgr):
        x = mgr.var("x")
        assert mgr.apply_and(x, mgr.negate(x)) is FALSE

    def test_double_negation(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        f = mgr.apply_or(x, y)
        assert mgr.negate(mgr.negate(f)) is f

    def test_de_morgan(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        lhs = mgr.negate(mgr.apply_and(x, y))
        rhs = mgr.apply_or(mgr.negate(x), mgr.negate(y))
        assert lhs is rhs

    def test_absorption(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        assert mgr.apply_or(x, mgr.apply_and(x, y)) is x

    def test_xor_via_and_or(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        direct = mgr.apply_xor(x, y)
        composed = mgr.apply_or(
            mgr.apply_and(x, mgr.negate(y)),
            mgr.apply_and(mgr.negate(x), y))
        assert direct is composed


class TestTerminalRules:
    def test_and_identities(self, mgr):
        x = mgr.var("x")
        assert mgr.apply_and(x, TRUE) is x
        assert mgr.apply_and(x, FALSE) is FALSE
        assert mgr.apply_and(x, x) is x

    def test_or_identities(self, mgr):
        x = mgr.var("x")
        assert mgr.apply_or(x, FALSE) is x
        assert mgr.apply_or(x, TRUE) is TRUE
        assert mgr.apply_or(x, x) is x

    def test_empty_aggregates(self, mgr):
        assert mgr.and_all([]) is TRUE
        assert mgr.or_all([]) is FALSE


class TestEvaluate:
    def test_evaluates_assignments(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        f = mgr.apply_and(x, mgr.negate(y))
        assert mgr.evaluate(f, {"x": True, "y": False}) is True
        assert mgr.evaluate(f, {"x": True, "y": True}) is False

    def test_missing_variable_raises(self, mgr):
        f = mgr.var("x")
        with pytest.raises(BDDError):
            mgr.evaluate(f, {})


class TestRestrict:
    def test_restrict_fixes_variable(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        f = mgr.apply_and(x, y)
        assert mgr.restrict(f, "x", True) is y
        assert mgr.restrict(f, "x", False) is FALSE

    def test_restrict_unknown_variable_raises(self, mgr):
        f = mgr.var("x")
        with pytest.raises(BDDError):
            mgr.restrict(f, "nope", True)

    def test_shannon_expansion_identity(self, mgr):
        x, y, z = mgr.var("x"), mgr.var("y"), mgr.var("z")
        f = mgr.apply_or(mgr.apply_and(x, y), z)
        rebuilt = mgr.ite(x, mgr.restrict(f, "x", True),
                          mgr.restrict(f, "x", False))
        assert rebuilt is f


class TestStructural:
    def test_support(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        mgr.var("unused")
        f = mgr.apply_and(x, y)
        assert mgr.support(f) == {"x", "y"}

    def test_size_counts_nodes(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        assert mgr.size(TRUE) == 0
        assert mgr.size(x) == 1
        assert mgr.size(mgr.apply_and(x, y)) == 2

    def test_sat_count(self, mgr):
        x, y, z = mgr.var("x"), mgr.var("y"), mgr.var("z")
        f = mgr.apply_or(mgr.apply_and(x, y), z)
        # Truth table over 3 vars: x&y (2 rows) + z (4 rows) - overlap 1.
        assert mgr.sat_count(f) == 5

    def test_sat_count_terminals(self, mgr):
        mgr.add_var("a")
        mgr.add_var("b")
        assert mgr.sat_count(TRUE) == 4
        assert mgr.sat_count(FALSE) == 0


class TestIte:
    def test_terminal_shortcuts(self, mgr):
        x, y = mgr.var("x"), mgr.var("y")
        assert mgr.ite(TRUE, x, y) is x
        assert mgr.ite(FALSE, x, y) is y
        assert mgr.ite(x, y, y) is y
        assert mgr.ite(x, TRUE, FALSE) is x
        assert mgr.ite(x, FALSE, TRUE) is mgr.negate(x)

    def test_matches_boolean_composition(self, mgr):
        x, y, z, w = (mgr.var(n) for n in "xyzw")
        f = mgr.apply_or(x, w)
        composed = mgr.apply_or(
            mgr.apply_and(f, y), mgr.apply_and(mgr.negate(f), z))
        assert mgr.ite(f, y, z) is composed

    def test_node_count_grows_monotonically(self, mgr):
        before = mgr.node_count
        x, y = mgr.var("x"), mgr.var("y")
        mgr.apply_and(x, y)
        assert mgr.node_count > before


class TestAtLeast:
    @pytest.mark.parametrize("k,expected", [(0, 8), (1, 7), (2, 4),
                                            (3, 1), (4, 0)])
    def test_threshold_sat_counts(self, mgr, k, expected):
        nodes = [mgr.var(n) for n in "abc"]
        f = mgr.at_least(k, nodes)
        assert mgr.sat_count(f) == expected

    def test_equals_exhaustive_or_of_ands(self, mgr):
        import itertools
        nodes = {n: mgr.var(n) for n in "abcd"}
        k = 2
        explicit = mgr.or_all(
            mgr.and_all(nodes[n] for n in combo)
            for combo in itertools.combinations("abcd", k))
        assert mgr.at_least(k, list(nodes.values())) is explicit


@st.composite
def boolean_expression(draw, depth=3):
    """Random boolean expression over 4 variables as a nested tuple."""
    if depth == 0 or draw(st.booleans()):
        return draw(st.sampled_from(["a", "b", "c", "d"]))
    op = draw(st.sampled_from(["and", "or", "xor", "not"]))
    if op == "not":
        return (op, draw(boolean_expression(depth=depth - 1)))
    return (op, draw(boolean_expression(depth=depth - 1)),
            draw(boolean_expression(depth=depth - 1)))


def _build(mgr, expr):
    if isinstance(expr, str):
        return mgr.var(expr)
    op = expr[0]
    if op == "not":
        return mgr.negate(_build(mgr, expr[1]))
    left, right = _build(mgr, expr[1]), _build(mgr, expr[2])
    if op == "and":
        return mgr.apply_and(left, right)
    if op == "or":
        return mgr.apply_or(left, right)
    return mgr.apply_xor(left, right)


def _eval(expr, env):
    if isinstance(expr, str):
        return env[expr]
    op = expr[0]
    if op == "not":
        return not _eval(expr[1], env)
    left, right = _eval(expr[1], env), _eval(expr[2], env)
    if op == "and":
        return left and right
    if op == "or":
        return left or right
    return left != right


class TestAgainstTruthTables:
    @given(boolean_expression())
    @settings(max_examples=120)
    def test_bdd_matches_direct_evaluation(self, expr):
        mgr = BDDManager()
        for name in "abcd":
            mgr.add_var(name)
        node = _build(mgr, expr)
        import itertools
        for bits in itertools.product([False, True], repeat=4):
            env = dict(zip("abcd", bits))
            assert mgr.evaluate(node, env) == _eval(expr, env)
