"""Exact BDD probability evaluation against enumeration."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import FALSE, TRUE, BDDManager, probability
from repro.bdd.prob import conditional_probability
from repro.errors import BDDError


def enumeration_probability(mgr, node, probs):
    """Reference: sum over the full truth table."""
    names = sorted(probs)
    total = 0.0
    for bits in itertools.product([False, True], repeat=len(names)):
        env = dict(zip(names, bits))
        if mgr.evaluate(node, env):
            p = 1.0
            for name, bit in zip(names, bits):
                p *= probs[name] if bit else 1.0 - probs[name]
            total += p
    return total


class TestBasics:
    def test_terminals(self):
        mgr = BDDManager()
        assert probability(mgr, TRUE, {}) == 1.0
        assert probability(mgr, FALSE, {}) == 0.0

    def test_single_variable(self):
        mgr = BDDManager()
        x = mgr.var("x")
        assert probability(mgr, x, {"x": 0.3}) == pytest.approx(0.3)
        assert probability(mgr, mgr.negate(x),
                           {"x": 0.3}) == pytest.approx(0.7)

    def test_independent_and_or(self):
        mgr = BDDManager()
        x, y = mgr.var("x"), mgr.var("y")
        probs = {"x": 0.2, "y": 0.5}
        assert probability(mgr, mgr.apply_and(x, y),
                           probs) == pytest.approx(0.1)
        assert probability(mgr, mgr.apply_or(x, y),
                           probs) == pytest.approx(0.6)

    def test_shared_variable_no_double_count(self):
        """(x and y) or (x and z): naive arithmetic would double-count x."""
        mgr = BDDManager()
        x, y, z = mgr.var("x"), mgr.var("y"), mgr.var("z")
        f = mgr.apply_or(mgr.apply_and(x, y), mgr.apply_and(x, z))
        probs = {"x": 0.5, "y": 0.5, "z": 0.5}
        # P = P(x) * P(y or z) = 0.5 * 0.75
        assert probability(mgr, f, probs) == pytest.approx(0.375)

    def test_missing_probability_raises(self):
        mgr = BDDManager()
        x = mgr.var("x")
        with pytest.raises(BDDError):
            probability(mgr, x, {})

    def test_out_of_range_probability_raises(self):
        mgr = BDDManager()
        x = mgr.var("x")
        with pytest.raises(BDDError):
            probability(mgr, x, {"x": 1.5})

    def test_ignores_irrelevant_variables(self):
        mgr = BDDManager()
        x = mgr.var("x")
        mgr.var("y")
        assert probability(mgr, x, {"x": 0.25}) == pytest.approx(0.25)


class TestConditional:
    def test_conditioning_on_certain_event(self):
        mgr = BDDManager()
        x, y = mgr.var("x"), mgr.var("y")
        f = mgr.apply_or(x, y)
        probs = {"x": 0.1, "y": 0.2}
        assert conditional_probability(mgr, f, probs, "x", True) \
            == pytest.approx(1.0)
        assert conditional_probability(mgr, f, probs, "x", False) \
            == pytest.approx(0.2)

    def test_birnbaum_difference(self):
        mgr = BDDManager()
        x, y = mgr.var("x"), mgr.var("y")
        f = mgr.apply_and(x, y)
        probs = {"x": 0.1, "y": 0.3}
        birnbaum = (conditional_probability(mgr, f, probs, "x", True)
                    - conditional_probability(mgr, f, probs, "x", False))
        assert birnbaum == pytest.approx(0.3)


class TestBatch:
    def test_matches_scalar_bit_identically(self):
        import numpy as np

        from repro.bdd import probability_batch
        mgr = BDDManager()
        x, y, z = mgr.var("x"), mgr.var("y"), mgr.var("z")
        f = mgr.apply_or(mgr.apply_and(x, y), z)
        matrix = np.array([[0.1, 0.2, 0.3],
                           [0.5, 0.5, 0.5],
                           [0.0, 1.0, 0.25]])
        batch = probability_batch(mgr, f, matrix)
        for row, expected in zip(matrix, batch):
            probs = dict(zip(["x", "y", "z"], row))
            assert probability(mgr, f, probs) == expected  # bit-identical

    def test_terminal_roots(self):
        import numpy as np

        from repro.bdd import probability_batch
        mgr = BDDManager()
        mgr.add_var("x")
        matrix = np.array([[0.5], [0.25]])
        assert probability_batch(mgr, TRUE, matrix).tolist() == [1.0, 1.0]
        assert probability_batch(mgr, FALSE, matrix).tolist() == [0.0, 0.0]

    def test_shape_and_range_validation(self):
        import numpy as np

        from repro.bdd import probability_batch
        mgr = BDDManager()
        x = mgr.var("x")
        with pytest.raises(BDDError):
            probability_batch(mgr, x, np.array([0.5]))  # 1-D
        with pytest.raises(BDDError):
            probability_batch(mgr, x, np.array([[0.5, 0.5]]))  # 2 cols
        with pytest.raises(BDDError):
            probability_batch(mgr, x, np.array([[1.5]]))  # out of range

    def test_ignores_irrelevant_columns(self):
        import numpy as np

        from repro.bdd import probability_batch
        mgr = BDDManager()
        x = mgr.var("x")
        mgr.add_var("unused")
        matrix = np.array([[0.25, 7.0]])  # junk in unused column is fine
        assert probability_batch(mgr, x, matrix).tolist() == [0.25]


class TestAgainstEnumeration:
    @given(st.lists(st.floats(0.0, 1.0), min_size=4, max_size=4),
           st.integers(0, 10_000))
    @settings(max_examples=60)
    def test_random_functions(self, prob_values, func_seed):
        import random
        rng = random.Random(func_seed)
        mgr = BDDManager()
        names = ["a", "b", "c", "d"]
        nodes = [mgr.var(n) for n in names]
        # Build a random function by combining variables.
        node = nodes[0]
        for other in nodes[1:]:
            op = rng.choice(["and", "or", "xor"])
            if rng.random() < 0.3:
                other = mgr.negate(other)
            if op == "and":
                node = mgr.apply_and(node, other)
            elif op == "or":
                node = mgr.apply_or(node, other)
            else:
                node = mgr.apply_xor(node, other)
        probs = dict(zip(names, prob_values))
        expected = enumeration_probability(mgr, node, probs)
        assert probability(mgr, node, probs) == pytest.approx(
            expected, abs=1e-12)
