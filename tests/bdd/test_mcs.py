"""Minimal cut sets from BDDs: known answers and brute-force agreement."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDDManager, minimal_cut_sets


def brute_force_mcs(mgr, node, names):
    """All minimal satisfying variable subsets of a monotone function."""
    satisfying = []
    for bits in itertools.product([False, True], repeat=len(names)):
        env = dict(zip(names, bits))
        if mgr.evaluate(node, env):
            satisfying.append(frozenset(n for n, b in env.items() if b))
    minimal = set()
    for s in satisfying:
        if not any(t < s for t in satisfying):
            minimal.add(s)
    return minimal


class TestKnownStructures:
    def test_single_or(self):
        mgr = BDDManager()
        f = mgr.or_all([mgr.var("a"), mgr.var("b")])
        assert set(minimal_cut_sets(mgr, f)) == {
            frozenset({"a"}), frozenset({"b"})}

    def test_single_and(self):
        mgr = BDDManager()
        f = mgr.and_all([mgr.var("a"), mgr.var("b")])
        assert set(minimal_cut_sets(mgr, f)) == {frozenset({"a", "b"})}

    def test_two_of_three(self):
        mgr = BDDManager()
        f = mgr.at_least(2, [mgr.var(n) for n in "abc"])
        assert set(minimal_cut_sets(mgr, f)) == {
            frozenset({"a", "b"}), frozenset({"a", "c"}),
            frozenset({"b", "c"})}

    def test_absorption_across_branches(self):
        """a or (a and b): the {a, b} cut is subsumed by {a}."""
        mgr = BDDManager()
        a, b = mgr.var("a"), mgr.var("b")
        f = mgr.apply_or(a, mgr.apply_and(a, b))
        assert minimal_cut_sets(mgr, f) == [frozenset({"a"})]

    def test_terminals(self):
        mgr = BDDManager()
        from repro.bdd import FALSE, TRUE
        assert minimal_cut_sets(mgr, TRUE) == [frozenset()]
        assert minimal_cut_sets(mgr, FALSE) == []

    def test_result_is_sorted_by_order(self):
        mgr = BDDManager()
        a, b, c = (mgr.var(n) for n in "abc")
        f = mgr.apply_or(mgr.apply_and(a, b), c)
        result = minimal_cut_sets(mgr, f)
        assert [len(cs) for cs in result] == sorted(len(cs) for cs in result)


class TestAgainstBruteForce:
    @given(st.integers(0, 100_000))
    @settings(max_examples=80)
    def test_random_monotone_functions(self, seed):
        import random
        rng = random.Random(seed)
        mgr = BDDManager()
        names = ["a", "b", "c", "d", "e"]
        for n in names:
            mgr.add_var(n)
        # Random coherent function: OR of random AND-terms.
        terms = []
        for _ in range(rng.randint(1, 5)):
            size = rng.randint(1, 3)
            term_vars = rng.sample(names, size)
            terms.append(mgr.and_all(mgr.var(v) for v in term_vars))
        node = mgr.or_all(terms)
        expected = brute_force_mcs(mgr, node, names)
        assert set(minimal_cut_sets(mgr, node)) == expected

    def test_mcs_all_satisfy_and_are_minimal(self):
        mgr = BDDManager()
        names = list("abcd")
        for n in names:
            mgr.add_var(n)
        f = mgr.apply_or(
            mgr.and_all([mgr.var("a"), mgr.var("b")]),
            mgr.and_all([mgr.var("b"), mgr.var("c"), mgr.var("d")]))
        for cut in minimal_cut_sets(mgr, f):
            env = {n: n in cut for n in names}
            assert mgr.evaluate(f, env)
            # Removing any element must break the cut.
            for member in cut:
                reduced = dict(env)
                reduced[member] = False
                assert not mgr.evaluate(f, reduced)
