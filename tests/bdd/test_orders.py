"""Static variable-ordering heuristics for ``to_bdd``."""

import pytest

from repro.bdd import BDDManager, minimal_cut_sets, probability
from repro.errors import QuantificationError
from repro.fta import VARIABLE_ORDERS, FaultTree, to_bdd
from repro.fta.dsl import AND, INHIBIT, condition, hazard, primary


@pytest.fixture
def shared_leaf_tree():
    """A leaf shared by every branch, declared deep in each subtree."""
    shared = primary("shared", 0.3)
    branches = [AND(f"b{i}", primary(f"e{i}", 0.1), shared)
                for i in range(4)]
    return FaultTree(hazard("H", OR_gate=branches))


def test_exposed_orders(shared_leaf_tree):
    assert VARIABLE_ORDERS == ("declaration", "topological", "weighted")
    for order in VARIABLE_ORDERS:
        manager = BDDManager()
        root = to_bdd(shared_leaf_tree, manager, order=order)
        assert manager.size(root) >= 1


def test_unknown_order_raises(shared_leaf_tree):
    with pytest.raises(QuantificationError, match="unknown variable order"):
        to_bdd(shared_leaf_tree, BDDManager(), order="random")


def test_declaration_is_default_first_visit_order(shared_leaf_tree):
    manager = BDDManager()
    to_bdd(shared_leaf_tree, manager)
    names = [manager.var_name(i) for i in range(manager.var_count)]
    assert names == ["e0", "shared", "e1", "e2", "e3"]


def test_weighted_puts_shared_leaf_first(shared_leaf_tree):
    manager = BDDManager()
    to_bdd(shared_leaf_tree, manager, order="weighted")
    assert manager.var_name(0) == "shared"


def test_topological_orders_by_depth():
    deep = AND("inner", primary("deep_leaf", 0.1), primary("deep2", 0.1))
    tree = FaultTree(hazard("H", OR_gate=[
        AND("outer", primary("shallow", 0.1), deep)]))
    manager = BDDManager()
    to_bdd(tree, manager, order="topological")
    names = [manager.var_name(i) for i in range(manager.var_count)]
    assert names.index("shallow") < names.index("deep_leaf")


@pytest.mark.parametrize("order", VARIABLE_ORDERS)
def test_orders_preserve_semantics(order, shared_leaf_tree):
    """Every heuristic yields the same function: same probability, same
    minimal cut sets — only the diagram shape may differ."""
    manager = BDDManager()
    root = to_bdd(shared_leaf_tree, manager, order=order)
    probs = {"shared": 0.3, "e0": 0.1, "e1": 0.1, "e2": 0.1, "e3": 0.1}
    # P(shared and (e0 or e1 or e2 or e3)) = 0.3 * (1 - 0.9^4)
    assert probability(manager, root, probs) == \
        pytest.approx(0.3 * (1.0 - 0.9 ** 4))
    assert set(minimal_cut_sets(manager, root)) == {
        frozenset({"shared", f"e{i}"}) for i in range(4)}


def test_orders_respect_inhibit_conditions():
    cond = condition("env", 0.5)
    guarded = INHIBIT("guarded", AND("pair", primary("a", 0.1),
                                     primary("b", 0.1)), cond)
    tree = FaultTree(hazard("H", OR_gate=[guarded, primary("c", 0.1)]))
    for order in VARIABLE_ORDERS:
        manager = BDDManager()
        root = to_bdd(tree, manager, order=order)
        assert manager.support(root) == {"a", "b", "c", "env"}


def test_weighted_is_linear_on_shared_diamond_chains():
    """A chain of diamonds (each gate referenced twice by its parent)
    has exponentially many root-to-leaf paths; the weighted heuristic
    must traverse each gate once, not once per path."""
    node = AND("g0", primary("x0", 0.1), primary("y0", 0.1))
    for i in range(1, 30):
        node = AND(f"g{i}",
                   AND(f"l{i}", primary(f"x{i}", 0.1), node),
                   AND(f"r{i}", primary(f"y{i}", 0.1), node))
    tree = FaultTree(hazard("H", OR_gate=[node]))
    manager = BDDManager()
    to_bdd(tree, manager, order="weighted")  # must return immediately
    assert manager.var_count == 60


def test_weighted_can_beat_declaration():
    """The textbook case: interleaved vs. grouped ordering of
    ``(a1 and b1) or (a2 and b2) or ...`` — declaration order groups
    pairs (linear size) while an adversarial interleaving is
    exponential; the weighted heuristic restores the grouped order."""
    pairs = [AND(f"p{i}", primary(f"a{i}", 0.1), primary(f"b{i}", 0.1))
             for i in range(6)]
    tree = FaultTree(hazard("H", OR_gate=pairs))
    grouped = BDDManager()
    grouped_root = to_bdd(tree, grouped, order="declaration")

    adversarial = BDDManager()
    for i in range(6):
        adversarial.add_var(f"a{i}")
    for i in range(6):
        adversarial.add_var(f"b{i}")
    adversarial_root = to_bdd(tree, adversarial)

    weighted = BDDManager()
    weighted_root = to_bdd(tree, weighted, order="weighted")

    assert grouped.size(grouped_root) < adversarial.size(adversarial_root)
    assert weighted.size(weighted_root) == grouped.size(grouped_root)
