"""Deep-tree regression: 5,000-gate chains must never hit the recursion
limit.

The seed kernel's recursive ``_apply`` / ``negate`` / MCS walks (and the
recursive tree validation and translation) all blew up on gate chains a
few hundred levels deep.  Every traversal is now an explicit stack; these
tests build a 5,000-gate chain and run the whole analysis pipeline —
validation, BDD construction, negation, cut sets (both routes) and exact
probability — with the default recursion limit untouched.
"""

import sys

import pytest

from repro.bdd import BDDManager, minimal_cut_sets, probability
from repro.fta import mocus, to_bdd
from tests.bdd._reference import build_chain_tree

DEPTH = 5_000


@pytest.fixture(autouse=True)
def standard_recursion_limit():
    """Pin the stock CPython limit so the tests prove the library needs
    no more, even when a debugger/plugin raised the ambient limit."""
    previous = sys.getrecursionlimit()
    sys.setrecursionlimit(1000)
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)


@pytest.fixture(scope="module")
def chain_tree():
    """The shared 5,000-gate chain workload (see ``build_chain_tree``)."""
    return build_chain_tree(DEPTH)


def test_deep_tree_validates_and_builds_bdd(chain_tree):
    manager = BDDManager()
    root = to_bdd(chain_tree, manager)
    assert manager.size(root) >= DEPTH


def test_deep_tree_negates(chain_tree):
    manager = BDDManager()
    root = to_bdd(chain_tree, manager)
    negated = manager.negate(root)
    assert manager.negate(negated) is root
    assert manager.apply_and(root, negated).index == 0


def test_deep_tree_minimal_cut_sets_both_routes(chain_tree):
    manager = BDDManager()
    root = to_bdd(chain_tree, manager)
    bdd_cuts = minimal_cut_sets(manager, root)
    assert len(bdd_cuts) == 25  # one cut per OR branch + the full chain
    mocus_cuts = mocus(chain_tree)
    assert {cs.failures for cs in mocus_cuts} == set(bdd_cuts)


def test_deep_tree_exact_probability(chain_tree):
    manager = BDDManager()
    root = to_bdd(chain_tree, manager)
    probs = {f"e{i}": 1.0 for i in range(DEPTH + 2)}
    assert probability(manager, root, probs) == 1.0
    probs["e0"] = 0.0
    assert probability(manager, root, probs) == 0.0


def test_deep_pure_and_chain_on_raw_manager():
    manager = BDDManager()
    names = [f"v{i}" for i in range(DEPTH)]
    for name in names:
        manager.add_var(name)
    # Fold deepest-variable-first so every apply is O(1); folding the
    # other way is quadratic (each step re-descends the whole chain).
    node = manager.var(names[-1])
    for name in reversed(names[:-1]):
        node = manager.apply_and(manager.var(name), node)
    assert manager.size(node) == DEPTH
    assert manager.sat_count(node) == 1
    cuts = minimal_cut_sets(manager, node)
    assert len(cuts) == 1 and len(cuts[0]) == DEPTH
    negated = manager.negate(node)
    assert manager.sat_count(negated) == 2 ** DEPTH - 1
    assert manager.restrict(node, "v0", False).index == 0
