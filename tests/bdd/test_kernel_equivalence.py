"""Arena kernel == seed kernel, bitmask MOCUS == frozenset MOCUS.

Property tests pinning the rewritten analysis kernel against the seed's
linked-node/frozenset implementation (kept executable in
``tests/bdd/_reference.py``): on random trees — shared events, K-of-N,
INHIBIT conditions, house events, and XOR/NOT for the BDD route — the
minimal cut set families must be *identical including ordering*, and the
exact probabilities must be *bit-identical* (``==``, not approximately).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDDManager, minimal_cut_sets, probability
from repro.fta import CutSetCollection, mocus, to_bdd
from repro.fta.cutsets import minimize
from repro.fta.dsl import (
    AND,
    INHIBIT,
    KOFN,
    NOT,
    OR,
    XOR,
    condition,
    hazard,
    house,
    primary,
)
from repro.fta.quantify import probability_map
from repro.fta.tree import FaultTree
from tests.bdd._reference import (
    RefManager,
    ref_minimal_cut_sets,
    ref_minimize,
    ref_mocus_cut_sets,
    ref_probability,
    ref_to_bdd,
)


def random_tree(rng: random.Random, coherent: bool) -> FaultTree:
    """A random fault tree with shared leaves, K-of-N, INHIBIT and house
    events; XOR/NOT gates only when ``coherent`` is False."""
    n_leaves = rng.randint(3, 7)
    leaves = [primary(f"e{i}", round(rng.uniform(0.05, 0.6), 3))
              for i in range(n_leaves)]
    houses = [house(f"h{i}", rng.random() < 0.5) for i in range(2)]
    conditions = [condition(f"c{i}", round(rng.uniform(0.1, 0.9), 3))
                  for i in range(2)]
    counter = [0]

    def gate(depth):
        counter[0] += 1
        name = f"g{counter[0]}"
        if depth == 0:
            return rng.choice(leaves)
        kinds = ["and", "or", "kofn", "inhibit", "leaf", "house"]
        if not coherent:
            kinds += ["xor", "not"]
        kind = rng.choice(kinds)
        if kind == "leaf":
            return rng.choice(leaves)
        if kind == "house":
            # Keep the hazard satisfiable: mix a house with a real leaf.
            return OR(name, rng.choice(houses), rng.choice(leaves))
        children = [gate(depth - 1) for _ in range(rng.randint(2, 3))]
        if kind == "and":
            return AND(name, *children)
        if kind == "or":
            return OR(name, *children)
        if kind == "kofn":
            return KOFN(name, rng.randint(1, len(children)), *children)
        if kind == "xor":
            return XOR(name, *children[:2])
        if kind == "not":
            return NOT(name, children[0])
        return INHIBIT(name, children[0], rng.choice(conditions))

    children = [gate(rng.randint(1, 3)) for _ in range(rng.randint(2, 3))]
    return FaultTree(hazard("H", OR_gate=children))


class TestBDDRoute:
    @given(st.integers(0, 100_000))
    @settings(max_examples=60, deadline=None)
    def test_mcs_and_probability_match_seed_kernel(self, seed):
        rng = random.Random(seed)
        tree = random_tree(rng, coherent=rng.random() < 0.7)
        probs = probability_map(tree)

        arena = BDDManager()
        arena_root = to_bdd(tree, arena)
        ref = RefManager()
        ref_root = ref_to_bdd(tree, ref)

        # Same variable order by construction...
        assert [arena.var_name(i) for i in range(arena.var_count)] == \
            [ref.var_name(i) for i in range(ref.var_count)]
        # ...identical cut set families, including the ordering...
        assert minimal_cut_sets(arena, arena_root) == \
            ref_minimal_cut_sets(ref, ref_root)
        # ...and bit-identical exact probabilities.
        assert probability(arena, arena_root, probs) == \
            ref_probability(ref, ref_root, probs)

    @given(st.integers(0, 100_000))
    @settings(max_examples=30, deadline=None)
    def test_restricted_probabilities_match_seed_kernel(self, seed):
        rng = random.Random(seed)
        tree = random_tree(rng, coherent=True)
        probs = probability_map(tree)
        name = rng.choice(sorted(probs))

        arena = BDDManager()
        root = to_bdd(tree, arena)
        ref = RefManager()
        ref_root = ref_to_bdd(tree, ref)
        if name not in arena.support(root):
            return
        for value in (False, True):
            restricted = arena.restrict(root, name, value)
            ref_restricted = ref.restrict(ref_root, name, value)
            remaining = {k: v for k, v in probs.items() if k != name}
            # Restrict-then-evaluate must agree with the seed kernel
            # bit-for-bit (isomorphic cofactor diagrams, identical
            # per-node arithmetic).
            assert probability(arena, restricted, remaining) == \
                ref_probability(ref, ref_restricted, remaining)


class TestMOCUSRoute:
    @given(st.integers(0, 100_000))
    @settings(max_examples=60, deadline=None)
    def test_bitmask_mocus_matches_frozenset_mocus(self, seed):
        rng = random.Random(seed)
        tree = random_tree(rng, coherent=True)

        fast = mocus(tree)
        reference = CutSetCollection(tree.top.name,
                                     ref_mocus_cut_sets(tree))
        # Identical cut sets in identical collection order.
        assert list(fast) == list(reference)

    @given(st.integers(0, 100_000))
    @settings(max_examples=60, deadline=None)
    def test_bitmask_minimize_matches_frozenset_minimize(self, seed):
        from repro.fta.cutsets import CutSet
        rng = random.Random(seed)
        names = [f"x{i}" for i in range(6)]
        conds = [f"c{i}" for i in range(3)]
        cut_sets = []
        for _ in range(rng.randint(0, 14)):
            failures = frozenset(rng.sample(names, rng.randint(1, 4)))
            conditions = frozenset(
                rng.sample(conds, rng.randint(0, 2)))
            cut_sets.append(CutSet(failures, conditions))
        # Same kept cut sets in the same (stable sort) order.
        assert minimize(cut_sets) == ref_minimize(cut_sets)
