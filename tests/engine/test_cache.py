"""Result cache: LRU behaviour, statistics, JSON persistence."""

import json
import os

import pytest

from repro.engine import ResultCache
from repro.engine.cache import MISS
from repro.errors import EngineError


class TestLRU:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get("k") is MISS
        cache.put("k", 1.0)
        assert cache.get("k") == 1.0
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_cached_none_is_distinguished_from_miss(self):
        cache = ResultCache(capacity=4)
        cache.put("k", None)
        assert cache.get("k") is None
        assert cache.get("other") is MISS

    def test_eviction_order_is_least_recently_used(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a; b is now LRU
        cache.put("c", 3)
        assert cache.get("b") is MISS
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_put_refreshes_recency(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)      # overwrite refreshes a
        cache.put("c", 3)
        assert cache.get("b") is MISS
        assert cache.get("a") == 10

    def test_capacity_must_be_positive(self):
        with pytest.raises(EngineError):
            ResultCache(capacity=0)

    def test_clear_keeps_stats(self):
        cache = ResultCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = ResultCache(capacity=8, path=path)
        cache.put("a", 0.125)
        cache.put("b", {"points": [{"x": 1.0}], "values": [0.5]})
        assert cache.save() == 2

        loaded = ResultCache(capacity=8, path=path)
        assert loaded.get("a") == 0.125
        assert loaded.get("b") == {"points": [{"x": 1.0}],
                                   "values": [0.5]}

    def test_non_persistable_entries_stay_in_memory(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = ResultCache(capacity=8, path=path)
        cache.put("mem", object(), persist=False)
        cache.put("disk", 1.0)
        assert cache.save() == 1
        loaded = ResultCache(capacity=8, path=path)
        assert loaded.get("mem") is MISS
        assert loaded.get("disk") == 1.0

    def test_save_without_path_raises(self):
        with pytest.raises(EngineError):
            ResultCache(capacity=2).save()

    def test_explicit_load_rejects_corrupt_file(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        with pytest.raises(EngineError):
            ResultCache(capacity=2).load(str(path))

    def test_constructor_quarantines_corrupt_file(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        cache = ResultCache(capacity=2, path=str(path))
        assert len(cache) == 0
        assert cache.get("anything") is MISS
        assert (tmp_path / "cache.json.corrupt").exists()
        # The store is usable again: a save-and-reload round trips.
        cache.put("k", 1.0)
        cache.save()
        assert ResultCache(capacity=2, path=str(path)).get("k") == 1.0

    def test_explicit_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(EngineError):
            ResultCache(capacity=2).load(str(path))

    def test_constructor_quarantines_unknown_version(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"version": 99, "entries": {}}))
        cache = ResultCache(capacity=2, path=str(path))
        assert len(cache) == 0
        assert (tmp_path / "cache.json.corrupt").exists()

    def test_save_is_atomic(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = ResultCache(capacity=2, path=path)
        cache.put("a", 1.0)
        cache.save()
        cache.put("b", 2.0)
        cache.save()
        leftovers = [f for f in os.listdir(tmp_path)
                     if f.endswith(".tmp")]
        assert leftovers == []
        assert set(ResultCache(capacity=4, path=path)._entries) == \
            {"a", "b"}

    def test_loading_does_not_count_as_workload(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = ResultCache(capacity=8, path=path)
        cache.put("a", 1.0)
        cache.save()
        loaded = ResultCache(capacity=8, path=path)
        assert loaded.stats.puts == 0
        assert loaded.stats.lookups == 0
