"""SimulationJob: validation, fingerprints, sharding, caching, codecs."""

from dataclasses import replace

import pytest

from repro.elbtunnel import (
    DesignVariant,
    SimulationConfig,
    TrafficConfig,
    simulate,
    simulate_batch,
)
from repro.engine import Engine, SimulationJob, WorkerPool
from repro.errors import EngineError
from repro.sim.batch import replication_seeds

TRAFFIC = TrafficConfig(ohv_rate=1 / 120.0, p_correct=1.0,
                        hv_odfinal_rate=0.13)


def config(**kwargs):
    defaults = dict(duration=60.0 * 24 * 5, timer1=30.0, timer2=15.6,
                    variant=DesignVariant.WITHOUT_LB4, traffic=TRAFFIC,
                    seed=0)
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


class TestValidation:
    def test_rejects_non_config(self):
        with pytest.raises(EngineError):
            SimulationJob({"duration": 10.0})

    def test_rejects_bad_replications(self):
        with pytest.raises(EngineError):
            SimulationJob(config(), replications=0)

    def test_rejects_bad_shards(self):
        with pytest.raises(EngineError):
            SimulationJob(config(), replications=4, shards=0)

    def test_seed_defaults_to_config_seed(self):
        assert SimulationJob(config(seed=9)).seed == 9
        assert SimulationJob(config(seed=9), seed=2).seed == 2


class TestFingerprint:
    def test_identical_requests_share_a_key(self):
        a = SimulationJob(config(), replications=4)
        b = SimulationJob(config(), replications=4)
        assert a.fingerprint() == b.fingerprint()

    def test_key_covers_the_simulation_config(self):
        base = SimulationJob(config(), replications=4)
        for changed in (config(timer2=12.0),
                        config(variant=DesignVariant.WITH_LB4),
                        config(od_miss_probability=0.1),
                        config(traffic=replace(TRAFFIC,
                                               hv_odfinal_rate=0.2)),
                        config(single_ohv_assumption=True),
                        config(seed=1)):
            assert SimulationJob(changed, replications=4).fingerprint() \
                != base.fingerprint()

    def test_key_covers_replications_and_seed(self):
        base = SimulationJob(config(), replications=4)
        assert SimulationJob(config(),
                             replications=8).fingerprint() != \
            base.fingerprint()
        assert SimulationJob(config(), replications=4,
                             seed=5).fingerprint() != base.fingerprint()

    def test_superseded_config_seed_does_not_split_the_key(self):
        """An explicit seed overrides the config's; two such jobs run
        byte-identical replications and must share a cache entry."""
        a = SimulationJob(config(seed=99), replications=4, seed=123)
        b = SimulationJob(config(seed=0), replications=4, seed=123)
        assert a.fingerprint() == b.fingerprint()
        assert list(a.run_serial().counters.rows()) == \
            list(b.run_serial().counters.rows())

    def test_shards_are_an_execution_detail(self):
        assert SimulationJob(config(), replications=4,
                             shards=2).fingerprint() == \
            SimulationJob(config(), replications=4,
                          shards=7).fingerprint()


class TestExecution:
    def test_single_replication_reproduces_scalar_simulate(self):
        result = SimulationJob(config(seed=3)).run_serial()
        assert result.counters.row(0) == \
            simulate(config(seed=3)).counters()

    def test_matches_in_process_batch(self):
        job = SimulationJob(config(), replications=6)
        assert list(job.run_serial().counters.rows()) == \
            list(simulate_batch(config(), 6).counters.rows())

    def test_seed_plan_matches_replication_seeds(self):
        job = SimulationJob(config(), replications=5, seed=11)
        assert job.seed_plan() == replication_seeds(11, 5)

    @pytest.mark.parametrize("workers,shards", [(2, None), (3, 2),
                                                (4, 8), (2, 16)])
    def test_worker_and_shard_invariance(self, workers, shards):
        """The acceptance contract: layout cannot perturb any counter."""
        reference = SimulationJob(config(),
                                  replications=8).run_serial()
        sharded = SimulationJob(config(), replications=8,
                                shards=shards).run(WorkerPool(workers))
        assert list(sharded.counters.rows()) == \
            list(reference.counters.rows())
        assert sharded.seeds == reference.seeds

    def test_describe_names_the_workload(self):
        text = SimulationJob(config(), replications=4).describe()
        assert "without_LB4" in text
        assert "4 replications" in text


class TestEngineIntegration:
    def test_cache_hit_on_identical_request(self):
        engine = Engine(workers=1)
        first = engine.run(SimulationJob(config(), replications=3))
        second = engine.run(SimulationJob(config(), replications=3))
        assert list(first.counters.rows()) == \
            list(second.counters.rows())
        stats = engine.stats()
        assert stats.executed == 1
        assert stats.cache["hits"] == 1

    def test_disk_cache_round_trip(self, tmp_path):
        path = str(tmp_path / "cache.json")
        engine = Engine(workers=1, cache_path=path)
        result = engine.run(SimulationJob(config(), replications=3))
        engine.save_cache()

        fresh = Engine(workers=1, cache_path=path)
        cached = fresh.run(SimulationJob(config(), replications=3))
        assert fresh.executed == 0
        assert list(cached.counters.rows()) == \
            list(result.counters.rows())
        assert cached.seeds == result.seeds
