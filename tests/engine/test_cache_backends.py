"""Cross-backend cache conformance: every backend behaves identically.

One suite runs against both the JSON/LRU fallback and the sqlite store:
round trips (payloads value-equal across backends), LRU eviction,
statistics, warming manifests, persistence across instances, and
corruption recovery.  Backend-specific behaviour (TTL, byte budgets,
WAL concurrency) gets its own classes below.
"""

import json
import multiprocessing
import os
import sqlite3
import threading
import time

import pytest

from repro.engine import (
    Engine,
    QuantifyJob,
    ResultCache,
    SqliteCache,
    create_cache,
    read_manifest,
    write_manifest,
)
from repro.engine.cache import MISS
from repro.errors import EngineError
from repro.fta import FaultTree
from repro.fta.dsl import AND, hazard, primary


def small_tree() -> FaultTree:
    """A two-leaf tree with default probabilities (cacheable as-is)."""
    return FaultTree(hazard("H", gate=AND(
        "g", primary("a", 0.01), primary("b", 0.02)).gate))

#: Representative persistable payloads: scalars, matrix-shaped sweep
#: results, Monte Carlo envelopes, nested metadata.
PAYLOADS = {
    "scalar": 0.0003196,
    "none": None,
    "sweep": {"points": [{"T1": float(i), "T2": float(j)}
                         for i in range(8) for j in range(8)],
              "values": [0.001 * i for i in range(64)]},
    "mc": {"probability": 2.5e-4, "ci_low": 1e-4, "ci_high": 4e-4,
           "samples": 100000, "confidence": 0.95},
    "meta": {"flags": [True, False], "name": "tree-ü",
             "counts": list(range(40)), "empty": [], "sub": {"x": [0, 1.5]}},
}


@pytest.fixture(params=["json", "sqlite"])
def make_cache(request, tmp_path):
    """Factory building a persistent cache of the parametrized backend.

    Repeated calls reuse the same store path, so a second instance sees
    the first one's persisted entries.  The sqlite backend is built with
    ``recency_resolution=0`` so recency-sensitive LRU assertions hold
    exactly (the production default coalesces recency writes).
    """
    suffix = {"json": "store.json", "sqlite": "store.db"}[request.param]
    path = str(tmp_path / suffix)

    def _make(capacity=64, **kwargs):
        if request.param == "sqlite":
            return SqliteCache(path, capacity=capacity,
                               recency_resolution=0.0, **kwargs)
        return ResultCache(capacity=capacity, path=path)

    _make.backend = request.param
    _make.path = path
    return _make


class TestConformance:
    def test_round_trip_values(self, make_cache):
        cache = make_cache()
        for key, value in PAYLOADS.items():
            cache.put(key, value)
        for key, value in PAYLOADS.items():
            assert cache.get(key) == value
        assert cache.get("absent") is MISS

    def test_round_trip_across_instances(self, make_cache):
        cache = make_cache()
        for key, value in PAYLOADS.items():
            cache.put(key, value)
        cache.save()
        cache.close()
        reloaded = make_cache()
        for key, value in PAYLOADS.items():
            assert reloaded.get(key) == value

    def test_stats_counters(self, make_cache):
        cache = make_cache()
        assert cache.get("k") is MISS
        cache.put("k", 1.5)
        assert cache.get("k") == 1.5
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.puts == 1
        assert cache.stats.hit_rate == 0.5

    def test_peek_skips_stats_and_recency(self, make_cache):
        cache = make_cache(capacity=2)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        assert cache.peek("a") == 1.0
        assert cache.peek("absent") is MISS
        assert cache.stats.lookups == 0
        # peek did not refresh "a": it is still the LRU victim.
        cache.put("c", 3.0)
        assert cache.peek("a") is MISS
        assert cache.peek("b") == 2.0

    def test_lru_eviction_order(self, make_cache):
        cache = make_cache(capacity=2)
        cache.put("a", 1.0)
        time.sleep(0.002)
        cache.put("b", 2.0)
        time.sleep(0.002)
        cache.get("a")                # refresh a; b is now LRU
        time.sleep(0.002)
        cache.put("c", 3.0)
        assert cache.get("b") is MISS
        assert cache.get("a") == 1.0
        assert cache.get("c") == 3.0
        assert cache.stats.evictions == 1

    def test_contains_and_len(self, make_cache):
        cache = make_cache()
        cache.put("a", 1.0)
        assert "a" in cache
        assert "b" not in cache
        assert len(cache) == 1

    def test_clear_keeps_stats(self, make_cache):
        cache = make_cache()
        cache.put("a", 1.0)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is MISS
        assert cache.stats.hits == 1

    def test_memory_only_entries_do_not_persist(self, make_cache):
        cache = make_cache()
        marker = object()
        cache.put("mem", marker, persist=False)
        cache.put("disk", 1.0)
        assert cache.get("mem") is marker
        cache.save()
        cache.close()
        reloaded = make_cache()
        assert reloaded.get("mem") is MISS
        assert reloaded.get("disk") == 1.0

    def test_hot_keys_order(self, make_cache):
        cache = make_cache()
        for i in range(4):
            cache.put(f"k{i}", float(i))
            time.sleep(0.002)
        cache.get("k0")               # k0 becomes hottest
        time.sleep(0.002)
        hot = cache.hot_keys(limit=2)
        assert hot[0] == "k0"
        assert len(hot) == 2

    def test_warming_from_manifest(self, make_cache, tmp_path):
        cache = make_cache()
        for key, value in PAYLOADS.items():
            cache.put(key, value)
        manifest = str(tmp_path / "hot.json")
        assert write_manifest(
            manifest, list(PAYLOADS) + ["gone"]) == len(PAYLOADS) + 1
        assert read_manifest(manifest) == list(PAYLOADS) + ["gone"]
        cache.save()
        cache.close()
        fresh = make_cache()
        warmed = fresh.warm_from_manifest(manifest)
        assert warmed == len(PAYLOADS)       # "gone" was never stored
        assert fresh.stats.lookups == 0      # warming is not workload
        for key, value in PAYLOADS.items():
            assert fresh.get(key) == value

    def test_warming_marks_entries_hot(self, make_cache):
        cache = make_cache(capacity=2)
        cache.put("cold", 1.0)
        time.sleep(0.002)
        cache.put("other", 2.0)
        time.sleep(0.002)
        assert cache.warm(["cold"]) == 1
        time.sleep(0.002)
        cache.put("new", 3.0)        # evicts "other", not warmed "cold"
        assert cache.peek("cold") == 1.0
        assert cache.peek("other") is MISS

    def test_corrupt_store_recovers_empty(self, make_cache):
        with open(make_cache.path, "wb") as handle:
            handle.write(b"\x13garbage that is neither json nor sqlite")
        cache = make_cache()
        assert len(cache) == 0
        assert cache.get("anything") is MISS
        assert os.path.exists(make_cache.path + ".corrupt")
        # And the store works again afterwards.
        cache.put("k", 1.0)
        cache.save()
        cache.close()
        assert make_cache().get("k") == 1.0

    def test_info_payload(self, make_cache):
        cache = make_cache(capacity=8)
        cache.put("a", 1.0)
        cache.get("a")
        cache.get("b")
        info = cache.info()
        assert info["backend"] == make_cache.backend
        assert info["size"] == 1
        assert info["capacity"] == 8
        assert info["hits"] == 1 and info["misses"] == 1
        assert "evictions" in info
        assert json.dumps(info)      # JSON-safe for /stats

    def test_engine_round_trip_through_backend(self, make_cache):
        engine = Engine(workers=1, cache=make_cache())
        first = engine.run_shared(QuantifyJob(small_tree()))
        second = engine.run_shared(QuantifyJob(small_tree()))
        assert not first.cache_hit and second.cache_hit
        assert second.result == first.result
        assert engine.executed == 1
        assert engine.stats().cache_backend == make_cache.backend


class TestCrossBackend:
    def test_payloads_value_equal_across_backends(self, tmp_path):
        json_cache = ResultCache(capacity=64,
                                 path=str(tmp_path / "a.json"))
        sqlite_cache = SqliteCache(str(tmp_path / "a.db"), capacity=64)
        for key, value in PAYLOADS.items():
            json_cache.put(key, value)
            sqlite_cache.put(key, value)
        for key in PAYLOADS:
            assert json_cache.get(key) == sqlite_cache.get(key)

    def test_engine_results_identical_across_backends(self, tmp_path):
        tree = small_tree()
        results = {}
        for backend, name in (("json", "c.json"), ("sqlite", "c.db")):
            engine = Engine(workers=1, cache_path=str(tmp_path / name),
                            cache_backend=backend)
            cold = engine.run_shared(QuantifyJob(tree))
            warm = engine.run_shared(QuantifyJob(tree))
            assert warm.cache_hit
            assert warm.result == cold.result
            results[backend] = warm.result
        assert results["json"] == results["sqlite"]


class TestCreateCache:
    def test_auto_picks_backend_by_suffix(self, tmp_path):
        for suffix in (".db", ".sqlite", ".sqlite3"):
            cache = create_cache(path=str(tmp_path / f"s{suffix}"))
            assert cache.name == "sqlite"
        assert create_cache(path=str(tmp_path / "s.json")).name == "json"
        assert create_cache().name == "json"

    def test_explicit_backends(self, tmp_path):
        assert create_cache(backend="json").name == "json"
        cache = create_cache(backend="sqlite",
                             path=str(tmp_path / "x.db"),
                             ttl=60.0, max_bytes=1 << 20)
        assert cache.name == "sqlite"
        assert cache.ttl == 60.0

    def test_rejects_unknown_backend(self):
        with pytest.raises(EngineError):
            create_cache(backend="redis")

    def test_sqlite_requires_path(self):
        with pytest.raises(EngineError):
            create_cache(backend="sqlite")

    def test_json_rejects_ttl_and_budget(self, tmp_path):
        with pytest.raises(EngineError):
            create_cache(backend="json", ttl=10.0)
        with pytest.raises(EngineError):
            create_cache(backend="json", max_bytes=100)

    def test_engine_wires_backend_selection(self, tmp_path):
        engine = Engine(workers=1,
                        cache_path=str(tmp_path / "engine.db"))
        assert engine.cache.name == "sqlite"
        engine = Engine(workers=1,
                        cache_path=str(tmp_path / "engine.json"))
        assert engine.cache.name == "json"


class TestSqliteSpecific:
    def test_ttl_expiry_reads_as_miss(self, tmp_path):
        cache = SqliteCache(str(tmp_path / "t.db"), ttl=0.05)
        cache.put("k", 1.0)
        assert cache.get("k") == 1.0
        time.sleep(0.1)
        assert cache.get("k") is MISS
        assert cache.stats.evictions == 1
        assert "k" not in cache

    def test_ttl_purge_on_put(self, tmp_path):
        cache = SqliteCache(str(tmp_path / "t.db"), ttl=0.05)
        cache.put("old", 1.0)
        time.sleep(0.1)
        cache.put("new", 2.0)
        assert cache.stats.evictions == 1
        assert len(cache) == 1

    def test_max_bytes_evicts_oldest(self, tmp_path):
        cache = SqliteCache(str(tmp_path / "b.db"), max_bytes=4096,
                            recency_resolution=0.0)
        big = [1.0] * 40               # ~370 bytes encoded
        for i in range(32):
            cache.put(f"k{i}", big)
            time.sleep(0.001)
        assert cache.stats.evictions > 0
        total = sum(row[0] for row in sqlite3.connect(
            str(tmp_path / "b.db")).execute(
            "SELECT nbytes FROM cache"))
        assert total <= 4096
        assert cache.peek("k31") == big       # newest survives
        assert cache.peek("k0") is MISS       # oldest evicted

    def test_oversized_entry_still_lands(self, tmp_path):
        cache = SqliteCache(str(tmp_path / "b.db"), max_bytes=64)
        cache.put("huge", [1.0] * 1000)
        assert cache.get("huge") == [1.0] * 1000

    def test_ttl_validation(self, tmp_path):
        with pytest.raises(EngineError):
            SqliteCache(str(tmp_path / "x.db"), ttl=0)
        with pytest.raises(EngineError):
            SqliteCache(str(tmp_path / "x.db"), max_bytes=-1)

    def test_wal_mode_is_active(self, tmp_path):
        cache = SqliteCache(str(tmp_path / "w.db"))
        cache.put("k", 1.0)
        mode = cache._conn().execute(
            "PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"

    def test_save_to_other_path_backs_up(self, tmp_path):
        cache = SqliteCache(str(tmp_path / "a.db"))
        cache.put("k", [1.0] * 100)
        assert cache.save(str(tmp_path / "copy.db")) == 1
        copy = SqliteCache(str(tmp_path / "copy.db"))
        assert copy.get("k") == [1.0] * 100

    def test_load_merges_other_store(self, tmp_path):
        donor = SqliteCache(str(tmp_path / "donor.db"))
        donor.put("x", 1.0)
        donor.close()
        cache = SqliteCache(str(tmp_path / "main.db"))
        cache.put("y", 2.0)
        assert cache.load(str(tmp_path / "donor.db")) == 1
        assert cache.peek("x") == 1.0 and cache.peek("y") == 2.0

    def test_load_rejects_garbage_file(self, tmp_path):
        garbage = tmp_path / "garbage.db"
        garbage.write_bytes(b"not a database at all")
        cache = SqliteCache(str(tmp_path / "main.db"))
        with pytest.raises(EngineError):
            cache.load(str(garbage))

    def test_truncated_database_recovers(self, tmp_path):
        path = str(tmp_path / "t.db")
        cache = SqliteCache(path)
        cache.put("k", [1.0] * 500)
        cache.save()
        cache.close()
        with open(path, "r+b") as handle:   # truncate mid-page
            handle.truncate(100)
        recovered = SqliteCache(path)
        assert recovered.get("k") is MISS
        recovered.put("k2", 2.0)
        assert recovered.get("k2") == 2.0

    def test_concurrent_threads_read_and_write(self, tmp_path):
        cache = SqliteCache(str(tmp_path / "c.db"), capacity=512)
        for i in range(16):
            cache.put(f"seed-{i}", [float(i)] * 32)
        errors = []

        def hammer(index):
            try:
                for i in range(40):
                    key = f"seed-{(index + i) % 16}"
                    assert cache.get(key) == [float((index + i) % 16)] * 32
                    cache.put(f"w{index}-{i}", {"v": i})
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert cache.stats.hits == 8 * 40
        assert cache.stats.puts == 16 + 8 * 40


def _read_worker(path, keys, out):
    cache = SqliteCache(path)
    try:
        out.put([cache.get(key) is not MISS for key in keys])
    finally:
        cache.close()


class TestMultiProcess:
    def test_processes_share_one_store(self, tmp_path):
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            pytest.skip("fork start method unavailable")
        path = str(tmp_path / "shared.db")
        cache = SqliteCache(path)
        keys = [f"k{i}" for i in range(8)]
        for key in keys:
            cache.put(key, PAYLOADS["sweep"])
        cache.save()
        out = context.Queue()
        procs = [context.Process(target=_read_worker,
                                 args=(path, keys, out))
                 for _ in range(3)]
        for proc in procs:
            proc.start()
        results = [out.get(timeout=30) for _ in procs]
        for proc in procs:
            proc.join(timeout=30)
        assert all(all(found) for found in results)
