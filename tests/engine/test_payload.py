"""Binary payload codec: exact round trips for JSON-safe values."""

import json
import random

import pytest

from repro.engine.payload import (
    MAGIC,
    MIN_PACK,
    decode_payload,
    encode_payload,
)
from repro.errors import EngineError


def roundtrip(value):
    blob = encode_payload(value)
    assert isinstance(blob, bytes)
    decoded = decode_payload(blob)
    assert decoded == value
    return blob, decoded


class TestRoundTrip:
    def test_scalars(self):
        for value in (None, True, False, 0, -7, 3.5, "text", "",
                      1.5e-300, 2 ** 80):
            roundtrip(value)

    def test_plain_containers(self):
        roundtrip({"a": [1, 2.5, "x"], "b": {"nested": [None, True]}})
        roundtrip([])
        roundtrip({})

    def test_long_float_list_is_packed(self):
        values = [i * 0.1 for i in range(1000)]
        blob, decoded = roundtrip(values)
        # Binary floats: ~8 bytes each, far below JSON text.
        assert len(blob) < len(json.dumps(values).encode())
        assert all(type(v) is float for v in decoded)

    def test_long_int_list_is_packed(self):
        blob, decoded = roundtrip(list(range(500)))
        assert all(type(v) is int for v in decoded)

    def test_short_lists_stay_json(self):
        values = [0.25] * (MIN_PACK - 1)
        blob, _decoded = roundtrip(values)
        # No array section: the blob is header + skeleton only.
        assert blob.count(b"__repro_blob__") == 0

    def test_mixed_lists_preserve_element_types(self):
        values = [0, 1.5] * 32          # mixed int/float: not packable
        _blob, decoded = roundtrip(values)
        assert [type(v) for v in decoded] == [type(v) for v in values]

    def test_bool_lists_are_never_packed(self):
        _blob, decoded = roundtrip([True, False] * 32)
        assert all(type(v) is bool for v in decoded)

    def test_huge_ints_fall_back_to_json(self):
        values = [2 ** 70] * 32
        _blob, decoded = roundtrip(values)
        assert decoded == values

    def test_floats_are_bit_exact(self):
        values = [random.Random(0).random() for _ in range(256)]
        _blob, decoded = roundtrip(values)
        assert all(a.hex() == b.hex() for a, b in zip(values, decoded))

    def test_nested_matrices(self):
        matrix = [[float(r * c) for c in range(64)] for r in range(32)]
        roundtrip({"rows": matrix, "meta": {"n": 32}})

    def test_marker_collision_is_escaped(self):
        tricky = {"__repro_blob__": 0, "payload": [1.0] * 64}
        roundtrip(tricky)
        roundtrip({"__repro_esc__": {"__repro_blob__": "x"}})
        roundtrip([{"__repro_esc__": 1}, {"__repro_blob__": [2.0] * 64}])

    def test_sweep_shaped_payload(self):
        # The exact shape SweepJob.encode_result persists.
        payload = {
            "points": [{"T1": float(i), "T2": float(j)}
                       for i in range(9) for j in range(9)],
            "values": [0.001 * i for i in range(81)],
        }
        roundtrip(payload)

    def test_random_json_values_roundtrip(self):
        rng = random.Random(42)

        def value(depth=0):
            kinds = ["int", "float", "str", "bool", "none"]
            if depth < 3:
                kinds += ["list", "dict", "floats", "ints"] * 2
            kind = rng.choice(kinds)
            if kind == "int":
                return rng.randint(-10 ** 12, 10 ** 12)
            if kind == "float":
                return rng.uniform(-1e6, 1e6)
            if kind == "str":
                return "".join(rng.choice("abc__repro_blob_ü")
                               for _ in range(rng.randint(0, 8)))
            if kind == "bool":
                return rng.random() < 0.5
            if kind == "none":
                return None
            if kind == "floats":
                return [rng.random() for _ in range(rng.randint(0, 40))]
            if kind == "ints":
                return [rng.randint(-5, 5)
                        for _ in range(rng.randint(0, 40))]
            if kind == "list":
                return [value(depth + 1)
                        for _ in range(rng.randint(0, 5))]
            return {f"k{i}": value(depth + 1)
                    for i in range(rng.randint(0, 5))}

        for _ in range(200):
            roundtrip(value())

    def test_equal_values_encode_identically(self):
        a = {"x": [1.0] * 32, "y": {"k": 1}}
        b = {"y": {"k": 1}, "x": [1.0] * 32}
        assert encode_payload(a) == encode_payload(b)


class TestErrors:
    def test_rejects_non_json_values(self):
        with pytest.raises(EngineError):
            encode_payload({"x": object()})

    def test_rejects_bad_magic(self):
        with pytest.raises(EngineError):
            decode_payload(b"NOPE" + b"\0" * 16)

    def test_rejects_truncation(self):
        blob = encode_payload({"values": [1.0] * 100})
        for cut in (0, 3, len(blob) // 2, len(blob) - 1):
            with pytest.raises(EngineError):
                decode_payload(blob[:cut])

    def test_rejects_future_version(self):
        blob = bytearray(encode_payload([1.0]))
        assert blob[:4] == MAGIC
        blob[4] = 99
        with pytest.raises(EngineError):
            decode_payload(bytes(blob))

    def test_rejects_garbage(self):
        with pytest.raises(EngineError):
            decode_payload(b"\x00" * 64)
