"""Worker pool: chunking, seed derivation, serial/parallel equivalence."""

import pytest

from repro.engine import WorkerPool, derive_seed
from repro.engine.pool import (
    chunk_indices,
    run_monte_carlo_shard,
    run_quantify_chunk,
)
from repro.errors import EngineError
from repro.fta import ConstraintPolicy, FaultTree, mocus
from repro.fta.dsl import OR, hazard, primary


def small_tree():
    return FaultTree(hazard("H", OR_gate=[primary("A", 0.1),
                                          primary("B", 0.2)]))


class TestChunking:
    def test_even_split(self):
        assert chunk_indices(6, 3) == [(0, 2), (2, 4), (4, 6)]

    def test_remainder_spread_over_leading_chunks(self):
        assert chunk_indices(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_more_chunks_than_items_collapses(self):
        assert chunk_indices(2, 5) == [(0, 1), (1, 2)]

    def test_covers_every_index_exactly_once(self):
        bounds = chunk_indices(23, 4)
        seen = [i for start, stop in bounds for i in range(start, stop)]
        assert seen == list(range(23))

    def test_rejects_empty(self):
        with pytest.raises(EngineError):
            chunk_indices(0, 3)


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(42, 3) == derive_seed(42, 3)

    def test_distinct_across_shards_and_seeds(self):
        seeds = {derive_seed(s, i) for s in range(4) for i in range(8)}
        assert len(seeds) == 32

    def test_no_additive_collision(self):
        # seed+shard arithmetic would make (1, 2) collide with (2, 1).
        assert derive_seed(1, 2) != derive_seed(2, 1)


class TestWorkerPool:
    def test_workers_default_to_cpu_count(self):
        assert WorkerPool().workers >= 1

    def test_rejects_zero_workers(self):
        with pytest.raises(EngineError):
            WorkerPool(0)

    def test_serial_map_preserves_order(self):
        pool = WorkerPool(1)
        assert not pool.is_parallel
        results = pool.map(run_monte_carlo_shard,
                           [(small_tree(), None, 100, seed)
                            for seed in (1, 2, 3)])
        assert [samples for _occ, samples in results] == [100, 100, 100]

    def test_empty_payloads(self):
        assert WorkerPool(2).map(run_monte_carlo_shard, []) == []

    def test_parallel_map_matches_serial(self):
        tree = small_tree()
        cut_sets = mocus(tree)
        chunk = [(i, {"A": 0.01 * (i + 1), "B": 0.2}) for i in range(8)]
        payloads = [
            (tree, cut_sets, "rare_event", ConstraintPolicy.INDEPENDENT,
             chunk[:4]),
            (tree, cut_sets, "rare_event", ConstraintPolicy.INDEPENDENT,
             chunk[4:]),
        ]
        serial = WorkerPool(1).map(run_quantify_chunk, payloads)
        parallel = WorkerPool(2).map(run_quantify_chunk, payloads)
        assert serial == parallel

    def test_worker_exceptions_propagate(self):
        tree = small_tree()
        payloads = [(tree, None, "no_such_method",
                     ConstraintPolicy.INDEPENDENT, [(0, {})])]
        from repro.errors import QuantificationError
        with pytest.raises(QuantificationError):
            WorkerPool(1).map(run_quantify_chunk, payloads)
