"""Job specs: validation, serial/parallel equivalence, result codecs."""

import pytest

from repro.core import (
    CostModel,
    HazardCost,
    Parameter,
    ParameterSpace,
    SafetyModel,
    constant,
    identity,
)
from repro.engine import (
    MonteCarloJob,
    OptimizeJob,
    QuantifyJob,
    SweepJob,
    SweepResult,
    WorkerPool,
)
from repro.errors import EngineError
from repro.fta import ConstraintPolicy, FaultTree, hazard_probability
from repro.fta.dsl import AND, OR, hazard, primary
from repro.sim import monte_carlo_probability


def small_tree():
    return FaultTree(hazard("H", OR_gate=[
        AND("AB", primary("A", 0.1), primary("B", 0.2)),
        primary("C", 0.05)]))


def small_model():
    space = ParameterSpace([Parameter("T", 1.0, 30.0, 15.0)])
    return SafetyModel(
        space,
        {"H": constant(0.1) * constant(0.5)},
        CostModel([HazardCost("H", 1000.0)]))


class TestQuantifyJob:
    def test_matches_direct_call(self):
        tree = small_tree()
        job = QuantifyJob(tree)
        assert job.run_serial() == hazard_probability(tree)

    def test_methods_agree_with_direct_api(self):
        tree = small_tree()
        for method in ("rare_event", "mcub", "exact"):
            job = QuantifyJob(tree, method=method)
            assert job.run_serial() == \
                hazard_probability(tree, method=method)

    def test_override_probabilities(self):
        tree = small_tree()
        job = QuantifyJob(tree, {"C": 0.5})
        assert job.run_serial() == hazard_probability(tree, {"C": 0.5})

    def test_fingerprint_distinguishes_method_and_overrides(self):
        tree = small_tree()
        base = QuantifyJob(tree).fingerprint()
        assert QuantifyJob(tree, method="exact").fingerprint() != base
        assert QuantifyJob(tree, {"C": 0.1}).fingerprint() != base
        assert QuantifyJob(
            tree, policy=ConstraintPolicy.WORST_CASE).fingerprint() != base

    def test_rejects_bad_inputs(self):
        tree = small_tree()
        with pytest.raises(EngineError):
            QuantifyJob("nope")
        with pytest.raises(EngineError):
            QuantifyJob(tree, method="wat")
        with pytest.raises(EngineError):
            QuantifyJob(tree, {"C": 1.5})
        with pytest.raises(EngineError):
            QuantifyJob(tree, policy="independent")


class TestSweepJob:
    def test_matches_point_by_point_direct_calls(self):
        tree = small_tree()
        job = SweepJob.from_axes(tree, {"A": identity("pA")},
                                 {"pA": [0.0, 0.1, 0.3]})
        result = job.run_serial()
        for point, value in result:
            assert value == hazard_probability(tree, {"A": point["pA"]})

    def test_serial_and_parallel_results_identical(self):
        tree = small_tree()
        job = SweepJob.from_axes(
            tree, {"A": identity("pA"), "B": identity("pB")},
            {"pA": [0.05, 0.1], "pB": [0.1, 0.2, 0.3]})
        assert job.run(WorkerPool(1)) == job.run(WorkerPool(2))

    def test_base_probabilities_apply_at_every_point(self):
        tree = small_tree()
        job = SweepJob.from_axes(tree, {"A": identity("pA")},
                                 {"pA": [0.1]},
                                 probabilities={"C": 0.5})
        (point, value), = list(job.run_serial())
        assert value == hazard_probability(tree, {"A": 0.1, "C": 0.5})

    def test_grid_is_row_major_cartesian_product(self):
        tree = small_tree()
        job = SweepJob.from_axes(tree, {"A": identity("pA"),
                                        "B": identity("pB")},
                                 {"pA": [0.1, 0.2], "pB": [0.3, 0.4]})
        assert job.grid == [
            {"pA": 0.1, "pB": 0.3}, {"pA": 0.1, "pB": 0.4},
            {"pA": 0.2, "pB": 0.3}, {"pA": 0.2, "pB": 0.4}]

    def test_best_and_series_helpers(self):
        tree = small_tree()
        job = SweepJob.from_axes(tree, {"A": identity("pA")},
                                 {"pA": [0.3, 0.0, 0.1]})
        result = job.run_serial()
        point, value = result.best()
        assert point == {"pA": 0.0}
        assert value == min(result.values)
        assert [x for x, _y in result.series("pA")] == [0.3, 0.0, 0.1]

    def test_encode_decode_round_trip(self):
        tree = small_tree()
        job = SweepJob.from_axes(tree, {"A": identity("pA")},
                                 {"pA": [0.1, 0.2]})
        result = job.run_serial()
        assert SweepJob.decode_result(job.encode_result(result)) == result

    def test_fingerprint_covers_grid_and_assignments(self):
        tree = small_tree()
        base = SweepJob.from_axes(tree, {"A": identity("pA")},
                                  {"pA": [0.1, 0.2]}).fingerprint()
        assert SweepJob.from_axes(tree, {"A": identity("pA")},
                                  {"pA": [0.1, 0.3]}).fingerprint() != base
        assert SweepJob.from_axes(tree, {"B": identity("pA")},
                                  {"pA": [0.1, 0.2]}).fingerprint() != base
        assert SweepJob.from_axes(tree, {"A": identity("pA")},
                                  {"pA": [0.1, 0.2]},
                                  probabilities={"C": 0.4}
                                  ).fingerprint() != base

    def test_validation(self):
        tree = small_tree()
        with pytest.raises(EngineError):
            SweepJob(tree, {}, [{"pA": 0.1}])
        with pytest.raises(EngineError):
            SweepJob(tree, {"nope": identity("pA")}, [{"pA": 0.1}])
        with pytest.raises(EngineError):
            SweepJob(tree, {"A": identity("pA")}, [])
        with pytest.raises(EngineError):
            SweepJob(tree, {"A": identity("pA")}, [{"other": 0.1}])
        with pytest.raises(EngineError):
            SweepJob(tree, {"A": identity("pA")}, [{"pA": 0.1}], chunks=0)


class TestMonteCarloJob:
    def test_single_shard_is_bit_identical_to_direct_api(self):
        tree = small_tree()
        job = MonteCarloJob(tree, samples=5000, seed=11)
        assert job.run_serial() == \
            monte_carlo_probability(tree, samples=5000, seed=11)

    def test_sharded_run_is_deterministic_and_pool_independent(self):
        tree = small_tree()
        job = MonteCarloJob(tree, samples=8000, seed=3, shards=4)
        serial = job.run(WorkerPool(1))
        parallel = job.run(WorkerPool(2))
        assert serial == parallel
        assert serial.samples == 8000

    def test_sharded_estimate_agrees_with_analytic_value(self):
        tree = small_tree()
        exact = hazard_probability(tree, method="exact")
        job = MonteCarloJob(tree, samples=40_000, seed=5, shards=4)
        assert job.run_serial().agrees_with(exact)

    def test_shard_plan_partitions_samples(self):
        job = MonteCarloJob(small_tree(), samples=10_001, seed=1, shards=4)
        plan = job.shard_plan()
        assert sum(n for n, _seed in plan) == 10_001
        assert len({seed for _n, seed in plan}) == 4

    def test_single_shard_uses_the_seed_unchanged(self):
        job = MonteCarloJob(small_tree(), samples=100, seed=7)
        assert job.shard_plan() == [(100, 7)]

    def test_encode_decode_round_trip(self):
        job = MonteCarloJob(small_tree(), samples=2000, seed=1, shards=2)
        estimate = job.run_serial()
        assert MonteCarloJob.decode_result(
            job.encode_result(estimate)) == estimate

    def test_validation(self):
        tree = small_tree()
        with pytest.raises(EngineError):
            MonteCarloJob(tree, samples=0)
        with pytest.raises(EngineError):
            MonteCarloJob(tree, samples=10, shards=0)
        with pytest.raises(EngineError):
            MonteCarloJob(tree, samples=10, shards=11)
        with pytest.raises(EngineError):
            MonteCarloJob(tree, samples=10, confidence=1.0)

    def test_fingerprint_includes_sampling_plan(self):
        tree = small_tree()
        base = MonteCarloJob(tree, samples=1000, seed=0).fingerprint()
        assert MonteCarloJob(tree, samples=1000,
                             seed=1).fingerprint() != base
        assert MonteCarloJob(tree, samples=2000,
                             seed=0).fingerprint() != base
        assert MonteCarloJob(tree, samples=1000, seed=0,
                             shards=2).fingerprint() != base


class TestOptimizeJob:
    def test_runs_the_optimizer(self):
        job = OptimizeJob(small_model(), method="zoom")
        result = job.run_serial()
        assert result.method == "zoom"
        assert result.optimal_cost == pytest.approx(50.0)

    def test_is_not_persistable(self):
        assert OptimizeJob.persistable is False

    def test_validation(self):
        with pytest.raises(EngineError):
            OptimizeJob("not a model")
        with pytest.raises(EngineError):
            OptimizeJob(small_model(), method="wat")
        with pytest.raises(EngineError):
            OptimizeJob(small_model(), baseline=(1.0, 2.0))

    def test_fingerprint_distinguishes_method_and_options(self):
        model = small_model()
        base = OptimizeJob(model, method="zoom").fingerprint()
        assert OptimizeJob(model, method="grid").fingerprint() != base
        assert OptimizeJob(model, method="zoom",
                           baseline=(10.0,)).fingerprint() != base


class TestSweepResult:
    def test_len_and_iter(self):
        result = SweepResult(points=({"x": 1.0}, {"x": 2.0}),
                             values=(0.1, 0.2))
        assert len(result) == 2
        assert list(result) == [({"x": 1.0}, 0.1), ({"x": 2.0}, 0.2)]
