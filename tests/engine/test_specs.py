"""The JSON job-spec wire format shared by `repro batch` and serve."""

import json

import pytest

from repro.engine import (
    SPEC_TYPES,
    Engine,
    MonteCarloJob,
    QuantifyJob,
    SweepJob,
    job_from_spec,
    jobs_from_payload,
    result_envelope,
    tree_from_spec,
)
from repro.errors import EngineError
from repro.fta import FaultTree, tree_to_dict, tree_to_json
from repro.fta.dsl import AND, hazard, primary


def inline_tree_dict():
    top = hazard("H", OR_gate=[
        AND("AB", primary("A", 0.1), primary("B", 0.2)),
        primary("C", 0.05)])
    return tree_to_dict(FaultTree(top))


class TestTreeFromSpec:
    @pytest.mark.parametrize("name", ["fig2", "collision", "false-alarm",
                                      "corridor"])
    def test_builtin_names(self, name):
        tree = tree_from_spec(name)
        assert isinstance(tree, FaultTree)

    def test_unknown_builtin(self):
        with pytest.raises(EngineError, match="unknown built-in tree"):
            tree_from_spec("nope")

    def test_inline_dict(self):
        tree = tree_from_spec(inline_tree_dict())
        assert "A" in tree and "C" in tree

    def test_file_reference(self, tmp_path, simple_or_tree):
        path = tmp_path / "tree.json"
        path.write_text(tree_to_json(simple_or_tree))
        tree = tree_from_spec({"file": str(path)})
        assert "A" in tree

    def test_file_reference_refused_when_disallowed(self, tmp_path):
        with pytest.raises(EngineError, match="not allowed"):
            tree_from_spec({"file": str(tmp_path / "x.json")},
                           allow_files=False)

    def test_garbage_spec(self):
        with pytest.raises(EngineError, match="cannot interpret"):
            tree_from_spec(42)


class TestJobFromSpec:
    def test_quantify(self):
        job = job_from_spec({"type": "quantify",
                             "tree": inline_tree_dict(),
                             "method": "exact"})
        assert isinstance(job, QuantifyJob)
        assert job.method == "exact"

    def test_sweep(self):
        job = job_from_spec({"type": "sweep",
                             "tree": inline_tree_dict(),
                             "axes": {"A": [0.1, 0.2]},
                             "probabilities": {"B": 0.3}})
        assert isinstance(job, SweepJob)
        assert len(job.grid) == 2

    def test_montecarlo(self):
        job = job_from_spec({"type": "montecarlo",
                             "tree": inline_tree_dict(),
                             "samples": 500, "seed": 4, "shards": 2})
        assert isinstance(job, MonteCarloJob)
        assert job.samples == 500 and job.shards == 2

    def test_unknown_type(self):
        with pytest.raises(EngineError, match="unknown job type"):
            job_from_spec({"type": "wat"})

    def test_missing_type(self):
        with pytest.raises(EngineError, match="'type' field"):
            job_from_spec({"tree": "fig2"})

    def test_bad_policy(self):
        with pytest.raises(EngineError, match="unknown policy"):
            job_from_spec({"type": "quantify",
                           "tree": inline_tree_dict(),
                           "policy": "bogus"})

    def test_bad_number_field(self):
        with pytest.raises(EngineError, match="must be a number"):
            job_from_spec({"type": "montecarlo",
                           "tree": inline_tree_dict(),
                           "samples": "many"})

    def test_spec_types_constant(self):
        assert SPEC_TYPES == ("quantify", "sweep", "montecarlo",
                              "incremental")


class TestJobsFromPayload:
    def test_list_payload(self):
        jobs = jobs_from_payload([
            {"type": "quantify", "tree": inline_tree_dict()},
            {"type": "montecarlo", "tree": inline_tree_dict(),
             "samples": 100}])
        assert [job.kind for job in jobs] == ["quantify", "montecarlo"]

    def test_jobs_object_payload(self):
        jobs = jobs_from_payload(
            {"jobs": [{"type": "quantify",
                       "tree": inline_tree_dict()}]})
        assert len(jobs) == 1

    def test_single_spec_payload(self):
        jobs = jobs_from_payload({"type": "quantify",
                                  "tree": inline_tree_dict()})
        assert len(jobs) == 1

    @pytest.mark.parametrize("payload", [None, [], {}, {"jobs": []},
                                         {"jobs": "x"}, "nope"])
    def test_invalid_payloads(self, payload):
        with pytest.raises(EngineError, match="non-empty list"):
            jobs_from_payload(payload)


class TestResultEnvelope:
    def test_envelope_shape_and_json_safety(self):
        engine = Engine(workers=1)
        job = job_from_spec({"type": "quantify",
                             "tree": inline_tree_dict(),
                             "method": "exact"})
        outcome = engine.run_shared(job)
        envelope = result_envelope(job, outcome, job_id="j-1", index=0)
        assert envelope["id"] == "j-1"
        assert envelope["index"] == 0
        assert envelope["type"] == "quantify"
        assert envelope["fingerprint"] == job.fingerprint()
        assert envelope["cache_hit"] is False
        assert envelope["coalesced"] is False
        assert envelope["wall_time_s"] > 0.0
        assert envelope["result"] == pytest.approx(outcome.result)
        json.dumps(envelope)  # must be wire-safe

    def test_envelope_ids_optional(self):
        engine = Engine(workers=1)
        job = job_from_spec({"type": "quantify",
                             "tree": inline_tree_dict(),
                             "method": "exact"})
        envelope = result_envelope(job, engine.run_shared(job))
        assert "id" not in envelope and "index" not in envelope

    def test_cli_and_server_speak_the_same_envelope(self):
        # One engine, two fronts: the fields the CLI writes per job are
        # exactly the fields the server streams in its result events.
        engine = Engine(workers=1)
        job = job_from_spec({"type": "quantify",
                             "tree": inline_tree_dict(),
                             "method": "exact"})
        envelope = result_envelope(job, engine.run_shared(job),
                                   job_id="x", index=0)
        assert set(envelope) == {"id", "index", "type", "job",
                                 "fingerprint", "cache_hit", "coalesced",
                                 "wall_time_s", "result"}
