"""Structural fingerprinting: order independence, change sensitivity."""

import pytest

from repro.core import (
    CostModel,
    FaultTreeHazard,
    HazardCost,
    Parameter,
    ParameterSpace,
    SafetyModel,
    constant,
    exceedance,
)
from repro.engine import (
    canonical_tree,
    model_fingerprint,
    parametric_fingerprint,
    tree_fingerprint,
    values_fingerprint,
)
from repro.errors import EngineError
from repro.fta import FaultTree
from repro.fta.dsl import AND, INHIBIT, KOFN, OR, condition, hazard, primary
from repro.stats import TruncatedNormal


def or_and_tree(order="ab"):
    a = primary("A", 0.1)
    b = primary("B", 0.2)
    c = primary("C", 0.05)
    children = [a, b] if order == "ab" else [b, a]
    return FaultTree(hazard("H", OR_gate=[AND("AB", *children), c]))


class TestOrderIndependence:
    def test_same_build_order_hashes_equal(self):
        assert tree_fingerprint(or_and_tree()) == \
            tree_fingerprint(or_and_tree())

    def test_commutative_gate_input_order_is_canonicalized(self):
        assert tree_fingerprint(or_and_tree("ab")) == \
            tree_fingerprint(or_and_tree("ba"))

    def test_or_children_reordered_hash_equal(self):
        t1 = FaultTree(hazard("H", OR_gate=[primary("A", 0.1),
                                            primary("B", 0.2)]))
        t2 = FaultTree(hazard("H", OR_gate=[primary("B", 0.2),
                                            primary("A", 0.1)]))
        assert tree_fingerprint(t1) == tree_fingerprint(t2)

    def test_kofn_input_order_is_canonicalized(self):
        def tree(order):
            leaves = [primary("c1", 0.1), primary("c2", 0.2),
                      primary("c3", 0.3)]
            if order == "rev":
                leaves.reverse()
            return FaultTree(hazard("H", gate=KOFN("v", 2, *leaves).gate))
        assert tree_fingerprint(tree("fwd")) == tree_fingerprint(tree("rev"))

    def test_tree_display_name_is_excluded(self):
        t1 = FaultTree(hazard("H", OR_gate=[primary("A", 0.1)]),
                       name="first")
        t2 = FaultTree(hazard("H", OR_gate=[primary("A", 0.1)]),
                       name="second")
        assert tree_fingerprint(t1) == tree_fingerprint(t2)

    def test_fingerprint_is_cached_on_the_tree(self):
        tree = or_and_tree()
        assert tree._fingerprint is None
        first = tree.fingerprint()
        assert tree._fingerprint == first
        assert tree.fingerprint() is first


class TestChangeSensitivity:
    def test_changed_probability_changes_hash(self):
        t1 = FaultTree(hazard("H", OR_gate=[primary("A", 0.1)]))
        t2 = FaultTree(hazard("H", OR_gate=[primary("A", 0.2)]))
        assert tree_fingerprint(t1) != tree_fingerprint(t2)

    def test_removed_default_probability_changes_hash(self):
        t1 = FaultTree(hazard("H", OR_gate=[primary("A", 0.1)]))
        t2 = FaultTree(hazard("H", OR_gate=[primary("A")]))
        assert tree_fingerprint(t1) != tree_fingerprint(t2)

    def test_changed_gate_type_changes_hash(self):
        t_or = FaultTree(hazard("H", OR_gate=[primary("A", 0.1),
                                              primary("B", 0.2)]))
        t_and = FaultTree(hazard("H", AND_gate=[primary("A", 0.1),
                                                primary("B", 0.2)]))
        assert tree_fingerprint(t_or) != tree_fingerprint(t_and)

    def test_changed_k_changes_hash(self):
        def tree(k):
            return FaultTree(hazard("H", gate=KOFN(
                "v", k, primary("c1", 0.1), primary("c2", 0.2),
                primary("c3", 0.3)).gate))
        assert tree_fingerprint(tree(2)) != tree_fingerprint(tree(3))

    def test_changed_condition_changes_hash(self):
        def tree(p):
            cond = condition("env", p)
            both = AND("both", primary("A", 0.1), primary("B", 0.2))
            return FaultTree(hazard(
                "H", gate=INHIBIT("g", both, cond).gate))
        assert tree_fingerprint(tree(0.25)) != tree_fingerprint(tree(0.5))

    def test_renamed_event_changes_hash(self):
        t1 = FaultTree(hazard("H", OR_gate=[primary("A", 0.1)]))
        t2 = FaultTree(hazard("H", OR_gate=[primary("A2", 0.1)]))
        assert tree_fingerprint(t1) != tree_fingerprint(t2)

    def test_extra_input_changes_hash(self):
        t1 = FaultTree(hazard("H", OR_gate=[primary("A", 0.1)]))
        t2 = FaultTree(hazard("H", OR_gate=[primary("A", 0.1),
                                            primary("B", 0.2)]))
        assert tree_fingerprint(t1) != tree_fingerprint(t2)


class TestCanonicalForm:
    def test_shared_subtree_canonicalized_once(self):
        c = primary("C", 0.5)
        tree = FaultTree(hazard("H", OR_gate=[
            AND("AC", primary("A", 0.3), c),
            AND("BC", primary("B", 0.4), c)]))
        form = canonical_tree(tree)
        assert form.count("pf(C;0.5)") == 2  # referenced from both gates

    def test_rejects_non_tree(self):
        with pytest.raises(EngineError):
            tree_fingerprint("not a tree")


class TestValueAndModelFingerprints:
    def test_values_fingerprint_is_order_independent(self):
        assert values_fingerprint({"a": 0.1, "b": 0.2}) == \
            values_fingerprint({"b": 0.2, "a": 0.1})

    def test_values_fingerprint_distinguishes_values(self):
        assert values_fingerprint({"a": 0.1}) != \
            values_fingerprint({"a": 0.2})

    def test_empty_values(self):
        assert values_fingerprint(None) == values_fingerprint({})

    def test_parametric_fingerprint_stable_across_rebuilds(self):
        p1 = exceedance(TruncatedNormal(4.0, 2.0), "T1")
        p2 = exceedance(TruncatedNormal(4.0, 2.0), "T1")
        assert parametric_fingerprint(p1) == parametric_fingerprint(p2)
        p3 = exceedance(TruncatedNormal(4.0, 2.0), "T2")
        assert parametric_fingerprint(p1) != parametric_fingerprint(p3)

    def test_distribution_parameters_enter_the_fingerprint(self):
        # Same label ("P(X> T)"), different distributions: these must
        # not share a cache key.
        p1 = exceedance(TruncatedNormal(4.0, 2.0), "T")
        p2 = exceedance(TruncatedNormal(5.0, 2.0), "T")
        assert p1.label == p2.label
        assert parametric_fingerprint(p1) != parametric_fingerprint(p2)

    def test_constant_fingerprint_is_full_precision(self):
        # %g labels collapse to 6 significant digits; fingerprints
        # must not.
        p1 = constant(0.12345678)
        p2 = constant(0.123456789)
        assert p1.label == p2.label
        assert parametric_fingerprint(p1) != parametric_fingerprint(p2)

    def test_raw_callables_never_collide(self):
        from repro.core import from_function
        p1 = from_function(lambda v: v["T"] * 0.1, {"T"})
        p2 = from_function(lambda v: v["T"] * 0.9, {"T"})
        assert p1.label == p2.label  # both default to "p(T)"
        assert parametric_fingerprint(p1) != parametric_fingerprint(p2)
        # ... but the same object is stable (in-process cache reuse).
        assert parametric_fingerprint(p1) == parametric_fingerprint(p1)

    def test_algebra_and_helpers_compose_fingerprints(self):
        from repro.core import from_table, scaled
        assert parametric_fingerprint(constant(0.1) & constant(0.2)) == \
            parametric_fingerprint(constant(0.1) & constant(0.2))
        assert parametric_fingerprint(constant(0.1) & constant(0.2)) != \
            parametric_fingerprint(constant(0.1) & constant(0.3))
        assert parametric_fingerprint(scaled(constant(0.5), 0.25)) != \
            parametric_fingerprint(scaled(constant(0.5), 0.5))
        t1 = from_table([(0.0, 0.0), (1.0, 0.5)], "x")
        t2 = from_table([(0.0, 0.0), (1.0, 0.6)], "x")
        assert t1.label == t2.label
        assert parametric_fingerprint(t1) != parametric_fingerprint(t2)

    def test_rename_preserves_content_fingerprint(self):
        p = constant(0.25)
        assert parametric_fingerprint(p.rename("pretty")) == \
            parametric_fingerprint(p)

    def test_model_fingerprint_stable_and_sensitive(self):
        def model(cost=1000.0):
            space = ParameterSpace([Parameter("T", 1.0, 30.0, 15.0)])
            tree = FaultTree(hazard("H", OR_gate=[primary("A", 0.1),
                                                  primary("OT")]))
            h = FaultTreeHazard(
                tree, {"OT": exceedance(TruncatedNormal(4.0, 2.0), "T")})
            return SafetyModel(space, {"H": h},
                               CostModel([HazardCost("H", cost)]))
        assert model_fingerprint(model()) == model_fingerprint(model())
        assert model_fingerprint(model()) != \
            model_fingerprint(model(cost=2000.0))

    def test_model_fingerprint_covers_formula_hazards(self):
        def model(p):
            space = ParameterSpace([Parameter("T", 1.0, 30.0, 15.0)])
            return SafetyModel(space, {"H": constant(p)},
                               CostModel([HazardCost("H", 1.0)]))
        assert model_fingerprint(model(0.1)) == model_fingerprint(model(0.1))
        assert model_fingerprint(model(0.1)) != model_fingerprint(model(0.2))
