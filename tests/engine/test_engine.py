"""The Engine façade: caching semantics, stats, wiring into core/sim/cli."""

import json

import pytest

from repro.core import (
    CostModel,
    FaultTreeHazard,
    HazardCost,
    Parameter,
    ParameterSpace,
    SafetyModel,
    constant,
    exceedance,
    identity,
)
from repro.engine import (
    Engine,
    MonteCarloJob,
    OptimizeJob,
    QuantifyJob,
    SweepJob,
)
from repro.errors import EngineError
from repro.fta import FaultTree, hazard_probability
from repro.fta.dsl import AND, OR, hazard, primary
from repro.sim import monte_carlo_probability
from repro.stats import TruncatedNormal


def small_tree():
    return FaultTree(hazard("H", OR_gate=[
        AND("AB", primary("A", 0.1), primary("B", 0.2)),
        primary("C", 0.05)]))


class TestRun:
    def test_cache_returns_identical_results_to_direct_calls(self):
        engine = Engine()
        tree = small_tree()
        direct = hazard_probability(tree)
        first = engine.run(QuantifyJob(tree))
        second = engine.run(QuantifyJob(tree))
        assert first == direct
        assert second == direct
        assert engine.executed == 1

    def test_structurally_identical_trees_share_cache_entries(self):
        engine = Engine()
        engine.run(QuantifyJob(small_tree()))
        engine.run(QuantifyJob(small_tree()))      # rebuilt, same structure
        assert engine.executed == 1
        assert engine.stats().cache["hits"] == 1

    def test_different_jobs_do_not_collide(self):
        engine = Engine()
        tree = small_tree()
        p_quant = engine.run(QuantifyJob(tree))
        est = engine.run(MonteCarloJob(tree, samples=1000, seed=0))
        assert engine.executed == 2
        assert est.samples == 1000
        assert p_quant == hazard_probability(tree)

    def test_rejects_non_jobs(self):
        with pytest.raises(EngineError):
            Engine().run("job")
        with pytest.raises(EngineError):
            Engine().submit(42)

    def test_different_raw_callables_never_share_cache_entries(self):
        from repro.core import from_function
        engine = Engine()
        tree = small_tree()
        low = engine.run(SweepJob(
            tree, {"A": from_function(lambda v: v["p"] * 0.1, {"p"})},
            [{"p": 1.0}]))
        high = engine.run(SweepJob(
            tree, {"A": from_function(lambda v: v["p"] * 0.9, {"p"})},
            [{"p": 1.0}]))
        assert engine.executed == 2
        assert low.values != high.values

    def test_returned_results_cannot_corrupt_the_cache(self):
        from repro.core import identity as ident
        engine = Engine()
        job = SweepJob.from_axes(small_tree(), {"A": ident("pA")},
                                 {"pA": [0.1, 0.2]})
        first = engine.run(job)
        first.points[0]["pA"] = 99.0          # caller mutates the result
        job.grid[1]["pA"] = -1.0              # and the job's own grid
        second = engine.run(SweepJob.from_axes(
            small_tree(), {"A": ident("pA")}, {"pA": [0.1, 0.2]}))
        assert engine.executed == 1           # served from cache ...
        assert second.points[0]["pA"] == 0.1  # ... uncorrupted
        assert second.points[1]["pA"] == 0.2

    def test_optimize_results_are_cached_in_memory(self):
        space = ParameterSpace([Parameter("T", 1.0, 30.0, 15.0)])
        model = SafetyModel(space, {"H": constant(0.25)},
                            CostModel([HazardCost("H", 100.0)]))
        engine = Engine()
        first = engine.run(OptimizeJob(model, method="zoom"))
        second = engine.run(OptimizeJob(model, method="zoom"))
        assert first is second       # raw object served from memory
        assert engine.executed == 1


class TestSubmitRunAll:
    def test_results_in_submission_order(self):
        engine = Engine()
        tree = small_tree()
        engine.submit(QuantifyJob(tree))
        engine.submit(QuantifyJob(tree, {"C": 0.5}))
        assert engine.pending == 2
        results = engine.run_all()
        assert engine.pending == 0
        assert results == [hazard_probability(tree),
                           hazard_probability(tree, {"C": 0.5})]

    def test_duplicate_submissions_execute_once(self):
        engine = Engine()
        tree = small_tree()
        for _ in range(4):
            engine.submit(QuantifyJob(tree))
        results = engine.run_all()
        assert len(set(results)) == 1
        assert engine.executed == 1
        assert engine.submitted == 4


class TestStats:
    def test_summary_mentions_counters(self):
        engine = Engine(workers=1)
        engine.run(QuantifyJob(small_tree()))
        engine.run(QuantifyJob(small_tree()))
        text = engine.stats().summary()
        assert "executed=1" in text
        assert "hits=1" in text
        assert "hit_rate=50.0%" in text


class TestDiskPersistence:
    def test_results_survive_engine_restarts(self, tmp_path):
        path = str(tmp_path / "cache.json")
        tree = small_tree()
        job = SweepJob.from_axes(tree, {"A": identity("pA")},
                                 {"pA": [0.1, 0.2, 0.3]})
        first_engine = Engine(cache_path=path)
        first = first_engine.run(job)
        assert first_engine.save_cache() == 1

        second_engine = Engine(cache_path=path)
        second = second_engine.run(
            SweepJob.from_axes(small_tree(), {"A": identity("pA")},
                               {"pA": [0.1, 0.2, 0.3]}))
        assert second == first
        assert second_engine.executed == 0

    def test_cache_object_and_path_are_exclusive(self, tmp_path):
        from repro.engine import ResultCache
        with pytest.raises(EngineError):
            Engine(cache=ResultCache(capacity=2),
                   cache_path=str(tmp_path / "c.json"))


class TestCoreWiring:
    def fault_tree_hazard(self):
        tree = FaultTree(hazard("H", OR_gate=[
            primary("A", 0.01),
            primary("OT")]))
        return FaultTreeHazard(
            tree, {"OT": exceedance(TruncatedNormal(4.0, 2.0), "T")})

    def test_probability_grid_matches_pointwise_probability(self):
        h = self.fault_tree_hazard()
        axes = {"T": [2.0, 4.0, 8.0]}
        result = h.probability_grid(axes=axes)
        for point, value in result:
            assert value == h.probability(point)

    def test_probability_grid_through_engine_is_cached(self):
        h = self.fault_tree_hazard()
        engine = Engine()
        axes = {"T": [2.0, 4.0]}
        first = h.probability_grid(axes=axes, engine=engine)
        second = h.probability_grid(axes=axes, engine=engine)
        assert first == second
        assert engine.executed == 1

    def test_probability_grid_requires_exactly_one_spec(self):
        from repro.errors import ModelError
        h = self.fault_tree_hazard()
        with pytest.raises(ModelError):
            h.probability_grid()
        with pytest.raises(ModelError):
            h.probability_grid(axes={"T": [1.0]}, grid=[{"T": 1.0}])


class TestSimWiring:
    def test_sharded_fast_path_matches_engine_job(self):
        tree = small_tree()
        via_sim = monte_carlo_probability(tree, samples=4000, seed=9,
                                          shards=4)
        via_job = MonteCarloJob(tree, samples=4000, seed=9,
                                shards=4).run_serial()
        assert via_sim == via_job

    def test_default_path_unchanged(self):
        tree = small_tree()
        classic = monte_carlo_probability(tree, samples=2000, seed=1)
        assert classic.samples == 2000
        # shards=1 goes through the historical single-stream sampler.
        assert monte_carlo_probability(tree, samples=2000, seed=1,
                                       shards=1) == classic

    def test_sim_surface_keeps_its_simulation_error_contract(self):
        from repro.errors import SimulationError
        tree = small_tree()
        for kwargs in ({"samples": 0, "shards": 4},
                       {"samples": 100, "shards": 0},
                       {"samples": 100, "shards": 101},
                       {"samples": 100, "workers": 0}):
            with pytest.raises(SimulationError):
                monte_carlo_probability(tree, **kwargs)


class TestBatchCli:
    def jobs_file(self, tmp_path):
        tree_probs = {"A": 0.1, "B": 0.2, "C": 0.05}
        spec = {"jobs": [
            {"type": "quantify",
             "tree": self.tree_dict(), "probabilities": tree_probs},
            {"type": "sweep", "tree": self.tree_dict(),
             "probabilities": {"B": 0.2, "C": 0.05},
             "axes": {"A": [0.0, 0.1]}},
            {"type": "montecarlo", "tree": self.tree_dict(),
             "probabilities": tree_probs,
             "samples": 500, "seed": 4, "shards": 2},
        ]}
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(spec))
        return str(path)

    @staticmethod
    def tree_dict():
        from repro.fta import tree_to_dict
        return tree_to_dict(FaultTree(hazard("H", OR_gate=[
            AND("AB", primary("A"), primary("B")), primary("C")])))

    def test_batch_text_report(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["batch", self.jobs_file(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "batch: 3 jobs" in out
        assert "quantify 'H'" in out
        assert "sweep 'H' over 2 points" in out
        assert "montecarlo 'H'" in out
        assert "engine:" in out

    def test_batch_json_output(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["batch", self.jobs_file(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["results"]) == 3
        kinds = [entry["type"] for entry in payload["results"]]
        assert kinds == ["quantify", "sweep", "montecarlo"]

    def test_batch_cache_warms_across_invocations(self, tmp_path, capsys):
        from repro.cli import main
        jobs = self.jobs_file(tmp_path)
        cache = str(tmp_path / "cache.json")
        assert main(["batch", jobs, "--cache", cache]) == 0
        cold = capsys.readouterr().out
        assert "executed=3" in cold
        assert main(["batch", jobs, "--cache", cache]) == 0
        warm = capsys.readouterr().out
        assert "executed=0" in warm
        assert "hits=3" in warm
        # identical reported results
        def strip(text):
            return [line for line in text.splitlines()
                    if line.startswith("[")]
        assert strip(cold) == strip(warm)

    def test_batch_builtin_tree_and_errors(self, tmp_path, capsys):
        from repro.cli import main
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"jobs": [{"type": "wat"}]}))
        assert main(["batch", str(bad)]) == 1
        assert "unknown job type" in capsys.readouterr().err

        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"jobs": []}))
        assert main(["batch", str(empty)]) == 1

        invalid = tmp_path / "invalid.json"
        invalid.write_text("{")
        assert main(["batch", str(invalid)]) == 1

    def test_batch_malformed_fields_get_clean_errors(self, tmp_path,
                                                     capsys):
        from repro.cli import main
        probs = {"A": 0.1, "B": 0.2, "C": 0.05}

        bad_policy = tmp_path / "p.json"
        bad_policy.write_text(json.dumps({"jobs": [
            {"type": "quantify", "tree": self.tree_dict(),
             "probabilities": probs, "policy": "bogus"}]}))
        assert main(["batch", str(bad_policy)]) == 1
        assert "unknown policy 'bogus'" in capsys.readouterr().err

        bad_samples = tmp_path / "s.json"
        bad_samples.write_text(json.dumps({"jobs": [
            {"type": "montecarlo", "tree": self.tree_dict(),
             "probabilities": probs, "samples": "lots"}]}))
        assert main(["batch", str(bad_samples)]) == 1
        assert "'samples' must be a number" in capsys.readouterr().err
