"""Concurrent engine use: coalescing, thread-safe cache, outcomes.

The service layer's contract with the engine: N threads submitting the
same fingerprint trigger exactly one computation and all receive equal
(byte-equal through the JSON envelope) results; distinct fingerprints
all compute; the shared cache survives a concurrent hammering with
consistent statistics.
"""

import json
import threading
import time

import pytest

from repro.engine import (
    Engine,
    MonteCarloJob,
    QuantifyJob,
    ResultCache,
    RunOutcome,
    SweepJob,
)
from repro.engine.jobs import Job
from repro.errors import EngineError
from repro.fta import FaultTree
from repro.fta.dsl import AND, hazard, primary


def small_tree(seed_probability=0.1):
    top = hazard("H", OR_gate=[
        AND("AB", primary("A", seed_probability), primary("B", 0.2)),
        primary("C", 0.05)])
    return FaultTree(top)


def run_threads(count, target):
    """Start ``count`` threads on ``target(index)``; join them all."""
    errors = []

    def wrap(index):
        try:
            target(index)
        except BaseException as exc:  # pragma: no cover - test plumbing
            errors.append(exc)

    threads = [threading.Thread(target=wrap, args=(i,))
               for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class SlowJob(Job):
    """A controllable job: blocks until released, counts executions."""

    kind = "slow"

    def __init__(self, token, gate=None, fail=False):
        self.token = token
        self.gate = gate
        self.fail = fail
        self.executions = 0

    def _fingerprint_parts(self):
        return (self.token,)

    def run_serial(self):
        if self.gate is not None:
            self.gate.wait(timeout=10.0)
        self.executions += 1
        if self.fail:
            raise EngineError(f"boom {self.token}")
        return {"token": self.token}

    def describe(self):
        return f"slow {self.token}"


class TestCoalescing:
    def test_identical_jobs_compute_once(self):
        engine = Engine(workers=1)
        job = MonteCarloJob(small_tree(), samples=20_000, seed=3)
        outcomes = [None] * 8

        def submit(index):
            # Fresh, structurally identical job objects per thread:
            # coalescing keys on content, not identity.
            mine = MonteCarloJob(small_tree(), samples=20_000, seed=3)
            outcomes[index] = engine.run_shared(mine)

        run_threads(8, submit)
        assert engine.executed == 1
        assert engine.coalesced + \
            sum(1 for o in outcomes if o.cache_hit) == 7
        fingerprints = {o.fingerprint for o in outcomes}
        assert fingerprints == {job.fingerprint()}
        # All callers see byte-equal results through the JSON envelope.
        encoded = {json.dumps(MonteCarloJob.encode_result(o.result),
                              sort_keys=True) for o in outcomes}
        assert len(encoded) == 1
        # Exactly one outcome actually computed.
        assert sum(1 for o in outcomes if o.computed) == 1

    def test_distinct_jobs_all_compute(self):
        engine = Engine(workers=1)
        outcomes = [None] * 6

        def submit(index):
            job = QuantifyJob(small_tree(0.01 * (index + 1)),
                              method="exact")
            outcomes[index] = engine.run_shared(job)

        run_threads(6, submit)
        assert engine.executed == 6
        assert engine.coalesced == 0
        assert len({o.fingerprint for o in outcomes}) == 6
        assert all(o.computed for o in outcomes)

    def test_followers_block_until_leader_finishes(self):
        engine = Engine(workers=1)
        release = threading.Event()
        outcomes = [None] * 4

        def submit(index):
            outcomes[index] = engine.run_shared(
                SlowJob("t", gate=release))

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        # Let every thread reach the in-flight registry, then release.
        deadline = time.time() + 5.0
        while engine.inflight == 0 and time.time() < deadline:
            time.sleep(0.001)
        assert engine.inflight == 1
        release.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert engine.executed == 1
        assert [o.result for o in outcomes] == [{"token": "t"}] * 4
        # Followers may also have landed after completion (cache hit);
        # either way nobody recomputed.
        assert sum(1 for o in outcomes if o.computed) == 1

    def test_leader_failure_propagates_to_followers(self):
        engine = Engine(workers=1)
        release = threading.Event()
        failures = []

        def submit(index):
            try:
                engine.run_shared(SlowJob("bad", gate=release,
                                          fail=True))
            except EngineError as exc:
                failures.append(str(exc))

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(3)]
        for thread in threads:
            thread.start()
        deadline = time.time() + 5.0
        while engine.inflight == 0 and time.time() < deadline:
            time.sleep(0.001)
        release.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert len(failures) == 3
        assert all("boom bad" in message for message in failures)
        # A failed computation must not poison the fingerprint: a new
        # submission computes again.
        ok = engine.run_shared(SlowJob("bad"))
        assert ok.result == {"token": "bad"}

    def test_follower_timeout(self):
        engine = Engine(workers=1)
        release = threading.Event()
        leader_started = threading.Event()

        def lead():
            class Signalling(SlowJob):
                def run_serial(self):
                    leader_started.set()
                    return super().run_serial()
            engine.run_shared(Signalling("slow", gate=release))

        leader = threading.Thread(target=lead)
        leader.start()
        assert leader_started.wait(timeout=5.0)
        with pytest.raises(EngineError, match="timed out"):
            engine.run_shared(SlowJob("slow"), timeout=0.05)
        release.set()
        leader.join(timeout=10.0)

    def test_compute_slots_gate_and_timeout(self):
        engine = Engine(workers=1)
        slots = threading.Semaphore(1)
        release = threading.Event()
        started = threading.Event()

        def lead():
            class Signalling(SlowJob):
                def run_serial(self):
                    started.set()
                    return super().run_serial()
            engine.run_shared(Signalling("a", gate=release), slots=slots)

        leader = threading.Thread(target=lead)
        leader.start()
        assert started.wait(timeout=5.0)
        # A *different* fingerprint cannot get a slot while the leader
        # holds the only one.
        with pytest.raises(EngineError, match="compute slot"):
            engine.run_shared(SlowJob("b"), timeout=0.05, slots=slots)
        release.set()
        leader.join(timeout=10.0)
        # Slot released after the computation: next job proceeds.
        assert engine.run_shared(SlowJob("b"), slots=slots).computed

    def test_cache_hits_bypass_slots(self):
        engine = Engine(workers=1)
        job = QuantifyJob(small_tree(), method="exact")
        engine.run_shared(job)
        # A zero-capacity gate would block any computation; the warm
        # path must not touch it.
        exhausted = threading.Semaphore(0)
        outcome = engine.run_shared(QuantifyJob(small_tree(),
                                                method="exact"),
                                    timeout=0.05, slots=exhausted)
        assert outcome.cache_hit


class TestRunOutcome:
    def test_provenance_fields(self):
        engine = Engine(workers=1)
        job = QuantifyJob(small_tree(), method="exact")
        cold = engine.run_shared(job)
        assert isinstance(cold, RunOutcome)
        assert cold.computed and not cold.cache_hit \
            and not cold.coalesced
        warm = engine.run_shared(QuantifyJob(small_tree(),
                                             method="exact"))
        assert warm.cache_hit and not warm.computed
        assert warm.result == cold.result
        assert warm.fingerprint == cold.fingerprint
        assert cold.wall_time >= warm.wall_time >= 0.0
        payload = warm.as_dict()
        assert payload["cache_hit"] is True
        assert "result" not in payload

    def test_run_all_shared_matches_run_all(self):
        engine = Engine(workers=1)
        jobs = [QuantifyJob(small_tree(0.01 * i), method="exact")
                for i in range(1, 4)]
        for job in jobs:
            engine.submit(job)
        outcomes = engine.run_all_shared()
        assert engine.pending == 0
        assert [o.fingerprint for o in outcomes] == \
            [job.fingerprint() for job in jobs]
        for job in jobs:
            engine.submit(job)
        assert engine.run_all() == [o.result for o in outcomes]

    def test_engine_stats_report_coalescing(self):
        engine = Engine(workers=1)
        release = threading.Event()

        def submit(index):
            engine.run_shared(SlowJob("s", gate=release))

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(3)]
        for thread in threads:
            thread.start()
        deadline = time.time() + 5.0
        while engine.inflight == 0 and time.time() < deadline:
            time.sleep(0.001)
        release.set()
        for thread in threads:
            thread.join(timeout=10.0)
        stats = engine.stats()
        assert stats.executed == 1
        assert stats.coalesced == engine.coalesced
        assert stats.inflight == 0
        if stats.coalesced:
            assert f"coalesced={stats.coalesced}" in stats.summary()


class TestThreadSafeCache:
    def test_concurrent_hammer_keeps_consistent_stats(self):
        cache = ResultCache(capacity=64)
        rounds = 200

        def hammer(index):
            for i in range(rounds):
                key = f"k{(index * rounds + i) % 96}"
                cache.put(key, [index, i])
                cache.get(key)
                cache.get(f"missing-{index}")
                len(cache)

        run_threads(8, hammer)
        stats = cache.stats
        assert len(cache) <= 64
        assert stats.puts == 8 * rounds
        assert stats.misses >= 8 * rounds
        assert stats.lookups == stats.hits + stats.misses
        assert 0.0 <= stats.hit_rate <= 1.0

    def test_info_snapshot(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = ResultCache(capacity=8, path=path)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        info = cache.info()
        assert info["size"] == 1
        assert info["capacity"] == 8
        assert info["path"] == path
        assert info["hits"] == 1 and info["misses"] == 1
        assert json.dumps(info)  # JSON-safe for the /stats endpoint

    def test_concurrent_save_and_put(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = ResultCache(capacity=256, path=path)
        for i in range(32):
            cache.put(f"seed-{i}", i)

        def writer(index):
            for i in range(50):
                cache.put(f"w{index}-{i}", {"v": i})

        def saver(index):
            for _ in range(10):
                cache.save()

        run_threads(4, lambda i: (writer(i) if i % 2 else saver(i)))
        # The last save may predate the last put; saving once more
        # captures a consistent final snapshot.
        count = cache.save()
        reloaded = ResultCache(capacity=256, path=path)
        assert len(reloaded) == count == len(cache)

    def test_sweep_results_byte_equal_across_threads(self):
        engine = Engine(workers=1)
        axes = {"pa": [0.01, 0.02, 0.03], "pb": [0.1, 0.2]}
        encoded = []
        lock = threading.Lock()

        def submit(index):
            from repro.core import identity
            job = SweepJob.from_axes(
                small_tree(), {"A": identity("pa"), "B": identity("pb")},
                axes, method="exact")
            outcome = engine.run_shared(job)
            with lock:
                encoded.append(json.dumps(
                    SweepJob.encode_result(outcome.result),
                    sort_keys=True))

        run_threads(6, submit)
        assert engine.executed == 1
        assert len(set(encoded)) == 1
