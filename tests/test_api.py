"""Public API surface: exports exist, are documented, and are stable."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.engine",
    "repro.compile",
    "repro.uq",
    "repro.fta",
    "repro.bdd",
    "repro.stats",
    "repro.opt",
    "repro.sim",
    "repro.elbtunnel",
    "repro.viz",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_package_docstring(package):
    module = importlib.import_module(package)
    assert module.__doc__ and len(module.__doc__.strip()) > 20


@pytest.mark.parametrize("package", PACKAGES)
def test_public_callables_documented(package):
    """Every exported class/function carries a docstring."""
    module = importlib.import_module(package)
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, f"undocumented in {package}: {undocumented}"


def test_version_string():
    import repro
    assert repro.__version__.count(".") == 2


def test_version_is_single_sourced():
    """setup.py and pyproject.toml both read repro.__version__."""
    import pathlib

    import repro
    root = pathlib.Path(repro.__file__).resolve().parents[2]
    pyproject = (root / "pyproject.toml").read_text()
    assert 'dynamic = ["version"]' in pyproject
    assert 'version = {attr = "repro.__version__"}' in pyproject
    assert '"1.0.0"' not in pyproject

    # Execute only setup.py's helper definitions, not setup() itself.
    import ast
    setup_py = root / "setup.py"
    module = ast.parse(setup_py.read_text())
    module.body = [node for node in module.body
                   if isinstance(node, (ast.Import, ast.ImportFrom,
                                        ast.FunctionDef))]
    namespace = {"__file__": str(setup_py)}
    exec(compile(module, str(setup_py), "exec"), namespace)
    assert namespace["read_version"]() == repro.__version__


def test_error_hierarchy():
    """Every library error derives from ReproError, so one except
    clause catches everything."""
    from repro import errors
    subclasses = [
        errors.FaultTreeError, errors.ValidationError,
        errors.QuantificationError, errors.DistributionError,
        errors.OptimizationError, errors.BDDError,
        errors.SimulationError, errors.ModelError,
        errors.SerializationError, errors.EngineError,
        errors.UQError,
    ]
    for cls in subclasses:
        assert issubclass(cls, errors.ReproError)
    assert issubclass(errors.ValidationError, errors.FaultTreeError)


def test_no_cross_contamination_of_names():
    """Key classes resolve to a single canonical definition."""
    from repro.core import SafetyModel as a
    from repro.core.model import SafetyModel as b
    assert a is b
    from repro.fta import FaultTree as c
    from repro.fta.tree import FaultTree as d
    assert c is d
