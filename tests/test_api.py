"""Public API surface: exports exist, are documented, and are stable."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.fta",
    "repro.bdd",
    "repro.stats",
    "repro.opt",
    "repro.sim",
    "repro.elbtunnel",
    "repro.viz",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_package_docstring(package):
    module = importlib.import_module(package)
    assert module.__doc__ and len(module.__doc__.strip()) > 20


@pytest.mark.parametrize("package", PACKAGES)
def test_public_callables_documented(package):
    """Every exported class/function carries a docstring."""
    module = importlib.import_module(package)
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, f"undocumented in {package}: {undocumented}"


def test_version_string():
    import repro
    assert repro.__version__.count(".") == 2


def test_error_hierarchy():
    """Every library error derives from ReproError, so one except
    clause catches everything."""
    from repro import errors
    subclasses = [
        errors.FaultTreeError, errors.ValidationError,
        errors.QuantificationError, errors.DistributionError,
        errors.OptimizationError, errors.BDDError,
        errors.SimulationError, errors.ModelError,
        errors.SerializationError,
    ]
    for cls in subclasses:
        assert issubclass(cls, errors.ReproError)
    assert issubclass(errors.ValidationError, errors.FaultTreeError)


def test_no_cross_contamination_of_names():
    """Key classes resolve to a single canonical definition."""
    from repro.core import SafetyModel as a
    from repro.core.model import SafetyModel as b
    assert a is b
    from repro.fta import FaultTree as c
    from repro.fta.tree import FaultTree as d
    assert c is d
