"""Cross-module integration: full pipelines end to end."""


import pytest

from repro.core import (
    CostModel,
    FaultTreeHazard,
    HazardCost,
    Parameter,
    ParameterSpace,
    SafetyModel,
    SafetyOptimizer,
    from_model,
    markdown_report,
)
from repro.fta import (
    FaultTree,
    MissionPhase,
    analyze,
    apply_beta_factor,
    evaluate_mission,
    hazard_probability,
    scale_exposure_probabilities,
    tree_from_json,
    tree_to_json,
)
from repro.fta.dsl import AND, INHIBIT, OR, condition, hazard, primary
from repro.sim import monte_carlo_probability
from repro.stats import (
    ExposureWindowModel,
    jeffreys_prior,
    update_binomial,
    update_poisson_exposure,
)


class TestFullFtaPipeline:
    """DSL -> serialize -> cut sets -> quantify -> CCF -> MC, one flow."""

    @pytest.fixture
    def tree(self):
        cond = condition("in_service", 0.9)
        redundant = AND("redundant pair",
                        primary("channel_a", 0.05),
                        primary("channel_b", 0.05))
        top = hazard("system_down", OR_gate=[
            INHIBIT("guarded", redundant, cond),
            primary("common_bus", 0.002)])
        return FaultTree(top)

    def test_serialize_quantify_roundtrip(self, tree):
        rebuilt = tree_from_json(tree_to_json(tree))
        assert hazard_probability(rebuilt, method="exact") == \
            pytest.approx(hazard_probability(tree, method="exact"))

    def test_analysis_report_consistent_with_quantification(self, tree):
        report = analyze(tree)
        assert report.rare_event_probability == pytest.approx(
            hazard_probability(tree, method="rare_event"))
        assert report.exact_probability == pytest.approx(
            hazard_probability(tree, method="exact"))

    def test_ccf_then_monte_carlo(self, tree):
        cc_tree = apply_beta_factor(tree, ["channel_a", "channel_b"],
                                    beta=0.2)
        exact = hazard_probability(cc_tree, method="exact")
        estimate = monte_carlo_probability(cc_tree, samples=200_000,
                                           seed=10)
        assert estimate.agrees_with(exact)

    def test_mission_over_service_phases(self, tree):
        """Scale the exposure leaves per phase and combine."""
        exposure = {"channel_a": 0.05, "channel_b": 0.05,
                    "common_bus": 0.002}
        busy = dict(scale_exposure_probabilities(exposure, 2.0 / 3.0),
                    in_service=0.9)
        quiet = dict(scale_exposure_probabilities(exposure, 1.0 / 3.0),
                     in_service=0.9)
        mission = evaluate_mission([
            MissionPhase("busy", tree, 16.0, probabilities=busy),
            MissionPhase("quiet", tree, 8.0, probabilities=quiet),
        ])
        assert mission.dominant_phase.name == "busy"
        # The phased model requires the AND-ed channel failures to fall
        # into the SAME phase, so it reports less risk than the
        # whole-mission snapshot — but the OR-ed single-point leaves
        # split exactly, keeping the totals the same order.
        full = hazard_probability(
            tree, dict(exposure, in_service=0.9), method="exact")
        assert 0.5 * full < mission.probability < full


class TestDataToDecisionPipeline:
    """Operating data -> Bayesian rates -> safety model -> optimum."""

    def test_bayes_calibrated_model_optimizes(self):
        # Field data: 26 spurious triggers in 200 hours of detector
        # uptime; 3 missed stops in 1200 demands.
        rate_posterior = update_poisson_exposure(0.5, 1e-6, 26, 200.0)
        miss_posterior = update_binomial(jeffreys_prior(), 3, 1200)

        spurious = from_model(
            ExposureWindowModel(rate_posterior.mean), "window")
        cond = condition("demand", miss_posterior.mean)
        missed = FaultTree(hazard("missed_stop", OR_gate=[
            INHIBIT("g", primary("detector_blind", 0.01), cond)]))

        model = SafetyModel(
            ParameterSpace([Parameter("window", 0.1, 10.0,
                                      default=5.0)]),
            hazards={
                "false_trigger": spurious,
                "missed_stop": FaultTreeHazard(missed),
            },
            cost_model=CostModel([HazardCost("false_trigger", 1.0),
                                  HazardCost("missed_stop", 1000.0)]),
            name="bayes-calibrated")
        result = SafetyOptimizer(model).optimize("zoom")
        # Shrinking the window only reduces false triggers here, so the
        # optimum hits the lower bound — and the pipeline runs end to
        # end from raw counts to an optimized configuration.
        assert result.optimum[0] == pytest.approx(0.1, abs=1e-6)
        assert result.optimal_cost < model.cost((5.0,))

    def test_markdown_report_from_fault_tree_model(self):
        tree = FaultTree(hazard("H", OR_gate=[
            primary("wear", None), primary("other", 0.001)]))
        model = SafetyModel(
            ParameterSpace([Parameter("interval", 1.0, 100.0,
                                      default=30.0)]),
            hazards={
                "H": FaultTreeHazard(tree, assignments={
                    "wear": from_model(ExposureWindowModel(0.01),
                                       "interval")}),
                "outage": from_model(ExposureWindowModel(1e-4),
                                     "interval"),
            },
            cost_model=CostModel([HazardCost("H", 100.0),
                                  HazardCost("outage", 1.0)]))
        report = markdown_report(model, method="zoom", front_points=5)
        assert "## Optimal configuration" in report
