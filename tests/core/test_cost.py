"""Cost model: paper Eq. 5 and validation."""

import pytest

from repro.core import CostModel, HazardCost
from repro.errors import ModelError


@pytest.fixture
def elb_costs():
    """The paper's weighting: collision = 100000 x false alarm."""
    return CostModel([HazardCost("H_Col", 100_000.0),
                      HazardCost("H_Alr", 1.0)])


class TestHazardCost:
    def test_rejects_negative_cost(self):
        with pytest.raises(ModelError):
            HazardCost("h", -1.0)

    def test_rejects_empty_name(self):
        with pytest.raises(ModelError):
            HazardCost("", 1.0)


class TestCostModel:
    def test_weighted_sum(self, elb_costs):
        """f_cost = 100000 * P(HCol) + 1 * P(HAlr) (paper Sect. IV-C.1)."""
        cost = elb_costs.mean_cost({"H_Col": 1e-8, "H_Alr": 4e-4})
        assert cost == pytest.approx(1e-3 + 4e-4)

    def test_contributions(self, elb_costs):
        parts = elb_costs.contributions({"H_Col": 1e-8, "H_Alr": 4e-4})
        assert parts["H_Col"] == pytest.approx(1e-3)
        assert parts["H_Alr"] == pytest.approx(4e-4)

    def test_cost_of(self, elb_costs):
        assert elb_costs.cost_of("H_Col") == 100_000.0
        with pytest.raises(ModelError):
            elb_costs.cost_of("ghost")

    def test_missing_hazard_rejected(self, elb_costs):
        with pytest.raises(ModelError):
            elb_costs.mean_cost({"H_Col": 0.1})

    def test_extra_hazard_rejected(self, elb_costs):
        with pytest.raises(ModelError):
            elb_costs.mean_cost({"H_Col": 0.1, "H_Alr": 0.1, "x": 0.1})

    def test_out_of_range_probability_rejected(self, elb_costs):
        with pytest.raises(ModelError):
            elb_costs.mean_cost({"H_Col": 1.5, "H_Alr": 0.1})

    def test_rejects_duplicates(self):
        with pytest.raises(ModelError):
            CostModel([HazardCost("h", 1.0), HazardCost("h", 2.0)])

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            CostModel([])

    def test_zero_cost_hazard_is_free(self):
        model = CostModel([HazardCost("a", 0.0), HazardCost("b", 2.0)])
        assert model.mean_cost({"a": 1.0, "b": 0.5}) == pytest.approx(1.0)
