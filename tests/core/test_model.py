"""SafetyModel: wiring validation, evaluation, both hazard kinds."""

import pytest

from repro.core import (
    CostModel,
    FaultTreeHazard,
    FormulaHazard,
    HazardCost,
    Parameter,
    ParameterSpace,
    SafetyModel,
    constant,
    from_cdf,
    from_function,
)
from repro.errors import ModelError
from repro.fta import ConstraintPolicy, FaultTree
from repro.fta.dsl import INHIBIT, OR, condition, hazard, primary
from repro.stats import Normal


@pytest.fixture
def space():
    return ParameterSpace([Parameter("x", 0.0, 10.0, default=5.0)])


@pytest.fixture
def formula_model(space):
    grows = from_cdf(Normal(5.0, 2.0), "x")
    shrinks = from_function(lambda v: 1.0 - v["x"] / 10.0 * 0.5, {"x"})
    return SafetyModel(
        space=space,
        hazards={"up": grows, "down": shrinks},
        cost_model=CostModel([HazardCost("up", 10.0),
                              HazardCost("down", 1.0)]),
        name="toy")


class TestValidation:
    def test_cost_model_must_cover_hazards(self, space):
        with pytest.raises(ModelError):
            SafetyModel(space, {"a": constant(0.1)},
                        CostModel([HazardCost("b", 1.0)]))

    def test_hazard_parameters_must_exist(self, space):
        bad = from_function(lambda v: v["ghost"], {"ghost"})
        with pytest.raises(ModelError):
            SafetyModel(space, {"a": bad},
                        CostModel([HazardCost("a", 1.0)]))

    def test_requires_hazards(self, space):
        with pytest.raises(ModelError):
            SafetyModel(space, {}, CostModel([HazardCost("a", 1.0)]))

    def test_bare_parametric_probability_autowrapped(self, space):
        model = SafetyModel(space, {"a": constant(0.1)},
                            CostModel([HazardCost("a", 1.0)]))
        assert isinstance(model.hazards["a"], FormulaHazard)


class TestEvaluation:
    def test_hazard_probability_by_vector_and_dict(self, formula_model):
        by_vector = formula_model.hazard_probability("up", (5.0,))
        by_dict = formula_model.hazard_probability("up", {"x": 5.0})
        assert by_vector == by_dict == pytest.approx(0.5)

    def test_unknown_hazard(self, formula_model):
        with pytest.raises(ModelError):
            formula_model.hazard_probability("ghost", (5.0,))

    def test_cost_is_weighted_sum(self, formula_model):
        probs = formula_model.hazard_probabilities((5.0,))
        expected = 10.0 * probs["up"] + probs["down"]
        assert formula_model.cost((5.0,)) == pytest.approx(expected)

    def test_cost_breakdown(self, formula_model):
        parts = formula_model.cost_breakdown((5.0,))
        assert parts["up"] == pytest.approx(5.0)

    def test_objectives_sorted_by_name(self, formula_model):
        objs = formula_model.objectives((5.0,))
        probs = formula_model.hazard_probabilities((5.0,))
        assert objs == (probs["down"], probs["up"])

    def test_point_outside_domain_rejected(self, formula_model):
        with pytest.raises(ModelError):
            formula_model.cost((50.0,))

    def test_to_problem_counts(self, formula_model):
        problem = formula_model.to_problem()
        problem((5.0,))
        assert problem.evaluations == 1
        assert problem.box.bounds == [(0.0, 10.0)]


class TestFaultTreeHazard:
    @pytest.fixture
    def tree(self):
        cond = condition("armed", 0.5)
        top = hazard("H", OR_gate=[
            INHIBIT("g", primary("pf", 0.1), cond),
            primary("other", 0.01)])
        return FaultTree(top)

    def test_static_defaults(self, tree):
        model = FaultTreeHazard(tree)
        assert model.probability({}) == pytest.approx(0.5 * 0.1 + 0.01)

    def test_parameterized_leaf(self, tree):
        model = FaultTreeHazard(tree, assignments={
            "pf": from_cdf(Normal(5.0, 1.0), "x")})
        assert model.parameters == {"x"}
        assert model.probability({"x": 5.0}) == pytest.approx(
            0.5 * 0.5 + 0.01)

    def test_parameterized_condition(self, tree):
        model = FaultTreeHazard(tree, assignments={
            "armed": from_function(lambda v: v["x"] / 10.0, {"x"})})
        assert model.probability({"x": 10.0}) == pytest.approx(
            1.0 * 0.1 + 0.01)

    def test_worst_case_policy(self, tree):
        model = FaultTreeHazard(tree, policy=ConstraintPolicy.WORST_CASE)
        assert model.probability({}) == pytest.approx(0.1 + 0.01)

    def test_exact_method(self, tree):
        model = FaultTreeHazard(tree, method="exact")
        expected = 1.0 - (1.0 - 0.05) * (1.0 - 0.01)
        assert model.probability({}) == pytest.approx(expected)

    def test_unknown_leaf_assignment_rejected(self, tree):
        with pytest.raises(ModelError):
            FaultTreeHazard(tree, assignments={"ghost": 0.5})

    def test_in_safety_model(self, tree, space):
        ft_hazard = FaultTreeHazard(tree, assignments={
            "pf": from_cdf(Normal(5.0, 1.0), "x")})
        model = SafetyModel(space, {"H": ft_hazard},
                            CostModel([HazardCost("H", 1.0)]))
        assert model.cost((5.0,)) == pytest.approx(0.5 * 0.5 + 0.01)
