"""Trade-off analysis: opposition, fronts, cost-ratio sensitivity."""

import pytest

from repro.core import (
    CostModel,
    HazardCost,
    Parameter,
    ParameterSpace,
    SafetyModel,
    cost_ratio_sensitivity,
    from_function,
    hazard_front,
    hazards_opposed,
)
from repro.errors import ModelError


@pytest.fixture
def opposed_model():
    """Two hazards pulling the parameter in opposite directions."""
    up = from_function(lambda v: v["x"] / 10.0, {"x"})
    down = from_function(lambda v: (10.0 - v["x"]) / 10.0, {"x"})
    return SafetyModel(
        ParameterSpace([Parameter("x", 0.0, 10.0, default=5.0)]),
        {"up": up, "down": down},
        CostModel([HazardCost("up", 3.0), HazardCost("down", 1.0)]),
        name="opposed")


@pytest.fixture
def aligned_model():
    """Two hazards that share a common minimizer (not opposed)."""
    h1 = from_function(lambda v: v["x"] / 10.0, {"x"})
    h2 = from_function(lambda v: v["x"] / 20.0, {"x"})
    return SafetyModel(
        ParameterSpace([Parameter("x", 0.0, 10.0, default=5.0)]),
        {"h1": h1, "h2": h2},
        CostModel([HazardCost("h1", 1.0), HazardCost("h2", 1.0)]))


class TestOpposition:
    def test_detects_opposed_hazards(self, opposed_model):
        """The paper: 'it is clear that it is not possible to minimize
        both risks at the same time' — detect that quantitatively."""
        report = hazards_opposed(opposed_model, "up", "down")
        assert report.opposed
        assert report.argmin_a == (0.0,)
        assert report.argmin_b == (10.0,)

    def test_detects_aligned_hazards(self, aligned_model):
        report = hazards_opposed(aligned_model, "h1", "h2")
        assert not report.opposed
        assert report.argmin_a == report.argmin_b == (0.0,)

    def test_rejects_unknown_hazard(self, opposed_model):
        with pytest.raises(ModelError):
            hazards_opposed(opposed_model, "up", "ghost")


class TestFront:
    def test_opposed_model_has_full_front(self, opposed_model):
        front = hazard_front(opposed_model, points_per_dim=11)
        assert len(front) == 11  # every point is a distinct trade-off

    def test_aligned_model_has_single_point_front(self, aligned_model):
        front = hazard_front(aligned_model, points_per_dim=11)
        assert len(front) == 1
        assert front[0].x == (0.0,)

    def test_front_objectives_ordered_by_hazard_name(self, opposed_model):
        front = hazard_front(opposed_model, points_per_dim=5)
        for point in front:
            probs = opposed_model.hazard_probabilities(point.x)
            assert point.objectives == (probs["down"], probs["up"])


class TestCostRatioSensitivity:
    def test_optimum_tracks_cost_weight(self, opposed_model):
        results = cost_ratio_sensitivity(opposed_model, "up",
                                         factors=[0.1, 10.0])
        cheap_up = results[0.1][0][0]
        dear_up = results[10.0][0][0]
        # Cheap 'up' hazard -> push x high; expensive -> push x low.
        assert cheap_up > dear_up

    def test_rejects_bad_inputs(self, opposed_model):
        with pytest.raises(ModelError):
            cost_ratio_sensitivity(opposed_model, "ghost", [1.0])
        with pytest.raises(ModelError):
            cost_ratio_sensitivity(opposed_model, "up", [])
        with pytest.raises(ModelError):
            cost_ratio_sensitivity(opposed_model, "up", [-1.0])
