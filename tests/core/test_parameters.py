"""Parameter and ParameterSpace: domains, defaults, conversions."""

import pytest

from repro.core import Parameter, ParameterSpace
from repro.errors import ModelError


class TestParameter:
    def test_basic_fields(self):
        p = Parameter("T1", 5.0, 30.0, default=30.0, unit="min")
        assert p.has_default
        assert p.unit == "min"

    def test_default_optional(self):
        assert not Parameter("x", 0.0, 1.0).has_default

    def test_rejects_inverted_domain(self):
        with pytest.raises(ModelError):
            Parameter("x", 2.0, 1.0)

    def test_rejects_infinite_domain(self):
        with pytest.raises(ModelError):
            Parameter("x", 0.0, float("inf"))

    def test_rejects_default_outside_domain(self):
        with pytest.raises(ModelError):
            Parameter("x", 0.0, 1.0, default=2.0)

    def test_rejects_empty_name(self):
        with pytest.raises(ModelError):
            Parameter("", 0.0, 1.0)

    def test_clamp(self):
        p = Parameter("x", 0.0, 1.0)
        assert p.clamp(-1.0) == 0.0
        assert p.clamp(0.5) == 0.5
        assert p.clamp(2.0) == 1.0


class TestParameterSpace:
    @pytest.fixture
    def space(self):
        return ParameterSpace([
            Parameter("T1", 5.0, 30.0, default=30.0),
            Parameter("T2", 5.0, 30.0, default=30.0),
        ])

    def test_names_ordered(self, space):
        assert space.names == ("T1", "T2")

    def test_lookup(self, space):
        assert space["T1"].lower == 5.0
        with pytest.raises(ModelError):
            space["T3"]

    def test_contains_and_len(self, space):
        assert "T1" in space and "T3" not in space
        assert len(space) == 2

    def test_box_matches_domains(self, space):
        assert space.box().bounds == [(5.0, 30.0), (5.0, 30.0)]

    def test_defaults_vector(self, space):
        assert space.defaults() == (30.0, 30.0)

    def test_defaults_require_all_set(self):
        space = ParameterSpace([Parameter("a", 0.0, 1.0)])
        with pytest.raises(ModelError):
            space.defaults()

    def test_to_dict_roundtrip(self, space):
        values = space.to_dict((10.0, 20.0))
        assert values == {"T1": 10.0, "T2": 20.0}
        assert space.to_vector(values) == (10.0, 20.0)

    def test_to_dict_rejects_wrong_arity(self, space):
        with pytest.raises(ModelError):
            space.to_dict((10.0,))

    def test_to_dict_rejects_out_of_domain(self, space):
        with pytest.raises(ModelError):
            space.to_dict((1.0, 20.0))

    def test_to_vector_rejects_unknown_and_missing(self, space):
        with pytest.raises(ModelError):
            space.to_vector({"T1": 10.0, "T2": 20.0, "T3": 1.0})
        with pytest.raises(ModelError):
            space.to_vector({"T1": 10.0})

    def test_rejects_duplicate_names(self):
        with pytest.raises(ModelError):
            ParameterSpace([Parameter("x", 0, 1), Parameter("x", 0, 1)])

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            ParameterSpace([])
