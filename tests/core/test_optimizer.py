"""SafetyOptimizer: methods, baselines, comparisons, reporting."""

import pytest

from repro.core import (
    CostModel,
    HazardCost,
    Parameter,
    ParameterSpace,
    SafetyModel,
    SafetyOptimizer,
    from_cdf,
    from_function,
)
from repro.core.optimizer import HazardComparison
from repro.errors import OptimizationError
from repro.stats import Normal


@pytest.fixture
def model():
    """Two opposed hazards with an interior optimum around x ~ 3.4."""
    up = from_cdf(Normal(5.0, 2.0), "x") * 0.01
    down = from_function(lambda v: (10.0 - v["x"]) / 20.0, {"x"})
    return SafetyModel(
        space=ParameterSpace([Parameter("x", 0.0, 10.0, default=8.0)]),
        hazards={"up": up, "down": down},
        cost_model=CostModel([HazardCost("up", 100.0),
                              HazardCost("down", 1.0)]),
        name="toy")


class TestOptimize:
    def test_default_method_runs(self, model):
        result = SafetyOptimizer(model).optimize()
        assert 0.0 <= result.optimum[0] <= 10.0
        assert result.optimal_cost <= model.cost((8.0,))

    @pytest.mark.parametrize("method", ["zoom", "grid", "gradient",
                                        "nelder_mead", "scipy"])
    def test_deterministic_methods_agree(self, model, method):
        result = SafetyOptimizer(model).optimize(method)
        reference = SafetyOptimizer(model).optimize("zoom")
        assert result.optimal_cost == pytest.approx(
            reference.optimal_cost, rel=1e-2)

    def test_stochastic_methods(self, model):
        for method in ("annealing", "differential_evolution"):
            result = SafetyOptimizer(model).optimize(method, seed=1)
            reference = SafetyOptimizer(model).optimize("zoom")
            assert result.optimal_cost == pytest.approx(
                reference.optimal_cost, rel=0.05)

    def test_unknown_method(self, model):
        with pytest.raises(OptimizationError):
            SafetyOptimizer(model).optimize("magic")

    def test_available_methods(self, model):
        methods = SafetyOptimizer(model).available_methods()
        assert "zoom" in methods and "nelder_mead" in methods

    def test_optimize_all(self, model):
        results = SafetyOptimizer(model).optimize_all(
            methods=["zoom", "grid"])
        assert set(results) == {"zoom", "grid"}


class TestBaseline:
    def test_defaults_used_as_baseline(self, model):
        result = SafetyOptimizer(model).optimize("zoom")
        assert result.baseline == (8.0,)
        assert result.baseline_cost == pytest.approx(model.cost((8.0,)))

    def test_explicit_baseline(self, model):
        result = SafetyOptimizer(model).optimize("zoom", baseline=(2.0,))
        assert result.baseline == (2.0,)

    def test_baseline_outside_box_is_clipped(self, model):
        result = SafetyOptimizer(model).optimize("zoom", baseline=(99.0,))
        assert result.baseline == (10.0,)

    def test_no_baseline_when_no_defaults(self):
        model = SafetyModel(
            ParameterSpace([Parameter("x", 0.0, 1.0)]),
            {"h": from_function(lambda v: v["x"] * 0.1, {"x"})},
            CostModel([HazardCost("h", 1.0)]))
        result = SafetyOptimizer(model).optimize("zoom")
        assert result.baseline is None
        assert result.cost_improvement_percent is None
        with pytest.raises(OptimizationError):
            result.hazard_comparisons()


class TestComparisons:
    def test_improvement_percentages(self, model):
        result = SafetyOptimizer(model).optimize("zoom")
        comparisons = result.hazard_comparisons()
        assert set(comparisons) == {"up", "down"}
        up = comparisons["up"]
        assert up.baseline == pytest.approx(
            model.hazard_probability("up", (8.0,)))
        assert up.optimized == pytest.approx(
            model.hazard_probability("up", result.optimum))

    def test_cost_improvement_positive(self, model):
        result = SafetyOptimizer(model).optimize("zoom")
        assert result.cost_improvement_percent > 0.0

    def test_comparison_math(self):
        cmp_ = HazardComparison("h", baseline=0.2, optimized=0.1)
        assert cmp_.relative_change == pytest.approx(-0.5)
        assert cmp_.improvement_percent == pytest.approx(50.0)

    def test_comparison_zero_baseline(self):
        assert HazardComparison("h", 0.0, 0.0).relative_change == 0.0
        assert HazardComparison("h", 0.0, 0.1).relative_change == \
            float("inf")


class TestSummary:
    def test_summary_mentions_everything(self, model):
        result = SafetyOptimizer(model).optimize("zoom")
        text = result.summary()
        assert "toy" in text
        assert "optimum" in text
        assert "baseline" in text
        assert "improvement" in text
