"""Parametric probabilities: constructors, algebra, range guards."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    as_parametric,
    constant,
    exceedance,
    from_cdf,
    from_function,
    from_model,
    scaled,
)
from repro.errors import ModelError
from repro.stats import ExposureWindowModel, Normal, TruncatedNormal


class TestConstructors:
    def test_constant(self):
        p = constant(0.3)
        assert p({}) == 0.3
        assert p.parameters == frozenset()

    def test_constant_rejects_out_of_range(self):
        with pytest.raises(ModelError):
            constant(1.5)

    def test_from_cdf_tracks_parameter(self):
        p = from_cdf(Normal(0, 1), "x")
        assert p.parameters == {"x"}
        assert p({"x": 0.0}) == pytest.approx(0.5)

    def test_exceedance_is_complement_of_cdf(self):
        dist = TruncatedNormal(4.0, 2.0, lower=0.0)
        cdf = from_cdf(dist, "T")
        exc = exceedance(dist, "T")
        for t in (1.0, 4.0, 15.6):
            assert exc({"T": t}) == pytest.approx(1.0 - cdf({"T": t}))

    def test_from_model(self):
        p = from_model(ExposureWindowModel(0.13), "T2")
        assert p({"T2": 15.6}) == pytest.approx(1 - math.exp(-0.13 * 15.6))

    def test_from_function(self):
        p = from_function(lambda v: v["a"] * v["b"], {"a", "b"})
        assert p({"a": 0.5, "b": 0.4}) == pytest.approx(0.2)

    def test_as_parametric_coerces_floats(self):
        p = as_parametric(0.25)
        assert p({}) == 0.25

    def test_as_parametric_rejects_junk(self):
        with pytest.raises(ModelError):
            as_parametric("0.5")


class TestEvaluation:
    def test_missing_parameter_raises(self):
        p = from_cdf(Normal(0, 1), "x")
        with pytest.raises(ModelError):
            p({})

    def test_extra_parameters_ignored(self):
        p = from_cdf(Normal(0, 1), "x")
        assert p({"x": 0.0, "y": 99.0}) == pytest.approx(0.5)

    def test_out_of_range_result_raises(self):
        p = from_function(lambda v: 2.0, set())
        with pytest.raises(ModelError):
            p({})

    def test_tiny_numerical_excursions_clamped(self):
        assert from_function(lambda v: -1e-12, set())({}) == 0.0
        assert from_function(lambda v: 1.0 + 1e-12, set())({}) == 1.0


class TestAlgebra:
    @pytest.fixture
    def p(self):
        return constant(0.2, "p")

    @pytest.fixture
    def q(self):
        return constant(0.5, "q")

    def test_and_is_product(self, p, q):
        assert (p & q)({}) == pytest.approx(0.1)

    def test_or_is_inclusion_exclusion(self, p, q):
        assert (p | q)({}) == pytest.approx(0.6)

    def test_invert_is_complement(self, p):
        assert (~p)({}) == pytest.approx(0.8)

    def test_add_is_clipped_sum(self, p, q):
        assert (p + q)({}) == pytest.approx(0.7)
        assert (constant(0.9) + constant(0.9))({}) == 1.0

    def test_mul_with_float(self, p):
        assert (p * 0.5)({}) == pytest.approx(0.1)
        assert (0.5 * p)({}) == pytest.approx(0.1)

    def test_add_with_float(self, p):
        assert (p + 0.1)({}) == pytest.approx(0.3)
        assert (0.1 + p)({}) == pytest.approx(0.3)

    def test_parameters_union(self):
        a = from_cdf(Normal(0, 1), "x")
        b = from_cdf(Normal(0, 1), "y")
        assert (a & b).parameters == {"x", "y"}

    def test_scaled(self, q):
        assert scaled(q, 0.1)({}) == pytest.approx(0.05)
        with pytest.raises(ModelError):
            scaled(q, 1.5)

    def test_rename(self, p):
        renamed = p.rename("nice name")
        assert renamed.label == "nice name"
        assert renamed({}) == p({})

    @given(st.floats(0, 1), st.floats(0, 1))
    @settings(max_examples=60)
    def test_de_morgan_property(self, a, b):
        pa, pb = constant(a), constant(b)
        lhs = (~(pa & pb))({})
        rhs = ((~pa) | (~pb))({})
        assert lhs == pytest.approx(rhs, abs=1e-12)

    @given(st.floats(0, 1), st.floats(0, 1))
    @settings(max_examples=60)
    def test_or_bounds_property(self, a, b):
        value = (constant(a) | constant(b))({})
        assert max(a, b) - 1e-12 <= value <= min(1.0, a + b) + 1e-12


class TestFromTable:
    def test_interpolates_linearly(self):
        from repro.core import from_table
        p = from_table([(0.0, 0.0), (10.0, 1.0)], "x")
        assert p({"x": 5.0}) == pytest.approx(0.5)
        assert p({"x": 2.5}) == pytest.approx(0.25)

    def test_holds_endpoints(self):
        from repro.core import from_table
        p = from_table([(1.0, 0.2), (2.0, 0.8)], "x")
        assert p({"x": 0.0}) == pytest.approx(0.2)
        assert p({"x": 99.0}) == pytest.approx(0.8)

    def test_unsorted_input_accepted(self):
        from repro.core import from_table
        p = from_table([(10.0, 1.0), (0.0, 0.0)], "x")
        assert p({"x": 5.0}) == pytest.approx(0.5)

    def test_matches_exact_model_on_grid(self):
        """A table sampled from a model reproduces it at the knots."""
        import math
        from repro.core import from_model, from_table
        from repro.stats import ExposureWindowModel
        model = from_model(ExposureWindowModel(0.13), "T2")
        knots = [(t, model({"T2": t})) for t in range(5, 26)]
        table = from_table(knots, "T2")
        for t in (5.0, 12.0, 25.0):
            assert table({"T2": t}) == pytest.approx(model({"T2": t}))

    def test_rejects_bad_tables(self):
        from repro.core import from_table
        with pytest.raises(ModelError):
            from_table([(0.0, 0.5)], "x")
        with pytest.raises(ModelError):
            from_table([(0.0, 0.5), (0.0, 0.7)], "x")
        with pytest.raises(ModelError):
            from_table([(0.0, 0.5), (1.0, 1.5)], "x")
