"""Scenario comparisons and multi-scenario series."""

import pytest

from repro.core import (
    CostModel,
    HazardCost,
    Parameter,
    ParameterSpace,
    SafetyModel,
    Scenario,
    compare_scenarios,
    from_function,
    scenario_series,
)
from repro.errors import ModelError


def make_model(rate: float) -> SafetyModel:
    h = from_function(lambda v: min(1.0, rate * v["x"]), {"x"})
    return SafetyModel(
        ParameterSpace([Parameter("x", 0.0, 1.0, default=0.5)]),
        {"h": h}, CostModel([HazardCost("h", 1.0)]))


@pytest.fixture
def scenarios():
    return [Scenario("low", lambda: make_model(0.1), "light traffic"),
            Scenario("high", lambda: make_model(0.5), "heavy traffic")]


class TestScenario:
    def test_model_factory_called_fresh(self, scenarios):
        a = scenarios[0].model()
        b = scenarios[0].model()
        assert a is not b

    def test_bad_factory_rejected(self):
        scenario = Scenario("bad", lambda: "not a model")
        with pytest.raises(ModelError):
            scenario.model()


class TestCompare:
    def test_evaluates_each_scenario(self, scenarios):
        values = compare_scenarios(scenarios,
                                   lambda m: m.cost((0.5,)))
        assert values["low"] == pytest.approx(0.05)
        assert values["high"] == pytest.approx(0.25)

    def test_rejects_duplicates(self, scenarios):
        doubled = scenarios + [Scenario("low", lambda: make_model(0.2))]
        with pytest.raises(ModelError):
            compare_scenarios(doubled, lambda m: 0.0)

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            compare_scenarios([], lambda m: 0.0)


class TestSeries:
    def test_one_series_per_scenario(self, scenarios):
        series = scenario_series(scenarios, "x", (0.5,), hazard="h",
                                 points=5)
        assert set(series) == {"low", "high"}
        assert len(series["low"]) == 5

    def test_high_scenario_dominates(self, scenarios):
        """The paper's Fig. 6 shape: heavier traffic = higher risk curve."""
        series = scenario_series(scenarios, "x", (0.5,), hazard="h",
                                 points=5)
        for (x1, y_low), (x2, y_high) in zip(series["low"],
                                             series["high"]):
            assert x1 == x2
            assert y_high >= y_low
