"""Markdown study reports."""

import pytest

from repro.core import (
    CostModel,
    HazardCost,
    Parameter,
    ParameterSpace,
    SafetyModel,
    Scenario,
    from_function,
    markdown_report,
)


def make_model(scale: float = 1.0) -> SafetyModel:
    up = from_function(lambda v: scale * v["x"] / 20.0, {"x"})
    down = from_function(lambda v: (10.0 - v["x"]) / 20.0, {"x"})
    return SafetyModel(
        ParameterSpace([Parameter("x", 0.0, 10.0, default=5.0,
                                  unit="ms")]),
        {"up": up, "down": down},
        CostModel([HazardCost("up", 3.0), HazardCost("down", 1.0)]),
        name="toy system")


class TestMarkdownReport:
    @pytest.fixture(scope="class")
    def report(self):
        return markdown_report(make_model(), front_points=7)

    def test_has_all_sections(self, report):
        for heading in ("# Safety optimization report",
                        "## Model",
                        "## Optimal configuration",
                        "## Parameter sensitivity",
                        "## Hazard trade-off front"):
            assert heading in report

    def test_model_inventory(self, report):
        assert "| x | [0, 10] ms | 5 ms |" in report
        assert "| up | 3 |" in report

    def test_optimum_and_baseline(self, report):
        assert "optimum: **x = " in report
        assert "baseline cost" in report

    def test_hazard_rows(self, report):
        assert "| up |" in report and "| down |" in report

    def test_front_rows_present(self, report):
        # 7 grid points over opposed hazards -> 7 front rows.
        front_section = report.split("## Hazard trade-off front")[1]
        rows = [l for l in front_section.splitlines()
                if l.startswith("| (")]
        assert len(rows) == 7

    def test_scenarios_section_optional(self):
        without = markdown_report(make_model(), front_points=5)
        assert "## Environment scenarios" not in without
        with_scenarios = markdown_report(
            make_model(), front_points=5,
            scenarios=[Scenario("busy", lambda: make_model(2.0)),
                       Scenario("calm", lambda: make_model(0.5))])
        assert "## Environment scenarios" in with_scenarios
        assert "| busy |" in with_scenarios

    def test_renders_for_elbtunnel(self):
        from repro.elbtunnel import build_safety_model
        report = markdown_report(build_safety_model(), method="zoom",
                                 front_points=5)
        assert "Elbtunnel height control" in report
        assert "T1" in report and "T2" in report
