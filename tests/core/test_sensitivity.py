"""Sensitivity: derivatives, tornado bars, sweeps."""

import pytest

from repro.core import (
    CostModel,
    HazardCost,
    Parameter,
    ParameterSpace,
    SafetyModel,
    from_function,
    local_sensitivities,
    parameter_sweep,
    sweep,
    tornado,
)
from repro.errors import ModelError


@pytest.fixture
def model():
    """cost = 2*a + 10*b over a, b in [0, 1] (linear, known gradients)."""
    ha = from_function(lambda v: 0.2 * v["a"], {"a"})
    hb = from_function(lambda v: 0.1 * v["b"], {"b"})
    return SafetyModel(
        ParameterSpace([Parameter("a", 0.0, 1.0, default=0.5),
                        Parameter("b", 0.0, 1.0, default=0.5)]),
        {"ha": ha, "hb": hb},
        CostModel([HazardCost("ha", 10.0), HazardCost("hb", 100.0)]))


class TestLocalSensitivities:
    def test_linear_gradients_exact(self, model):
        grads = local_sensitivities(model, (0.5, 0.5))
        assert grads["a"] == pytest.approx(2.0, rel=1e-4)
        assert grads["b"] == pytest.approx(10.0, rel=1e-4)

    def test_works_at_domain_walls(self, model):
        grads = local_sensitivities(model, (0.0, 1.0))
        assert grads["a"] == pytest.approx(2.0, rel=1e-3)
        assert grads["b"] == pytest.approx(10.0, rel=1e-3)


class TestTornado:
    def test_swings_sorted_descending(self, model):
        bars = tornado(model)
        assert [b.parameter for b in bars] == ["b", "a"]
        assert bars[0].swing >= bars[1].swing

    def test_linear_swing_values(self, model):
        bars = {b.parameter: b for b in tornado(model)}
        assert bars["a"].swing == pytest.approx(2.0, rel=1e-9)
        assert bars["b"].swing == pytest.approx(10.0, rel=1e-9)

    def test_uses_defaults_without_point(self, model):
        bars = tornado(model)
        assert bars[0].base_cost == pytest.approx(model.cost((0.5, 0.5)))

    def test_explicit_point(self, model):
        bars = tornado(model, point=(0.1, 0.9))
        assert bars[0].base_cost == pytest.approx(model.cost((0.1, 0.9)))


class TestSweep:
    def test_even_grid(self):
        series = sweep(lambda x: x * x, 0.0, 1.0, points=3)
        assert series == [(0.0, 0.0), (0.5, 0.25), (1.0, 1.0)]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ModelError):
            sweep(lambda x: x, 0.0, 1.0, points=1)
        with pytest.raises(ModelError):
            sweep(lambda x: x, 1.0, 0.0)


class TestParameterSweep:
    def test_cost_sweep_holds_others_fixed(self, model):
        series = parameter_sweep(model, "a", (0.5, 0.5), points=3)
        xs = [x for x, _y in series]
        assert xs == [0.0, 0.5, 1.0]
        # cost(a, b=0.5) = 2a + 5
        assert series[0][1] == pytest.approx(5.0)
        assert series[2][1] == pytest.approx(7.0)

    def test_hazard_sweep(self, model):
        series = parameter_sweep(model, "b", (0.5, 0.5), points=3,
                                 quantity="hazard", hazard="hb")
        assert series[2][1] == pytest.approx(0.1)

    def test_rejects_unknown_parameter(self, model):
        with pytest.raises(ModelError):
            parameter_sweep(model, "ghost", (0.5, 0.5))

    def test_rejects_bad_quantity(self, model):
        with pytest.raises(ModelError):
            parameter_sweep(model, "a", (0.5, 0.5), quantity="magic")

    def test_hazard_quantity_requires_name(self, model):
        with pytest.raises(ModelError):
            parameter_sweep(model, "a", (0.5, 0.5), quantity="hazard")
