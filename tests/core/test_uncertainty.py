"""Uncertainty propagation: LHS sampling and result statistics."""

import pytest

from repro.core import (
    UncertaintyResult,
    latin_hypercube,
    propagate,
    propagate_many,
)
from repro.errors import ModelError
from repro.stats import Normal, Uniform


class TestLatinHypercube:
    def test_stratification_covers_range(self):
        draws = latin_hypercube({"x": Uniform(0.0, 1.0)}, samples=10,
                                seed=0)
        values = sorted(d["x"] for d in draws)
        # Exactly one value per decile.
        for i, v in enumerate(values):
            assert i / 10 <= v <= (i + 1) / 10

    def test_all_inputs_in_every_draw(self):
        draws = latin_hypercube({"a": Uniform(0, 1), "b": Normal(0, 1)},
                                samples=5, seed=1)
        assert all(set(d) == {"a", "b"} for d in draws)

    def test_deterministic_under_seed(self):
        inputs = {"x": Normal(0, 1)}
        assert latin_hypercube(inputs, 7, seed=3) == \
            latin_hypercube(inputs, 7, seed=3)

    def test_rejects_empty_inputs(self):
        with pytest.raises(ModelError):
            latin_hypercube({}, samples=5)

    def test_rejects_zero_samples(self):
        with pytest.raises(ModelError):
            latin_hypercube({"x": Uniform(0, 1)}, samples=0)


class TestUncertaintyResult:
    @pytest.fixture
    def result(self):
        return UncertaintyResult("x", tuple(float(i) for i in range(11)))

    def test_mean_and_std(self, result):
        assert result.mean == pytest.approx(5.0)
        assert result.std == pytest.approx(3.3166, rel=1e-3)

    def test_percentiles(self, result):
        assert result.percentile(0) == 0.0
        assert result.percentile(50) == 5.0
        assert result.percentile(100) == 10.0

    def test_interval(self, result):
        lo, hi = result.interval(0.8)
        assert lo == pytest.approx(1.0)
        assert hi == pytest.approx(9.0)

    def test_rejects_bad_arguments(self, result):
        with pytest.raises(ModelError):
            result.percentile(150)
        with pytest.raises(ModelError):
            result.interval(1.5)

    def test_single_sample(self):
        r = UncertaintyResult("x", (3.0,))
        assert r.percentile(50) == 3.0
        assert r.std == 0.0


class TestPropagate:
    def test_linear_output_statistics(self):
        result = propagate({"x": Normal(10.0, 2.0)},
                           lambda d: 3.0 * d["x"], samples=400, seed=0)
        assert result.mean == pytest.approx(30.0, rel=0.02)
        assert result.std == pytest.approx(6.0, rel=0.1)

    def test_interval_contains_truth_for_uniform(self):
        result = propagate({"x": Uniform(0.0, 1.0)},
                           lambda d: d["x"], samples=200, seed=1)
        lo, hi = result.interval(0.9)
        assert lo == pytest.approx(0.05, abs=0.02)
        assert hi == pytest.approx(0.95, abs=0.02)

    def test_propagate_many_shares_draws(self):
        inputs = {"x": Normal(0.0, 1.0)}
        results = propagate_many(
            inputs,
            {"identity": lambda d: d["x"],
             "double": lambda d: 2.0 * d["x"]},
            samples=50, seed=2)
        assert results["double"].samples == tuple(
            2.0 * v for v in results["identity"].samples)


class TestElbtunnelRobustness:
    def test_optimum_conclusion_survives_input_uncertainty(self):
        """The headline conclusion (cost at (19, 15.6) beats the (30, 30)
        baseline) must hold across plausible input perturbations."""
        from repro.elbtunnel import ElbtunnelConfig, build_safety_model
        from repro.stats import LogNormal
        import math

        def gain(draw):
            config = ElbtunnelConfig(
                p_ohv_present=draw["p_ohv"],
                hv_odfinal_rate=draw["hv_rate"])
            model = build_safety_model(config)
            return model.cost((30.0, 30.0)) - model.cost((19.0, 15.6))

        result = propagate(
            {"p_ohv": LogNormal(math.log(1.342e-3), 0.3),
             "hv_rate": LogNormal(math.log(4.0e-3), 0.3)},
            gain, samples=60, seed=5)
        lo, _hi = result.interval(0.9)
        assert lo > 0.0   # the optimized setting wins in every scenario


class TestSobolIndices:
    def test_linear_model_variance_split(self):
        """Y = 2*X1 + X2, X1, X2 ~ N(0,1): S1 = 4/5, S2 = 1/5."""
        from repro.core import sobol_first_order
        indices = sobol_first_order(
            {"x1": Normal(0.0, 1.0), "x2": Normal(0.0, 1.0)},
            lambda d: 2.0 * d["x1"] + d["x2"], samples=3000, seed=0)
        assert indices["x1"] == pytest.approx(0.8, abs=0.06)
        assert indices["x2"] == pytest.approx(0.2, abs=0.06)

    def test_irrelevant_input_scores_zero(self):
        from repro.core import sobol_first_order
        indices = sobol_first_order(
            {"used": Uniform(0.0, 1.0), "unused": Uniform(0.0, 1.0)},
            lambda d: d["used"] ** 2, samples=2000, seed=1)
        assert indices["unused"] == pytest.approx(0.0, abs=0.05)
        assert indices["used"] > 0.9

    def test_constant_output_gives_zeros(self):
        from repro.core import sobol_first_order
        indices = sobol_first_order(
            {"x": Uniform(0.0, 1.0)}, lambda d: 5.0, samples=100, seed=0)
        assert indices == {"x": 0.0}

    def test_rejects_bad_arguments(self):
        from repro.core import sobol_first_order
        with pytest.raises(ModelError):
            sobol_first_order({}, lambda d: 0.0)
        with pytest.raises(ModelError):
            sobol_first_order({"x": Uniform(0, 1)}, lambda d: 0.0,
                              samples=1)
