"""CompiledSampler: vectorized / bit-packed Monte Carlo sampling."""

import random

import numpy as np
import pytest

from repro.compile import CompiledSampler, compile_sampler
from repro.elbtunnel.faulttrees import fig2_fault_tree
from repro.errors import SimulationError
from repro.fta.dsl import (
    INHIBIT,
    KOFN,
    NOT,
    OR,
    XOR,
    condition,
    hazard,
    house,
    primary,
)
from repro.fta.tree import FaultTree
from repro.sim.montecarlo import monte_carlo_counts


def kofn_tree():
    return FaultTree(hazard("H", gate=KOFN(
        "vote", 2, primary("A", 0.3), primary("B", 0.3),
        primary("C", 0.3)).gate))


def mixed_tree():
    cond = condition("ENV", 0.5)
    return FaultTree(hazard("H", OR_gate=[
        INHIBIT("I", primary("A", 0.2), cond),
        XOR("X", primary("B", 0.3), primary("C", 0.3)),
        NOT("N", OR("O", primary("D", 0.8), house("ON", True)))]))


class TestCompile:
    def test_kofn_disables_packing(self):
        assert not CompiledSampler(kofn_tree()).packable

    def test_bitwise_gates_pack(self):
        assert CompiledSampler(mixed_tree()).packable

    def test_compile_sampler_is_memoized_per_tree(self):
        tree = fig2_fault_tree()
        assert compile_sampler(tree) is compile_sampler(tree)
        assert compile_sampler(fig2_fault_tree()) \
            is not compile_sampler(tree)

    def test_repr(self):
        assert "packed" in repr(CompiledSampler(mixed_tree()))
        assert "boolean" in repr(CompiledSampler(kofn_tree()))


class TestEvaluate:
    def test_matches_structure_function(self):
        rng = random.Random(5)
        for tree in (kofn_tree(), mixed_tree()):
            sampler = CompiledSampler(tree)
            names = sampler.leaf_names
            draws = np.array([[rng.random() < 0.5 for _ in names]
                              for _ in range(64)])
            expected = [tree.evaluate(dict(zip(names, row)))
                        for row in draws]
            assert list(sampler.evaluate(draws)) == expected

    def test_bad_draw_shape(self):
        with pytest.raises(SimulationError):
            CompiledSampler(mixed_tree()).evaluate(np.zeros((4, 1),
                                                            dtype=bool))


class TestCounts:
    def test_bit_for_bit_compatible_with_interpreted_loop(self):
        for tree in (fig2_fault_tree(), kofn_tree(), mixed_tree()):
            probs = None
            if tree.name == "Collision":
                probs = {name: 0.1 for name in
                         CompiledSampler(tree).leaf_names}
            vectorized = CompiledSampler(tree).counts(
                probs, samples=2000, seed=13)
            interpreted = monte_carlo_counts(tree, probs, samples=2000,
                                             seed=13, vectorized=False)
            assert vectorized == interpreted

    def test_blocks_preserve_the_draw_stream(self, monkeypatch):
        import repro.compile.sampler as sampler_module
        tree = mixed_tree()
        whole = CompiledSampler(tree).counts(samples=700, seed=3)
        monkeypatch.setattr(sampler_module, "_BLOCK", 256)
        blocked = CompiledSampler(tree).counts(samples=700, seed=3)
        assert blocked == whole

    def test_packed_and_boolean_paths_agree(self):
        tree = mixed_tree()
        sampler = CompiledSampler(tree)
        assert sampler.packable
        packed = sampler.counts(samples=999, seed=21)
        sampler._has_kofn = True  # force the boolean fallback
        boolean = sampler.counts(samples=999, seed=21)
        assert packed == boolean

    def test_invalid_samples(self):
        with pytest.raises(SimulationError):
            CompiledSampler(mixed_tree()).counts(samples=0)

    def test_house_only_tree(self):
        tree = FaultTree(hazard("H", OR_gate=[house("ON", True)]))
        assert CompiledSampler(tree).counts(samples=50, seed=0) == (50, 50)
        tree_off = FaultTree(hazard("H", OR_gate=[house("OFF", False)]))
        assert CompiledSampler(tree_off).counts(samples=50, seed=0) \
            == (0, 50)
