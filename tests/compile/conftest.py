"""Shared helpers for the compile-subsystem tests: random fault trees.

The generator exercises everything the compiler must lower faithfully:
shared subtrees (DAGs), INHIBIT conditions (shared between gates), house
events (both states), K-of-N votes, and — when ``coherent=False`` — the
non-coherent XOR/NOT gates that force the BDD route.
"""

import itertools
import random

from repro.fta.dsl import (
    AND,
    INHIBIT,
    KOFN,
    NOT,
    OR,
    XOR,
    condition,
    hazard,
    house,
    primary,
)
from repro.fta.tree import FaultTree


def random_tree(rng: random.Random, coherent: bool = True,
                depth: int = 3) -> FaultTree:
    """A random, validated fault tree with shared leaves and conditions."""
    names = itertools.count()
    primaries = [primary(f"P{i}", round(rng.uniform(0.01, 0.4), 6))
                 for i in range(rng.randint(3, 7))]
    conditions = [condition(f"C{i}", round(rng.uniform(0.05, 0.9), 6))
                  for i in range(rng.randint(1, 2))]
    houses = [house(f"HS{i}", rng.random() < 0.5)
              for i in range(rng.randint(0, 2))]
    # Shared-subtree pool: built gates get reused as inputs elsewhere.
    shared = []

    def leaf():
        pool = primaries + houses
        return rng.choice(pool)

    def build(levels):
        if levels == 0 or rng.random() < 0.2:
            return leaf()
        if shared and rng.random() < 0.25:
            return rng.choice(shared)
        kinds = ["and", "or", "kofn", "inhibit"]
        if not coherent:
            kinds += ["xor", "not"]
        kind = rng.choice(kinds)
        name = f"G{next(names)}"
        if kind == "not":
            event = NOT(name, build(levels - 1))
        elif kind == "inhibit":
            event = INHIBIT(name, build(levels - 1),
                            rng.choice(conditions))
        else:
            n = rng.randint(2, 3)
            inputs = [build(levels - 1) for _ in range(n)]
            if kind == "and":
                event = AND(name, *inputs)
            elif kind == "or":
                event = OR(name, *inputs)
            elif kind == "xor":
                event = XOR(name, *inputs)
            else:
                event = KOFN(name, rng.randint(1, n), *inputs)
        shared.append(event)
        return event

    top = hazard("TOP", OR_gate=[build(depth - 1), build(depth - 1)])
    return FaultTree(top)


def leaf_names(tree: FaultTree):
    """Primary-failure and condition names, in first-visit order."""
    from repro.fta.events import Condition, PrimaryFailure
    return [e.name for e in tree.iter_events()
            if isinstance(e, (PrimaryFailure, Condition))]


def random_batch(rng: random.Random, tree: FaultTree, size: int):
    """Random full-leaf override dicts for ``tree``."""
    return [{name: rng.random() for name in leaf_names(tree)}
            for _ in range(size)]
