"""Property tests: compiled evaluators ≡ interpreted quantification.

The ISSUE-2 acceptance property: across randomly generated fault trees —
shared events, XOR/NOT gates, INHIBIT conditions, house events — the
compiled ``exact`` / ``rare_event`` / ``mcub`` paths match
:func:`repro.fta.quantify.hazard_probability` to ≤ 1e-12 over random
batches (they are in fact designed to be bit-identical, which these
tests also pin down), and the compiled sampler reproduces the
interpreted Monte Carlo counts exactly.
"""

import random

import pytest

from repro.compile import (
    CompiledSampler,
    compile_tree,
    supports_compilation,
)
from repro.fta.constraints import ConstraintPolicy
from repro.fta.quantify import hazard_probability
from repro.sim.montecarlo import monte_carlo_counts

from tests.compile.conftest import random_batch, random_tree

TOLERANCE = 1e-12


@pytest.mark.parametrize("seed", range(12))
def test_coherent_trees_all_methods(seed):
    rng = random.Random(1000 + seed)
    tree = random_tree(rng, coherent=True)
    points = random_batch(rng, tree, size=5)
    for method in ("exact", "rare_event", "mcub"):
        for policy in list(ConstraintPolicy):
            assert supports_compilation(tree, method)
            evaluator = compile_tree(tree, method, policy, cache=False)
            values = evaluator.evaluate(points)
            for point, value in zip(points, values):
                reference = hazard_probability(tree, point, method,
                                               policy=policy)
                assert abs(value - reference) <= TOLERANCE, \
                    (seed, method, policy, value, reference)
                # The implementation promises more than the tolerance:
                # the compiled arithmetic replays the interpreted one.
                assert value == reference
                assert evaluator.scalar(point) == reference


@pytest.mark.parametrize("seed", range(8))
def test_noncoherent_trees_exact(seed):
    rng = random.Random(2000 + seed)
    tree = random_tree(rng, coherent=False)
    assert supports_compilation(tree, "exact")
    if tree.is_coherent:  # rng may not have drawn an XOR/NOT
        return
    assert not supports_compilation(tree, "rare_event")
    evaluator = compile_tree(tree, "exact", cache=False)
    for point in random_batch(rng, tree, size=5):
        reference = hazard_probability(tree, point, "exact")
        assert evaluator.scalar(point) == reference


@pytest.mark.parametrize("seed", range(6))
def test_sampler_counts_match_interpreted(seed):
    rng = random.Random(3000 + seed)
    tree = random_tree(rng, coherent=(seed % 2 == 0))
    probs = {name: rng.uniform(0.05, 0.6)
             for name in CompiledSampler(tree).leaf_names}
    vectorized = CompiledSampler(tree).counts(probs, samples=400,
                                              seed=seed)
    interpreted = monte_carlo_counts(tree, probs, samples=400, seed=seed,
                                     vectorized=False)
    assert vectorized == interpreted


def test_batch_of_one_equals_scalar():
    rng = random.Random(77)
    tree = random_tree(rng, coherent=True)
    point = random_batch(rng, tree, size=1)[0]
    for method in ("exact", "rare_event", "mcub"):
        evaluator = compile_tree(tree, method, cache=False)
        assert evaluator.evaluate([point])[0] == evaluator.scalar(point)
