"""CompiledTape: exact BDD quantification lowered to a flat tape."""

import numpy as np
import pytest

from repro.compile import CompiledTape
from repro.elbtunnel.faulttrees import (
    collision_fault_tree,
    false_alarm_fault_tree,
    fig2_fault_tree,
)
from repro.errors import QuantificationError
from repro.fta.dsl import AND, NOT, OR, XOR, hazard, house, primary
from repro.fta.quantify import hazard_probability
from repro.fta.tree import FaultTree

from tests.compile.conftest import leaf_names


def small_tree():
    shared = primary("S", 0.1)
    left = AND("L", shared, primary("A", 0.2))
    right = AND("R", shared, primary("B", 0.3))
    return FaultTree(hazard("H", OR_gate=[left, right]))


class TestCompile:
    def test_leaves_in_first_visit_order(self):
        tape = CompiledTape(small_tree())
        assert tape.leaf_names == ["S", "A", "B"]

    def test_size_and_support(self):
        tape = CompiledTape(small_tree())
        assert tape.size >= 3
        assert tape.support == {"S", "A", "B"}

    def test_repr(self):
        assert "CompiledTape" in repr(CompiledTape(small_tree()))


class TestEvaluate:
    def test_matches_interpreted_exact_bitwise(self):
        tree = small_tree()
        tape = CompiledTape(tree)
        points = [{"S": 0.1, "A": 0.2, "B": 0.3},
                  {"S": 0.5, "A": 0.01, "B": 0.99},
                  {"S": 0.0, "A": 1.0, "B": 1.0}]
        values = tape.evaluate(tape.matrix(points))
        for point, value in zip(points, values):
            assert value == hazard_probability(tree, point, "exact")

    def test_scalar_matches_batch_bitwise(self):
        tree = small_tree()
        tape = CompiledTape(tree)
        point = {"S": 0.137, "A": 0.21, "B": 0.003}
        batch = tape.evaluate(tape.matrix([point]))
        assert tape.scalar(point) == batch[0]

    def test_shared_events_are_not_double_counted(self):
        # P(S&A or S&B) = P(S) * P(A or B) for independent leaves.
        tape = CompiledTape(small_tree())
        p = tape.scalar({"S": 0.5, "A": 0.5, "B": 0.5})
        assert p == pytest.approx(0.5 * 0.75)

    def test_xor_not_tree(self):
        tree = FaultTree(hazard("H", OR_gate=[
            XOR("X", primary("A", 0.3), primary("B", 0.4)),
            NOT("N", primary("C", 0.2))]))
        tape = CompiledTape(tree)
        point = {"A": 0.3, "B": 0.4, "C": 0.2}
        assert tape.scalar(point) == \
            hazard_probability(tree, point, "exact")

    def test_house_events_become_constants(self):
        tree = FaultTree(hazard("H", OR_gate=[
            AND("G", primary("A", 0.25), house("ON", True))]))
        tape = CompiledTape(tree)
        assert tape.scalar({"A": 0.25}) == 0.25

    def test_constant_false_tree(self):
        tree = FaultTree(hazard("H", OR_gate=[
            AND("G", primary("A", 0.25), house("OFF", False))]))
        tape = CompiledTape(tree)
        assert list(tape.evaluate(tape.matrix([{"A": 0.3}] * 4))) \
            == [0.0] * 4

    def test_elbtunnel_trees(self):
        import random
        rng = random.Random(3)
        for builder in (fig2_fault_tree, collision_fault_tree,
                        false_alarm_fault_tree):
            tree = builder()
            tape = CompiledTape(tree)
            point = {name: rng.uniform(0.0, 0.5)
                     for name in leaf_names(tree)}
            assert tape.scalar(point) == \
                hazard_probability(tree, point, "exact")


class TestValidation:
    def test_missing_probability(self):
        tape = CompiledTape(small_tree())
        with pytest.raises(QuantificationError):
            tape.matrix([{"S": 0.1, "A": 0.2}])

    def test_out_of_range_probability(self):
        tape = CompiledTape(small_tree())
        with pytest.raises(QuantificationError):
            tape.scalar({"S": 0.1, "A": 1.5, "B": 0.2})

    def test_bad_matrix_shape(self):
        tape = CompiledTape(small_tree())
        with pytest.raises(QuantificationError):
            tape.evaluate(np.zeros((4, 2)))
