"""Compiled evaluators wired into engine, core, sim and CLI hot paths."""

import json

import pytest

from repro.compile import compile_tree
from repro.core import FaultTreeHazard, identity
from repro.core.parametric import exceedance
from repro.engine import SweepJob, WorkerPool
from repro.engine.pool import run_quantify_chunk
from repro.fta.constraints import ConstraintPolicy
from repro.fta.cutsets import mocus
from repro.fta.dsl import AND, OR, hazard, primary
from repro.fta.quantify import hazard_probability
from repro.fta.tree import FaultTree
from repro.stats.distributions import TruncatedNormal


def small_tree():
    shared = primary("S", 0.05)
    return FaultTree(hazard("H", OR_gate=[
        AND("L", shared, primary("A", 0.1)),
        AND("R", shared, primary("B", 0.2)),
        primary("C", 0.01)]))


def sweep_job(compiled, method="rare_event", chunks=None):
    values = [0.05 * i for i in range(1, 8)]
    return SweepJob.from_axes(
        small_tree(), {"A": identity("pA"), "B": identity("pB")},
        {"pA": values, "pB": values}, method=method,
        compiled=compiled, chunks=chunks)


class TestSweepJob:
    @pytest.mark.parametrize("method", ["rare_event", "mcub", "exact"])
    def test_compiled_matches_interpreted(self, method):
        compiled = sweep_job(True, method).run_serial()
        interpreted = sweep_job(False, method).run_serial()
        assert compiled == interpreted
        assert all(isinstance(v, float) for v in compiled.values)

    def test_compiled_flag_does_not_change_fingerprint(self):
        assert sweep_job(True).fingerprint() == \
            sweep_job(False).fingerprint()

    def test_parallel_matches_serial(self):
        job = sweep_job(True, "exact", chunks=3)
        assert job.run(WorkerPool(2)) == job.run_serial()

    def test_inclusion_exclusion_falls_back(self):
        job = sweep_job(True, "inclusion_exclusion")
        reference = sweep_job(False, "inclusion_exclusion")
        assert job.run_serial() == reference.run_serial()

    def test_json_round_trip_of_compiled_values(self):
        result = sweep_job(True, "exact").run_serial()
        encoded = json.loads(json.dumps(SweepJob.encode_result(result)))
        assert SweepJob.decode_result(encoded) == result


class TestQuantifyChunk:
    def test_legacy_five_tuple_payload_still_works(self):
        tree = small_tree()
        cut_sets = mocus(tree)
        chunk = [(0, {"A": 0.3}), (1, {"B": 0.4})]
        legacy = run_quantify_chunk(
            (tree, cut_sets, "rare_event",
             ConstraintPolicy.INDEPENDENT, chunk))
        compiled = run_quantify_chunk(
            (tree, cut_sets, "rare_event",
             ConstraintPolicy.INDEPENDENT, chunk, True))
        assert legacy == compiled

    def test_compiled_chunk_exact(self):
        tree = small_tree()
        chunk = [(i, {"A": 0.1 * (i + 1)}) for i in range(4)]
        result = run_quantify_chunk(
            (tree, None, "exact", ConstraintPolicy.INDEPENDENT, chunk,
             True))
        for (index, overrides), (out_index, value) in zip(chunk, result):
            assert out_index == index
            assert value == hazard_probability(tree, overrides, "exact")


class TestFaultTreeHazard:
    def hazard_model(self, method="rare_event", compiled=True):
        return FaultTreeHazard(
            small_tree(),
            {"A": exceedance(TruncatedNormal(4.0, 2.0), "T")},
            method=method, compiled=compiled)

    @pytest.mark.parametrize("method", ["rare_event", "mcub", "exact"])
    def test_compiled_probability_matches_interpreted(self, method):
        compiled = self.hazard_model(method)
        interpreted = self.hazard_model(method, compiled=False)
        for t in (1.0, 3.5, 7.0):
            assert compiled.probability({"T": t}) == \
                interpreted.probability({"T": t})

    def test_evaluator_is_reused_across_calls(self):
        model = self.hazard_model("exact")
        model.probability({"T": 2.0})
        first = model._evaluator
        model.probability({"T": 5.0})
        assert model._evaluator is first

    def test_probability_batch_matches_pointwise(self):
        model = self.hazard_model("exact")
        points = [{"T": t} for t in (1.0, 2.0, 4.0, 8.0)]
        batch = model.probability_batch(points)
        assert batch == [model.probability(p) for p in points]

    def test_unsupported_method_falls_back(self):
        model = self.hazard_model("inclusion_exclusion")
        reference = self.hazard_model("inclusion_exclusion",
                                      compiled=False)
        point = {"T": 3.0}
        assert model.probability(point) == reference.probability(point)
        assert model.probability_batch([point]) == \
            [reference.probability(point)]

    def test_probability_grid_uses_compiled_sweep(self):
        model = self.hazard_model("exact")
        axes = {"T": [1.0, 2.0, 3.0]}
        result = model.probability_grid(axes=axes)
        for point, value in result:
            assert value == model.probability(point)


class TestCompileCache:
    def test_compile_tree_memoizes_per_tree_object(self):
        tree = small_tree()
        assert compile_tree(tree, "exact") is compile_tree(tree, "exact")
        assert compile_tree(tree, "exact") is not \
            compile_tree(tree, "rare_event")
        assert compile_tree(small_tree(), "exact") is not \
            compile_tree(tree, "exact")

    def test_different_cut_sets_never_share_an_evaluator(self):
        tree = small_tree()
        truncated = mocus(tree, max_order=1)
        full = compile_tree(tree, "rare_event")
        partial = compile_tree(tree, "rare_event", cut_sets=truncated)
        assert partial is not full
        point = {"S": 0.3, "A": 0.3, "B": 0.3, "C": 0.1}
        assert partial.scalar(point) == hazard_probability(
            tree, point, "rare_event", cut_sets=truncated)
        assert full.scalar(point) == hazard_probability(
            tree, point, "rare_event")
        assert partial.scalar(point) != full.scalar(point)

    def test_sampler_cache_entries_are_collectable(self):
        import gc
        import weakref
        from repro.compile import compile_sampler
        tree = small_tree()
        compile_sampler(tree)
        ref = weakref.ref(tree)
        del tree
        gc.collect()
        assert ref() is None

    def test_terminal_root_still_validates_leaves(self):
        from repro.errors import QuantificationError
        from repro.fta.dsl import house
        tree = FaultTree(hazard("H", OR_gate=[
            house("ON", True), primary("A")]))  # A has no default
        evaluator = compile_tree(tree, "exact", cache=False)
        # The interpreted path rejects the missing leaf probability even
        # though the house event collapses the BDD to TRUE; so must we.
        with pytest.raises(QuantificationError):
            hazard_probability(tree, {}, "exact")
        with pytest.raises(QuantificationError):
            evaluator.scalar({})
        with pytest.raises(QuantificationError):
            evaluator.evaluate([{}])
        assert evaluator.scalar({"A": 0.5}) == 1.0
        assert evaluator.evaluate([{"A": 0.5}])[0] == 1.0


class TestCli:
    def run_cli(self, tmp_path, capsys, *flags):
        from repro.cli import main
        jobs = {"jobs": [{"type": "sweep", "tree": "collision",
                          "axes": {"OT1": [0.01, 0.02, 0.03],
                                   "OT2": [0.01, 0.02]},
                          "probabilities": {"Other collision causes":
                                            0.001}}]}
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(jobs))
        assert main(["batch", str(path), "--json", *flags]) == 0
        return json.loads(capsys.readouterr().out)

    def test_compiled_and_interpreted_cli_results_agree(self, tmp_path,
                                                        capsys):
        compiled = self.run_cli(tmp_path, capsys, "--compiled")
        interpreted = self.run_cli(tmp_path, capsys, "--no-compiled")

        def stable(payload):
            # The result envelope reports measured wall time per job;
            # everything else must be bit-identical across paths.
            return [{k: v for k, v in entry.items()
                     if k != "wall_time_s"}
                    for entry in payload["results"]]
        assert stable(compiled) == stable(interpreted)
