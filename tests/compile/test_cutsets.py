"""CompiledCutSets: vectorized rare-event / MCUB quantification."""

import random

import numpy as np
import pytest

from repro.compile import CompiledCutSets
from repro.elbtunnel.faulttrees import (
    collision_fault_tree,
    false_alarm_fault_tree,
    fig2_fault_tree,
)
from repro.errors import QuantificationError
from repro.fta.constraints import ConstraintPolicy
from repro.fta.cutsets import mocus
from repro.fta.dsl import AND, INHIBIT, OR, condition, hazard, primary
from repro.fta.quantify import hazard_probability
from repro.fta.tree import FaultTree

from tests.compile.conftest import leaf_names


def guarded_tree():
    cond = condition("ENV", 0.3)
    guarded = INHIBIT("G", AND("A2", primary("A", 0.1),
                               primary("B", 0.2)), cond)
    return FaultTree(hazard("H", OR_gate=[guarded, primary("C", 0.05)]))


class TestCompile:
    def test_cut_set_count(self):
        compiled = CompiledCutSets(guarded_tree())
        assert compiled.cut_set_count == len(mocus(guarded_tree()))

    def test_precomputed_cut_sets_are_reused(self):
        tree = guarded_tree()
        cut_sets = mocus(tree)
        compiled = CompiledCutSets(tree, cut_sets=cut_sets)
        assert compiled.cut_set_count == len(cut_sets)

    def test_unknown_method_rejected(self):
        with pytest.raises(QuantificationError):
            CompiledCutSets(guarded_tree(), method="exact")

    def test_repr(self):
        assert "CompiledCutSets" in repr(CompiledCutSets(guarded_tree()))


class TestEvaluate:
    @pytest.mark.parametrize("method", ["rare_event", "mcub"])
    @pytest.mark.parametrize("policy", list(ConstraintPolicy))
    def test_matches_interpreted_bitwise(self, method, policy):
        rng = random.Random(11)
        for builder in (guarded_tree, fig2_fault_tree,
                        collision_fault_tree, false_alarm_fault_tree):
            tree = builder()
            compiled = CompiledCutSets(tree, method, policy)
            points = [{name: rng.random() for name in leaf_names(tree)}
                      for _ in range(4)]
            values = compiled.evaluate(compiled.matrix(points))
            for point, value in zip(points, values):
                reference = hazard_probability(tree, point, method,
                                               policy=policy)
                assert value == reference
                assert compiled.scalar(point) == reference

    def test_rare_event_clips_at_one(self):
        tree = FaultTree(hazard("H", OR_gate=[
            primary("A", 0.9), primary("B", 0.9)]))
        compiled = CompiledCutSets(tree, "rare_event")
        assert compiled.scalar({"A": 0.9, "B": 0.9}) == 1.0
        batch = compiled.evaluate(
            compiled.matrix([{"A": 0.9, "B": 0.9}] * 3))
        assert list(batch) == [1.0, 1.0, 1.0]

    def test_worst_case_ignores_conditions(self):
        tree = guarded_tree()
        compiled = CompiledCutSets(tree, "rare_event",
                                   ConstraintPolicy.WORST_CASE)
        point = {"A": 0.1, "B": 0.2, "C": 0.0, "ENV": 0.0}
        assert compiled.scalar(point) == pytest.approx(0.1 * 0.2)

    def test_frechet_takes_minimum(self):
        cond_a = condition("CA", 0.4)
        cond_b = condition("CB", 0.2)
        inner = INHIBIT("I1", primary("A", 0.5), cond_a)
        outer = INHIBIT("I2", inner, cond_b)
        tree = FaultTree(hazard("H", OR_gate=[outer]))
        compiled = CompiledCutSets(tree, "rare_event",
                                   ConstraintPolicy.FRECHET)
        point = {"A": 0.5, "CA": 0.4, "CB": 0.2}
        assert compiled.scalar(point) == pytest.approx(0.2 * 0.5)


class TestValidation:
    def test_missing_probability(self):
        compiled = CompiledCutSets(guarded_tree())
        with pytest.raises(QuantificationError):
            compiled.scalar({"A": 0.1, "B": 0.2, "C": 0.05})

    def test_out_of_range(self):
        compiled = CompiledCutSets(guarded_tree())
        with pytest.raises(QuantificationError):
            compiled.matrix([{"A": -0.1, "B": 0.2, "C": 0.05,
                              "ENV": 0.3}])

    def test_bad_matrix_shape(self):
        compiled = CompiledCutSets(guarded_tree())
        with pytest.raises(QuantificationError):
            compiled.evaluate(np.zeros((2, 1)))
