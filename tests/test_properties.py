"""Cross-module property-based tests on random coherent fault trees.

Invariants every analysis path must satisfy simultaneously, checked on
randomly generated trees:

* probabilities live in [0, 1] and the method ordering
  ``rare_event >= mcub >= exact`` holds,
* every MOCUS cut set satisfies the structure function and is minimal,
* serialization round-trips preserve the exact probability,
* modular quantification equals monolithic quantification,
* coherent structure functions are monotone (flipping a leaf on never
  un-fails the system).
"""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fta import (
    hazard_probability,
    modular_probability,
    mocus,
    tree_from_json,
    tree_to_json,
)
from tests.fta.test_cutsets import random_coherent_tree


@given(st.integers(0, 100_000))
@settings(max_examples=60, deadline=None)
def test_method_ordering_on_random_trees(seed):
    tree = random_coherent_tree(seed)
    rare = hazard_probability(tree, method="rare_event")
    mcub = hazard_probability(tree, method="mcub")
    exact = hazard_probability(tree, method="exact")
    assert 0.0 <= exact <= 1.0
    assert rare >= mcub - 1e-12
    assert mcub >= exact - 1e-12


@given(st.integers(0, 100_000))
@settings(max_examples=40, deadline=None)
def test_cut_sets_satisfy_and_are_minimal(seed):
    tree = random_coherent_tree(seed)
    leaves = [e.name for e in tree.primary_failures]
    for cut in mocus(tree):
        assignment = {name: name in cut.failures for name in leaves}
        assert tree.evaluate(assignment)
        for member in cut.failures:
            reduced = dict(assignment)
            reduced[member] = False
            assert not tree.evaluate(reduced)


@given(st.integers(0, 100_000))
@settings(max_examples=40, deadline=None)
def test_serialization_preserves_probability(seed):
    tree = random_coherent_tree(seed)
    rebuilt = tree_from_json(tree_to_json(tree))
    assert hazard_probability(rebuilt, method="exact") == pytest.approx(
        hazard_probability(tree, method="exact"), rel=1e-12)


@given(st.integers(0, 100_000))
@settings(max_examples=30, deadline=None)
def test_modular_equals_monolithic(seed):
    tree = random_coherent_tree(seed)
    assert modular_probability(tree, method="exact") == pytest.approx(
        hazard_probability(tree, method="exact"), rel=1e-9)


@given(st.integers(0, 100_000), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_structure_function_monotone(seed, flip_seed):
    import random
    tree = random_coherent_tree(seed)
    leaves = [e.name for e in tree.primary_failures]
    rng = random.Random(flip_seed)
    assignment = {name: rng.random() < 0.5 for name in leaves}
    before = tree.evaluate(assignment)
    # Turning one more leaf ON must never turn the hazard OFF.
    for name in leaves:
        if not assignment[name]:
            flipped = dict(assignment)
            flipped[name] = True
            assert tree.evaluate(flipped) >= before


@given(st.integers(0, 100_000))
@settings(max_examples=30, deadline=None)
def test_probability_monotone_in_leaf_probability(seed):
    """Coherent trees: raising any leaf probability never lowers P(H)."""
    import random
    tree = random_coherent_tree(seed)
    leaves = [e.name for e in tree.primary_failures]
    rng = random.Random(seed ^ 0xBEEF)
    base = {name: rng.uniform(0.05, 0.5) for name in leaves}
    p_base = hazard_probability(tree, base, method="exact")
    bumped_leaf = rng.choice(leaves)
    bumped = dict(base)
    bumped[bumped_leaf] = min(1.0, base[bumped_leaf] + 0.3)
    p_bumped = hazard_probability(tree, bumped, method="exact")
    assert p_bumped >= p_base - 1e-12
