"""Replication-batch substrate: seeds, counter matrix, statistics."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.batch import (
    CounterMatrix,
    between_replication_variance,
    per_replication_wilson,
    replication_seeds,
)
from repro.stats.estimation import wilson_ci


class TestReplicationSeeds:
    def test_first_replication_is_the_base_seed(self):
        assert replication_seeds(42, 3)[0] == 42

    def test_deterministic(self):
        assert replication_seeds(7, 16) == replication_seeds(7, 16)

    def test_count_independent_prefix(self):
        """Growing a study keeps the already-run replications."""
        assert replication_seeds(7, 64)[:8] == replication_seeds(7, 8)

    def test_seeds_are_distinct(self):
        seeds = replication_seeds(0, 256)
        assert len(set(seeds)) == 256

    def test_neighbouring_base_seeds_do_not_collide(self):
        """seed+index schemes alias run (0, r+1) with run (1, r)."""
        a = set(replication_seeds(0, 64))
        b = set(replication_seeds(1, 64))
        assert len(a & b) == 0

    def test_rejects_empty_batch(self):
        with pytest.raises(SimulationError):
            replication_seeds(0, 0)


class TestCounterMatrix:
    def test_row_round_trip(self):
        matrix = CounterMatrix(("a", "b"), 3)
        matrix.set_row(1, (4, 5))
        assert matrix.row(1) == (4, 5)
        assert matrix.row(0) == (0, 0)
        assert all(isinstance(v, int) for v in matrix.row(1))

    def test_rows_in_replication_order(self):
        matrix = CounterMatrix(("a",), 3)
        for replication in range(3):
            matrix.set_row(replication, (replication * 10,))
        assert list(matrix.rows()) == [(0,), (10,), (20,)]

    def test_columns_are_int64_arrays(self):
        matrix = CounterMatrix(("a", "b"), 4)
        column = matrix.column("a")
        assert isinstance(column, np.ndarray)
        assert column.dtype == np.int64
        assert len(column) == 4

    def test_totals_pool_over_replications(self):
        matrix = CounterMatrix(("hits", "runs"), 3)
        matrix.set_row(0, (1, 10))
        matrix.set_row(1, (2, 20))
        matrix.set_row(2, (3, 30))
        assert matrix.totals() == {"hits": 6, "runs": 60}

    def test_len_is_replication_count(self):
        assert len(CounterMatrix(("a",), 5)) == 5

    def test_rejects_unknown_column(self):
        with pytest.raises(SimulationError):
            CounterMatrix(("a",), 2).column("b")

    def test_rejects_wrong_row_width(self):
        with pytest.raises(SimulationError):
            CounterMatrix(("a", "b"), 2).set_row(0, (1,))

    def test_rejects_duplicate_fields(self):
        with pytest.raises(SimulationError):
            CounterMatrix(("a", "a"), 2)

    def test_rejects_empty_fields_and_batches(self):
        with pytest.raises(SimulationError):
            CounterMatrix((), 2)
        with pytest.raises(SimulationError):
            CounterMatrix(("a",), 0)


class TestBetweenReplicationVariance:
    def test_matches_unbiased_formula(self):
        values = [0.1, 0.4, 0.3, 0.2]
        mean = sum(values) / 4
        expected = sum((v - mean) ** 2 for v in values) / 3
        assert between_replication_variance(values) == \
            pytest.approx(expected)

    def test_single_replication_has_no_spread(self):
        assert between_replication_variance([0.5]) == 0.0

    def test_rejects_matrix_input(self):
        with pytest.raises(SimulationError):
            between_replication_variance([[0.1, 0.2], [0.3, 0.4]])


class TestPerReplicationWilson:
    def test_matches_scalar_wilson(self):
        intervals = per_replication_wilson([3, 7], [10, 20])
        assert intervals[0] == wilson_ci(3, 10)
        assert intervals[1] == wilson_ci(7, 20)

    def test_zero_trials_gives_vacuous_interval(self):
        assert per_replication_wilson([0], [0]) == [(0.0, 1.0)]

    def test_rejects_length_mismatch(self):
        with pytest.raises(SimulationError):
            per_replication_wilson([1], [10, 20])
