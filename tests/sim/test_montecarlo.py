"""Monte Carlo fault-tree estimation: agreement with exact values."""

import pytest

from repro.errors import SimulationError
from repro.fta import FaultTree, hazard_probability
from repro.fta.dsl import OR, hazard, primary
from repro.sim import monte_carlo_probability
from repro.sim.montecarlo import monte_carlo_cut_set_frequencies


class TestEstimation:
    def test_or_tree_agrees_with_exact(self, simple_or_tree):
        exact = hazard_probability(simple_or_tree, method="exact")
        estimate = monte_carlo_probability(simple_or_tree,
                                           samples=60_000, seed=3)
        assert estimate.agrees_with(exact)

    def test_inhibit_tree_includes_conditions(self, inhibit_tree):
        exact = hazard_probability(inhibit_tree, method="exact")
        estimate = monte_carlo_probability(inhibit_tree,
                                           samples=200_000, seed=4)
        assert estimate.agrees_with(exact)

    def test_bridge_tree_catches_shared_events(self, bridge_tree):
        exact = hazard_probability(bridge_tree, method="exact")
        estimate = monte_carlo_probability(bridge_tree,
                                           samples=60_000, seed=5)
        assert estimate.agrees_with(exact)
        # And specifically NOT the (higher) rare-event value.
        rare = hazard_probability(bridge_tree, method="rare_event")
        assert estimate.probability < rare

    def test_certain_hazard(self):
        tree = FaultTree(hazard("H", OR_gate=[primary("a", 1.0)]))
        estimate = monte_carlo_probability(tree, samples=1000, seed=0)
        assert estimate.probability == 1.0
        assert estimate.occurrences == 1000

    def test_impossible_hazard(self):
        tree = FaultTree(hazard("H", OR_gate=[primary("a", 0.0)]))
        estimate = monte_carlo_probability(tree, samples=1000, seed=0)
        assert estimate.probability == 0.0
        assert estimate.ci_low == 0.0

    def test_overrides_respected(self, simple_or_tree):
        estimate = monte_carlo_probability(
            simple_or_tree, {"A": 1.0, "B": 1.0}, samples=100, seed=0)
        assert estimate.probability == 1.0

    def test_deterministic_under_seed(self, simple_or_tree):
        a = monte_carlo_probability(simple_or_tree, samples=5000, seed=11)
        b = monte_carlo_probability(simple_or_tree, samples=5000, seed=11)
        assert a == b

    def test_interval_narrows_with_samples(self, simple_or_tree):
        small = monte_carlo_probability(simple_or_tree, samples=1000,
                                        seed=1)
        large = monte_carlo_probability(simple_or_tree, samples=100_000,
                                        seed=1)
        assert (large.ci_high - large.ci_low) < \
            (small.ci_high - small.ci_low)

    def test_rejects_nonpositive_samples(self, simple_or_tree):
        with pytest.raises(SimulationError):
            monte_carlo_probability(simple_or_tree, samples=0)


class TestCutSetFrequencies:
    def test_and_tree_all_leaves_always_present(self, simple_and_tree):
        freqs = monte_carlo_cut_set_frequencies(simple_and_tree,
                                                samples=20_000, seed=2)
        assert freqs["A"] == 1.0
        assert freqs["B"] == 1.0

    def test_dominant_leaf_ranks_highest(self):
        tree = FaultTree(hazard("H", OR_gate=[
            primary("common", 0.2), primary("rare", 0.001)]))
        freqs = monte_carlo_cut_set_frequencies(tree, samples=50_000,
                                                seed=3)
        assert freqs["common"] > freqs["rare"]

    def test_zero_hazard_gives_zero_frequencies(self):
        tree = FaultTree(hazard("H", OR_gate=[primary("a", 0.0)]))
        freqs = monte_carlo_cut_set_frequencies(tree, samples=100, seed=0)
        assert freqs == {"a": 0.0}
