"""DES kernel: ordering, determinism, processes, guards."""

import pytest

from repro.errors import SimulationError
from repro.sim import Process, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_fifo_tie_breaking(self):
        sim = Simulator()
        log = []
        for label in "abc":
            sim.schedule(1.0, lambda l=label: log.append(l))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]

    def test_rejects_past_scheduling(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.schedule(2.0, lambda: log.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 3.0)]


class TestRunUntil:
    def test_stops_at_horizon(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(10.0, lambda: log.append(10))
        sim.run_until(5.0)
        assert log == [1]
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_inclusive_horizon(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda: log.append(5))
        sim.run_until(5.0)
        assert log == [5]

    def test_rejects_backwards_horizon(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until(2.0)
        with pytest.raises(SimulationError):
            sim.run_until(1.0)

    def test_resumable(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(3.0, lambda: log.append(3))
        sim.run_until(2.0)
        sim.run_until(4.0)
        assert log == [1, 3]


class TestRunaway:
    def test_max_events_guard(self):
        sim = Simulator()

        def rescheduling():
            sim.schedule(1.0, rescheduling)

        sim.schedule(0.0, rescheduling)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_event_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 5


class TestProcesses:
    def test_generator_process_advances_clock(self):
        sim = Simulator()
        log = []

        def worker():
            log.append(("start", sim.now))
            yield 2.0
            log.append(("middle", sim.now))
            yield 3.0
            log.append(("end", sim.now))

        sim.process(worker())
        sim.run()
        assert log == [("start", 0.0), ("middle", 2.0), ("end", 5.0)]

    def test_process_completion_sets_alive(self):
        sim = Simulator()

        def worker():
            yield 1.0

        proc = sim.process(worker())
        assert proc.alive
        sim.run()
        assert not proc.alive

    def test_cancelled_process_stops(self):
        sim = Simulator()
        log = []

        def worker():
            while True:
                yield 1.0
                log.append(sim.now)

        proc = sim.process(worker())
        sim.schedule(2.5, proc.cancel)
        sim.run_until(10.0)
        assert log == [1.0, 2.0]

    def test_invalid_delay_raises(self):
        sim = Simulator()

        def worker():
            yield -1.0

        sim.process(worker())
        with pytest.raises(SimulationError):
            sim.run()

    def test_delayed_start(self):
        sim = Simulator()
        log = []

        def worker():
            log.append(sim.now)
            yield 1.0

        sim.process(worker(), delay=4.0)
        sim.run()
        assert log == [4.0]

    def test_two_processes_interleave(self):
        sim = Simulator()
        log = []

        def worker(name, gap):
            for _ in range(2):
                yield gap
                log.append((name, sim.now))

        sim.process(worker("fast", 1.0))
        sim.process(worker("slow", 1.5))
        sim.run()
        assert log == [("fast", 1.0), ("slow", 1.5), ("fast", 2.0),
                       ("slow", 3.0)]

    def test_cancel_after_completion_is_a_noop(self):
        """cancel() on a finished process must not touch the generator."""
        sim = Simulator()

        def worker():
            yield 1.0

        proc = sim.process(worker())
        sim.run()
        assert not proc.alive
        proc.cancel()                  # second call: still harmless
        proc.cancel()
        assert not proc.alive

    def test_cancel_after_final_yield_before_resume(self):
        """Cancelling between the final yield and its resumption: the
        pending resumption becomes a no-op and nothing else runs."""
        sim = Simulator()
        log = []

        def worker():
            log.append(("yielding", sim.now))
            yield 2.0
            log.append(("resumed", sim.now))   # must never happen

        proc = sim.process(worker())
        sim.schedule(1.0, proc.cancel)
        sim.run()
        assert log == [("yielding", 0.0)]
        assert not proc.alive
        assert sim.pending == 0


class TestZeroDelayOrdering:
    def test_zero_delay_fifo_under_interleaved_scheduling(self):
        """Events at the same instant run in scheduling order, even when
        a handler schedules zero-delay work between existing ties."""
        sim = Simulator()
        log = []

        def first():
            log.append("first")
            # Scheduled *after* "second" was, so it must run after it
            # despite sharing the time stamp.
            sim.schedule(0.0, lambda: log.append("nested"))

        sim.schedule(1.0, first)
        sim.schedule(1.0, lambda: log.append("second"))
        sim.run()
        assert log == ["first", "second", "nested"]

    def test_zero_delay_chain_preserves_fifo(self):
        sim = Simulator()
        log = []

        def chain(label, depth):
            log.append(label)
            if depth:
                sim.schedule(0.0, lambda: chain(label + "'", depth - 1))

        sim.schedule(0.0, lambda: chain("a", 2))
        sim.schedule(0.0, lambda: chain("b", 1))
        sim.run()
        assert log == ["a", "b", "a'", "b'", "a''"]

    def test_clock_does_not_advance_on_zero_delay(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, lambda: sim.schedule(
            0.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [2.0]


class TestInvalidDelays:
    def test_none_delay_raises_and_kills_the_process(self):
        sim = Simulator()

        def worker():
            yield None

        proc = sim.process(worker())
        with pytest.raises(SimulationError, match="invalid delay"):
            sim.run()
        assert not proc.alive

    def test_negative_delay_names_the_process(self):
        sim = Simulator()

        def worker():
            yield -0.5

        proc = sim.process(worker(), name="rogue")
        with pytest.raises(SimulationError, match="rogue"):
            sim.run()
        assert not proc.alive
