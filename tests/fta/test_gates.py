"""Gate construction rules: arities, k ranges, conditions."""

import pytest

from repro.errors import FaultTreeError
from repro.fta import Condition, Gate, GateType, PrimaryFailure
from repro.fta.gates import (
    and_gate,
    inhibit_gate,
    kofn_gate,
    not_gate,
    or_gate,
    xor_gate,
)


@pytest.fixture
def leaves():
    return [PrimaryFailure(n, 0.1) for n in "abc"]


class TestBasicRules:
    def test_requires_inputs(self):
        with pytest.raises(FaultTreeError):
            Gate(GateType.AND, [])

    def test_rejects_non_event_inputs(self):
        with pytest.raises(FaultTreeError):
            Gate(GateType.OR, ["not an event"])

    def test_rejects_non_gatetype(self):
        with pytest.raises(FaultTreeError):
            Gate("or", [PrimaryFailure("a", 0.1)])

    def test_condition_cannot_be_plain_input(self, leaves):
        with pytest.raises(FaultTreeError):
            Gate(GateType.OR, [Condition("c", 0.5)] + leaves)


class TestKofN:
    def test_valid_range(self, leaves):
        gate = kofn_gate(2, *leaves)
        assert gate.k == 2

    @pytest.mark.parametrize("k", [0, 4, -1])
    def test_rejects_bad_k(self, leaves, k):
        with pytest.raises(FaultTreeError):
            kofn_gate(k, *leaves)

    def test_k_requires_kofn_type(self, leaves):
        with pytest.raises(FaultTreeError):
            Gate(GateType.AND, leaves, k=2)

    def test_kofn_requires_k(self, leaves):
        with pytest.raises(FaultTreeError):
            Gate(GateType.KOFN, leaves)


class TestNot:
    def test_single_input_only(self, leaves):
        assert not_gate(leaves[0]).gate_type is GateType.NOT
        with pytest.raises(FaultTreeError):
            Gate(GateType.NOT, leaves[:2])


class TestXor:
    def test_requires_two_inputs(self, leaves):
        assert xor_gate(*leaves[:2]).gate_type is GateType.XOR
        with pytest.raises(FaultTreeError):
            Gate(GateType.XOR, leaves[:1])


class TestInhibit:
    def test_requires_condition(self, leaves):
        with pytest.raises(FaultTreeError):
            Gate(GateType.INHIBIT, leaves[:1])

    def test_requires_single_cause(self, leaves):
        with pytest.raises(FaultTreeError):
            Gate(GateType.INHIBIT, leaves[:2], condition=Condition("c", 0.5))

    def test_valid_inhibit(self, leaves):
        cond = Condition("c", 0.5)
        gate = inhibit_gate(leaves[0], cond)
        assert gate.condition is cond

    def test_condition_only_on_inhibit(self, leaves):
        with pytest.raises(FaultTreeError):
            Gate(GateType.AND, leaves, condition=Condition("c", 0.5))

    def test_condition_must_be_condition_type(self, leaves):
        with pytest.raises(FaultTreeError):
            Gate(GateType.INHIBIT, leaves[:1], condition=leaves[1])


class TestConvenience:
    def test_and_or_builders(self, leaves):
        assert and_gate(*leaves).gate_type is GateType.AND
        assert or_gate(*leaves).gate_type is GateType.OR

    def test_repr_is_informative(self, leaves):
        gate = kofn_gate(2, *leaves)
        text = repr(gate)
        assert "kofn" in text and "k=2" in text
