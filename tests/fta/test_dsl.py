"""Builder DSL: constructed shapes match explicit Gate construction."""

import pytest

from repro.errors import FaultTreeError
from repro.fta import FaultTree, GateType, hazard_probability
from repro.fta.dsl import (
    AND,
    INHIBIT,
    KOFN,
    NOT,
    OR,
    XOR,
    condition,
    hazard,
    house,
    primary,
    tree,
)


class TestLeafBuilders:
    def test_primary(self):
        pf = primary("a", 0.1, "desc")
        assert pf.probability == 0.1
        assert pf.description == "desc"

    def test_condition(self):
        assert condition("c", 0.5).probability == 0.5

    def test_house(self):
        assert house("h", False).state is False


class TestGateBuilders:
    def test_each_builder_sets_type(self):
        a, b = primary("a", 0.1), primary("b", 0.2)
        assert AND("x", a, b).gate.gate_type is GateType.AND
        assert OR("y", a, b).gate.gate_type is GateType.OR
        assert KOFN("z", 1, a, b).gate.gate_type is GateType.KOFN
        assert XOR("w", a, b).gate.gate_type is GateType.XOR
        assert NOT("v", a).gate.gate_type is GateType.NOT

    def test_inhibit_builder(self):
        g = INHIBIT("g", primary("a", 0.1), condition("c", 0.5))
        assert g.gate.gate_type is GateType.INHIBIT
        assert g.gate.condition.name == "c"

    def test_descriptions_carried(self):
        node = AND("x", primary("a", 0.1), primary("b", 0.1),
                   description="both")
        assert node.description == "both"


class TestHazardBuilder:
    def test_or_shorthand(self):
        top = hazard("H", OR_gate=[primary("a", 0.1)])
        assert top.gate.gate_type is GateType.OR

    def test_and_shorthand(self):
        top = hazard("H", AND_gate=[primary("a", 0.1), primary("b", 0.1)])
        assert top.gate.gate_type is GateType.AND

    def test_explicit_gate(self):
        inner = KOFN("vote", 1, primary("a", 0.1), primary("b", 0.1))
        top = hazard("H", gate=inner.gate)
        assert top.gate.gate_type is GateType.KOFN

    def test_requires_exactly_one_gate_argument(self):
        with pytest.raises(FaultTreeError):
            hazard("H")
        with pytest.raises(FaultTreeError):
            hazard("H", OR_gate=[primary("a", 0.1)],
                   AND_gate=[primary("b", 0.1)])


class TestTreeBuilder:
    def test_tree_wraps_and_validates(self):
        t = tree(hazard("H", OR_gate=[primary("a", 0.1)]), name="custom")
        assert isinstance(t, FaultTree)
        assert t.name == "custom"

    def test_dsl_tree_quantifies(self):
        t = tree(hazard("H", OR_gate=[
            AND("ab", primary("a", 0.5), primary("b", 0.5)),
            primary("c", 0.25)]))
        assert hazard_probability(t, method="exact") == pytest.approx(
            1 - (1 - 0.25) * (1 - 0.25))
