"""Time-dependent FTA: curves, interpolation, MTTH."""

import math

import pytest

from repro.errors import QuantificationError
from repro.fta import FaultTree, evaluate_over_time, time_to_probability
from repro.fta.dsl import AND, OR, hazard, primary
from repro.stats import ConstantRateModel, WeibullHazardModel


@pytest.fixture
def single_component_tree():
    return FaultTree(hazard("H", OR_gate=[primary("pump")]))


@pytest.fixture
def redundant_tree():
    return FaultTree(hazard("H", AND_gate=[primary("a"), primary("b")]))


class TestCurves:
    def test_single_constant_rate_matches_closed_form(
            self, single_component_tree):
        curve = evaluate_over_time(
            single_component_tree, {"pump": ConstantRateModel(0.1)},
            horizon=20.0, points=21)
        for t, p in curve.points:
            assert p == pytest.approx(1.0 - math.exp(-0.1 * t), rel=1e-9)

    def test_redundant_pair_is_product(self, redundant_tree):
        model = ConstantRateModel(0.05)
        curve = evaluate_over_time(
            redundant_tree, {"a": model, "b": model},
            horizon=30.0, points=16)
        for t, p in curve.points:
            q = 1.0 - math.exp(-0.05 * t)
            assert p == pytest.approx(q * q, rel=1e-9)

    def test_curve_monotone_for_coherent_tree(self, redundant_tree):
        curve = evaluate_over_time(
            redundant_tree,
            {"a": WeibullHazardModel(2.0, 50.0),
             "b": ConstantRateModel(0.01)},
            horizon=100.0, points=25)
        probs = curve.probabilities
        assert all(b >= a - 1e-12 for a, b in zip(probs, probs[1:]))

    def test_static_probabilities_for_uncovered_leaves(self):
        tree = FaultTree(hazard("H", AND_gate=[
            primary("aging"), primary("demand", 0.5)]))
        curve = evaluate_over_time(
            tree, {"aging": ConstantRateModel(0.1)}, horizon=10.0,
            points=5)
        assert curve.at(10.0) == pytest.approx(
            0.5 * (1.0 - math.exp(-1.0)), rel=1e-9)

    def test_starts_at_zero(self, single_component_tree):
        curve = evaluate_over_time(
            single_component_tree, {"pump": ConstantRateModel(0.1)},
            horizon=5.0, points=5)
        assert curve.points[0] == (0.0, 0.0)


class TestInterpolation:
    @pytest.fixture
    def curve(self, single_component_tree):
        return evaluate_over_time(
            single_component_tree, {"pump": ConstantRateModel(0.1)},
            horizon=20.0, points=41)

    def test_at_sample_points(self, curve):
        t, p = curve.points[10]
        assert curve.at(t) == pytest.approx(p)

    def test_between_samples(self, curve):
        value = curve.at(0.25)
        assert curve.at(0.0) < value < curve.at(0.5)

    def test_clamped_outside_horizon(self, curve):
        assert curve.at(-1.0) == curve.points[0][1]
        assert curve.at(99.0) == curve.points[-1][1]


class TestMTTH:
    def test_constant_rate_mtth_converges_to_inverse_rate(
            self, single_component_tree):
        curve = evaluate_over_time(
            single_component_tree, {"pump": ConstantRateModel(0.5)},
            horizon=40.0, points=400)
        assert curve.mean_time_to_hazard() == pytest.approx(2.0, rel=0.01)

    def test_redundancy_extends_mtth(self, redundant_tree,
                                     single_component_tree):
        single = evaluate_over_time(
            single_component_tree, {"pump": ConstantRateModel(0.2)},
            horizon=60.0, points=300)
        double = evaluate_over_time(
            redundant_tree, {"a": ConstantRateModel(0.2),
                             "b": ConstantRateModel(0.2)},
            horizon=60.0, points=300)
        assert double.mean_time_to_hazard() > \
            single.mean_time_to_hazard()


class TestTimeToProbability:
    def test_constant_rate_threshold(self, single_component_tree):
        curve = evaluate_over_time(
            single_component_tree, {"pump": ConstantRateModel(0.1)},
            horizon=50.0, points=501)
        # P reaches 0.5 at t = ln(2)/0.1 ~ 6.93.
        assert time_to_probability(curve, 0.5) == pytest.approx(
            math.log(2) / 0.1, rel=0.01)

    def test_unreachable_target(self, single_component_tree):
        curve = evaluate_over_time(
            single_component_tree, {"pump": ConstantRateModel(0.01)},
            horizon=1.0, points=5)
        assert time_to_probability(curve, 0.99) == float("inf")

    def test_rejects_bad_target(self, single_component_tree):
        curve = evaluate_over_time(
            single_component_tree, {"pump": ConstantRateModel(0.1)},
            horizon=1.0, points=3)
        with pytest.raises(QuantificationError):
            time_to_probability(curve, 1.5)


class TestGuards:
    def test_rejects_unknown_leaf(self, single_component_tree):
        with pytest.raises(QuantificationError):
            evaluate_over_time(single_component_tree,
                               {"ghost": ConstantRateModel(0.1)},
                               horizon=1.0)

    def test_rejects_bad_horizon(self, single_component_tree):
        with pytest.raises(QuantificationError):
            evaluate_over_time(single_component_tree,
                               {"pump": ConstantRateModel(0.1)},
                               horizon=0.0)

    def test_rejects_single_point(self, single_component_tree):
        with pytest.raises(QuantificationError):
            evaluate_over_time(single_component_tree,
                               {"pump": ConstantRateModel(0.1)},
                               horizon=1.0, points=1)

    def test_uncovered_leaf_without_static_raises(self):
        tree = FaultTree(hazard("H", AND_gate=[
            primary("aging"), primary("uncovered")]))
        with pytest.raises(QuantificationError):
            evaluate_over_time(tree, {"aging": ConstantRateModel(0.1)},
                               horizon=1.0)
