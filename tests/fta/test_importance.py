"""Importance measures: closed-form checks and ordering properties."""

import math

import pytest

from repro.errors import QuantificationError
from repro.fta import FaultTree, importance_measures
from repro.fta.dsl import OR, hazard, primary


class TestClosedForms:
    def test_or_tree_birnbaum(self, simple_or_tree):
        """For H = A or B: Birnbaum(A) = 1 - P(B)."""
        rows = {r.event: r for r in importance_measures(simple_or_tree)}
        assert rows["A"].birnbaum == pytest.approx(0.8)
        assert rows["B"].birnbaum == pytest.approx(0.9)

    def test_and_tree_birnbaum(self, simple_and_tree):
        """For H = A and B: Birnbaum(A) = P(B)."""
        rows = {r.event: r for r in importance_measures(simple_and_tree)}
        assert rows["A"].birnbaum == pytest.approx(0.2)
        assert rows["B"].birnbaum == pytest.approx(0.1)

    def test_fussell_vesely_or_tree(self, simple_or_tree):
        base = 1 - 0.9 * 0.8
        rows = {r.event: r for r in importance_measures(simple_or_tree)}
        assert rows["A"].fussell_vesely == pytest.approx(1 - 0.2 / base)

    def test_raw_and_rrw(self, simple_or_tree):
        base = 1 - 0.9 * 0.8
        rows = {r.event: r for r in importance_measures(simple_or_tree)}
        assert rows["A"].raw == pytest.approx(1.0 / base)
        assert rows["A"].rrw == pytest.approx(base / 0.2)

    def test_rrw_infinite_for_sole_cause(self, simple_and_tree):
        rows = {r.event: r for r in importance_measures(simple_and_tree)}
        assert math.isinf(rows["A"].rrw)

    def test_criticality_relation(self, simple_or_tree):
        """criticality = birnbaum * p / P(H)."""
        base = 1 - 0.9 * 0.8
        rows = {r.event: r for r in importance_measures(simple_or_tree)}
        assert rows["A"].criticality == pytest.approx(
            rows["A"].birnbaum * 0.1 / base)


class TestOrderingProperties:
    def test_sorted_by_birnbaum_descending(self, bridge_tree):
        rows = importance_measures(bridge_tree)
        values = [r.birnbaum for r in rows]
        assert values == sorted(values, reverse=True)

    def test_shared_event_dominates(self, bridge_tree):
        """C participates in every cut set; it must rank first."""
        rows = importance_measures(bridge_tree)
        assert rows[0].event == "C"

    def test_condition_importance_computed_too(self, inhibit_tree):
        rows = {r.event: r for r in importance_measures(inhibit_tree)}
        assert rows["env"].birnbaum == pytest.approx(0.1 * 0.2)


class TestEdgeCases:
    def test_irrelevant_event_gets_neutral_values(self, simple_or_tree):
        rows = importance_measures(simple_or_tree, events=["A", "ghost"])
        ghost = next(r for r in rows if r.event == "ghost")
        assert ghost.birnbaum == 0.0
        assert ghost.raw == 1.0
        assert ghost.rrw == 1.0

    def test_zero_hazard_probability_raises(self):
        tree = FaultTree(hazard("H", OR_gate=[primary("a", 0.0)]))
        with pytest.raises(QuantificationError):
            importance_measures(tree)

    def test_subset_of_events(self, bridge_tree):
        rows = importance_measures(bridge_tree, events=["A"])
        assert len(rows) == 1
        assert rows[0].event == "A"
