"""Event types: construction rules and invariants."""

import pytest

from repro.errors import FaultTreeError
from repro.fta import (
    Condition,
    Gate,
    GateType,
    Hazard,
    HouseEvent,
    IntermediateEvent,
    PrimaryFailure,
)


class TestPrimaryFailure:
    def test_holds_probability(self):
        pf = PrimaryFailure("pump", 0.01, "pump fails to start")
        assert pf.name == "pump"
        assert pf.probability == 0.01
        assert pf.description == "pump fails to start"

    def test_probability_is_optional(self):
        assert PrimaryFailure("pump").probability is None

    @pytest.mark.parametrize("bad", [-0.1, 1.1, 2.0])
    def test_rejects_out_of_range_probability(self, bad):
        with pytest.raises(FaultTreeError):
            PrimaryFailure("pump", bad)

    def test_rejects_empty_name(self):
        with pytest.raises(FaultTreeError):
            PrimaryFailure("")

    def test_rejects_non_string_name(self):
        with pytest.raises(FaultTreeError):
            PrimaryFailure(42)


class TestCondition:
    def test_holds_probability(self):
        c = Condition("system running", 0.9)
        assert c.probability == 0.9

    @pytest.mark.parametrize("bad", [-1e-9, 1.0001])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(FaultTreeError):
            Condition("c", bad)


class TestHouseEvent:
    def test_state_coerced_to_bool(self):
        assert HouseEvent("h", 1).state is True
        assert HouseEvent("h", 0).state is False


class TestIntermediateEvent:
    def test_requires_gate(self):
        with pytest.raises(FaultTreeError):
            IntermediateEvent("x", "not a gate")

    def test_hazard_is_intermediate(self):
        gate = Gate(GateType.OR, [PrimaryFailure("a", 0.1)])
        h = Hazard("top", gate)
        assert isinstance(h, IntermediateEvent)
        assert h.gate is gate

    def test_repr_mentions_name(self):
        gate = Gate(GateType.OR, [PrimaryFailure("a", 0.1)])
        assert "top" in repr(Hazard("top", gate))
