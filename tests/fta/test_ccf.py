"""Beta-factor common-cause transformation."""

import pytest

from repro.errors import FaultTreeError
from repro.fta import FaultTree, apply_beta_factor, hazard_probability, mocus
from repro.fta.dsl import AND, hazard, primary


@pytest.fixture
def redundant_tree():
    """H = A and B — two redundant components, each p = 0.01."""
    return FaultTree(hazard("H", AND_gate=[
        primary("A", 0.01), primary("B", 0.01)]))


class TestStructure:
    def test_introduces_common_event_cut_set(self, redundant_tree):
        cc = apply_beta_factor(redundant_tree, ["A", "B"], beta=0.1)
        cuts = {frozenset(cs.failures) for cs in mocus(cc)}
        assert frozenset({"CCF(A,B)"}) in cuts
        assert frozenset({"A~indep", "B~indep"}) in cuts

    def test_original_tree_unchanged(self, redundant_tree):
        before = hazard_probability(redundant_tree, method="exact")
        apply_beta_factor(redundant_tree, ["A", "B"], beta=0.2)
        after = hazard_probability(redundant_tree, method="exact")
        assert before == after

    def test_custom_name(self, redundant_tree):
        cc = apply_beta_factor(redundant_tree, ["A", "B"], beta=0.1,
                               cc_name="shared_psu")
        assert "shared_psu" in cc


class TestProbabilities:
    def test_beta_zero_keeps_probability(self, redundant_tree):
        cc = apply_beta_factor(redundant_tree, ["A", "B"], beta=0.0)
        assert hazard_probability(cc, method="exact") == pytest.approx(
            hazard_probability(redundant_tree, method="exact"), rel=1e-9)

    def test_beta_one_collapses_to_single_failure(self, redundant_tree):
        cc = apply_beta_factor(redundant_tree, ["A", "B"], beta=1.0)
        assert hazard_probability(cc, method="exact") == pytest.approx(
            0.01, rel=1e-9)

    def test_common_cause_dominates_redundancy(self, redundant_tree):
        """Even a small beta destroys the p^2 redundancy gain."""
        independent = hazard_probability(redundant_tree, method="exact")
        cc = apply_beta_factor(redundant_tree, ["A", "B"], beta=0.1)
        with_cc = hazard_probability(cc, method="exact")
        assert with_cc > 5 * independent

    def test_monotone_in_beta(self, redundant_tree):
        values = [
            hazard_probability(
                apply_beta_factor(redundant_tree, ["A", "B"], beta=b),
                method="exact")
            for b in (0.0, 0.05, 0.2, 0.5, 1.0)]
        assert values == sorted(values)

    def test_unequal_probabilities_use_max(self):
        tree = FaultTree(hazard("H", AND_gate=[
            primary("A", 0.01), primary("B", 0.04)]))
        cc = apply_beta_factor(tree, ["A", "B"], beta=0.5)
        common = cc.event("CCF(A,B)")
        assert common.probability == pytest.approx(0.5 * 0.04)


class TestRejections:
    def test_rejects_bad_beta(self, redundant_tree):
        with pytest.raises(FaultTreeError):
            apply_beta_factor(redundant_tree, ["A", "B"], beta=1.5)

    def test_rejects_empty_group(self, redundant_tree):
        with pytest.raises(FaultTreeError):
            apply_beta_factor(redundant_tree, [], beta=0.1)

    def test_rejects_unknown_member(self, redundant_tree):
        with pytest.raises(Exception):
            apply_beta_factor(redundant_tree, ["A", "ghost"], beta=0.1)

    def test_rejects_member_without_probability(self):
        tree = FaultTree(hazard("H", AND_gate=[
            primary("A"), primary("B", 0.1)]))
        with pytest.raises(FaultTreeError):
            apply_beta_factor(tree, ["A", "B"], beta=0.1)

    def test_rejects_intermediate_member(self, redundant_tree):
        with pytest.raises(FaultTreeError):
            apply_beta_factor(redundant_tree, ["H"], beta=0.1)

    def test_rejects_name_clash(self, redundant_tree):
        with pytest.raises(FaultTreeError):
            apply_beta_factor(redundant_tree, ["A", "B"], beta=0.1,
                              cc_name="A")
