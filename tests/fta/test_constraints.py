"""Constraint probabilities: policies and paper Eq. 2."""

import pytest

from repro.errors import QuantificationError
from repro.fta import ConstraintPolicy, CutSet
from repro.fta.constraints import (
    constrained_cut_set_probability,
    constraint_probability,
)


@pytest.fixture
def guarded_cut():
    return CutSet(frozenset({"a", "b"}), frozenset({"c1", "c2"}))


@pytest.fixture
def probs():
    return {"a": 0.1, "b": 0.2, "c1": 0.5, "c2": 0.4}


class TestConstraintProbability:
    def test_worst_case_is_one(self, guarded_cut, probs):
        assert constraint_probability(
            guarded_cut, probs, ConstraintPolicy.WORST_CASE) == 1.0

    def test_independent_is_product(self, guarded_cut, probs):
        assert constraint_probability(
            guarded_cut, probs, ConstraintPolicy.INDEPENDENT) \
            == pytest.approx(0.2)

    def test_frechet_is_min(self, guarded_cut, probs):
        assert constraint_probability(
            guarded_cut, probs, ConstraintPolicy.FRECHET) \
            == pytest.approx(0.4)

    def test_frechet_upper_bounds_independent(self, guarded_cut, probs):
        """min(P) >= prod(P): the Frechet bound dominates independence."""
        indep = constraint_probability(
            guarded_cut, probs, ConstraintPolicy.INDEPENDENT)
        frechet = constraint_probability(
            guarded_cut, probs, ConstraintPolicy.FRECHET)
        assert frechet >= indep

    def test_unconditioned_cut_is_one(self, probs):
        plain = CutSet(frozenset({"a"}))
        for policy in ConstraintPolicy:
            assert constraint_probability(plain, probs, policy) == 1.0

    def test_missing_condition_raises(self, guarded_cut):
        with pytest.raises(QuantificationError):
            constraint_probability(guarded_cut, {"c1": 0.5},
                                   ConstraintPolicy.INDEPENDENT)

    def test_out_of_range_condition_raises(self, guarded_cut, probs):
        bad = dict(probs, c1=1.2)
        with pytest.raises(QuantificationError):
            constraint_probability(guarded_cut, bad,
                                   ConstraintPolicy.INDEPENDENT)

    def test_worst_case_needs_no_values(self, guarded_cut):
        assert constraint_probability(guarded_cut, {},
                                      ConstraintPolicy.WORST_CASE) == 1.0


class TestConstrainedCutSetProbability:
    def test_paper_eq2(self, guarded_cut, probs):
        """P(CS) = P(Constraints) * prod P(PF)."""
        value = constrained_cut_set_probability(
            guarded_cut, probs, ConstraintPolicy.INDEPENDENT)
        assert value == pytest.approx(0.5 * 0.4 * 0.1 * 0.2)

    def test_worst_case_reduces_to_failure_product(self, guarded_cut,
                                                   probs):
        value = constrained_cut_set_probability(
            guarded_cut, probs, ConstraintPolicy.WORST_CASE)
        assert value == pytest.approx(0.1 * 0.2)

    def test_missing_failure_probability_raises(self, guarded_cut):
        with pytest.raises(QuantificationError):
            constrained_cut_set_probability(
                guarded_cut, {"a": 0.1, "c1": 0.5, "c2": 0.4})

    def test_out_of_range_failure_raises(self, guarded_cut, probs):
        bad = dict(probs, a=-0.1)
        with pytest.raises(QuantificationError):
            constrained_cut_set_probability(guarded_cut, bad)

    def test_empty_cut_set_is_constraint_only(self, probs):
        empty = CutSet(frozenset(), frozenset({"c1"}))
        assert constrained_cut_set_probability(empty, probs) \
            == pytest.approx(0.5)
