"""Phased-mission analysis."""

import pytest

from repro.errors import QuantificationError
from repro.fta import (
    FaultTree,
    MissionPhase,
    evaluate_mission,
    hazard_probability,
    scale_exposure_probabilities,
)
from repro.fta.dsl import AND, OR, hazard, primary


def simple_tree(p_a: float, p_b: float) -> FaultTree:
    return FaultTree(hazard("H", OR_gate=[
        primary("a", p_a), primary("b", p_b)]))


class TestEvaluateMission:
    def test_single_phase_equals_direct(self):
        tree = simple_tree(0.01, 0.02)
        mission = evaluate_mission(
            [MissionPhase("only", tree, duration=1.0)])
        assert mission.probability == pytest.approx(
            hazard_probability(tree, method="exact"))

    def test_two_phases_combine_as_survival_product(self):
        day = simple_tree(0.01, 0.02)
        night = simple_tree(0.001, 0.002)
        mission = evaluate_mission([
            MissionPhase("day", day, duration=16.0),
            MissionPhase("night", night, duration=8.0),
        ])
        p_day = hazard_probability(day, method="exact")
        p_night = hazard_probability(night, method="exact")
        assert mission.probability == pytest.approx(
            1.0 - (1.0 - p_day) * (1.0 - p_night))

    def test_contributions_sum_to_one(self):
        mission = evaluate_mission([
            MissionPhase("a", simple_tree(0.01, 0.02), 1.0),
            MissionPhase("b", simple_tree(0.05, 0.01), 1.0),
        ])
        assert sum(p.contribution for p in mission.phases) == \
            pytest.approx(1.0)

    def test_dominant_phase(self):
        mission = evaluate_mission([
            MissionPhase("quiet", simple_tree(0.001, 0.001), 1.0),
            MissionPhase("rush", simple_tree(0.1, 0.1), 1.0),
        ])
        assert mission.dominant_phase.name == "rush"

    def test_per_phase_probability_overrides(self):
        tree = simple_tree(0.5, 0.5)
        mission = evaluate_mission([
            MissionPhase("p", tree, 1.0,
                         probabilities={"a": 0.0, "b": 0.25}),
        ])
        assert mission.probability == pytest.approx(0.25)

    def test_different_trees_per_phase(self):
        """Phases may change the logic, not just the numbers."""
        strict = FaultTree(hazard("H", OR_gate=[
            primary("x", 0.1), primary("y", 0.1)]))
        relaxed = FaultTree(hazard("H2", AND_gate=[
            primary("x2", 0.1), primary("y2", 0.1)]))
        mission = evaluate_mission([
            MissionPhase("strict", strict, 1.0),
            MissionPhase("relaxed", relaxed, 1.0),
        ])
        assert mission.phases[0].probability > \
            mission.phases[1].probability

    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(QuantificationError):
            evaluate_mission([])
        tree = simple_tree(0.1, 0.1)
        with pytest.raises(QuantificationError):
            evaluate_mission([MissionPhase("p", tree, 1.0),
                              MissionPhase("p", tree, 1.0)])

    def test_rejects_bad_duration(self):
        with pytest.raises(QuantificationError):
            MissionPhase("p", simple_tree(0.1, 0.1), 0.0)


class TestScaleExposure:
    def test_full_fraction_is_identity(self):
        base = {"a": 0.3, "b": 0.001}
        assert scale_exposure_probabilities(base, 1.0) == \
            pytest.approx(base)

    def test_poisson_exactness(self):
        """1 - exp(-rate*T) scaled to f*T equals 1 - (1-p)^f."""
        import math
        rate, horizon, fraction = 0.13, 30.0, 0.25
        p_full = 1.0 - math.exp(-rate * horizon)
        scaled = scale_exposure_probabilities({"x": p_full}, fraction)
        assert scaled["x"] == pytest.approx(
            1.0 - math.exp(-rate * horizon * fraction))

    def test_certain_event_stays_certain(self):
        assert scale_exposure_probabilities({"x": 1.0}, 0.5)["x"] == 1.0

    def test_rejects_bad_fraction(self):
        with pytest.raises(QuantificationError):
            scale_exposure_probabilities({"x": 0.5}, 0.0)

    def test_rejects_bad_probability(self):
        with pytest.raises(QuantificationError):
            scale_exposure_probabilities({"x": 1.5}, 0.5)
