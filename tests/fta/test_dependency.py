"""Implication-aware constraint probabilities (paper future work)."""

import pytest

from repro.errors import QuantificationError
from repro.fta import (
    ConstraintPolicy,
    CutSet,
    ImplicationSet,
    constraint_probability,
    dependent_constraint_probability,
    reduce_conditions,
)


class TestImplicationSet:
    def test_direct_implication(self):
        imp = ImplicationSet([("A", "B")])
        assert imp.implies("A", "B")
        assert not imp.implies("B", "A")

    def test_transitive_closure(self):
        imp = ImplicationSet([("A", "B"), ("B", "C")])
        assert imp.implies("A", "C")
        assert imp.consequences("A") == frozenset({"B", "C"})

    def test_closure_on_late_add(self):
        imp = ImplicationSet([("B", "C")])
        imp.add("A", "B")
        assert imp.implies("A", "C")

    def test_self_implication_is_noop(self):
        imp = ImplicationSet()
        imp.add("A", "A")
        assert not imp.implies("A", "A")

    def test_cycle_rejected(self):
        imp = ImplicationSet([("A", "B")])
        with pytest.raises(QuantificationError):
            imp.add("B", "A")

    def test_longer_cycle_rejected(self):
        imp = ImplicationSet([("A", "B"), ("B", "C")])
        with pytest.raises(QuantificationError):
            imp.add("C", "A")


class TestReduceConditions:
    def test_drops_implied_member(self):
        imp = ImplicationSet([("A", "B")])
        assert reduce_conditions({"A", "B"}, imp) == frozenset({"A"})

    def test_keeps_unrelated(self):
        imp = ImplicationSet([("A", "B")])
        assert reduce_conditions({"A", "B", "X"}, imp) == \
            frozenset({"A", "X"})

    def test_chain_collapses_to_root(self):
        imp = ImplicationSet([("A", "B"), ("B", "C")])
        assert reduce_conditions({"A", "B", "C"}, imp) == frozenset({"A"})

    def test_empty_implications_keep_everything(self):
        assert reduce_conditions({"A", "B"}, ImplicationSet()) == \
            frozenset({"A", "B"})


class TestDependentConstraintProbability:
    @pytest.fixture
    def cut(self):
        return CutSet(frozenset({"pf"}), frozenset({"A", "B"}))

    @pytest.fixture
    def probs(self):
        return {"A": 0.2, "B": 0.5, "pf": 0.1}

    def test_implication_makes_conjunction_exact(self, cut, probs):
        """A -> B means P(A and B) = P(A), not P(A)P(B)."""
        imp = ImplicationSet([("A", "B")])
        value = dependent_constraint_probability(cut, probs, imp)
        assert value == pytest.approx(0.2)

    def test_tighter_than_naive_independence(self, cut, probs):
        naive = constraint_probability(cut, probs,
                                       ConstraintPolicy.INDEPENDENT)
        imp = ImplicationSet([("A", "B")])
        informed = dependent_constraint_probability(cut, probs, imp)
        # P(A) = 0.2 >= P(A)P(B) = 0.1: the naive product UNDERSTATES the
        # true constraint probability when A implies B.
        assert informed > naive

    def test_no_implications_reduces_to_plain(self, cut, probs):
        value = dependent_constraint_probability(cut, probs,
                                                 ImplicationSet())
        assert value == pytest.approx(
            constraint_probability(cut, probs,
                                   ConstraintPolicy.INDEPENDENT))

    def test_frechet_policy_combines(self, cut, probs):
        imp = ImplicationSet([("A", "B")])
        value = dependent_constraint_probability(
            cut, probs, imp, ConstraintPolicy.FRECHET)
        assert value == pytest.approx(0.2)   # min over reduced set {A}
