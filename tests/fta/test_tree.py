"""FaultTree validation, traversal and structure-function evaluation."""

import pytest

from repro.errors import ValidationError
from repro.fta import FaultTree, Gate
from repro.fta.dsl import AND, INHIBIT, NOT, OR, XOR, condition, \
    hazard, house, primary


class TestValidation:
    def test_rejects_non_intermediate_top(self):
        with pytest.raises(ValidationError):
            FaultTree(primary("leaf", 0.1))

    def test_rejects_duplicate_names(self):
        top = hazard("H", OR_gate=[primary("a", 0.1), primary("a", 0.2)])
        with pytest.raises(ValidationError):
            FaultTree(top)

    def test_shared_subtree_is_allowed(self):
        shared = primary("shared", 0.1)
        top = hazard("H", OR_gate=[AND("x", shared, primary("b", 0.1)),
                                   AND("y", shared, primary("c", 0.1))])
        tree = FaultTree(top)
        assert len(tree.primary_failures) == 3

    def test_rejects_cycle(self):
        a = primary("a", 0.1)
        inner = OR("inner", a)
        outer = OR("outer", inner)
        # Create a cycle by appending outer into inner's gate inputs.
        inner.gate.inputs.append(outer)
        with pytest.raises(ValidationError):
            FaultTree(hazard("H", OR_gate=[outer]))

    def test_condition_name_clash_detected(self):
        cond = condition("x", 0.5)
        pf = primary("x", 0.1)
        top = hazard("H", OR_gate=[
            INHIBIT("g", primary("a", 0.1), cond), pf])
        with pytest.raises(ValidationError):
            FaultTree(top)

    def test_name_defaults_to_top(self):
        tree = FaultTree(hazard("MyHazard", OR_gate=[primary("a", 0.1)]))
        assert tree.name == "MyHazard"


class TestQueries:
    @pytest.fixture
    def tree(self):
        cond = condition("env", 0.5)
        top = hazard("H", OR_gate=[
            INHIBIT("guarded", AND("both", primary("a", 0.1),
                                   primary("b", 0.2)), cond),
            house("switch", True),
            primary("c", 0.3),
        ])
        return FaultTree(top)

    def test_event_lookup(self, tree):
        assert tree.event("a").probability == 0.1
        with pytest.raises(ValidationError):
            tree.event("nope")

    def test_contains(self, tree):
        assert "a" in tree
        assert "env" in tree
        assert "zzz" not in tree

    def test_leaf_collections(self, tree):
        assert {e.name for e in tree.primary_failures} == {"a", "b", "c"}
        assert {e.name for e in tree.conditions} == {"env"}
        assert {e.name for e in tree.house_events} == {"switch"}

    def test_intermediates_and_gates(self, tree):
        names = {e.name for e in tree.intermediate_events}
        assert names == {"H", "guarded", "both"}
        assert len(tree.gates) == 3

    def test_iter_events_yields_once(self, tree):
        events = list(tree.iter_events())
        assert len(events) == len({id(e) for e in events})

    def test_depth(self, tree):
        assert tree.depth() == 3

    def test_is_coherent(self, tree):
        assert tree.is_coherent
        bad = FaultTree(hazard("H2", gate=NOT("neg",
                                              primary("x", 0.1)).gate))
        assert not bad.is_coherent


class TestEvaluate:
    def test_or_gate(self, simple_or_tree):
        assert simple_or_tree.evaluate({"A": True, "B": False})
        assert not simple_or_tree.evaluate({"A": False, "B": False})

    def test_and_gate(self, simple_and_tree):
        assert simple_and_tree.evaluate({"A": True, "B": True})
        assert not simple_and_tree.evaluate({"A": True, "B": False})

    def test_kofn_gate(self, kofn_tree):
        assert kofn_tree.evaluate({"c1": True, "c2": True, "c3": False})
        assert not kofn_tree.evaluate(
            {"c1": True, "c2": False, "c3": False})

    def test_inhibit_gate(self, inhibit_tree):
        on = {"A": True, "B": True, "env": True}
        off = {"A": True, "B": True, "env": False}
        assert inhibit_tree.evaluate(on)
        assert not inhibit_tree.evaluate(off)

    def test_xor_gate(self):
        tree = FaultTree(hazard("H", gate=XOR(
            "x", primary("a"), primary("b")).gate))
        assert tree.evaluate({"a": True, "b": False})
        assert not tree.evaluate({"a": True, "b": True})

    def test_not_gate(self):
        tree = FaultTree(hazard("H", gate=NOT("n", primary("a")).gate))
        assert tree.evaluate({"a": False})
        assert not tree.evaluate({"a": True})

    def test_house_event_default_and_override(self):
        tree = FaultTree(hazard("H", AND_gate=[primary("a"),
                                               house("hs", True)]))
        assert tree.evaluate({"a": True})
        assert not tree.evaluate({"a": True, "hs": False})

    def test_missing_leaf_raises(self, simple_or_tree):
        with pytest.raises(ValidationError):
            simple_or_tree.evaluate({"A": True})

    def test_missing_condition_raises(self, inhibit_tree):
        with pytest.raises(ValidationError):
            inhibit_tree.evaluate({"A": True, "B": True})
