"""Event tree analysis: sequences, outcomes, risk integration."""

import pytest

from repro.errors import QuantificationError
from repro.fta import BranchPoint, EventTree, FaultTree
from repro.fta.dsl import AND, OR, hazard, primary


@pytest.fixture
def two_barrier_tree():
    """Initiator at 0.1/yr; detection fails 1%, signals fail 10%."""
    return EventTree(
        initiator="OHV towards old tube", frequency=0.1,
        branches=[BranchPoint("detection", 0.01),
                  BranchPoint("signals", 0.1)])


class TestEvaluation:
    def test_enumerates_all_paths(self, two_barrier_tree):
        result = two_barrier_tree.evaluate()
        assert len(result.sequences) == 4
        assert sum(s.frequency for s in result.sequences) == \
            pytest.approx(0.1)

    def test_default_binary_outcome(self, two_barrier_tree):
        result = two_barrier_tree.evaluate()
        assert result.frequency_of("unmitigated") == pytest.approx(
            0.1 * 0.01 * 0.1)
        assert result.frequency_of("mitigated") == pytest.approx(
            0.1 * (1 - 0.01 * 0.1))

    def test_custom_outcome_rule(self):
        def rule(failures):
            detection_failed, signals_failed, driver_ignores = failures
            if detection_failed and signals_failed and driver_ignores:
                return "collision"
            if detection_failed:
                return "near_miss"
            return "safe_stop"

        tree = EventTree("OHV", 1.0, [
            BranchPoint("detection", 0.1),
            BranchPoint("signals", 0.2),
            BranchPoint("driver", 0.5),
        ], outcome_rule=rule)
        result = tree.evaluate()
        assert result.frequency_of("collision") == pytest.approx(
            0.1 * 0.2 * 0.5)
        assert result.frequency_of("near_miss") == pytest.approx(
            0.1 - 0.1 * 0.2 * 0.5)
        assert result.frequency_of("safe_stop") == pytest.approx(0.9)

    def test_fault_tree_backed_branch(self):
        detection = FaultTree(hazard("detection_fails", OR_gate=[
            AND("both", primary("lb", 0.1), primary("od", 0.2)),
            primary("controller", 0.01)]))
        et = EventTree("OHV", 2.0, [
            BranchPoint("detection", detection),
            BranchPoint("signals", 0.5)])
        p_detection = 1 - (1 - 0.1 * 0.2) * (1 - 0.01)
        result = et.evaluate()
        assert result.frequency_of("unmitigated") == pytest.approx(
            2.0 * p_detection * 0.5)

    def test_fault_tree_branch_with_overrides(self):
        detection = FaultTree(hazard("fails", OR_gate=[primary("x")]))
        et = EventTree("I", 1.0, [
            BranchPoint("det", detection, probabilities={"x": 0.25})])
        assert et.evaluate().frequency_of("unmitigated") == \
            pytest.approx(0.25)

    def test_sequence_labels(self, two_barrier_tree):
        result = two_barrier_tree.evaluate()
        worst = result.dominant_sequence("unmitigated")
        assert worst.label(result.branches) == \
            "detection:fail -> signals:fail => unmitigated"

    def test_dominant_sequence(self):
        def rule(failures):
            return "bad" if any(failures) else "good"

        result = EventTree("I", 1.0, [BranchPoint("a", 0.3),
                                      BranchPoint("b", 0.01)],
                           outcome_rule=rule).evaluate()
        dominant = result.dominant_sequence("bad")
        assert dominant.failures == (True, False)

    def test_dominant_sequence_unknown_outcome(self, two_barrier_tree):
        with pytest.raises(QuantificationError):
            two_barrier_tree.evaluate().dominant_sequence("ghost")


class TestRisk:
    def test_weighted_outcome_costs(self, two_barrier_tree):
        result = two_barrier_tree.evaluate()
        risk = result.risk({"unmitigated": 100_000.0, "mitigated": 1.0})
        expected = 0.1 * 0.001 * 100_000.0 + 0.1 * 0.999 * 1.0
        assert risk == pytest.approx(expected)

    def test_missing_cost_rejected(self, two_barrier_tree):
        with pytest.raises(QuantificationError):
            two_barrier_tree.evaluate().risk({"unmitigated": 1.0})

    def test_extra_cost_rejected(self, two_barrier_tree):
        with pytest.raises(QuantificationError):
            two_barrier_tree.evaluate().risk(
                {"unmitigated": 1.0, "mitigated": 1.0, "ghost": 1.0})


class TestGuards:
    def test_rejects_negative_frequency(self):
        with pytest.raises(QuantificationError):
            EventTree("I", -1.0, [BranchPoint("a", 0.1)])

    def test_rejects_empty_branches(self):
        with pytest.raises(QuantificationError):
            EventTree("I", 1.0, [])

    def test_rejects_duplicate_branch_names(self):
        with pytest.raises(QuantificationError):
            EventTree("I", 1.0, [BranchPoint("a", 0.1),
                                 BranchPoint("a", 0.2)])

    def test_rejects_bad_branch_probability(self):
        et = EventTree("I", 1.0, [BranchPoint("a", 1.5)])
        with pytest.raises(QuantificationError):
            et.evaluate()

    def test_rejects_bad_outcome_rule(self):
        et = EventTree("I", 1.0, [BranchPoint("a", 0.1)],
                       outcome_rule=lambda f: 42)
        with pytest.raises(QuantificationError):
            et.evaluate()


class TestElbtunnelChain:
    def test_collision_chain_matches_fig2_story(self):
        """The Fig. 2 narrative as an event tree: collision requires the
        detection to fail AND the signals to fail AND the driver to
        ignore them — matching the OR-structure of the fault tree."""
        from repro.elbtunnel import collision_fault_tree

        def rule(failures):
            return "collision" if all(failures) else "no_collision"

        detection = collision_fault_tree()
        et = EventTree(
            "OHV towards old tube", frequency=1e-2,
            branches=[
                BranchPoint("detection chain", detection,
                            probabilities={"OT1": 1e-4, "OT2": 1e-4}),
                BranchPoint("stop signals", 1e-5),
                BranchPoint("driver compliance", 1e-4),
            ], outcome_rule=rule)
        result = et.evaluate()
        collision_rate = result.frequency_of("collision")
        assert 0.0 < collision_rate < 1e-12
        worst = result.dominant_sequence("collision")
        assert all(worst.failures)
