"""Module detection and modular quantification."""

import pytest

from repro.fta import (
    FaultTree,
    find_modules,
    hazard_probability,
    modular_probability,
)
from repro.fta.dsl import AND, INHIBIT, OR, condition, hazard, primary


@pytest.fixture
def modular_tree():
    """Two independent subsystems under the top OR."""
    pumps = AND("pumps", primary("pump_a", 0.1), primary("pump_b", 0.2))
    valves = OR("valves", primary("valve_a", 0.05),
                primary("valve_b", 0.01))
    return FaultTree(hazard("H", OR_gate=[pumps, valves]))


@pytest.fixture
def shared_leaf_tree():
    """A shared power supply breaks the module boundaries."""
    power = primary("power", 0.01)
    left = AND("left", power, primary("a", 0.1))
    right = AND("right", power, primary("b", 0.2))
    return FaultTree(hazard("H", OR_gate=[left, right]))


class TestFindModules:
    def test_independent_subtrees_are_modules(self, modular_tree):
        modules = {m.root: m for m in find_modules(modular_tree)}
        assert set(modules) == {"pumps", "valves"}
        assert modules["pumps"].leaves == frozenset({"pump_a", "pump_b"})
        assert modules["valves"].leaves == frozenset(
            {"valve_a", "valve_b"})

    def test_shared_leaf_blocks_modularity(self, shared_leaf_tree):
        assert find_modules(shared_leaf_tree) == []

    def test_partial_sharing(self):
        shared = primary("shared", 0.1)
        independent = AND("independent", primary("x", 0.1),
                          primary("y", 0.1))
        coupled = AND("coupled", shared, primary("z", 0.1))
        other = AND("other", shared, primary("w", 0.1))
        tree = FaultTree(hazard("H", OR_gate=[independent, coupled,
                                              other]))
        roots = {m.root for m in find_modules(tree)}
        assert "independent" in roots
        assert "coupled" not in roots and "other" not in roots

    def test_nested_modules_all_reported(self):
        inner = AND("inner", primary("a", 0.1), primary("b", 0.1))
        outer = OR("outer", inner, primary("c", 0.1))
        tree = FaultTree(hazard("H", AND_gate=[outer,
                                               primary("d", 0.1)]))
        roots = {m.root for m in find_modules(tree)}
        assert {"inner", "outer"} <= roots

    def test_largest_first(self, modular_tree):
        modules = find_modules(modular_tree)
        sizes = [m.size for m in modules]
        assert sizes == sorted(sizes, reverse=True)

    def test_inhibit_condition_counts_as_leaf(self):
        cond = condition("env", 0.5)
        guarded = INHIBIT("guarded", primary("a", 0.1), cond)
        tree = FaultTree(hazard("H", OR_gate=[guarded,
                                              primary("b", 0.1)]))
        modules = {m.root: m for m in find_modules(tree)}
        assert modules["guarded"].leaves == frozenset({"a", "env"})

    def test_shared_subtree_is_not_module(self):
        shared_gate = AND("shared_pair", primary("a", 0.1),
                          primary("b", 0.1))
        left = OR("left", shared_gate, primary("c", 0.1))
        right = OR("right", shared_gate, primary("d", 0.1))
        tree = FaultTree(hazard("H", AND_gate=[left, right]))
        roots = {m.root for m in find_modules(tree)}
        # The shared pair is reachable via two paths, but all of its
        # leaves funnel through it: it IS a module; its parents are not.
        assert "shared_pair" in roots
        assert "left" not in roots and "right" not in roots


class TestModularProbability:
    def test_matches_direct_exact(self, modular_tree):
        direct = hazard_probability(modular_tree, method="exact")
        modular = modular_probability(modular_tree, method="exact")
        assert modular == pytest.approx(direct, rel=1e-12)

    def test_matches_on_nonmodular_tree(self, shared_leaf_tree):
        direct = hazard_probability(shared_leaf_tree, method="exact")
        modular = modular_probability(shared_leaf_tree, method="exact")
        assert modular == pytest.approx(direct, rel=1e-12)

    def test_matches_with_conditions(self):
        cond = condition("env", 0.4)
        guarded = INHIBIT("guarded",
                          AND("pair", primary("a", 0.2),
                              primary("b", 0.3)), cond)
        tree = FaultTree(hazard("H", OR_gate=[guarded,
                                              primary("c", 0.1)]))
        assert modular_probability(tree, method="exact") == \
            pytest.approx(hazard_probability(tree, method="exact"),
                          rel=1e-12)

    def test_matches_with_overrides(self, modular_tree):
        overrides = {"pump_a": 0.5, "valve_b": 0.2}
        assert modular_probability(modular_tree, overrides,
                                   method="exact") == pytest.approx(
            hazard_probability(modular_tree, overrides, method="exact"),
            rel=1e-12)

    def test_deep_random_trees_match(self):
        from tests.fta.test_cutsets import random_coherent_tree
        for seed in range(20):
            tree = random_coherent_tree(seed)
            assert modular_probability(tree, method="exact") == \
                pytest.approx(
                    hazard_probability(tree, method="exact"), rel=1e-9)


class TestFoldModules:
    def test_replacements_become_leaves(self, modular_tree):
        from repro.fta import fold_modules, select_modules
        selected = select_modules(modular_tree)
        folded = fold_modules(modular_tree,
                              {m.root: 0.5 for m in selected})
        assert sorted(p.name for p in folded.primary_failures) == \
            ["pumps", "valves"]
        assert hazard_probability(folded, method="exact") == 0.75

    def test_top_event_cannot_be_folded(self, modular_tree):
        from repro.fta import fold_modules
        with pytest.raises(ValueError):
            fold_modules(modular_tree, {"H": 0.5})

    def test_inhibit_condition_below_fold_is_rebuilt(self):
        """Regression: INHIBIT conditions must flow through the fold.

        The old recursive clone skipped ``gate.condition``, so a fold
        that rebuilt an INHIBIT gate could drop its condition and the
        folded tree then disagreed with the direct quantification.
        Leaves are shared by design, so the rebuilt gate must carry the
        *same* condition object — never ``None``.
        """
        from repro.fta import fold_modules
        cause = AND("cause", primary("a", 0.2), primary("b", 0.3))
        guarded = INHIBIT("guarded", cause, condition("env", 0.4))
        tree = FaultTree(hazard("H", OR_gate=[guarded,
                                              primary("c", 0.1)]))
        folded = fold_modules(tree, {"cause": 0.06})
        guarded_event = folded.event("guarded")
        assert guarded_event is not tree.event("guarded")
        assert guarded_event.gate.condition is \
            tree.event("guarded").gate.condition
        direct = hazard_probability(tree, method="exact")
        assert hazard_probability(folded, method="exact") == \
            pytest.approx(direct, rel=1e-12)

    def test_modular_probability_with_inhibit_module(self):
        """Regression companion: the full modular path over INHIBIT."""
        cause = AND("cause", primary("a", 0.2), primary("b", 0.3))
        guarded = INHIBIT("guarded", cause, condition("env", 0.4))
        tree = FaultTree(hazard("H", OR_gate=[guarded,
                                              primary("c", 0.1)]))
        assert modular_probability(tree, method="exact") == \
            pytest.approx(hazard_probability(tree, method="exact"),
                          rel=1e-12)


class TestDeepChains:
    def chain_tree(self, depth):
        """A ``depth``-gate linear chain plus one genuine module.

        The chain shares a single leaf everywhere, so no chain gate is
        a module; the side module forces the fold path to run.
        """
        shared = primary("shared", 0.01)
        node = OR("g0", shared, primary("base", 0.02))
        for i in range(1, depth):
            node = OR(f"g{i}", shared, node)
        module = AND("side", primary("s1", 0.1), primary("s2", 0.2))
        # ``shared`` sits under the top as well, so no chain gate is
        # independent and the whole chain survives into the fold.
        return FaultTree(hazard("H", OR_gate=[node, module, shared]))

    def test_5000_gate_chain_quantifies_without_recursion(self):
        import sys
        tree = self.chain_tree(5000)
        assert sys.getrecursionlimit() < 5000  # recursion would die
        value = modular_probability(tree, method="exact")
        direct = hazard_probability(tree, method="exact")
        assert value == pytest.approx(direct, rel=1e-12)

    def test_5000_gate_chain_module_detection(self):
        from repro.fta import select_modules
        tree = self.chain_tree(5000)
        assert [m.root for m in select_modules(tree)] == ["side"]


class TestDetectionOracle:
    """The visit-date detector must match the path-counting definition."""

    @staticmethod
    def _path_counts(root):
        from repro.fta.events import IntermediateEvent
        from repro.fta.modules import _children
        counts = {id(root): 1}
        order, seen, stack = [], set(), [(root, False)]
        while stack:
            event, leaving = stack.pop()
            if leaving:
                order.append(event)
                continue
            if id(event) in seen:
                continue
            seen.add(id(event))
            stack.append((event, True))
            if isinstance(event, IntermediateEvent):
                stack.extend((c, False) for c in _children(event))
        for event in reversed(order):
            if not isinstance(event, IntermediateEvent):
                continue
            base = counts.get(id(event), 0)
            for child in _children(event):
                counts[id(child)] = counts.get(id(child), 0) + base
        return counts

    def _oracle(self, tree):
        from repro.fta.events import IntermediateEvent
        from repro.fta.modules import _leaves_below
        global_paths = self._path_counts(tree.top)
        names = []
        for event in tree.iter_events():
            if not isinstance(event, IntermediateEvent) \
                    or event is tree.top:
                continue
            local = self._path_counts(event)
            p_event = global_paths.get(id(event), 0)
            if all(global_paths.get(leaf, 0) ==
                   p_event * local.get(leaf, 0)
                   for leaf in _leaves_below(event)):
                names.append(event.name)
        return sorted(names)

    def test_matches_path_count_oracle_on_random_trees(self):
        from tests.fta.test_cutsets import random_coherent_tree
        for seed in range(25):
            tree = random_coherent_tree(seed)
            assert sorted(m.root for m in find_modules(tree)) == \
                self._oracle(tree), seed
