"""Module detection and modular quantification."""

import pytest

from repro.fta import (
    FaultTree,
    find_modules,
    hazard_probability,
    modular_probability,
)
from repro.fta.dsl import AND, INHIBIT, OR, condition, hazard, primary


@pytest.fixture
def modular_tree():
    """Two independent subsystems under the top OR."""
    pumps = AND("pumps", primary("pump_a", 0.1), primary("pump_b", 0.2))
    valves = OR("valves", primary("valve_a", 0.05),
                primary("valve_b", 0.01))
    return FaultTree(hazard("H", OR_gate=[pumps, valves]))


@pytest.fixture
def shared_leaf_tree():
    """A shared power supply breaks the module boundaries."""
    power = primary("power", 0.01)
    left = AND("left", power, primary("a", 0.1))
    right = AND("right", power, primary("b", 0.2))
    return FaultTree(hazard("H", OR_gate=[left, right]))


class TestFindModules:
    def test_independent_subtrees_are_modules(self, modular_tree):
        modules = {m.root: m for m in find_modules(modular_tree)}
        assert set(modules) == {"pumps", "valves"}
        assert modules["pumps"].leaves == frozenset({"pump_a", "pump_b"})
        assert modules["valves"].leaves == frozenset(
            {"valve_a", "valve_b"})

    def test_shared_leaf_blocks_modularity(self, shared_leaf_tree):
        assert find_modules(shared_leaf_tree) == []

    def test_partial_sharing(self):
        shared = primary("shared", 0.1)
        independent = AND("independent", primary("x", 0.1),
                          primary("y", 0.1))
        coupled = AND("coupled", shared, primary("z", 0.1))
        other = AND("other", shared, primary("w", 0.1))
        tree = FaultTree(hazard("H", OR_gate=[independent, coupled,
                                              other]))
        roots = {m.root for m in find_modules(tree)}
        assert "independent" in roots
        assert "coupled" not in roots and "other" not in roots

    def test_nested_modules_all_reported(self):
        inner = AND("inner", primary("a", 0.1), primary("b", 0.1))
        outer = OR("outer", inner, primary("c", 0.1))
        tree = FaultTree(hazard("H", AND_gate=[outer,
                                               primary("d", 0.1)]))
        roots = {m.root for m in find_modules(tree)}
        assert {"inner", "outer"} <= roots

    def test_largest_first(self, modular_tree):
        modules = find_modules(modular_tree)
        sizes = [m.size for m in modules]
        assert sizes == sorted(sizes, reverse=True)

    def test_inhibit_condition_counts_as_leaf(self):
        cond = condition("env", 0.5)
        guarded = INHIBIT("guarded", primary("a", 0.1), cond)
        tree = FaultTree(hazard("H", OR_gate=[guarded,
                                              primary("b", 0.1)]))
        modules = {m.root: m for m in find_modules(tree)}
        assert modules["guarded"].leaves == frozenset({"a", "env"})

    def test_shared_subtree_is_not_module(self):
        shared_gate = AND("shared_pair", primary("a", 0.1),
                          primary("b", 0.1))
        left = OR("left", shared_gate, primary("c", 0.1))
        right = OR("right", shared_gate, primary("d", 0.1))
        tree = FaultTree(hazard("H", AND_gate=[left, right]))
        roots = {m.root for m in find_modules(tree)}
        # The shared pair is reachable via two paths, but all of its
        # leaves funnel through it: it IS a module; its parents are not.
        assert "shared_pair" in roots
        assert "left" not in roots and "right" not in roots


class TestModularProbability:
    def test_matches_direct_exact(self, modular_tree):
        direct = hazard_probability(modular_tree, method="exact")
        modular = modular_probability(modular_tree, method="exact")
        assert modular == pytest.approx(direct, rel=1e-12)

    def test_matches_on_nonmodular_tree(self, shared_leaf_tree):
        direct = hazard_probability(shared_leaf_tree, method="exact")
        modular = modular_probability(shared_leaf_tree, method="exact")
        assert modular == pytest.approx(direct, rel=1e-12)

    def test_matches_with_conditions(self):
        cond = condition("env", 0.4)
        guarded = INHIBIT("guarded",
                          AND("pair", primary("a", 0.2),
                              primary("b", 0.3)), cond)
        tree = FaultTree(hazard("H", OR_gate=[guarded,
                                              primary("c", 0.1)]))
        assert modular_probability(tree, method="exact") == \
            pytest.approx(hazard_probability(tree, method="exact"),
                          rel=1e-12)

    def test_matches_with_overrides(self, modular_tree):
        overrides = {"pump_a": 0.5, "valve_b": 0.2}
        assert modular_probability(modular_tree, overrides,
                                   method="exact") == pytest.approx(
            hazard_probability(modular_tree, overrides, method="exact"),
            rel=1e-12)

    def test_deep_random_trees_match(self):
        import random
        from tests.fta.test_cutsets import random_coherent_tree
        for seed in range(20):
            tree = random_coherent_tree(seed)
            assert modular_probability(tree, method="exact") == \
                pytest.approx(
                    hazard_probability(tree, method="exact"), rel=1e-9)
