"""MOCUS minimal cut sets: known answers, absorption, BDD agreement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDDManager, minimal_cut_sets
from repro.errors import FaultTreeError
from repro.fta import CutSet, FaultTree, mocus, to_bdd
from repro.fta.cutsets import minimize
from repro.fta.dsl import AND, INHIBIT, KOFN, NOT, OR, condition, hazard, \
    house, primary


class TestCutSet:
    def test_order_and_single_point(self):
        cs = CutSet(frozenset({"a"}))
        assert cs.order == 1
        assert cs.is_single_point
        assert not CutSet(frozenset({"a", "b"})).is_single_point

    def test_subsumption_includes_conditions(self):
        plain = CutSet(frozenset({"a"}))
        guarded = CutSet(frozenset({"a"}), frozenset({"c"}))
        # The unguarded cut is at least as easy to trigger.
        assert plain.subsumes(guarded)
        assert not guarded.subsumes(plain)

    def test_str_format(self):
        cs = CutSet(frozenset({"b", "a"}), frozenset({"env"}))
        assert str(cs) == "{a, b} | env"


class TestMinimize:
    def test_removes_supersets(self):
        sets = [CutSet(frozenset({"a"})), CutSet(frozenset({"a", "b"}))]
        assert minimize(sets) == [CutSet(frozenset({"a"}))]

    def test_removes_duplicates(self):
        sets = [CutSet(frozenset({"a"})), CutSet(frozenset({"a"}))]
        assert len(minimize(sets)) == 1

    def test_keeps_conditioned_variant_when_fewer_failures(self):
        # {a | c} does not subsume {a} (extra environmental requirement).
        guarded = CutSet(frozenset({"a"}), frozenset({"c"}))
        plain = CutSet(frozenset({"a", "b"}))
        result = minimize([guarded, plain])
        assert set(result) == {guarded, plain}


class TestKnownTrees:
    def test_or_tree(self, simple_or_tree):
        result = mocus(simple_or_tree)
        assert {cs.failures for cs in result} == {
            frozenset({"A"}), frozenset({"B"})}

    def test_and_tree(self, simple_and_tree):
        result = mocus(simple_and_tree)
        assert {cs.failures for cs in result} == {frozenset({"A", "B"})}

    def test_kofn_tree(self, kofn_tree):
        result = mocus(kofn_tree)
        assert {cs.failures for cs in result} == {
            frozenset({"c1", "c2"}), frozenset({"c1", "c3"}),
            frozenset({"c2", "c3"})}

    def test_inhibit_collects_conditions(self, inhibit_tree):
        result = mocus(inhibit_tree)
        assert len(result) == 1
        assert result[0].failures == frozenset({"A", "B"})
        assert result[0].conditions == frozenset({"env"})

    def test_nested_inhibit_conditions_accumulate(self):
        c1, c2 = condition("c1", 0.5), condition("c2", 0.5)
        inner = INHIBIT("inner", primary("a", 0.1), c1)
        outer = INHIBIT("outer", inner, c2)
        tree = FaultTree(hazard("H", OR_gate=[outer]))
        result = mocus(tree)
        assert result[0].conditions == frozenset({"c1", "c2"})

    def test_absorption_through_shared_event(self):
        shared = primary("s", 0.1)
        tree = FaultTree(hazard("H", OR_gate=[
            shared, AND("extra", shared, primary("b", 0.1))]))
        result = mocus(tree)
        assert {cs.failures for cs in result} == {frozenset({"s"})}

    def test_house_event_true_under_and_disappears(self):
        tree = FaultTree(hazard("H", AND_gate=[
            primary("a", 0.1), house("on", True)]))
        assert {cs.failures for cs in mocus(tree)} == {frozenset({"a"})}

    def test_house_event_false_prunes_branch(self):
        tree = FaultTree(hazard("H", OR_gate=[
            AND("blocked", primary("a", 0.1), house("off", False)),
            primary("b", 0.1)]))
        assert {cs.failures for cs in mocus(tree)} == {frozenset({"b"})}

    def test_house_event_true_under_or_makes_hazard_certain(self):
        tree = FaultTree(hazard("H", OR_gate=[
            primary("a", 0.1), house("on", True)]))
        result = mocus(tree)
        assert [cs.failures for cs in result] == [frozenset()]

    def test_single_points_of_failure(self, bridge_tree):
        result = mocus(bridge_tree)
        assert result.single_points_of_failure == []
        assert {cs.failures for cs in result.of_order(2)} == {
            frozenset({"A", "C"}), frozenset({"B", "C"})}

    def test_involving(self, bridge_tree):
        result = mocus(bridge_tree)
        assert len(result.involving("C")) == 2
        assert len(result.involving("A")) == 1

    def test_failure_names(self, bridge_tree):
        assert mocus(bridge_tree).failure_names() == {"A", "B", "C"}


class TestRejections:
    def test_rejects_not_gate(self):
        tree = FaultTree(hazard("H", gate=NOT("n", primary("a", 0.1)).gate))
        with pytest.raises(FaultTreeError):
            mocus(tree)

    def test_rejects_xor_gate(self):
        from repro.fta.dsl import XOR
        tree = FaultTree(hazard("H", gate=XOR(
            "x", primary("a", 0.1), primary("b", 0.1)).gate))
        with pytest.raises(FaultTreeError):
            mocus(tree)


class TestTruncation:
    def test_max_order_prunes_long_cuts(self):
        tree = FaultTree(hazard("H", OR_gate=[
            primary("a", 0.1),
            AND("deep", primary("b", 0.1), primary("c", 0.1),
                primary("d", 0.1))]))
        truncated = mocus(tree, max_order=2)
        assert {cs.failures for cs in truncated} == {frozenset({"a"})}


def random_coherent_tree(seed: int) -> FaultTree:
    """Random AND/OR/KofN tree over a small leaf pool."""
    import random
    rng = random.Random(seed)
    leaves = [primary(f"e{i}", 0.1) for i in range(rng.randint(3, 6))]
    counter = [0]

    def build(depth):
        if depth == 0 or rng.random() < 0.35:
            return rng.choice(leaves)
        counter[0] += 1
        name = f"g{counter[0]}"
        children = [build(depth - 1)
                    for _ in range(rng.randint(2, 3))]
        # Deduplicate identical child objects (gates reject nothing, but
        # identical children make KOFN k ambiguous and are unrealistic).
        unique = list({id(c): c for c in children}.values())
        kind = rng.choice(["and", "or", "kofn"])
        if kind == "and":
            return AND(name, *unique)
        if kind == "or":
            return OR(name, *unique)
        k = rng.randint(1, len(unique))
        return KOFN(name, k, *unique)

    root = build(3)
    if not hasattr(root, "gate"):
        root = OR("root", root)
    return FaultTree(hazard("H", OR_gate=[root]))


class TestAgainstBDD:
    @given(st.integers(0, 100_000))
    @settings(max_examples=80, deadline=None)
    def test_mocus_agrees_with_bdd_on_random_trees(self, seed):
        tree = random_coherent_tree(seed)
        manager = BDDManager()
        root = to_bdd(tree, manager)
        expected = set(minimal_cut_sets(manager, root))
        actual = {frozenset(cs.failures) for cs in mocus(tree)}
        assert actual == expected

    def test_agreement_on_fixture_trees(self, bridge_tree, kofn_tree):
        for tree in (bridge_tree, kofn_tree):
            manager = BDDManager()
            expected = set(minimal_cut_sets(manager, to_bdd(tree, manager)))
            actual = {frozenset(cs.failures) for cs in mocus(tree)}
            assert actual == expected

    def test_agreement_with_conditions_as_literals(self, inhibit_tree):
        manager = BDDManager()
        expected = set(minimal_cut_sets(
            manager, to_bdd(inhibit_tree, manager)))
        actual = {frozenset(cs.failures | cs.conditions)
                  for cs in mocus(inhibit_tree)}
        assert actual == expected
