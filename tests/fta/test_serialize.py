"""Serialization: JSON round-trips, Galileo and DOT exports."""

import json

import pytest

from repro.errors import SerializationError
from repro.fta import (
    FaultTree,
    hazard_probability,
    mocus,
    tree_from_dict,
    tree_from_json,
    tree_to_dict,
    tree_to_dot,
    tree_to_galileo,
    tree_to_json,
)
from repro.fta.dsl import AND, INHIBIT, KOFN, OR, condition, hazard, \
    house, primary


@pytest.fixture
def rich_tree():
    """A tree exercising every serializable feature."""
    cond = condition("env", 0.5)
    top = hazard("H", OR_gate=[
        INHIBIT("guarded", AND("both", primary("a", 0.1),
                               primary("b", 0.2)), cond),
        KOFN("vote", 2, primary("c", 0.1), primary("d", 0.2),
             primary("e", 0.3)),
        house("switch", True),
    ], description="top event")
    return FaultTree(top, name="rich")


class TestJsonRoundTrip:
    def test_preserves_structure(self, rich_tree):
        rebuilt = tree_from_json(tree_to_json(rich_tree))
        assert rebuilt.name == "rich"
        assert {cs.failures for cs in mocus(rebuilt)} == \
            {cs.failures for cs in mocus(rich_tree)}

    def test_preserves_probabilities(self, rich_tree):
        rebuilt = tree_from_json(tree_to_json(rich_tree))
        assert hazard_probability(rebuilt, method="exact") == \
            pytest.approx(hazard_probability(rich_tree, method="exact"))

    def test_preserves_conditions(self, rich_tree):
        rebuilt = tree_from_json(tree_to_json(rich_tree))
        assert [c.name for c in rebuilt.conditions] == ["env"]
        assert rebuilt.event("env").probability == 0.5

    def test_preserves_descriptions(self, rich_tree):
        rebuilt = tree_from_json(tree_to_json(rich_tree))
        assert rebuilt.top.description == "top event"

    def test_second_roundtrip_is_identical(self, rich_tree):
        once = tree_to_json(rich_tree)
        twice = tree_to_json(tree_from_json(once))
        assert once == twice

    def test_shared_events_stay_shared(self, bridge_tree):
        rebuilt = tree_from_dict(tree_to_dict(bridge_tree))
        cs = {frozenset(c.failures) for c in mocus(rebuilt)}
        assert cs == {frozenset({"A", "C"}), frozenset({"B", "C"})}


class TestJsonErrors:
    def test_invalid_json(self):
        with pytest.raises(SerializationError):
            tree_from_json("{not json")

    def test_unknown_schema(self):
        with pytest.raises(SerializationError):
            tree_from_dict({"schema": 99, "top": "H", "events": {}})

    def test_missing_keys(self):
        with pytest.raises(SerializationError):
            tree_from_dict({"schema": 1})

    def test_dangling_reference(self):
        data = {"schema": 1, "name": "x", "top": "H", "events": {
            "H": {"kind": "hazard",
                  "gate": {"type": "or", "inputs": ["ghost"]}}}}
        with pytest.raises(SerializationError):
            tree_from_dict(data)

    def test_unknown_kind(self):
        data = {"schema": 1, "name": "x", "top": "H", "events": {
            "H": {"kind": "sparkle"}}}
        with pytest.raises(SerializationError):
            tree_from_dict(data)

    def test_top_must_be_intermediate(self):
        data = {"schema": 1, "name": "x", "top": "H", "events": {
            "H": {"kind": "primary", "probability": 0.5}}}
        with pytest.raises(SerializationError):
            tree_from_dict(data)

    def test_json_output_is_valid_json(self, rich_tree):
        parsed = json.loads(tree_to_json(rich_tree))
        assert parsed["top"] == "H"


class TestGalileo:
    def test_contains_toplevel_and_gates(self, rich_tree):
        text = tree_to_galileo(rich_tree)
        assert text.startswith('toplevel "H";')
        assert '"vote" 2of3' in text

    def test_inhibit_rendered_as_and_with_condition(self, rich_tree):
        text = tree_to_galileo(rich_tree)
        assert '"guarded" and "both" "env";' in text

    def test_probabilities_serialized(self, rich_tree):
        text = tree_to_galileo(rich_tree)
        assert '"a" prob=0.1;' in text

    def test_house_events_as_constants(self, rich_tree):
        assert '"switch" prob=1.0;' in tree_to_galileo(rich_tree)


class TestDot:
    def test_valid_digraph_structure(self, rich_tree):
        text = tree_to_dot(rich_tree)
        assert text.startswith("digraph fault_tree {")
        assert text.rstrip().endswith("}")

    def test_every_event_has_a_node(self, rich_tree):
        text = tree_to_dot(rich_tree)
        for event in rich_tree.iter_events():
            assert f'"{event.name}"' in text

    def test_edges_follow_gates(self, rich_tree):
        text = tree_to_dot(rich_tree)
        assert '"both" -> "a";' in text
        assert '"H" -> "guarded";' in text

    def test_condition_edge_is_dashed(self, rich_tree):
        assert '"guarded" -> "env" [style=dashed];' in tree_to_dot(rich_tree)


class TestGalileoParser:
    def test_roundtrip_coherent_tree(self, bridge_tree):
        from repro.fta import hazard_probability, tree_from_galileo
        rebuilt = tree_from_galileo(tree_to_galileo(bridge_tree))
        assert hazard_probability(rebuilt, method="exact") == \
            pytest.approx(
                hazard_probability(bridge_tree, method="exact"))

    def test_kofn_roundtrip(self, kofn_tree):
        from repro.fta import mocus, tree_from_galileo
        rebuilt = tree_from_galileo(tree_to_galileo(kofn_tree))
        assert {cs.failures for cs in mocus(rebuilt)} == \
            {cs.failures for cs in mocus(kofn_tree)}

    def test_inhibit_becomes_and(self, inhibit_tree):
        """Galileo has no INHIBIT: conditions degrade to basic events
        with preserved probabilities."""
        from repro.fta import hazard_probability, tree_from_galileo
        rebuilt = tree_from_galileo(tree_to_galileo(inhibit_tree))
        assert rebuilt.conditions == []
        assert hazard_probability(rebuilt, method="exact") == \
            pytest.approx(
                hazard_probability(inhibit_tree, method="exact"))

    def test_parses_hand_written_text(self):
        from repro.fta import hazard_probability, tree_from_galileo
        text = '''
            toplevel "TOP";
            "TOP" or "G1" "C";
            "G1" 2of3 "A" "B" "C";
            "A" prob=0.1;
            "B" prob=0.2;
            "C" prob=0.3;
        '''
        tree = tree_from_galileo(text)
        assert tree.top.name == "TOP"
        assert hazard_probability(tree, method="exact") > 0.3

    def test_missing_toplevel_rejected(self):
        from repro.fta import tree_from_galileo
        with pytest.raises(SerializationError):
            tree_from_galileo('"A" prob=0.1;')

    def test_undefined_reference_rejected(self):
        from repro.fta import tree_from_galileo
        with pytest.raises(SerializationError):
            tree_from_galileo('toplevel "T"; "T" or "ghost";')

    def test_gate_without_inputs_rejected(self):
        from repro.fta import tree_from_galileo
        with pytest.raises(SerializationError):
            tree_from_galileo('toplevel "T"; "T" or;')
