"""Quantitative FTA reports: ranking, contributions, rendering."""

import pytest

from repro.fta import FaultTree, analyze
from repro.fta.dsl import AND, INHIBIT, OR, condition, hazard, primary


@pytest.fixture
def tree():
    """Three cut sets with distinct, known probabilities."""
    cond = condition("armed", 0.5)
    top = hazard("H", OR_gate=[
        primary("big", 0.1),
        AND("pair", primary("a", 0.2), primary("b", 0.1)),
        INHIBIT("guarded", primary("c", 0.04), cond),
    ])
    return FaultTree(top)


class TestAnalyze:
    def test_ranked_by_probability(self, tree):
        report = analyze(tree)
        probs = [r.probability for r in report.ranked_cut_sets]
        assert probs == sorted(probs, reverse=True)
        assert report.dominant.cut_set.failures == frozenset({"big"})

    def test_probabilities_and_contributions(self, tree):
        report = analyze(tree)
        by_failures = {frozenset(r.cut_set.failures): r
                       for r in report.ranked_cut_sets}
        assert by_failures[frozenset({"big"})].probability == \
            pytest.approx(0.1)
        assert by_failures[frozenset({"a", "b"})].probability == \
            pytest.approx(0.02)
        assert by_failures[frozenset({"c"})].probability == \
            pytest.approx(0.02)  # 0.04 * 0.5 constraint
        total = sum(r.contribution for r in report.ranked_cut_sets)
        assert total == pytest.approx(1.0)

    def test_rare_event_total(self, tree):
        report = analyze(tree)
        assert report.rare_event_probability == pytest.approx(0.14)
        assert report.exact_probability < report.rare_event_probability

    def test_single_points_listed(self, tree):
        report = analyze(tree)
        spf = {frozenset(cs.failures)
               for cs in report.single_points_of_failure}
        assert spf == {frozenset({"big"}), frozenset({"c"})}

    def test_importance_included(self, tree):
        report = analyze(tree)
        assert report.importance[0].birnbaum >= \
            report.importance[-1].birnbaum

    def test_overrides(self, tree):
        report = analyze(tree, {"big": 0.0})
        assert report.dominant.cut_set.failures != frozenset({"big"})


class TestRendering:
    def test_text_mentions_key_facts(self, tree):
        text = analyze(tree).to_text()
        assert "H" in text
        assert "Top minimal cut sets" in text
        assert "Importance ranking" in text
        assert "{big}" in text

    def test_top_limits_rows(self, tree):
        text = analyze(tree).to_text(top=1)
        assert "{a, b}" not in text
