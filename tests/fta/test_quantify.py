"""Quantification: paper formulas, method agreement, approximation error."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantificationError
from repro.fta import (
    ConstraintPolicy,
    FaultTree,
    approximation_error,
    cut_set_probabilities,
    hazard_probability,
    mocus,
    probability_map,
)
from repro.fta.dsl import AND, OR, condition, hazard, primary


class TestProbabilityMap:
    def test_uses_event_defaults(self, simple_or_tree):
        probs = probability_map(simple_or_tree)
        assert probs == {"A": 0.1, "B": 0.2}

    def test_overrides_take_precedence(self, simple_or_tree):
        probs = probability_map(simple_or_tree, {"A": 0.5})
        assert probs["A"] == 0.5
        assert probs["B"] == 0.2

    def test_missing_probability_raises(self):
        tree = FaultTree(hazard("H", OR_gate=[primary("a")]))
        with pytest.raises(QuantificationError):
            probability_map(tree)

    def test_includes_conditions(self, inhibit_tree):
        probs = probability_map(inhibit_tree)
        assert probs["env"] == 0.25


class TestPaperFormulas:
    def test_rare_event_is_sum_of_products(self, simple_or_tree):
        """Paper Eq. 1: P(H) = sum over MCS of the product of P(PF)."""
        assert hazard_probability(simple_or_tree, method="rare_event") \
            == pytest.approx(0.1 + 0.2)

    def test_and_tree_product(self, simple_and_tree):
        assert hazard_probability(simple_and_tree, method="rare_event") \
            == pytest.approx(0.02)

    def test_constrained_cut_set_formula(self, inhibit_tree):
        """Paper Eq. 2: P(CS) = P(Constraints) * prod P(PF)."""
        assert hazard_probability(inhibit_tree, method="rare_event") \
            == pytest.approx(0.25 * 0.1 * 0.2)

    def test_worst_case_policy_recovers_classic_fta(self, inhibit_tree):
        """P(Constraints) = 1 gives the unconstrained formula."""
        value = hazard_probability(inhibit_tree, method="rare_event",
                                   policy=ConstraintPolicy.WORST_CASE)
        assert value == pytest.approx(0.1 * 0.2)

    def test_rare_event_clips_at_one(self):
        tree = FaultTree(hazard("H", OR_gate=[
            primary("a", 0.9), primary("b", 0.9)]))
        assert hazard_probability(tree, method="rare_event") == 1.0


class TestMethodRelationships:
    def test_exact_matches_closed_form_or(self, simple_or_tree):
        assert hazard_probability(simple_or_tree, method="exact") \
            == pytest.approx(1 - 0.9 * 0.8)

    def test_inclusion_exclusion_matches_exact_without_sharing(
            self, simple_or_tree, simple_and_tree, kofn_tree):
        for tree in (simple_or_tree, simple_and_tree, kofn_tree):
            ie = hazard_probability(tree, method="inclusion_exclusion")
            exact = hazard_probability(tree, method="exact")
            assert ie == pytest.approx(exact, rel=1e-12)

    def test_exact_handles_shared_events(self, bridge_tree):
        """(A and C) or (B and C): P = P(C) * (1 - (1-P(A))(1-P(B)))."""
        expected = 0.5 * (1 - 0.7 * 0.6)
        assert hazard_probability(bridge_tree, method="exact") \
            == pytest.approx(expected)
        # inclusion-exclusion over the MCS family is also exact here.
        assert hazard_probability(bridge_tree,
                                  method="inclusion_exclusion") \
            == pytest.approx(expected)

    def test_ordering_rare_event_above_mcub_above_exact(self, bridge_tree):
        rare = hazard_probability(bridge_tree, method="rare_event")
        mcub = hazard_probability(bridge_tree, method="mcub")
        exact = hazard_probability(bridge_tree, method="exact")
        assert rare >= mcub >= exact - 1e-12

    def test_rare_event_upper_bounds_exact(self, kofn_tree, bridge_tree):
        for tree in (kofn_tree, bridge_tree):
            assert hazard_probability(tree, method="rare_event") >= \
                hazard_probability(tree, method="exact") - 1e-12

    @given(st.floats(1e-6, 0.3), st.floats(1e-6, 0.3), st.floats(1e-6, 0.3))
    @settings(max_examples=50)
    def test_methods_agree_for_small_probabilities(self, pa, pb, pc):
        """The paper: neglecting higher-order terms is 'in practice no
        problem as failure probabilities are very small'."""
        tree = FaultTree(hazard("H", OR_gate=[
            AND("ab", primary("a"), primary("b")), primary("c")]))
        probs = {"a": pa, "b": pb, "c": pc}
        rare = hazard_probability(tree, probs, method="rare_event")
        exact = hazard_probability(tree, probs, method="exact")
        assert rare == pytest.approx(exact, rel=0.35)
        assert rare >= exact - 1e-15


class TestApproximationError:
    def test_reports_zero_for_single_cut(self, simple_and_tree):
        report = approximation_error(simple_and_tree)
        assert report["absolute_error"] == pytest.approx(0.0, abs=1e-15)

    def test_reports_positive_error_for_overlapping_cuts(self, bridge_tree):
        report = approximation_error(bridge_tree)
        assert report["rare_event"] > report["exact"]
        assert report["relative_error"] > 0.0

    def test_error_grows_with_probability(self):
        def error_at(p):
            tree = FaultTree(hazard("H", OR_gate=[
                primary("a", p), primary("b", p)]))
            return approximation_error(tree)["relative_error"]

        assert error_at(0.3) > error_at(0.01) > error_at(0.0001)


class TestCutSetProbabilities:
    def test_per_cut_values(self, bridge_tree):
        cut_sets = mocus(bridge_tree)
        probs = cut_set_probabilities(cut_sets,
                                      probability_map(bridge_tree))
        by_failures = {frozenset(cs.failures): p
                       for cs, p in probs.items()}
        assert by_failures[frozenset({"A", "C"})] == pytest.approx(0.15)
        assert by_failures[frozenset({"B", "C"})] == pytest.approx(0.2)


class TestGuards:
    def test_unknown_method_rejected(self, simple_or_tree):
        with pytest.raises(QuantificationError):
            hazard_probability(simple_or_tree, method="magic")

    def test_inclusion_exclusion_size_guard(self):
        leaves = [primary(f"e{i}", 0.01) for i in range(25)]
        tree = FaultTree(hazard("H", OR_gate=leaves))
        with pytest.raises(QuantificationError):
            hazard_probability(tree, method="inclusion_exclusion")

    def test_exact_supports_noncoherent(self):
        from repro.fta.dsl import XOR
        tree = FaultTree(hazard("H", gate=XOR(
            "x", primary("a", 0.3), primary("b", 0.4)).gate))
        expected = 0.3 * 0.6 + 0.7 * 0.4
        assert hazard_probability(tree, method="exact") \
            == pytest.approx(expected)
