"""Reliability allocation: cheapest improvements to a target."""

import math

import pytest

from repro.errors import QuantificationError
from repro.fta import FaultTree, allocate_improvements, hazard_probability
from repro.fta.dsl import AND, OR, hazard, primary


@pytest.fixture
def or_tree():
    """H = cheap or dear: two single points of failure."""
    return FaultTree(hazard("H", OR_gate=[
        primary("cheap", 1e-3), primary("dear", 1e-3)]))


class TestBasics:
    def test_already_feasible_is_free(self, or_tree):
        result = allocate_improvements(
            or_tree, target=0.5, improvement_costs={"cheap": 1.0})
        assert result.feasible
        assert result.total_cost == 0.0
        assert result.factors == {"cheap": 1.0}

    def test_reaches_target(self, or_tree):
        result = allocate_improvements(
            or_tree, target=5e-4,
            improvement_costs={"cheap": 1.0, "dear": 1.0})
        assert result.feasible
        assert result.achieved <= 5e-4 * (1 + 1e-6)

    def test_achieved_matches_new_probabilities(self, or_tree):
        result = allocate_improvements(
            or_tree, target=5e-4,
            improvement_costs={"cheap": 1.0, "dear": 1.0})
        assert result.achieved == pytest.approx(hazard_probability(
            or_tree, result.new_probabilities, method="exact"))

    def test_prefers_cheap_component(self, or_tree):
        """With asymmetric prices and a target reachable through the
        cheap leaf alone, the budget goes entirely to it."""
        result = allocate_improvements(
            or_tree, target=1.2e-3,
            improvement_costs={"cheap": 1.0, "dear": 50.0})
        assert result.feasible
        assert result.factors["cheap"] < result.factors["dear"]
        improvements = result.improvements()
        assert improvements.get("dear", 0.0) < 0.05
        # cheap must improve by ~log10(1/0.2) ~ 0.7 decades.
        assert improvements["cheap"] == pytest.approx(0.7, abs=0.1)

    def test_mandatory_expensive_improvement(self, or_tree):
        """A target below the fixed leaf's solo contribution forces
        spending on the expensive component too — and the optimizer
        buys exactly as little of it as possible."""
        result = allocate_improvements(
            or_tree, target=6e-4,
            improvement_costs={"cheap": 1.0, "dear": 50.0})
        assert result.feasible
        # dear ends just under the target's remaining budget.
        assert result.factors["dear"] == pytest.approx(0.6, abs=0.02)

    def test_and_tree_single_improvement_suffices(self):
        """For an AND gate, improving one input improves the product."""
        tree = FaultTree(hazard("H", AND_gate=[
            primary("a", 0.1), primary("b", 0.1)]))
        result = allocate_improvements(
            tree, target=1e-3, improvement_costs={"a": 1.0})
        assert result.feasible
        assert result.factors["a"] == pytest.approx(0.1, rel=0.1)

    def test_infeasible_target_reported(self, or_tree):
        """One improvable leaf cannot push an OR below the other leaf's
        probability."""
        result = allocate_improvements(
            or_tree, target=1e-5, improvement_costs={"cheap": 1.0})
        assert not result.feasible
        assert result.achieved > 1e-5

    def test_cost_accounting(self, or_tree):
        result = allocate_improvements(
            or_tree, target=5e-4,
            improvement_costs={"cheap": 2.0, "dear": 2.0})
        expected = sum(2.0 * math.log10(1.0 / f)
                       for f in result.factors.values())
        assert result.total_cost == pytest.approx(expected)


class TestGuards:
    def test_rejects_bad_target(self, or_tree):
        with pytest.raises(QuantificationError):
            allocate_improvements(or_tree, 0.0, {"cheap": 1.0})

    def test_rejects_unknown_leaf(self, or_tree):
        with pytest.raises(QuantificationError):
            allocate_improvements(or_tree, 0.1, {"ghost": 1.0})

    def test_rejects_empty_costs(self, or_tree):
        with pytest.raises(QuantificationError):
            allocate_improvements(or_tree, 0.1, {})

    def test_rejects_nonpositive_cost(self, or_tree):
        with pytest.raises(QuantificationError):
            allocate_improvements(or_tree, 0.1, {"cheap": 0.0})

    def test_rejects_bad_min_factor(self, or_tree):
        with pytest.raises(QuantificationError):
            allocate_improvements(or_tree, 0.1, {"cheap": 1.0},
                                  min_factor=2.0)
