"""Estimation: fits recover parameters, intervals behave."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DistributionError
from repro.stats import (
    Exponential,
    Normal,
    Weibull,
    fit_exponential_mle,
    fit_normal_moments,
    fit_weibull_moments,
    normal_ci,
    wilson_ci,
)


class TestNormalFit:
    def test_recovers_parameters(self):
        rng = random.Random(11)
        samples = Normal(4.0, 2.0).sample_many(rng, 20_000)
        fit = fit_normal_moments(samples)
        assert fit.mu == pytest.approx(4.0, abs=0.1)
        assert fit.sigma == pytest.approx(2.0, abs=0.1)

    def test_requires_two_samples(self):
        with pytest.raises(DistributionError):
            fit_normal_moments([1.0])

    def test_rejects_constant_samples(self):
        with pytest.raises(DistributionError):
            fit_normal_moments([2.0, 2.0, 2.0])


class TestExponentialFit:
    def test_recovers_rate(self):
        rng = random.Random(12)
        samples = Exponential(0.5).sample_many(rng, 20_000)
        fit = fit_exponential_mle(samples)
        assert fit.lam == pytest.approx(0.5, rel=0.05)

    def test_rejects_negative_samples(self):
        with pytest.raises(DistributionError):
            fit_exponential_mle([1.0, -0.5])

    def test_rejects_zero_mean(self):
        with pytest.raises(DistributionError):
            fit_exponential_mle([0.0, 0.0])


class TestWeibullFit:
    def test_recovers_parameters(self):
        rng = random.Random(13)
        samples = Weibull(2.0, 3.0).sample_many(rng, 20_000)
        fit = fit_weibull_moments(samples)
        assert fit.k == pytest.approx(2.0, rel=0.1)
        assert fit.lam == pytest.approx(3.0, rel=0.05)

    def test_rejects_nonpositive_samples(self):
        with pytest.raises(DistributionError):
            fit_weibull_moments([1.0, 0.0])


class TestNormalCI:
    def test_symmetric_around_mean(self):
        lo, hi = normal_ci(10.0, 2.0, 0.95)
        assert lo == pytest.approx(10.0 - 1.96 * 2.0, abs=1e-3)
        assert hi == pytest.approx(10.0 + 1.96 * 2.0, abs=1e-3)

    def test_zero_stderr_collapses(self):
        assert normal_ci(3.0, 0.0) == (3.0, 3.0)

    def test_rejects_negative_stderr(self):
        with pytest.raises(DistributionError):
            normal_ci(0.0, -1.0)


class TestWilsonCI:
    def test_stays_in_unit_interval_at_zero(self):
        lo, hi = wilson_ci(0, 1000)
        assert lo == 0.0
        assert hi > 0.0

    def test_stays_in_unit_interval_at_full(self):
        lo, hi = wilson_ci(1000, 1000)
        assert hi == 1.0
        assert lo < 1.0

    def test_contains_point_estimate(self):
        lo, hi = wilson_ci(30, 200)
        assert lo < 30 / 200 < hi

    def test_narrows_with_more_trials(self):
        narrow = wilson_ci(100, 10_000)
        wide = wilson_ci(1, 100)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_rejects_bad_inputs(self):
        with pytest.raises(DistributionError):
            wilson_ci(5, 0)
        with pytest.raises(DistributionError):
            wilson_ci(-1, 10)
        with pytest.raises(DistributionError):
            wilson_ci(11, 10)
        with pytest.raises(DistributionError):
            wilson_ci(1, 10, confidence=1.5)

    @given(st.integers(0, 50), st.integers(50, 500))
    @settings(max_examples=60)
    def test_interval_ordering_property(self, successes, trials):
        lo, hi = wilson_ci(successes, trials)
        assert 0.0 <= lo <= hi <= 1.0

    def test_coverage_simulation(self):
        """~95% of seeded binomial experiments cover the true p."""
        rng = random.Random(99)
        p_true, trials, covered, runs = 0.05, 400, 0, 300
        for _ in range(runs):
            successes = sum(rng.random() < p_true for _ in range(trials))
            lo, hi = wilson_ci(successes, trials)
            covered += lo <= p_true <= hi
        assert covered / runs > 0.90
