"""Distribution correctness: closed forms, inverses, sampling, truncation."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DistributionError
from repro.stats import (
    Exponential,
    LogNormal,
    Normal,
    PointMass,
    TruncatedNormal,
    Uniform,
    Weibull,
)

ALL_DISTRIBUTIONS = [
    Normal(0.0, 1.0),
    Normal(4.0, 2.0),
    TruncatedNormal(4.0, 2.0, lower=0.0),
    TruncatedNormal(0.0, 1.0, lower=-1.0, upper=2.0),
    Exponential(0.5),
    Weibull(2.0, 3.0),
    Weibull(0.8, 1.0),
    LogNormal(0.0, 0.5),
    Uniform(-1.0, 3.0),
]


class TestGenericContract:
    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS,
                             ids=lambda d: repr(d))
    def test_cdf_monotone(self, dist):
        xs = [-5.0 + i * 0.5 for i in range(30)]
        values = [dist.cdf(x) for x in xs]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS,
                             ids=lambda d: repr(d))
    def test_cdf_limits(self, dist):
        assert dist.cdf(-1e9) == pytest.approx(0.0, abs=1e-12)
        assert dist.cdf(1e9) == pytest.approx(1.0, abs=1e-12)

    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS,
                             ids=lambda d: repr(d))
    def test_ppf_inverts_cdf(self, dist):
        for p in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            assert dist.cdf(dist.ppf(p)) == pytest.approx(p, abs=1e-7)

    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS,
                             ids=lambda d: repr(d))
    def test_sf_complements_cdf(self, dist):
        for x in (-2.0, 0.0, 1.0, 4.0):
            assert dist.sf(x) == pytest.approx(1.0 - dist.cdf(x), abs=1e-12)

    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS,
                             ids=lambda d: repr(d))
    def test_sample_mean_matches(self, dist):
        rng = random.Random(123)
        samples = dist.sample_many(rng, 20_000)
        mean = sum(samples) / len(samples)
        tol = 4.0 * dist.std / math.sqrt(len(samples))
        assert mean == pytest.approx(dist.mean, abs=tol)

    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS,
                             ids=lambda d: repr(d))
    def test_pdf_integrates_to_cdf_increment(self, dist):
        # Trapezoid integral of the pdf over a quantile window matches
        # the cdf difference.
        lo, hi = dist.ppf(0.2), dist.ppf(0.8)
        n = 4000
        step = (hi - lo) / n
        integral = 0.5 * (dist.pdf(lo) + dist.pdf(hi)) * step
        for i in range(1, n):
            integral += dist.pdf(lo + i * step) * step
        assert integral == pytest.approx(0.6, abs=2e-3)


class TestNormal:
    def test_standard_values(self):
        n = Normal(0.0, 1.0)
        assert n.cdf(0.0) == pytest.approx(0.5)
        assert n.cdf(1.96) == pytest.approx(0.975, abs=1e-4)
        assert n.pdf(0.0) == pytest.approx(1.0 / math.sqrt(2 * math.pi))

    def test_rejects_bad_sigma(self):
        with pytest.raises(DistributionError):
            Normal(0.0, 0.0)
        with pytest.raises(DistributionError):
            Normal(0.0, -1.0)

    def test_ppf_rejects_bounds(self):
        with pytest.raises(DistributionError):
            Normal(0.0, 1.0).ppf(0.0)
        with pytest.raises(DistributionError):
            Normal(0.0, 1.0).ppf(1.0)

    @given(st.floats(-10, 10), st.floats(0.1, 10),
           st.floats(0.001, 0.999))
    @settings(max_examples=60)
    def test_ppf_cdf_roundtrip_property(self, mu, sigma, p):
        n = Normal(mu, sigma)
        assert n.cdf(n.ppf(p)) == pytest.approx(p, abs=1e-6)


class TestTruncatedNormal:
    def test_matches_paper_model(self):
        """The paper's P_OHV(Time <= T): normalized Gaussian on [0, inf)."""
        t = TruncatedNormal(4.0, 2.0, lower=0.0)
        plain = Normal(4.0, 2.0)
        mass = 1.0 - plain.cdf(0.0)
        for x in (1.0, 4.0, 8.0, 15.6, 19.0, 30.0):
            expected = (plain.cdf(x) - plain.cdf(0.0)) / mass
            assert t.cdf(x) == pytest.approx(expected, rel=1e-10)

    def test_support_is_respected(self):
        t = TruncatedNormal(0.0, 1.0, lower=-1.0, upper=2.0)
        assert t.cdf(-1.0) == 0.0
        assert t.cdf(2.0) == 1.0
        assert t.pdf(-1.5) == 0.0
        assert t.pdf(2.5) == 0.0

    def test_mean_shifts_up_when_left_truncated(self):
        t = TruncatedNormal(4.0, 2.0, lower=0.0)
        assert t.mean > 4.0
        assert t.variance < 4.0

    def test_rejects_empty_interval(self):
        with pytest.raises(DistributionError):
            TruncatedNormal(0.0, 1.0, lower=2.0, upper=1.0)

    def test_rejects_zero_mass_interval(self):
        with pytest.raises(DistributionError):
            TruncatedNormal(0.0, 1.0, lower=50.0, upper=51.0)

    def test_mgf_at_zero_is_one(self):
        t = TruncatedNormal(4.0, 2.0, lower=0.0)
        assert t.mgf(0.0) == pytest.approx(1.0, rel=1e-9)

    def test_mgf_matches_sampling(self):
        t = TruncatedNormal(4.0, 2.0, lower=0.0)
        rng = random.Random(5)
        lam = 0.13
        samples = t.sample_many(rng, 40_000)
        empirical = sum(math.exp(-lam * x) for x in samples) / len(samples)
        assert t.mgf(-lam) == pytest.approx(empirical, rel=0.01)

    def test_capped_mgf_matches_sampling(self):
        t = TruncatedNormal(4.0, 2.0, lower=0.0)
        rng = random.Random(6)
        lam, cap = 0.13, 5.0
        samples = t.sample_many(rng, 40_000)
        empirical = sum(math.exp(-lam * min(x, cap)) for x in samples) \
            / len(samples)
        assert t.capped_mgf(-lam, cap) == pytest.approx(empirical, rel=0.01)

    def test_capped_mgf_limits(self):
        t = TruncatedNormal(4.0, 2.0, lower=0.0)
        # Cap below the support: window is exactly the cap.
        assert t.capped_mgf(-0.1, 0.0) == pytest.approx(1.0)
        # Huge cap: reduces to the plain MGF.
        assert t.capped_mgf(-0.1, 1e9) == pytest.approx(t.mgf(-0.1))

    def test_capped_mgf_monotone_in_cap(self):
        t = TruncatedNormal(4.0, 2.0, lower=0.0)
        values = [t.capped_mgf(-0.2, cap) for cap in (1.0, 2.0, 4.0, 8.0)]
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))


class TestExponential:
    def test_memoryless_cdf(self):
        e = Exponential(2.0)
        assert e.cdf(1.0) == pytest.approx(1.0 - math.exp(-2.0))
        assert e.cdf(-1.0) == 0.0

    def test_mean_variance(self):
        e = Exponential(4.0)
        assert e.mean == pytest.approx(0.25)
        assert e.variance == pytest.approx(0.0625)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(DistributionError):
            Exponential(0.0)


class TestWeibull:
    def test_shape_one_is_exponential(self):
        w = Weibull(1.0, 2.0)
        e = Exponential(0.5)
        for x in (0.5, 1.0, 3.0):
            assert w.cdf(x) == pytest.approx(e.cdf(x), rel=1e-12)

    def test_pdf_at_zero_by_shape(self):
        assert Weibull(0.5, 1.0).pdf(0.0) == math.inf
        assert Weibull(1.0, 2.0).pdf(0.0) == pytest.approx(0.5)
        assert Weibull(2.0, 1.0).pdf(0.0) == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(DistributionError):
            Weibull(0.0, 1.0)
        with pytest.raises(DistributionError):
            Weibull(1.0, -2.0)


class TestLogNormal:
    def test_median_is_exp_mu(self):
        ln = LogNormal(1.0, 0.7)
        assert ln.ppf(0.5) == pytest.approx(math.exp(1.0), rel=1e-6)

    def test_support_is_positive(self):
        ln = LogNormal(0.0, 1.0)
        assert ln.cdf(0.0) == 0.0
        assert ln.pdf(-1.0) == 0.0


class TestUniform:
    def test_linear_cdf(self):
        u = Uniform(2.0, 6.0)
        assert u.cdf(3.0) == pytest.approx(0.25)
        assert u.pdf(5.0) == pytest.approx(0.25)
        assert u.ppf(0.5) == pytest.approx(4.0)

    def test_rejects_degenerate(self):
        with pytest.raises(DistributionError):
            Uniform(1.0, 1.0)


class TestPointMass:
    def test_step_cdf(self):
        p = PointMass(3.0)
        assert p.cdf(2.999) == 0.0
        assert p.cdf(3.0) == 1.0
        assert p.mean == 3.0
        assert p.variance == 0.0

    def test_sampling_is_constant(self):
        p = PointMass(7.0)
        rng = random.Random(0)
        assert p.sample_many(rng, 5) == [7.0] * 5


class TestSampling:
    def test_sample_many_rejects_negative(self):
        with pytest.raises(DistributionError):
            Normal(0, 1).sample_many(random.Random(0), -1)

    def test_deterministic_under_seed(self):
        d = Weibull(2.0, 1.0)
        a = d.sample_many(random.Random(42), 10)
        b = d.sample_many(random.Random(42), 10)
        assert a == b
