"""Property tests: batched quantiles are bit-identical to the scalar path.

``ppf_batch``/``sample_batch`` are not allowed to be merely close to the
scalar ``ppf``/``sample_many`` — the UQ subsystem's reproducibility
guarantees rest on exact element-wise identity, so every distribution is
pinned with ``==`` on the raw IEEE doubles.
"""

import random

import numpy as np
import pytest

from repro.errors import DistributionError
from repro.stats import (
    Beta,
    Exponential,
    GammaDist,
    LogNormal,
    Normal,
    PointMass,
    TruncatedNormal,
    Uniform,
    Weibull,
)

ALL_DISTRIBUTIONS = [
    Normal(0.0, 1.0),
    Normal(-3.5, 0.25),
    TruncatedNormal(4.0, 2.0, lower=0.0),
    TruncatedNormal(1.0, 1.0, lower=-1.0, upper=2.5),
    Exponential(0.7),
    Exponential(1e-4),
    Weibull(0.8, 2.0),
    Weibull(2.5, 0.5),
    LogNormal(-9.0, 1.2),
    LogNormal(0.0, 0.3),
    Uniform(0.0, 1.0),
    Uniform(-5.0, 7.0),
    PointMass(0.25),
    Beta(0.5, 0.5),
    Beta(10.5, 2000.0),
    GammaDist(1.5, 100.0),
    GammaDist(0.5, 1e-3),
]

IDS = [f"{type(d).__name__}-{i}" for i, d in enumerate(ALL_DISTRIBUTIONS)]


def probability_grid(seed: int = 0, n: int = 4000) -> np.ndarray:
    """Uniforms covering the bulk and both extreme tails."""
    rng = np.random.default_rng(seed)
    bulk = rng.random(n)
    low_tail = 10.0 ** rng.uniform(-300.0, -2.0, 200)
    high_tail = 1.0 - 10.0 ** rng.uniform(-15.0, -2.0, 200)
    grid = np.concatenate([bulk, low_tail, high_tail])
    return np.clip(grid, 1e-300, 1.0 - 1e-16)


class TestPpfBatch:
    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=IDS)
    def test_bit_identical_to_scalar(self, dist):
        p = probability_grid()
        batch = dist.ppf_batch(p)
        scalar = np.array([dist.ppf(float(v)) for v in p])
        assert batch.dtype == np.float64
        assert np.array_equal(batch, scalar)

    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=IDS)
    def test_empty_batch(self, dist):
        out = dist.ppf_batch(np.array([]))
        assert out.shape == (0,)

    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=IDS)
    def test_rejects_out_of_range(self, dist):
        with pytest.raises(DistributionError):
            dist.ppf_batch(np.array([0.5, 1.5]))
        with pytest.raises(DistributionError):
            dist.ppf_batch(np.array([-0.1]))

    def test_open_interval_distributions_reject_endpoints(self):
        for dist in (Normal(0.0, 1.0), Exponential(1.0),
                     Beta(2.0, 3.0)):
            with pytest.raises(DistributionError):
                dist.ppf_batch(np.array([0.0]))
            with pytest.raises(DistributionError):
                dist.ppf_batch(np.array([1.0]))

    def test_closed_interval_distributions_accept_endpoints(self):
        assert Uniform(2.0, 4.0).ppf_batch([0.0, 1.0]).tolist() == \
            [2.0, 4.0]
        assert PointMass(0.3).ppf_batch([0.0, 1.0]).tolist() == \
            [0.3, 0.3]

    def test_rejects_matrix_input(self):
        with pytest.raises(DistributionError):
            Normal(0.0, 1.0).ppf_batch(np.ones((2, 2)) * 0.5)

    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=IDS)
    def test_nan_raises_distribution_error(self, dist):
        """NaN fails every comparison; it must still be reported as a
        DistributionError like the scalar path, not an IndexError."""
        with pytest.raises(DistributionError, match="nan"):
            dist.ppf_batch(np.array([0.5, float("nan")]))


class TestSampleBatch:
    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=IDS)
    def test_bit_identical_to_sample_many(self, dist):
        batch = dist.sample_batch(random.Random(42), 500)
        scalar = dist.sample_many(random.Random(42), 500)
        assert np.array_equal(batch, np.array(scalar))

    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=IDS)
    def test_consumes_the_same_stream(self, dist):
        """After a batch the generator sits where sample_many left it."""
        rng_batch, rng_scalar = random.Random(7), random.Random(7)
        dist.sample_batch(rng_batch, 100)
        dist.sample_many(rng_scalar, 100)
        assert rng_batch.random() == rng_scalar.random()

    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=IDS)
    def test_zero_and_negative_counts(self, dist):
        assert dist.sample_batch(random.Random(0), 0).shape == (0,)
        with pytest.raises(DistributionError):
            dist.sample_batch(random.Random(0), -1)
