"""Bayesian updating: Beta/Gamma conjugacy and credible intervals."""

import random

import pytest

from repro.errors import DistributionError
from repro.stats import (
    Beta,
    GammaDist,
    jeffreys_prior,
    uniform_prior,
    update_binomial,
    update_poisson_exposure,
)


class TestBeta:
    def test_mean_variance(self):
        b = Beta(2.0, 3.0)
        assert b.mean == pytest.approx(0.4)
        assert b.variance == pytest.approx(0.04)

    def test_cdf_symmetric_case(self):
        b = Beta(2.0, 2.0)
        assert b.cdf(0.5) == pytest.approx(0.5)
        assert b.cdf(0.0) == 0.0
        assert b.cdf(1.0) == 1.0

    def test_uniform_special_case(self):
        b = Beta(1.0, 1.0)
        for x in (0.1, 0.5, 0.9):
            assert b.cdf(x) == pytest.approx(x)
            assert b.pdf(x) == pytest.approx(1.0)

    def test_ppf_inverts_cdf(self):
        b = Beta(0.5, 4.0)
        for p in (0.05, 0.5, 0.95):
            assert b.cdf(b.ppf(p)) == pytest.approx(p, abs=1e-9)

    def test_sampling_mean(self):
        b = Beta(3.0, 7.0)
        rng = random.Random(1)
        samples = b.sample_many(rng, 20_000)
        assert sum(samples) / len(samples) == pytest.approx(0.3,
                                                            abs=0.01)

    def test_credible_interval_ordering(self):
        lo, hi = Beta(2.0, 8.0).credible_interval(0.9)
        assert 0.0 < lo < 0.2 < hi < 1.0

    def test_rejects_bad_shapes(self):
        with pytest.raises(DistributionError):
            Beta(0.0, 1.0)


class TestGamma:
    def test_mean_variance(self):
        g = GammaDist(4.0, 2.0)
        assert g.mean == pytest.approx(2.0)
        assert g.variance == pytest.approx(1.0)

    def test_exponential_special_case(self):
        import math
        g = GammaDist(1.0, 0.5)
        assert g.cdf(2.0) == pytest.approx(1.0 - math.exp(-1.0))
        assert g.pdf(0.0) == pytest.approx(0.5)

    def test_ppf_inverts_cdf(self):
        g = GammaDist(2.5, 1.5)
        for p in (0.1, 0.5, 0.9):
            assert g.cdf(g.ppf(p)) == pytest.approx(p, abs=1e-9)

    def test_rejects_bad_parameters(self):
        with pytest.raises(DistributionError):
            GammaDist(1.0, 0.0)


class TestBinomialUpdate:
    def test_posterior_counts(self):
        posterior = update_binomial(uniform_prior(), failures=3,
                                    demands=10)
        assert posterior.a == 4.0
        assert posterior.b == 8.0

    def test_posterior_concentrates_with_data(self):
        little = update_binomial(jeffreys_prior(), 1, 10)
        lots = update_binomial(jeffreys_prior(), 100, 1000)
        assert lots.variance < little.variance
        assert lots.mean == pytest.approx(0.1, abs=0.005)

    def test_zero_failures_still_informative(self):
        posterior = update_binomial(jeffreys_prior(), 0, 1000)
        _lo, hi = posterior.credible_interval(0.95)
        assert hi < 0.005   # strong evidence the probability is tiny

    def test_sequential_equals_batch(self):
        batch = update_binomial(jeffreys_prior(), 5, 20)
        seq = update_binomial(
            update_binomial(jeffreys_prior(), 2, 8), 3, 12)
        assert (seq.a, seq.b) == (batch.a, batch.b)

    def test_rejects_inconsistent_counts(self):
        with pytest.raises(DistributionError):
            update_binomial(uniform_prior(), 5, 3)


class TestPoissonUpdate:
    def test_posterior_parameters(self):
        posterior = update_poisson_exposure(0.5, 0.0001, events=13,
                                            exposure=100.0)
        assert posterior.k == pytest.approx(13.5)
        assert posterior.rate == pytest.approx(100.0001)
        assert posterior.mean == pytest.approx(0.135, abs=0.001)

    def test_recovers_elbtunnel_style_rate(self):
        """13 HVs under ODfinal in 100 minutes -> rate ~0.13/min."""
        posterior = update_poisson_exposure(0.5, 1e-6, 13, 100.0)
        lo, hi = posterior.credible_interval(0.95)
        assert lo < 0.13 < hi

    def test_rejects_bad_inputs(self):
        with pytest.raises(DistributionError):
            update_poisson_exposure(0.5, 0.1, -1, 10.0)
        with pytest.raises(DistributionError):
            update_poisson_exposure(0.5, 0.1, 1, 0.0)
