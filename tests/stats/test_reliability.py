"""Reliability models: closed forms, monotonicity, clamping."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DistributionError
from repro.stats import (
    ConstantRateModel,
    ExposureWindowModel,
    MissionTimeModel,
    PerDemandModel,
    WeibullHazardModel,
)

ALL_MODELS = [
    ConstantRateModel(0.1),
    ExposureWindowModel(0.05),
    PerDemandModel(0.01),
    MissionTimeModel(0.02, 10.0),
    WeibullHazardModel(2.0, 100.0),
]


class TestGenericContract:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: repr(m))
    def test_zero_exposure_is_zero(self, model):
        assert model(0.0) == 0.0
        assert model(-5.0) == 0.0

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: repr(m))
    def test_monotone_nondecreasing(self, model):
        xs = [0.5 * i for i in range(40)]
        values = [model(x) for x in xs]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: repr(m))
    def test_always_in_unit_interval(self, model):
        for x in (0.0, 1e-9, 1.0, 1e3, 1e9):
            assert 0.0 <= model(x) <= 1.0


class TestConstantRate:
    def test_closed_form(self):
        m = ConstantRateModel(0.5)
        assert m(2.0) == pytest.approx(1.0 - math.exp(-1.0))

    def test_zero_rate_never_fails(self):
        assert ConstantRateModel(0.0)(100.0) == 0.0

    def test_rejects_negative_rate(self):
        with pytest.raises(DistributionError):
            ConstantRateModel(-0.1)


class TestExposureWindow:
    def test_matches_elbtunnel_parameterization(self):
        """P(HV ODfinal)(T2) = 1 - exp(-lambda T2), the paper's idiom."""
        m = ExposureWindowModel(0.13)
        assert m(15.6) == pytest.approx(1.0 - math.exp(-0.13 * 15.6))
        assert m(15.6) > 0.8          # the paper's ">80%" checkpoint
        assert m(30.0) > 0.95         # and its ">95%" checkpoint

    @given(st.floats(1e-6, 1.0), st.floats(0.01, 100.0))
    @settings(max_examples=50)
    def test_agrees_with_constant_rate(self, rate, window):
        assert ExposureWindowModel(rate)(window) == pytest.approx(
            ConstantRateModel(rate)(window), rel=1e-12)


class TestPerDemand:
    def test_closed_form(self):
        m = PerDemandModel(0.1)
        assert m(1.0) == pytest.approx(0.1)
        assert m(2.0) == pytest.approx(1.0 - 0.81)

    def test_certain_failure(self):
        assert PerDemandModel(1.0)(1.0) == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(DistributionError):
            PerDemandModel(1.5)

    @given(st.floats(0.0, 0.5), st.integers(1, 50))
    @settings(max_examples=50)
    def test_equals_complement_power(self, q, n):
        assert PerDemandModel(q)(float(n)) == pytest.approx(
            1.0 - (1.0 - q) ** n, rel=1e-9, abs=1e-12)


class TestMissionTime:
    def test_closed_form(self):
        m = MissionTimeModel(rate=0.1, mission_time=5.0)
        assert m(2.0) == pytest.approx(1.0 - math.exp(-1.0))

    def test_rejects_negative(self):
        with pytest.raises(DistributionError):
            MissionTimeModel(-1.0, 1.0)
        with pytest.raises(DistributionError):
            MissionTimeModel(1.0, -1.0)


class TestWeibullHazard:
    def test_shape_one_reduces_to_constant_rate(self):
        w = WeibullHazardModel(1.0, 10.0)
        c = ConstantRateModel(0.1)
        for t in (0.5, 5.0, 20.0):
            assert w(t) == pytest.approx(c(t), rel=1e-12)

    def test_wearout_accelerates(self):
        """shape > 1: failure probability grows faster than linear early."""
        w = WeibullHazardModel(3.0, 100.0)
        assert w(10.0) / w(5.0) > 2.0

    def test_rejects_nonpositive(self):
        with pytest.raises(DistributionError):
            WeibullHazardModel(0.0, 1.0)
        with pytest.raises(DistributionError):
            WeibullHazardModel(1.0, 0.0)
