"""Box and Problem: domains, clipping, counting, guards."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OptimizationError
from repro.opt import Box, OptResult, Problem, best_of


class TestBox:
    def test_dim_and_widths(self):
        box = Box([(0, 10), (5, 6)])
        assert box.dim == 2
        assert box.widths == (10.0, 1.0)
        assert box.center == (5.0, 5.5)

    def test_contains(self):
        box = Box([(0, 1)])
        assert box.contains((0.5,))
        assert box.contains((0.0,))
        assert not box.contains((1.5,))
        assert not box.contains((0.5, 0.5))

    def test_clip(self):
        box = Box([(0, 1), (0, 1)])
        assert box.clip((-5, 0.5)) == (0.0, 0.5)
        assert box.clip((2, 2)) == (1.0, 1.0)

    def test_clip_dimension_mismatch(self):
        with pytest.raises(OptimizationError):
            Box([(0, 1)]).clip((1, 2))

    def test_rejects_empty(self):
        with pytest.raises(OptimizationError):
            Box([])

    def test_rejects_inverted_interval(self):
        with pytest.raises(OptimizationError):
            Box([(1, 0)])

    def test_rejects_infinite_interval(self):
        """The paper requires compact intervals for the minimum to exist."""
        with pytest.raises(OptimizationError):
            Box([(0, math.inf)])

    def test_grid_includes_endpoints(self):
        points = Box([(0, 1)]).grid(3)
        assert points == [(0.0,), (0.5,), (1.0,)]

    def test_grid_is_full_factorial(self):
        points = Box([(0, 1), (0, 2)]).grid(3)
        assert len(points) == 9
        assert (0.0, 2.0) in points

    def test_grid_rejects_single_point(self):
        with pytest.raises(OptimizationError):
            Box([(0, 1)]).grid(1)

    def test_sample_stays_inside(self):
        box = Box([(-3, -1), (10, 20)])
        rng = random.Random(0)
        for _ in range(100):
            assert box.contains(box.sample(rng))

    def test_shrink_around_center(self):
        box = Box([(0, 10)])
        small = box.shrink_around((5,), 0.5)
        assert small.bounds == [(2.5, 7.5)]

    def test_shrink_slides_at_wall(self):
        box = Box([(0, 10)])
        small = box.shrink_around((0,), 0.5)
        assert small.bounds == [(0.0, 5.0)]

    def test_shrink_never_leaves_box(self):
        box = Box([(0, 10), (0, 2)])
        small = box.shrink_around((9.9, 0.1), 0.3)
        for (lo, hi), (olo, ohi) in zip(small.bounds, box.bounds):
            assert olo <= lo < hi <= ohi

    @given(st.floats(0.01, 0.99), st.floats(-100, 100),
           st.floats(0.1, 100))
    @settings(max_examples=60)
    def test_shrink_factor_property(self, factor, lo, width):
        box = Box([(lo, lo + width)])
        small = box.shrink_around(box.center, factor)
        (slo, shi), = small.bounds
        assert shi - slo == pytest.approx(factor * width, rel=1e-9)

    def test_shrink_rejects_bad_factor(self):
        with pytest.raises(OptimizationError):
            Box([(0, 1)]).shrink_around((0.5,), 1.5)


class TestProblem:
    def test_counts_evaluations(self):
        problem = Problem(lambda x: x[0] ** 2, Box([(-1, 1)]))
        problem((0.5,))
        problem((0.2,))
        assert problem.evaluations == 2
        problem.reset_counter()
        assert problem.evaluations == 0

    def test_rejects_outside_box(self):
        problem = Problem(lambda x: 0.0, Box([(-1, 1)]))
        with pytest.raises(OptimizationError):
            problem((2.0,))

    def test_rejects_nan(self):
        problem = Problem(lambda x: float("nan"), Box([(-1, 1)]))
        with pytest.raises(OptimizationError):
            problem((0.0,))

    def test_rejects_non_callable(self):
        with pytest.raises(OptimizationError):
            Problem("f", Box([(-1, 1)]))


class TestBestOf:
    def _result(self, fun):
        return OptResult(x=(0.0,), fun=fun, evaluations=1, iterations=1,
                         converged=True, method="m")

    def test_picks_lowest(self):
        results = [self._result(3.0), self._result(1.0), self._result(2.0)]
        assert best_of(results).fun == 1.0

    def test_rejects_empty(self):
        with pytest.raises(OptimizationError):
            best_of([])
