"""scipy bridge agrees with our native solvers."""

import pytest

from repro.opt import (
    Box,
    Problem,
    nelder_mead,
    scipy_differential_evolution,
    scipy_minimize,
)


def make_problem():
    return Problem(lambda x: (x[0] - 1.0) ** 2 + (x[1] + 2.0) ** 2,
                   Box([(-5, 5), (-5, 5)]))


class TestScipyMinimize:
    def test_lbfgsb_finds_minimum(self):
        result = scipy_minimize(make_problem(), method="L-BFGS-B")
        assert result.x[0] == pytest.approx(1.0, abs=1e-4)
        assert result.x[1] == pytest.approx(-2.0, abs=1e-4)
        assert result.converged

    def test_nelder_mead_variant(self):
        result = scipy_minimize(make_problem(), method="Nelder-Mead")
        assert result.fun == pytest.approx(0.0, abs=1e-6)

    def test_counts_evaluations(self):
        problem = make_problem()
        result = scipy_minimize(problem)
        assert result.evaluations == problem.evaluations > 0

    def test_respects_bounds(self):
        problem = Problem(lambda x: -x[0], Box([(0, 2)]))
        result = scipy_minimize(problem)
        assert result.x[0] == pytest.approx(2.0, abs=1e-6)

    def test_agrees_with_native_nelder_mead(self):
        ours = nelder_mead(make_problem())
        theirs = scipy_minimize(make_problem(), method="Nelder-Mead")
        assert ours.fun == pytest.approx(theirs.fun, abs=1e-6)


class TestScipyDE:
    def test_finds_global_minimum(self):
        result = scipy_differential_evolution(make_problem(), seed=1,
                                              maxiter=100)
        assert result.fun == pytest.approx(0.0, abs=1e-8)

    def test_method_label(self):
        result = scipy_differential_evolution(make_problem(), seed=1,
                                              maxiter=20)
        assert result.method == "scipy:differential_evolution"
