"""Optimizer edge cases: explicit options, degenerate landscapes."""

import pytest

from repro.opt import (
    Box,
    Problem,
    differential_evolution,
    golden_section,
    nelder_mead,
    simulated_annealing,
    zoom_search,
)


class TestExplicitOptions:
    def test_annealing_with_explicit_t0(self):
        problem = Problem(lambda x: x[0] ** 2, Box([(-2, 2)]))
        result = simulated_annealing(problem, t0=1.0, steps=3000, seed=1)
        assert result.fun < 0.01

    def test_de_with_explicit_population(self):
        problem = Problem(lambda x: x[0] ** 2, Box([(-2, 2)]))
        result = differential_evolution(problem, population=8,
                                        generations=60, seed=2)
        assert result.fun == pytest.approx(0.0, abs=1e-6)

    def test_golden_respects_max_iterations(self):
        problem = Problem(lambda x: x[0] ** 2, Box([(-1, 1)]))
        result = golden_section(problem, tol=1e-30, max_iterations=5)
        assert result.iterations == 5
        assert not result.converged


class TestDegenerateLandscapes:
    def test_constant_objective(self):
        """Flat functions terminate and return a feasible point."""
        box = Box([(-1, 1), (-1, 1)])
        for solver in (lambda p: nelder_mead(p),
                       lambda p: zoom_search(p, points_per_dim=3),
                       lambda p: simulated_annealing(p, steps=200,
                                                     seed=0)):
            problem = Problem(lambda x: 7.0, box)
            result = solver(problem)
            assert result.fun == 7.0
            assert box.contains(result.x)

    def test_piecewise_constant_steps(self):
        """Comparison-based methods handle step functions."""
        problem = Problem(lambda x: float(int(abs(x[0]) * 3)),
                          Box([(-1, 1)]))
        result = zoom_search(problem, points_per_dim=7)
        assert result.fun == 0.0

    def test_minimum_exactly_on_grid_boundary(self):
        problem = Problem(lambda x: (x[0] + 1.0) ** 2, Box([(-1, 1)]))
        result = zoom_search(problem, points_per_dim=5)
        assert result.x[0] == pytest.approx(-1.0, abs=1e-6)

    def test_narrow_box(self):
        problem = Problem(lambda x: x[0] ** 2,
                          Box([(0.999999, 1.000001)]))
        result = nelder_mead(problem)
        assert result.x[0] == pytest.approx(0.999999, abs=1e-5)


class TestHighDimensional:
    def test_ten_dimensional_sphere(self):
        box = Box([(-3, 3)] * 10)
        problem = Problem(lambda x: sum(v * v for v in x), box)
        result = nelder_mead(problem, max_iterations=10_000)
        assert result.fun < 1e-3

    def test_coordinate_descent_scales_with_dim(self):
        from repro.opt import coordinate_descent
        box = Box([(-3, 3)] * 8)
        problem = Problem(
            lambda x: sum((v - i * 0.1) ** 2
                          for i, v in enumerate(x)), box)
        result = coordinate_descent(problem)
        for i, v in enumerate(result.x):
            assert v == pytest.approx(i * 0.1, abs=1e-5)
