"""All optimizers on shared benchmark landscapes.

Each algorithm must find the minimum of smooth convex and moderately
multimodal test functions within its documented accuracy; results must be
deterministic under fixed seeds and never leave the feasible box.
"""

import math

import pytest

from repro.errors import OptimizationError
from repro.opt import (
    Box,
    Problem,
    differential_evolution,
    golden_section,
    gradient_descent,
    grid_search,
    multistart,
    nelder_mead,
    simulated_annealing,
    zoom_search,
)


def sphere(x):
    """Convex bowl centred at (1, 2)."""
    return (x[0] - 1.0) ** 2 + (x[1] - 2.0) ** 2


def rosenbrock(x):
    return (1 - x[0]) ** 2 + 100.0 * (x[1] - x[0] ** 2) ** 2


def rastrigin1d(x):
    """Multimodal; global minimum 0 at the origin."""
    return 10.0 + x[0] ** 2 - 10.0 * math.cos(2 * math.pi * x[0])


def make_sphere():
    return Problem(sphere, Box([(-5, 5), (-5, 5)]), name="sphere")


LOCAL_SOLVERS = [
    ("zoom", lambda p: zoom_search(p, points_per_dim=9, tol=1e-7)),
    ("gradient", lambda p: gradient_descent(p, tol=1e-14,
                                            max_iterations=2000)),
    ("nelder_mead", lambda p: nelder_mead(p)),
]
GLOBAL_SOLVERS = [
    ("annealing", lambda p: simulated_annealing(p, seed=3, steps=8000)),
    ("de", lambda p: differential_evolution(p, seed=3)),
]


class TestOnSphere:
    @pytest.mark.parametrize("name,solver",
                             LOCAL_SOLVERS + GLOBAL_SOLVERS,
                             ids=lambda v: v if isinstance(v, str) else "")
    def test_finds_minimum(self, name, solver):
        result = solver(make_sphere())
        tol = 0.05 if name == "annealing" else 1e-3
        assert result.x[0] == pytest.approx(1.0, abs=tol)
        assert result.x[1] == pytest.approx(2.0, abs=tol)
        assert result.fun == pytest.approx(0.0, abs=tol)

    @pytest.mark.parametrize("name,solver",
                             LOCAL_SOLVERS + GLOBAL_SOLVERS,
                             ids=lambda v: v if isinstance(v, str) else "")
    def test_reports_evaluations(self, name, solver):
        problem = make_sphere()
        result = solver(problem)
        assert result.evaluations == problem.evaluations
        assert result.evaluations > 0

    @pytest.mark.parametrize("name,solver",
                             LOCAL_SOLVERS + GLOBAL_SOLVERS,
                             ids=lambda v: v if isinstance(v, str) else "")
    def test_stays_inside_box(self, name, solver):
        box = Box([(-5, 5), (-5, 5)])
        seen = []

        def recording(x):
            seen.append(x)
            return sphere(x)

        solver(Problem(recording, box))
        assert all(box.contains(x) for x in seen)


class TestGrid:
    def test_grid_search_picks_best_point(self):
        problem = Problem(lambda x: abs(x[0] - 0.5), Box([(0, 1)]))
        result = grid_search(problem, points_per_dim=11)
        assert result.x == (0.5,)
        assert result.evaluations == 11

    def test_zoom_converges_below_grid_resolution(self):
        problem = Problem(lambda x: (x[0] - 0.123456) ** 2, Box([(0, 1)]))
        result = zoom_search(problem, points_per_dim=5, tol=1e-8)
        assert result.x[0] == pytest.approx(0.123456, abs=1e-6)
        assert result.converged

    def test_zoom_rejects_bad_shrink(self):
        with pytest.raises(OptimizationError):
            zoom_search(make_sphere(), shrink=1.0)

    def test_zoom_respects_max_rounds(self):
        problem = Problem(lambda x: x[0] ** 2, Box([(-1, 1)]))
        result = zoom_search(problem, points_per_dim=3, tol=1e-30,
                             max_rounds=4)
        assert result.iterations == 4
        assert not result.converged


class TestGolden:
    def test_finds_1d_minimum(self):
        problem = Problem(lambda x: (x[0] - 2.5) ** 2 + 1.0,
                          Box([(0, 10)]))
        result = golden_section(problem, tol=1e-10)
        assert result.x[0] == pytest.approx(2.5, abs=1e-6)
        assert result.fun == pytest.approx(1.0, abs=1e-10)

    def test_rejects_multidimensional(self):
        with pytest.raises(OptimizationError):
            golden_section(make_sphere())

    def test_boundary_minimum(self):
        problem = Problem(lambda x: x[0], Box([(2, 5)]))
        result = golden_section(problem)
        assert result.x[0] == pytest.approx(2.0, abs=1e-5)


class TestGradient:
    def test_descends_on_rosenbrock_valley(self):
        problem = Problem(rosenbrock, Box([(-2, 2), (-1, 3)]))
        result = gradient_descent(problem, x0=(0.0, 0.0),
                                  max_iterations=3000, tol=1e-15)
        # Gradient descent is slow in the valley but must reach it.
        assert result.fun < rosenbrock((0.0, 0.0))
        assert result.fun < 0.5

    def test_projects_boundary_optimum(self):
        problem = Problem(lambda x: -x[0], Box([(0, 1)]))
        result = gradient_descent(problem)
        assert result.x[0] == pytest.approx(1.0, abs=1e-6)

    def test_history_is_monotone(self):
        problem = make_sphere()
        result = gradient_descent(problem)
        values = [f for _x, f in result.history]
        assert all(b <= a + 1e-15 for a, b in zip(values, values[1:]))


class TestNelderMead:
    def test_solves_rosenbrock(self):
        problem = Problem(rosenbrock, Box([(-2, 2), (-1, 3)]))
        result = nelder_mead(problem, x0=(-1.0, 1.0),
                             max_iterations=5000)
        assert result.x[0] == pytest.approx(1.0, abs=1e-3)
        assert result.x[1] == pytest.approx(1.0, abs=1e-3)

    def test_converged_flag(self):
        result = nelder_mead(make_sphere())
        assert result.converged


class TestAnnealing:
    def test_deterministic_under_seed(self):
        a = simulated_annealing(make_sphere(), seed=7, steps=500)
        b = simulated_annealing(make_sphere(), seed=7, steps=500)
        assert a.x == b.x and a.fun == b.fun

    def test_different_seeds_explore_differently(self):
        a = simulated_annealing(make_sphere(), seed=1, steps=500)
        b = simulated_annealing(make_sphere(), seed=2, steps=500)
        assert a.x != b.x

    def test_escapes_local_minimum(self):
        """Start in a side valley of 1-D Rastrigin; must reach near 0."""
        problem = Problem(rastrigin1d, Box([(-5.12, 5.12)]))
        result = simulated_annealing(problem, x0=(3.0,), seed=11,
                                     steps=20_000)
        assert result.fun < 1.0


class TestDifferentialEvolution:
    def test_global_on_rastrigin(self):
        problem = Problem(rastrigin1d, Box([(-5.12, 5.12)]))
        result = differential_evolution(problem, seed=5, generations=200)
        assert result.fun == pytest.approx(0.0, abs=1e-6)

    def test_deterministic_under_seed(self):
        a = differential_evolution(make_sphere(), seed=9, generations=30)
        b = differential_evolution(make_sphere(), seed=9, generations=30)
        assert a.x == b.x

    def test_rejects_bad_parameters(self):
        with pytest.raises(OptimizationError):
            differential_evolution(make_sphere(), f_weight=3.0)
        with pytest.raises(OptimizationError):
            differential_evolution(make_sphere(), crossover=1.5)
        with pytest.raises(OptimizationError):
            differential_evolution(make_sphere(), population=3)


class TestMultistart:
    def test_beats_single_start_on_multimodal(self):
        problem1 = Problem(rastrigin1d, Box([(-5.12, 5.12)]))
        single = nelder_mead(problem1, x0=(4.4,))
        problem2 = Problem(rastrigin1d, Box([(-5.12, 5.12)]))
        multi = multistart(problem2, nelder_mead, grid_starts=9)
        assert multi.fun <= single.fun
        assert multi.fun == pytest.approx(0.0, abs=1e-6)

    def test_explicit_starts_are_used(self):
        problem = make_sphere()
        result = multistart(problem, nelder_mead, starts=[(1.0, 2.0)])
        assert result.iterations == 1
        assert result.fun == pytest.approx(0.0, abs=1e-8)

    def test_defaults_to_center(self):
        result = multistart(make_sphere(), nelder_mead)
        assert result.iterations == 1

    def test_total_evaluations_accumulate(self):
        problem = make_sphere()
        result = multistart(problem, nelder_mead, grid_starts=3)
        assert result.evaluations == problem.evaluations


class TestCoordinateDescent:
    def test_solves_sphere(self):
        from repro.opt import coordinate_descent
        result = coordinate_descent(make_sphere())
        assert result.x[0] == pytest.approx(1.0, abs=1e-5)
        assert result.x[1] == pytest.approx(2.0, abs=1e-5)
        assert result.converged

    def test_resolves_near_flat_directions(self):
        """Comparison-based line searches find optima even where the
        slope is below derivative-method resolution."""
        from repro.opt import coordinate_descent

        def nearly_flat(x):
            return (x[0] - 3.0) ** 2 * 1e-12 + (x[1] - 1.0) ** 2

        problem = Problem(nearly_flat, Box([(0, 10), (0, 10)]))
        result = coordinate_descent(problem)
        assert result.x[0] == pytest.approx(3.0, abs=1e-3)
        assert result.x[1] == pytest.approx(1.0, abs=1e-5)

    def test_separable_function_one_sweep(self):
        from repro.opt import coordinate_descent
        problem = Problem(lambda x: abs(x[0] - 1) + abs(x[1] + 2),
                          Box([(-5, 5), (-5, 5)]))
        result = coordinate_descent(problem)
        assert result.fun == pytest.approx(0.0, abs=1e-5)

    def test_history_monotone(self):
        from repro.opt import coordinate_descent
        result = coordinate_descent(make_sphere())
        values = [f for _x, f in result.history]
        assert all(b <= a + 1e-15 for a, b in zip(values, values[1:]))

    def test_respects_max_sweeps(self):
        from repro.opt import coordinate_descent
        problem = Problem(rosenbrock, Box([(-2, 2), (-1, 3)]))
        result = coordinate_descent(problem, max_sweeps=2)
        assert result.iterations <= 2
