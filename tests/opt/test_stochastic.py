"""Stochastic programming: formulations, CVaR, VSS."""

import pytest

from repro.errors import OptimizationError
from repro.opt import (
    Box,
    ScenarioObjective,
    cvar_cost,
    expected_cost,
    optimize_stochastic,
    value_of_stochastic_solution,
    worst_case_cost,
)


@pytest.fixture
def scenarios():
    """Two environments pulling the optimum in opposite directions.

    calm:  minimum at x = 2;  storm: minimum at x = 8.
    """
    return [
        ScenarioObjective("calm", lambda x: (x[0] - 2.0) ** 2, 0.7),
        ScenarioObjective("storm", lambda x: 3.0 * (x[0] - 8.0) ** 2, 0.3),
    ]


BOX = Box([(0.0, 10.0)])


class TestEvaluations:
    def test_expected_cost_is_weighted(self, scenarios):
        # At x=2: calm 0, storm 3*36 = 108; weights 0.7/0.3.
        assert expected_cost(scenarios, (2.0,)) == pytest.approx(32.4)

    def test_weights_normalized(self):
        doubled = [
            ScenarioObjective("a", lambda x: 1.0, 2.0),
            ScenarioObjective("b", lambda x: 3.0, 6.0),
        ]
        assert expected_cost(doubled, (0.0,)) == pytest.approx(2.5)

    def test_worst_case(self, scenarios):
        assert worst_case_cost(scenarios, (2.0,)) == pytest.approx(108.0)

    def test_cvar_zero_alpha_is_expectation(self, scenarios):
        assert cvar_cost(scenarios, (2.0,), alpha=0.0) == pytest.approx(
            expected_cost(scenarios, (2.0,)))

    def test_cvar_tail_isolates_worst_scenario(self, scenarios):
        # Tail of 0.2 < storm's weight 0.3: the tail is pure storm.
        assert cvar_cost(scenarios, (2.0,), alpha=0.8) == \
            pytest.approx(108.0)

    def test_cvar_interpolates(self, scenarios):
        # Tail of 0.5: 0.3 storm + 0.2 calm at x=2 -> (0.3*108)/0.5.
        assert cvar_cost(scenarios, (2.0,), alpha=0.5) == \
            pytest.approx(0.3 * 108.0 / 0.5)

    def test_cvar_bounds(self, scenarios):
        expected = expected_cost(scenarios, (4.0,))
        worst = worst_case_cost(scenarios, (4.0,))
        for alpha in (0.1, 0.5, 0.9):
            value = cvar_cost(scenarios, (4.0,), alpha=alpha)
            assert expected - 1e-9 <= value <= worst + 1e-9


class TestOptimization:
    def test_expected_optimum_between_scenario_optima(self, scenarios):
        result = optimize_stochastic(scenarios, BOX, "expected")
        # Weighted quadratics: x* = (0.7*2 + 0.9*8) / (0.7 + 0.9) = 5.375.
        assert result.x[0] == pytest.approx(5.375, abs=1e-3)

    def test_worst_case_optimum_balances(self, scenarios):
        result = optimize_stochastic(scenarios, BOX, "worst_case")
        # At the robust optimum both parabolas are equal.
        calm = (result.x[0] - 2.0) ** 2
        storm = 3.0 * (result.x[0] - 8.0) ** 2
        assert calm == pytest.approx(storm, rel=1e-2)

    def test_cvar_moves_towards_robust(self, scenarios):
        expected = optimize_stochastic(scenarios, BOX, "expected")
        cvar = optimize_stochastic(scenarios, BOX, "cvar", alpha=0.8)
        robust = optimize_stochastic(scenarios, BOX, "worst_case")
        assert expected.x[0] < cvar.x[0] <= robust.x[0] + 0.2

    def test_unknown_formulation(self, scenarios):
        with pytest.raises(OptimizationError):
            optimize_stochastic(scenarios, BOX, "magic")


class TestVSS:
    def test_vss_nonnegative_and_positive_here(self, scenarios):
        vss, stochastic, deterministic = value_of_stochastic_solution(
            scenarios, BOX)
        assert vss >= -1e-6
        # The deterministic (calm-only) solution is clearly worse under
        # the true mixture.
        assert vss > 1.0
        assert deterministic.x[0] == pytest.approx(2.0, abs=1e-3)
        assert stochastic.x[0] == pytest.approx(5.375, abs=1e-3)


class TestGuards:
    def test_rejects_empty(self):
        with pytest.raises(OptimizationError):
            expected_cost([], (0.0,))

    def test_rejects_duplicate_names(self):
        pair = [ScenarioObjective("a", lambda x: 0.0, 1.0),
                ScenarioObjective("a", lambda x: 0.0, 1.0)]
        with pytest.raises(OptimizationError):
            expected_cost(pair, (0.0,))

    def test_rejects_negative_weight(self):
        with pytest.raises(OptimizationError):
            ScenarioObjective("a", lambda x: 0.0, -1.0)

    def test_rejects_zero_total_weight(self):
        pair = [ScenarioObjective("a", lambda x: 0.0, 0.0)]
        with pytest.raises(OptimizationError):
            expected_cost(pair, (0.0,))

    def test_rejects_bad_alpha(self, scenarios):
        with pytest.raises(OptimizationError):
            cvar_cost(scenarios, (0.0,), alpha=1.0)
