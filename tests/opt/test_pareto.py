"""Pareto machinery: dominance, filtering, weighted sweeps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OptimizationError
from repro.opt import (
    Box,
    ParetoPoint,
    pareto_filter,
    sample_front,
    weighted_sum_sweep,
)


def two_objectives(x):
    """f1 minimized at 0, f2 minimized at 1 — genuinely opposed."""
    return (x[0] ** 2, (x[0] - 1.0) ** 2)


class TestDominance:
    def test_strict_dominance(self):
        a = ParetoPoint((0,), (1.0, 1.0))
        b = ParetoPoint((1,), (2.0, 2.0))
        assert a.dominates(b)
        assert not b.dominates(a)

    def test_equal_points_do_not_dominate(self):
        a = ParetoPoint((0,), (1.0, 1.0))
        b = ParetoPoint((1,), (1.0, 1.0))
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_tradeoff_points_do_not_dominate(self):
        a = ParetoPoint((0,), (1.0, 2.0))
        b = ParetoPoint((1,), (2.0, 1.0))
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_dimension_mismatch(self):
        a = ParetoPoint((0,), (1.0,))
        b = ParetoPoint((1,), (1.0, 2.0))
        with pytest.raises(OptimizationError):
            a.dominates(b)


class TestFilter:
    def test_removes_dominated(self):
        points = [ParetoPoint((0,), (1.0, 1.0)),
                  ParetoPoint((1,), (2.0, 2.0)),
                  ParetoPoint((2,), (0.5, 3.0))]
        front = pareto_filter(points)
        assert {p.x for p in front} == {(0,), (2,)}

    def test_sorted_by_first_objective(self):
        points = [ParetoPoint((i,), (float(5 - i), float(i)))
                  for i in range(5)]
        front = pareto_filter(points)
        firsts = [p.objectives[0] for p in front]
        assert firsts == sorted(firsts)

    def test_duplicates_collapse(self):
        points = [ParetoPoint((0,), (1.0, 1.0)),
                  ParetoPoint((0,), (1.0, 1.0))]
        assert len(pareto_filter(points)) == 1

    @given(st.lists(st.tuples(st.floats(0, 10), st.floats(0, 10)),
                    min_size=1, max_size=30))
    @settings(max_examples=60)
    def test_front_is_mutually_nondominated(self, values):
        points = [ParetoPoint((i,), v) for i, v in enumerate(values)]
        front = pareto_filter(points)
        assert front
        for a in front:
            for b in front:
                if a is not b:
                    assert not a.dominates(b)


class TestSampleFront:
    def test_opposed_objectives_give_a_curve(self):
        front = sample_front(two_objectives, Box([(0, 1)]),
                             points_per_dim=21)
        assert len(front) == 21  # every grid point is non-dominated here

    def test_extremes_present(self):
        front = sample_front(two_objectives, Box([(0, 1)]),
                             points_per_dim=11)
        xs = {p.x[0] for p in front}
        assert 0.0 in xs and 1.0 in xs


class TestWeightedSweep:
    def test_weights_move_along_front(self):
        front = weighted_sum_sweep(
            two_objectives, Box([(0, 1)]),
            weights=[(1.0, 0.0), (1.0, 1.0), (0.0, 1.0)])
        xs = sorted(p.x[0] for p in front)
        # Pure f1 weight -> x ~ 0; pure f2 weight -> x ~ 1; mixed in between.
        assert xs[0] == pytest.approx(0.0, abs=1e-3)
        assert xs[-1] == pytest.approx(1.0, abs=1e-3)
        assert 0.3 < xs[1] < 0.7

    def test_objective_arity_checked(self):
        with pytest.raises(OptimizationError):
            weighted_sum_sweep(two_objectives, Box([(0, 1)]),
                               weights=[(1.0, 1.0, 1.0)])

    def test_rejects_empty_weights(self):
        with pytest.raises(OptimizationError):
            weighted_sum_sweep(two_objectives, Box([(0, 1)]), weights=[])
