"""Shared fixtures: small reference fault trees and models."""

import pytest

from repro.fta import FaultTree
from repro.fta.dsl import AND, INHIBIT, KOFN, OR, condition, hazard, primary


@pytest.fixture
def simple_or_tree() -> FaultTree:
    """H = A or B with known probabilities."""
    top = hazard("H", OR_gate=[primary("A", 0.1), primary("B", 0.2)])
    return FaultTree(top)


@pytest.fixture
def simple_and_tree() -> FaultTree:
    """H = A and B with known probabilities."""
    top = hazard("H", AND_gate=[primary("A", 0.1), primary("B", 0.2)])
    return FaultTree(top)


@pytest.fixture
def bridge_tree() -> FaultTree:
    """A tree with a shared (repeated) event across two branches.

    H = (A and C) or (B and C): the shared C makes the rare-event
    approximation and naive bottom-up gate arithmetic visibly wrong,
    exercising the BDD path.
    """
    a = primary("A", 0.3)
    b = primary("B", 0.4)
    c = primary("C", 0.5)
    top = hazard("H", OR_gate=[AND("AC", a, c), AND("BC", b, c)])
    return FaultTree(top)


@pytest.fixture
def inhibit_tree() -> FaultTree:
    """H = (A and B) inhibited by an environmental condition."""
    cond = condition("env", 0.25)
    both = AND("both", primary("A", 0.1), primary("B", 0.2))
    top = hazard("H", gate=INHIBIT("guarded", both, cond).gate)
    return FaultTree(top)


@pytest.fixture
def kofn_tree() -> FaultTree:
    """H = at least 2 of 3 redundant channels fail."""
    top = hazard("H", gate=KOFN("vote", 2,
                                primary("c1", 0.1),
                                primary("c2", 0.2),
                                primary("c3", 0.3)).gate)
    return FaultTree(top)
