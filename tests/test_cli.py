"""CLI: every subcommand runs and prints the expected artifacts."""

import json

import pytest

from repro.cli import build_parser, main
from repro.fta import tree_to_json


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_study(self, capsys):
        assert main(["study"]) == 0
        out = capsys.readouterr().out
        assert "19" in out and "15.6" in out

    def test_optimize(self, capsys):
        assert main(["optimize", "--method", "nelder_mead"]) == 0
        out = capsys.readouterr().out
        assert "optimum" in out

    def test_fig5(self, capsys):
        assert main(["fig5", "--points", "5"]) == 0
        out = capsys.readouterr().out
        assert "minimum" in out

    def test_fig6(self, capsys):
        assert main(["fig6", "--points", "5"]) == 0
        out = capsys.readouterr().out
        assert "without_LB4" in out and "with_LB4" in out

    @pytest.mark.parametrize("tree", ["fig2", "collision", "false-alarm"])
    def test_cutsets_builtin(self, capsys, tree):
        assert main(["cutsets", "--tree", tree]) == 0
        out = capsys.readouterr().out
        assert "Minimal cut sets" in out

    def test_cutsets_from_file(self, capsys, tmp_path, simple_or_tree):
        path = tmp_path / "tree.json"
        path.write_text(tree_to_json(simple_or_tree))
        assert main(["cutsets", "--file", str(path)]) == 0
        out = capsys.readouterr().out
        assert "{A}" in out and "{B}" in out

    def test_report_from_file(self, capsys, tmp_path, bridge_tree):
        path = tmp_path / "tree.json"
        path.write_text(tree_to_json(bridge_tree))
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Top minimal cut sets" in out
        assert "Importance ranking" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--days", "20", "--variant",
                     "with_LB4"]) == 0
        out = capsys.readouterr().out
        assert "P(alarm|OHV)" in out
        assert "collisions" in out


class TestErrors:
    def test_missing_file_is_reported(self, capsys):
        assert main(["report", "/nonexistent/tree.json"]) == 1
        err = capsys.readouterr().err
        assert "error" in err

    def test_invalid_json_is_reported(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["report", str(path)]) == 1
        assert "error" in capsys.readouterr().err
