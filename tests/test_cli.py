"""CLI: every subcommand runs and prints the expected artifacts."""

import json

import pytest

from repro.cli import build_parser, main
from repro.fta import tree_to_json


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_study(self, capsys):
        assert main(["study"]) == 0
        out = capsys.readouterr().out
        assert "19" in out and "15.6" in out

    def test_optimize(self, capsys):
        assert main(["optimize", "--method", "nelder_mead"]) == 0
        out = capsys.readouterr().out
        assert "optimum" in out

    def test_fig5(self, capsys):
        assert main(["fig5", "--points", "5"]) == 0
        out = capsys.readouterr().out
        assert "minimum" in out

    def test_fig6(self, capsys):
        assert main(["fig6", "--points", "5"]) == 0
        out = capsys.readouterr().out
        assert "without_LB4" in out and "with_LB4" in out

    @pytest.mark.parametrize("tree", ["fig2", "collision", "false-alarm"])
    def test_cutsets_builtin(self, capsys, tree):
        assert main(["cutsets", "--tree", tree]) == 0
        out = capsys.readouterr().out
        assert "Minimal cut sets" in out

    def test_cutsets_from_file(self, capsys, tmp_path, simple_or_tree):
        path = tmp_path / "tree.json"
        path.write_text(tree_to_json(simple_or_tree))
        assert main(["cutsets", "--file", str(path)]) == 0
        out = capsys.readouterr().out
        assert "{A}" in out and "{B}" in out

    def test_report_from_file(self, capsys, tmp_path, bridge_tree):
        path = tmp_path / "tree.json"
        path.write_text(tree_to_json(bridge_tree))
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Top minimal cut sets" in out
        assert "Importance ranking" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--days", "20", "--variant",
                     "with_LB4"]) == 0
        out = capsys.readouterr().out
        assert "P(alarm|OHV)" in out
        assert "collisions" in out

    def test_simulate_batched_replications(self, capsys):
        assert main(["simulate", "--days", "5", "--replications", "3",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "5 days x 3 replications" in out
        assert "between-run var" in out
        assert "rep 2" in out

    def test_simulate_json_payload(self, capsys):
        assert main(["simulate", "--days", "5", "--replications", "2",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["replications"] == 2
        assert len(payload["counters"]) == 2
        assert len(payload["seeds"]) == 2
        pooled = payload["pooled"]
        assert pooled["counters"]["ohvs_total"] == \
            sum(row["ohvs_total"] for row in payload["counters"])
        low, high = pooled["ci"]
        assert 0.0 <= low <= pooled["correct_ohv_alarm_fraction"] \
            <= high <= 1.0

    def test_fig6_simulation_check(self, capsys):
        assert main(["fig6", "--points", "5", "--simulate",
                     "--replications", "2", "--days", "10"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 6 simulation check" in out
        assert "measured" in out


class TestUncertainty:
    @pytest.mark.parametrize("tree", ["collision", "false-alarm",
                                      "corridor"])
    def test_uq_builtin_trees(self, capsys, tree):
        assert main(["uq", "--tree", tree, "--samples", "80"]) == 0
        out = capsys.readouterr().out
        assert "uncertainty of" in out
        assert "90% band" in out
        assert "p95" in out
        assert "distribution" in out
        assert "Exceedance curve" in out
        assert "90% credible region" in out

    def test_uq_custom_percentiles(self, capsys):
        assert main(["uq", "--samples", "50",
                     "--percentiles", "10,90"]) == 0
        out = capsys.readouterr().out
        assert "p10" in out and "p90" in out and "p95" not in out

    def test_uq_sobol(self, capsys):
        assert main(["uq", "--tree", "collision", "--samples", "80",
                     "--sobol"]) == 0
        out = capsys.readouterr().out
        assert "Sobol sensitivity" in out
        assert "S1" in out and "ST" in out

    def test_uq_from_file(self, capsys, tmp_path, bridge_tree):
        path = tmp_path / "tree.json"
        path.write_text(tree_to_json(bridge_tree))
        assert main(["uq", "--file", str(path), "--samples", "60",
                     "--sampler", "mc", "--ef", "5"]) == 0
        out = capsys.readouterr().out
        assert "uncertainty of 'H'" in out
        assert "60 mc samples" in out

    def test_uq_json_output(self, capsys):
        assert main(["uq", "--samples", "50", "--sobol",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["samples"] == 50
        assert set(payload["percentiles"]) == {"5", "50", "95"}
        assert payload["interval90"][0] <= payload["interval90"][1]
        assert "sobol" in payload and "first" in payload["sobol"]

    def test_uq_seed_determinism(self, capsys):
        assert main(["uq", "--samples", "50", "--seed", "3",
                     "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["uq", "--samples", "50", "--seed", "3",
                     "--json"]) == 0
        assert capsys.readouterr().out == first

    def test_uq_workers_match_serial(self, capsys):
        assert main(["uq", "--samples", "50", "--json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(["uq", "--samples", "50", "--workers", "2",
                     "--json"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert parallel["mean"] == serial["mean"]
        assert parallel["percentiles"] == serial["percentiles"]

    def test_uq_bad_percentiles_reported(self, capsys):
        assert main(["uq", "--percentiles", "5,abc"]) == 1
        assert "error" in capsys.readouterr().err
        assert main(["uq", "--percentiles", "5,150"]) == 1
        assert "error" in capsys.readouterr().err

    def test_report_uncertain_section(self, capsys, tmp_path,
                                      bridge_tree):
        path = tmp_path / "tree.json"
        path.write_text(tree_to_json(bridge_tree))
        assert main(["report", str(path), "--uncertain"]) == 0
        out = capsys.readouterr().out
        assert "Top minimal cut sets" in out
        assert "uncertainty of 'H'" in out
        assert "90% band" in out


class TestErrors:
    def test_missing_file_is_reported(self, capsys):
        assert main(["report", "/nonexistent/tree.json"]) == 1
        err = capsys.readouterr().err
        assert "error" in err

    def test_invalid_json_is_reported(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["report", str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestBatchJson:
    def run_batch(self, tmp_path, capsys, payload):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(payload))
        assert main(["batch", str(path), "--json"]) == 0
        return json.loads(capsys.readouterr().out)

    def test_envelope_fields(self, tmp_path, capsys):
        payload = {"jobs": [
            {"type": "quantify", "tree": "corridor", "method": "exact"},
            {"type": "montecarlo", "tree": "corridor",
             "samples": 5_000, "seed": 2}]}
        output = self.run_batch(tmp_path, capsys, payload)
        results = output["results"]
        assert [entry["id"] for entry in results] == ["job-1", "job-2"]
        assert [entry["index"] for entry in results] == [0, 1]
        for entry in results:
            assert set(entry) >= {"id", "index", "type", "job",
                                  "fingerprint", "cache_hit",
                                  "coalesced", "wall_time_s", "result"}
            assert entry["cache_hit"] is False
            assert entry["coalesced"] is False
            assert entry["wall_time_s"] >= 0.0
            assert len(entry["fingerprint"]) == 64
        assert output["stats"]["misses"] == 2

    def test_cache_hit_reported_on_repeat(self, tmp_path, capsys):
        payload = {"jobs": [
            {"type": "quantify", "tree": "corridor", "method": "exact"},
            {"type": "quantify", "tree": "corridor", "method": "exact"}]}
        results = self.run_batch(tmp_path, capsys, payload)["results"]
        assert results[0]["cache_hit"] is False
        assert results[1]["cache_hit"] is True
        assert results[0]["fingerprint"] == results[1]["fingerprint"]
        assert results[0]["result"] == results[1]["result"]


class TestBatchCacheBackends:
    PAYLOAD = {"jobs": [
        {"type": "quantify", "tree": "corridor", "method": "exact"}]}

    def run_batch(self, tmp_path, capsys, *extra):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(self.PAYLOAD))
        assert main(["batch", str(path), "--json", *extra]) == 0
        return json.loads(capsys.readouterr().out)

    def test_sqlite_cache_warms_across_runs(self, tmp_path, capsys):
        cache = str(tmp_path / "cache.db")
        cold = self.run_batch(tmp_path, capsys, "--cache", cache)
        assert cold["stats"]["backend"] == "sqlite"
        assert cold["results"][0]["cache_hit"] is False
        # A second CLI invocation is a fresh process in deployment:
        # the hit must come from the persisted sqlite store.
        warm = self.run_batch(tmp_path, capsys, "--cache", cache)
        assert warm["results"][0]["cache_hit"] is True
        assert warm["results"][0]["result"] == \
            cold["results"][0]["result"]

    def test_json_backend_picked_for_json_path(self, tmp_path, capsys):
        output = self.run_batch(tmp_path, capsys,
                                "--cache", str(tmp_path / "cache.json"))
        assert output["stats"]["backend"] == "json"

    def test_explicit_backend_overrides_suffix(self, tmp_path, capsys):
        output = self.run_batch(tmp_path, capsys,
                                "--cache", str(tmp_path / "cache.store"),
                                "--cache-backend", "sqlite")
        assert output["stats"]["backend"] == "sqlite"

    def test_write_then_warm_manifest(self, tmp_path, capsys):
        cache = str(tmp_path / "cache.db")
        manifest = tmp_path / "hot.json"
        cold = self.run_batch(tmp_path, capsys, "--cache", cache,
                              "--write-manifest", str(manifest))
        keys = json.loads(manifest.read_text())["keys"]
        assert cold["results"][0]["fingerprint"] in keys
        warm = self.run_batch(tmp_path, capsys, "--cache", cache,
                              "--warm-manifest", str(manifest))
        assert warm["results"][0]["cache_hit"] is True

    def test_fault_plan_degrades_honestly(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "version": 1, "seed": 3,
            "faults": [{"site": "cache.put", "kind": "io_error",
                        "times": 1}]}))
        cache = str(tmp_path / "cache.db")
        faulted = self.run_batch(tmp_path, capsys, "--cache", cache,
                                 "--fault-plan", str(plan))
        clean = self.run_batch(tmp_path, capsys, "--cache", cache)
        # The injected write failure changed nothing but the stats:
        # the put retried and the next run still hits the cache.
        assert clean["results"][0]["cache_hit"] is True
        assert clean["results"][0]["result"] == \
            faulted["results"][0]["result"]

    def test_malformed_fault_plan_is_reported(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text("{\"version\": 99}")
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(self.PAYLOAD))
        assert main(["batch", str(path), "--json",
                     "--fault-plan", str(plan)]) == 1
        assert "error" in capsys.readouterr().err

    def test_ttl_flag_rejected_for_json_backend(self, tmp_path, capsys):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(self.PAYLOAD))
        assert main(["batch", str(path), "--json",
                     "--cache", str(tmp_path / "cache.json"),
                     "--cache-ttl", "60"]) == 1
        assert "error" in capsys.readouterr().err


class TestWhatif:
    EDITS = [{"op": "set_rate", "event": "Signal not shown",
              "probability": 2e-4},
             {"op": "set_rate", "event": "Signal not shown",
              "probability": 1e-4}]

    def write_edits(self, tmp_path, payload=None):
        path = tmp_path / "edits.json"
        path.write_text(json.dumps(self.EDITS if payload is None
                                   else payload))
        return str(path)

    def test_text_output(self, tmp_path, capsys):
        assert main(["whatif", self.write_edits(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "baseline P =" in out
        assert "[1] set_rate Signal not shown=0.0002" in out
        assert "dirty:" in out and "stats:" in out

    def test_json_stream(self, tmp_path, capsys):
        assert main(["whatif", self.write_edits(tmp_path),
                     "--json"]) == 0
        events = [json.loads(line) for line in
                  capsys.readouterr().out.splitlines()]
        assert [e["event"] for e in events] == \
            ["baseline", "edit", "edit", "done"]
        assert events[0]["tree"] == "Corridor collision"
        # The second edit restores the default rate bit-exactly.
        assert events[2]["value"] == events[0]["value"]
        assert events[-1]["stats"]["requantifications"] == 3

    def test_edits_from_stdin(self, capsys, monkeypatch):
        import io
        monkeypatch.setattr("sys.stdin", io.StringIO(
            json.dumps({"edits": self.EDITS[:1]})))
        assert main(["whatif", "-", "--json"]) == 0
        events = [json.loads(line) for line in
                  capsys.readouterr().out.splitlines()]
        assert [e["event"] for e in events] == \
            ["baseline", "edit", "done"]

    def test_tree_from_file(self, tmp_path, capsys, simple_or_tree):
        tree_path = tmp_path / "tree.json"
        tree_path.write_text(tree_to_json(simple_or_tree))
        edits = self.write_edits(tmp_path, [
            {"op": "set_rate", "event": "A", "probability": 0.5}])
        assert main(["whatif", edits, "--file", str(tree_path),
                     "--json"]) == 0
        events = [json.loads(line) for line in
                  capsys.readouterr().out.splitlines()]
        assert events[1]["value"] != events[0]["value"]

    def test_cache_warms_across_runs(self, tmp_path, capsys):
        edits = self.write_edits(tmp_path)
        cache = str(tmp_path / "whatif.db")
        assert main(["whatif", edits, "--cache", cache,
                     "--cache-backend", "sqlite", "--json"]) == 0
        capsys.readouterr()
        assert main(["whatif", edits, "--cache", cache,
                     "--cache-backend", "sqlite", "--json"]) == 0
        events = [json.loads(line) for line in
                  capsys.readouterr().out.splitlines()]
        assert events[-1]["stats"]["module_compiles"] == 0

    def test_sift_threshold_flag(self, tmp_path, capsys):
        edits = self.write_edits(tmp_path, [])
        assert main(["whatif", edits, "--sift-threshold", "8",
                     "--json"]) == 0
        events = [json.loads(line) for line in
                  capsys.readouterr().out.splitlines()]
        assert events[-1]["stats"]["sift_passes"] >= 1

    def test_bad_edits_file_reported(self, tmp_path, capsys):
        path = tmp_path / "edits.json"
        path.write_text("{not json")
        assert main(["whatif", str(path)]) == 1
        assert "error" in capsys.readouterr().err

    def test_non_list_edits_reported(self, tmp_path, capsys):
        assert main(["whatif",
                     self.write_edits(tmp_path, {"edits": 42})]) == 1
        assert "error" in capsys.readouterr().err


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.workers == 1
        assert args.cache is None
        assert args.cache_backend == "auto"
        assert args.cache_ttl is None
        assert args.cache_max_bytes is None
        assert args.warm_manifest is None
        assert args.max_concurrency == 8
        assert args.queue_limit == 32
        assert args.timeout == 60.0

    def test_parser_overrides(self):
        args = build_parser().parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "9000",
             "--workers", "2", "--cache", "/tmp/c.db",
             "--cache-backend", "sqlite", "--cache-capacity", "128",
             "--cache-ttl", "3600", "--cache-max-bytes", "1000000",
             "--warm-manifest", "/tmp/hot.json",
             "--max-concurrency", "4",
             "--queue-limit", "16", "--timeout", "5"])
        assert args.host == "0.0.0.0" and args.port == 9000
        assert args.workers == 2 and args.cache == "/tmp/c.db"
        assert args.cache_backend == "sqlite"
        assert args.cache_capacity == 128
        assert args.cache_ttl == 3600.0
        assert args.cache_max_bytes == 1_000_000
        assert args.warm_manifest == "/tmp/hot.json"
        assert args.max_concurrency == 4 and args.queue_limit == 16
        assert args.timeout == 5.0

    def test_bad_config_is_reported(self, capsys):
        assert main(["serve", "--max-concurrency", "0"]) == 1
        assert "error" in capsys.readouterr().err
