"""IncrementalJob through the engine and the spec layer."""

import pytest

from repro.engine import Engine, IncrementalJob, job_from_spec
from repro.errors import EngineError, IncrementalError
from repro.fta import FaultTree, modular_probability
from repro.fta.dsl import AND, hazard, primary
from repro.incremental import IncrementalSession


def wide_tree(blocks=4):
    parts = [AND(f"block{i}",
                 primary(f"a{i}", 0.01), primary(f"b{i}", 0.02))
             for i in range(blocks)]
    return FaultTree(hazard("H", OR_gate=parts))


EDIT = {"op": "set_rate", "event": "a1", "probability": 0.2}


class TestIncrementalJob:
    def test_baseline_matches_session(self):
        tree = wide_tree()
        result = IncrementalJob(tree).run_serial()
        assert result["baseline"] == IncrementalSession(tree).quantify()
        assert result["final"] == result["baseline"]
        assert result["steps"] == []
        assert result["modules"] == [f"block{i}" for i in range(4)]
        assert result["tree"] == "H"

    def test_edits_replay_in_order(self):
        tree = wide_tree()
        second = {"op": "set_rate", "event": "a2", "probability": 0.3}
        result = IncrementalJob(tree, edits=[EDIT, second]).run_serial()
        assert len(result["steps"]) == 2
        assert result["steps"][0]["dirty"] == ["block1", "H"]
        assert result["steps"][1]["dirty"] == ["block2", "H"]
        assert result["final"] == modular_probability(
            tree, {"a1": 0.2, "a2": 0.3}, method="exact")
        assert result["final"] == result["steps"][-1]["value"]

    def test_fingerprint_covers_edits_and_sifting(self):
        tree = wide_tree()
        base = IncrementalJob(tree).fingerprint()
        assert IncrementalJob(tree, edits=[EDIT]).fingerprint() != base
        assert IncrementalJob(tree,
                              sift_threshold=64).fingerprint() != base
        assert IncrementalJob(tree).fingerprint() == base

    def test_rejects_bad_inputs(self):
        tree = wide_tree()
        with pytest.raises(EngineError):
            IncrementalJob("nope")
        with pytest.raises(IncrementalError):
            IncrementalJob(tree, edits=[{"op": "frobnicate"}])
        with pytest.raises(EngineError):
            IncrementalJob(tree, sift_threshold=0)
        with pytest.raises(EngineError):
            IncrementalJob(tree, sift_threshold="big")

    def test_describe(self):
        text = IncrementalJob(wide_tree(), edits=[EDIT]).describe()
        assert text == "incremental 'H' (1 edits)"


class TestEngineIntegration:
    def test_engine_caches_and_counts(self):
        engine = Engine()
        tree = wide_tree()
        job = IncrementalJob(tree, edits=[EDIT])
        first = engine.run(job)
        assert engine.run(IncrementalJob(tree, edits=[EDIT])) == first
        stats = engine.stats()
        assert stats.cache["hits"] == 1
        assert stats.incremental["sessions"] == 1
        assert stats.incremental["module_compiles"] > 0

    def test_module_artifacts_shared_across_jobs(self):
        engine = Engine()
        tree = wide_tree()
        engine.run(IncrementalJob(tree))
        # A different edit list misses the result cache but reuses
        # every per-module tape through the same backend.
        engine.run(IncrementalJob(tree, edits=[EDIT]))
        stats = engine.stats().incremental
        assert stats["sessions"] == 2
        assert stats["value_hits"] > 0


class TestSpec:
    def test_spec_round_trip(self):
        spec = {"type": "incremental", "tree": "corridor",
                "edits": [{"op": "set_rate",
                           "event": "Signal not shown",
                           "probability": 2e-4}],
                "sift_threshold": 4096}
        job = job_from_spec(spec)
        assert isinstance(job, IncrementalJob)
        result = job.run_serial()
        assert result["steps"][0]["value"] != result["baseline"]

    def test_spec_rejects_bad_fields(self):
        with pytest.raises(EngineError):
            job_from_spec({"type": "incremental", "tree": "corridor",
                           "sift_threshold": "soon"})
        with pytest.raises(IncrementalError):
            job_from_spec({"type": "incremental", "tree": "corridor",
                           "edits": [{"op": "explode"}]})
