"""IncrementalSession: decomposition, caching, dirty tracking, sifting."""

import pytest

from repro.engine.cache import ResultCache, create_cache
from repro.errors import IncrementalError
from repro.fta import hazard_probability, modular_probability
from repro.fta.dsl import AND, hazard, house, primary
from repro.fta.tree import FaultTree
from repro.incremental import IncrementalSession, IncrementalStats


def wide_tree(blocks=5):
    """One independent AND module per block under the top OR."""
    parts = [AND(f"block{i}",
                 primary(f"a{i}", 0.01), primary(f"b{i}", 0.02))
             for i in range(blocks)]
    return FaultTree(hazard("H", OR_gate=parts))


def shared_leaf_tree():
    """A shared leaf across branches: no modules, monolithic spine."""
    power = primary("power", 0.01)
    left = AND("left", power, primary("a", 0.1))
    right = AND("right", power, primary("b", 0.2))
    return FaultTree(hazard("H", OR_gate=[left, right]))


class TestQuantify:
    def test_bit_identical_to_modular_exact(self):
        tree = wide_tree()
        session = IncrementalSession(tree)
        assert session.quantify() == \
            modular_probability(tree, method="exact")
        assert session.modules == [f"block{i}" for i in range(5)]

    def test_no_modules_is_bit_identical_to_monolithic(self):
        tree = shared_leaf_tree()
        session = IncrementalSession(tree)
        assert session.modules == []
        assert session.quantify() == \
            hazard_probability(tree, method="exact")

    def test_overrides_respected(self):
        tree = wide_tree()
        session = IncrementalSession(tree, {"a0": 0.5})
        assert session.quantify() == \
            modular_probability(tree, {"a0": 0.5}, method="exact")
        assert session.overrides == {"a0": 0.5}

    def test_requires_fault_tree_and_valid_threshold(self):
        with pytest.raises(IncrementalError):
            IncrementalSession("not-a-tree")
        with pytest.raises(IncrementalError):
            IncrementalSession(wide_tree(), sift_threshold=0)

    def test_repeat_quantify_is_memoized(self):
        session = IncrementalSession(wide_tree())
        first = session.quantify()
        compiles = session.stats.as_dict()["module_compiles"]
        assert session.quantify() == first
        assert session.stats.as_dict()["module_compiles"] == compiles


class TestDirtyTracking:
    def test_rate_edit_recomputes_only_owner_module(self):
        session = IncrementalSession(wide_tree())
        session.quantify()
        report = session.apply([{"op": "set_rate", "event": "a2",
                                 "probability": 0.05}])
        assert report.dirty == ("block2", "H")
        assert set(report.clean) == {"block0", "block1", "block3",
                                     "block4"}
        assert not report.structural
        assert report.value == modular_probability(
            wide_tree(), {"a2": 0.05}, method="exact")

    def test_gate_edit_keeps_other_modules_clean(self):
        session = IncrementalSession(wide_tree())
        session.quantify()
        report = session.apply([{"op": "set_gate", "event": "block1",
                                 "type": "or"}])
        assert report.structural
        assert report.dirty == ("block1", "H")
        cold = IncrementalSession(session.tree).quantify()
        assert report.value == cold

    def test_house_edit_flows_through(self):
        parts = [AND("m0", primary("a", 0.1), primary("b", 0.2)),
                 house("override", False)]
        tree = FaultTree(hazard("H", OR_gate=parts))
        session = IncrementalSession(tree)
        assert session.quantify() < 1.0
        report = session.apply([{"op": "set_house", "event": "override",
                                 "state": True}])
        assert report.value == 1.0

    def test_edit_then_requantify_equals_cold(self):
        session = IncrementalSession(wide_tree())
        session.quantify()
        session.apply([{"op": "set_rate", "event": "b4",
                        "probability": 0.3}])
        report = session.apply([{"op": "set_gate", "event": "block0",
                                 "type": "or"}])
        cold = IncrementalSession(session.tree,
                                  session.overrides).quantify()
        assert report.value == cold

    def test_report_is_json_safe(self):
        import json
        session = IncrementalSession(wide_tree())
        report = session.apply([{"op": "set_rate", "event": "a0",
                                 "probability": 0.2}])
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["value"] == report.value
        assert payload["dirty"] == list(report.dirty)


class TestCachePersistence:
    def test_second_session_serves_values_from_cache(self):
        cache = ResultCache(capacity=128)
        tree = wide_tree()
        first = IncrementalSession(tree, cache=cache)
        value = first.quantify()
        second = IncrementalSession(tree, cache=cache)
        assert second.quantify() == value
        stats = second.stats.as_dict()
        assert stats["module_compiles"] == 0
        assert stats["value_misses"] == 0
        assert stats["value_hits"] == 6    # 5 modules + spine

    def test_tapes_survive_for_fresh_values(self):
        cache = ResultCache(capacity=128)
        tree = wide_tree()
        IncrementalSession(tree, cache=cache).quantify()
        second = IncrementalSession(tree, {"a0": 0.9}, cache=cache)
        second.quantify()
        stats = second.stats.as_dict()
        # block0's value changed, so its tape is fetched (not rebuilt)
        # and re-evaluated; the other values hit outright.
        assert stats["module_compiles"] == 0
        assert stats["tape_hits"] == 2     # block0 + spine
        assert stats["value_hits"] == 4

    def test_sqlite_backend_round_trip(self, tmp_path):
        path = str(tmp_path / "incr.db")
        tree = wide_tree()
        cache = create_cache(backend="sqlite", path=path)
        baseline = IncrementalSession(tree, cache=cache).quantify()
        cache.save()
        cache.close()
        warm = create_cache(backend="sqlite", path=path)
        session = IncrementalSession(tree, cache=warm)
        assert session.quantify() == baseline
        assert session.stats.as_dict()["module_compiles"] == 0
        warm.close()

    def test_corrupt_tape_payload_recompiles(self):
        cache = ResultCache(capacity=128)
        tree = shared_leaf_tree()
        session = IncrementalSession(tree, cache=cache)
        baseline = session.quantify()
        for key in list(cache.hot_keys()):
            if key.startswith("incr-tape|"):
                cache.put(key, {"garbage": True})
            if key.startswith("incr-val|"):
                cache.put(key, "not-a-float")
        again = IncrementalSession(tree, cache=cache)
        assert again.quantify() == baseline
        assert again.stats.as_dict()["module_compiles"] == 1


class TestSifting:
    def adversarial(self, n=8):
        xs = [primary(f"x{i}", 0.01) for i in range(n)]
        ys = [primary(f"y{i}", 0.02) for i in range(n)]
        probe = AND("probe", *xs)
        pairs = [AND(f"pair{i}", xs[i], ys[i]) for i in range(n)]
        return FaultTree(hazard("H", OR_gate=[probe] + pairs))

    def test_threshold_triggers_sifting(self):
        tree = self.adversarial()
        plain = IncrementalSession(tree)
        sifted = IncrementalSession(tree, sift_threshold=32)
        stats = sifted.stats.as_dict()
        assert stats["sift_passes"] == 0   # nothing compiled yet
        value = sifted.quantify()
        stats = sifted.stats.as_dict()
        assert stats["sift_passes"] >= 1
        assert stats["sift_nodes_after"] < stats["sift_nodes_before"]
        assert value == pytest.approx(plain.quantify(), rel=1e-12)

    def test_sift_setting_partitions_the_cache(self):
        cache = ResultCache(capacity=128)
        tree = self.adversarial()
        IncrementalSession(tree, cache=cache).quantify()
        sifted = IncrementalSession(tree, cache=cache, sift_threshold=32)
        sifted.quantify()
        # Different arithmetic => different keys => no cross-hits.
        assert sifted.stats.as_dict()["tape_hits"] == 0
        assert sifted.stats.as_dict()["value_hits"] == 0

    def test_below_threshold_does_not_sift(self):
        session = IncrementalSession(wide_tree(),
                                     sift_threshold=10_000)
        session.quantify()
        assert session.stats.as_dict()["sift_passes"] == 0


class TestStats:
    def test_shared_stats_aggregate(self):
        stats = IncrementalStats()
        IncrementalSession(wide_tree(), stats=stats).quantify()
        IncrementalSession(wide_tree(), stats=stats).quantify()
        snapshot = stats.as_dict()
        assert snapshot["sessions"] == 2
        assert snapshot["requantifications"] == 2

    def test_describe(self):
        session = IncrementalSession(wide_tree(), sift_threshold=64)
        info = session.describe()
        assert info["tree"] == "H"
        assert info["units"] == 6
        assert info["sift_threshold"] == 64
        assert info["cached"] is False
