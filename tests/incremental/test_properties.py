"""Property tests: incremental paths agree with the monolithic one.

Random fault trees exercising shared events across gate boundaries,
KOFN, INHIBIT, XOR/NOT gates, and house events.  The invariants:

* ``IncrementalSession.quantify`` is bit-identical to
  ``modular_probability(..., method="exact")`` — same decomposition,
  same compiled arithmetic.
* When no modules are selected, both collapse to the monolithic exact
  path and are bit-identical to ``hazard_probability``.
* When modules are selected, modular composition reassociates the
  arithmetic, so agreement with the monolithic value is to 1e-12.
* Editing a session and re-quantifying is bit-identical to quantifying
  the edited tree in a cold session.
"""

import random

import pytest

from repro.fta import hazard_probability, modular_probability
from repro.fta.dsl import (
    AND,
    INHIBIT,
    KOFN,
    NOT,
    OR,
    XOR,
    condition,
    hazard,
    house,
    primary,
)
from repro.fta.modules import select_modules
from repro.fta.tree import FaultTree
from repro.incremental import IncrementalSession

SEEDS = list(range(30))


def random_tree(seed):
    """A random well-formed fault tree with every gate kind."""
    rng = random.Random(seed)
    counter = [0]

    def fresh(prefix):
        counter[0] += 1
        return f"{prefix}{counter[0]}"

    leaf_pool = [primary(fresh("e"), round(rng.uniform(0.01, 0.3), 3))
                 for _ in range(rng.randint(3, 6))]

    def leaf():
        # Reuse pooled leaves often enough that gates share events.
        if rng.random() < 0.6:
            return rng.choice(leaf_pool)
        if rng.random() < 0.15:
            return house(fresh("h"), rng.random() < 0.5)
        return primary(fresh("e"), round(rng.uniform(0.01, 0.3), 3))

    def gate(depth):
        if depth <= 0 or rng.random() < 0.3:
            return leaf()
        kind = rng.choice(["and", "or", "kofn", "xor", "not", "inhibit"])
        name = fresh("g")
        if kind == "not":
            return NOT(name, gate(depth - 1))
        if kind == "inhibit":
            return INHIBIT(name, gate(depth - 1),
                           condition(fresh("c"),
                                     round(rng.uniform(0.1, 0.9), 3)))
        fan = rng.randint(2, 4)
        inputs = [gate(depth - 1) for _ in range(fan)]
        if kind == "and":
            return AND(name, *inputs)
        if kind == "or":
            return OR(name, *inputs)
        if kind == "xor":
            return XOR(name, *inputs)
        return KOFN(name, rng.randint(1, fan), *inputs)

    top_inputs = [gate(rng.randint(1, 3)) for _ in range(rng.randint(2, 4))]
    return FaultTree(hazard("TOP", OR_gate=top_inputs))


@pytest.mark.parametrize("seed", SEEDS)
def test_incremental_matches_modular_bitwise(seed):
    tree = random_tree(seed)
    assert IncrementalSession(tree).quantify() == \
        modular_probability(tree, method="exact")


@pytest.mark.parametrize("seed", SEEDS)
def test_agreement_with_monolithic(seed):
    tree = random_tree(seed)
    monolithic = hazard_probability(tree, method="exact")
    incremental = IncrementalSession(tree).quantify()
    if not select_modules(tree):
        # No decomposition: literally the same arithmetic.
        assert incremental == monolithic
    else:
        # Module folding reassociates the products.
        assert incremental == pytest.approx(monolithic, rel=1e-12)


@pytest.mark.parametrize("seed", SEEDS[:15])
def test_edit_then_requantify_equals_cold_quantify(seed):
    tree = random_tree(seed)
    session = IncrementalSession(tree)
    session.quantify()
    rng = random.Random(seed + 1000)

    leaves = sorted(e.name for e in tree.primary_failures) + \
        sorted(c.name for c in tree.conditions)
    houses = sorted(h.name for h in tree.house_events)
    gates = sorted(
        e.name for e in tree.intermediate_events
        if e.gate.gate_type.value in ("and", "or")
        and e.name != tree.top.name)

    edits = [{"op": "set_rate", "event": rng.choice(leaves),
              "probability": round(rng.uniform(0.01, 0.5), 3)}]
    if houses:
        edits.append({"op": "set_house", "event": rng.choice(houses),
                      "state": rng.random() < 0.5})
    if gates:
        name = rng.choice(gates)
        flipped = ("or" if tree.event(name).gate.gate_type.value == "and"
                   else "and")
        edits.append({"op": "set_gate", "event": name, "type": flipped})

    report = session.apply(edits)
    cold = IncrementalSession(session.tree, session.overrides).quantify()
    assert report.value == cold
    # The warm value is also bit-identical to the modular path on the
    # edited tree with the same overrides.
    assert report.value == modular_probability(
        session.tree, session.overrides, method="exact")


@pytest.mark.parametrize("seed", SEEDS[:10])
def test_warm_cache_is_bitwise_stable(seed):
    from repro.engine.cache import ResultCache
    cache = ResultCache(capacity=256)
    tree = random_tree(seed)
    cold = IncrementalSession(tree, cache=cache).quantify()
    warm = IncrementalSession(tree, cache=cache)
    assert warm.quantify() == cold
    assert warm.stats.as_dict()["module_compiles"] == 0
