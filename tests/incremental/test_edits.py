"""Edit-operation validation and application."""

import pytest

from repro.errors import IncrementalError
from repro.fta.dsl import AND, INHIBIT, condition, hazard, house, primary
from repro.fta.quantify import hazard_probability
from repro.fta.tree import FaultTree
from repro.incremental import (
    EDIT_OPS,
    apply_edits,
    is_structural,
    validate_edit,
    validate_edits,
)


@pytest.fixture
def tree():
    motor = AND("motor", primary("m1", 0.1), primary("m2", 0.2))
    guarded = INHIBIT("guarded", primary("cause", 0.3),
                      condition("armed", 0.5))
    return FaultTree(hazard("H", OR_gate=[motor, guarded,
                                          house("maint", False)]))


class TestValidation:
    def test_ops_are_closed(self):
        assert set(EDIT_OPS) == {"set_rate", "set_house", "set_gate"}

    def test_set_rate_normalizes(self):
        edit = validate_edit({"op": "set_rate", "event": "m1",
                              "probability": "0.25"})
        assert edit == {"op": "set_rate", "event": "m1",
                        "probability": 0.25}

    @pytest.mark.parametrize("bad", [
        "not-a-dict",
        {"op": "frobnicate", "event": "m1"},
        {"op": "set_rate", "event": "m1"},
        {"op": "set_rate", "event": "", "probability": 0.1},
        {"op": "set_rate", "event": "m1", "probability": 1.5},
        {"op": "set_rate", "event": "m1", "probability": "nope"},
        {"op": "set_house", "event": "maint", "state": "yes"},
        {"op": "set_gate", "event": "motor", "type": "nand"},
        {"op": "set_gate", "event": "motor", "type": "kofn", "k": 0},
        {"op": "set_gate", "event": "motor", "type": "kofn", "k": True},
    ])
    def test_invalid_edits_rejected(self, bad):
        with pytest.raises(IncrementalError):
            validate_edit(bad)

    def test_edits_must_be_a_list(self):
        with pytest.raises(IncrementalError):
            validate_edits({"op": "set_rate"})

    def test_structural_classification(self):
        assert not is_structural({"op": "set_rate"})
        assert is_structural({"op": "set_house"})
        assert is_structural({"op": "set_gate"})


class TestApplyEdits:
    def test_rate_edit_only_touches_overrides(self, tree):
        new_tree, overrides, structural = apply_edits(
            tree, {}, [{"op": "set_rate", "event": "m1",
                        "probability": 0.4}])
        assert new_tree is tree
        assert overrides == {"m1": 0.4}
        assert not structural

    def test_rate_edit_rejects_unknown_and_non_leaf(self, tree):
        with pytest.raises(IncrementalError):
            apply_edits(tree, {}, [{"op": "set_rate", "event": "ghost",
                                    "probability": 0.1}])
        with pytest.raises(IncrementalError):
            apply_edits(tree, {}, [{"op": "set_rate", "event": "motor",
                                    "probability": 0.1}])

    def test_house_edit_rebuilds(self, tree):
        new_tree, _, structural = apply_edits(
            tree, {}, [{"op": "set_house", "event": "maint",
                        "state": True}])
        assert structural
        assert new_tree is not tree
        assert hazard_probability(new_tree, method="exact") == 1.0

    def test_house_edit_requires_house_event(self, tree):
        with pytest.raises(IncrementalError):
            apply_edits(tree, {}, [{"op": "set_house", "event": "m1",
                                    "state": True}])

    def test_gate_edit_changes_probability(self, tree):
        new_tree, _, structural = apply_edits(
            tree, {}, [{"op": "set_gate", "event": "motor",
                        "type": "or"}])
        assert structural
        # motor: AND(0.1, 0.2)=0.02 becomes OR = 0.28.
        before = hazard_probability(tree, method="exact")
        after = hazard_probability(new_tree, method="exact")
        assert after > before

    def test_gate_edit_to_kofn_requires_k(self, tree):
        with pytest.raises(IncrementalError):
            apply_edits(tree, {}, [{"op": "set_gate", "event": "motor",
                                    "type": "kofn"}])
        new_tree, _, _ = apply_edits(
            tree, {}, [{"op": "set_gate", "event": "motor",
                        "type": "kofn", "k": 2}])
        assert hazard_probability(new_tree, method="exact") == \
            hazard_probability(tree, method="exact")

    def test_gate_edit_away_from_inhibit_drops_condition(self, tree):
        new_tree, _, _ = apply_edits(
            tree, {}, [{"op": "set_gate", "event": "guarded",
                        "type": "or"}])
        guarded = new_tree.event("guarded")
        assert guarded.gate.condition is None

    def test_gate_edit_on_leaf_rejected(self, tree):
        with pytest.raises(IncrementalError):
            apply_edits(tree, {}, [{"op": "set_gate", "event": "m1",
                                    "type": "or"}])

    def test_multiple_edits_one_rebuild(self, tree):
        new_tree, overrides, structural = apply_edits(
            tree, {"m2": 0.25},
            [{"op": "set_gate", "event": "motor", "type": "or"},
             {"op": "set_house", "event": "maint", "state": True},
             {"op": "set_rate", "event": "m1", "probability": 0.5}])
        assert structural
        assert overrides == {"m1": 0.5, "m2": 0.25}
        assert new_tree.event("maint").state is True
        assert new_tree.event("motor").gate.gate_type.value == "or"

    def test_inputs_not_mutated(self, tree):
        overrides = {"m1": 0.11}
        apply_edits(tree, overrides,
                    [{"op": "set_rate", "event": "m1",
                      "probability": 0.9},
                     {"op": "set_house", "event": "maint",
                      "state": True}])
        assert overrides == {"m1": 0.11}
        assert tree.event("maint").state is False
