"""Propagation: bit-identity to references, summary statistics."""

import math

import pytest

from repro.errors import UQError
from repro.fta.quantify import hazard_probability
from repro.stats import Uniform
from repro.uq import (
    PropagationResult,
    UncertainModel,
    from_error_factors,
    percentile,
    propagate,
    propagation_matrix,
    reference_propagate,
)


@pytest.fixture
def model(bridge_tree):
    return from_error_factors(bridge_tree, 3.0)


class TestPercentile:
    def test_interpolates_linearly(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 4.0
        assert percentile(values, 50.0) == 2.5
        assert percentile([7.0], 30.0) == 7.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(UQError):
            percentile([1.0], 101.0)
        with pytest.raises(UQError):
            percentile([], 50.0)


class TestPropagate:
    def test_bit_identical_to_scalar_reference(self, bridge_tree, model):
        for sampler in ("mc", "lhs"):
            fast = propagate(bridge_tree, model, n_samples=200, seed=3,
                             sampler=sampler)
            slow = reference_propagate(bridge_tree, model, n_samples=200,
                                       seed=3, sampler=sampler)
            assert fast == slow           # dataclass equality: all fields
            assert fast.samples == slow.samples

    def test_bit_identical_to_interpreted_walk(self, bridge_tree, model):
        """Each sample equals the interpreted quantification of its row."""
        from repro.compile import compile_tree
        result = propagate(bridge_tree, model, n_samples=25, seed=8)
        matrix = propagation_matrix(bridge_tree, model, 25, seed=8)
        leaf_names = compile_tree(bridge_tree, "exact").leaf_names
        for i, row in enumerate(matrix):
            point = {name: float(v) for name, v in zip(leaf_names, row)}
            assert hazard_probability(bridge_tree, point,
                                      method="exact") == \
                result.samples[i]

    def test_deterministic_per_seed(self, bridge_tree, model):
        a = propagate(bridge_tree, model, n_samples=100, seed=1)
        b = propagate(bridge_tree, model, n_samples=100, seed=1)
        c = propagate(bridge_tree, model, n_samples=100, seed=2)
        assert a.samples == b.samples
        assert a.samples != c.samples

    def test_cut_set_method(self, bridge_tree, model):
        result = propagate(bridge_tree, model, n_samples=50, seed=1,
                           method="rare_event")
        assert result.method == "rare_event"
        assert all(0.0 <= v <= 1.0 for v in result.samples)

    def test_uncompilable_method_rejected(self, bridge_tree, model):
        with pytest.raises(UQError, match="compilable"):
            propagate(bridge_tree, model, n_samples=10,
                      method="inclusion_exclusion")

    def test_point_mass_like_model_recovers_point_value(self, bridge_tree):
        tight = UncertainModel({"A": Uniform(0.3, 0.3 + 1e-15)})
        result = propagate(bridge_tree, tight, n_samples=20, seed=0)
        point = hazard_probability(bridge_tree, None, method="exact")
        assert result.mean == pytest.approx(point, rel=1e-9)


class TestPropagationResult:
    @pytest.fixture
    def result(self, bridge_tree, model):
        return propagate(bridge_tree, model, n_samples=400, seed=5)

    def test_summary_statistics_match_numpy(self, result):
        import numpy as np
        samples = np.array(result.samples)
        assert result.mean == pytest.approx(samples.mean(), rel=1e-12)
        assert result.std == pytest.approx(samples.std(ddof=1),
                                           rel=1e-12)
        assert result.percentile(50.0) == pytest.approx(
            float(np.percentile(samples, 50.0)), rel=1e-12)

    def test_interval_is_central(self, result):
        lo, hi = result.interval(0.90)
        assert lo == pytest.approx(result.percentile(5.0), rel=1e-9)
        assert hi == pytest.approx(result.percentile(95.0), rel=1e-9)
        assert lo < result.percentile(50.0) < hi
        with pytest.raises(UQError):
            result.interval(1.5)

    def test_exceedance(self, result):
        median = result.percentile(50.0)
        assert result.exceedance(median) == pytest.approx(0.5, abs=0.05)
        assert result.exceedance(-1.0) == 1.0
        assert result.exceedance(2.0) == 0.0
        curve = result.exceedance_curve()
        assert len(curve) == 21
        probs = [p for _t, p in curve]
        assert probs == sorted(probs, reverse=True)
        assert result.exceedance_curve([0.0]) == [(0.0, 1.0)]

    def test_summary_text(self, result):
        text = result.summary()
        assert "mean" in text and "90% band" in text and "lhs" in text

    def test_json_round_trip(self, result):
        import json
        encoded = json.loads(json.dumps(result.encode()))
        decoded = PropagationResult.decode(encoded)
        assert decoded == result

    def test_degenerate_result_edges(self):
        single = PropagationResult(name="x", samples=(0.5,), seed=0,
                                   sampler="mc", method="exact")
        assert single.std == 0.0
        assert single.percentile(10.0) == 0.5
        assert single.exceedance_curve() == [(0.5, 0.0)]
        assert not math.isnan(single.mean)
