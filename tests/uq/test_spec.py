"""UncertainModel: immutability, hashing, canonical fingerprints."""

import math

import pytest

from repro.errors import UQError
from repro.fta import FaultTree
from repro.fta.dsl import OR, hazard, primary
from repro.stats import Beta, LogNormal, Normal, PointMass, Uniform
from repro.uq import (
    UncertainModel,
    distribution_fingerprint,
    from_error_factors,
    lognormal_error_factor,
)


@pytest.fixture
def model() -> UncertainModel:
    return UncertainModel({"A": LogNormal(-5.0, 0.5),
                           "B": Beta(2.0, 50.0)}, name="demo")


class TestUncertainModel:
    def test_mapping_interface(self, model):
        assert len(model) == 2
        assert set(model) == {"A", "B"}
        assert model["A"] == LogNormal(-5.0, 0.5)
        assert "A" in model and "C" not in model
        assert model.events == ("A", "B")

    def test_canonical_order(self):
        forward = UncertainModel({"A": Uniform(0.0, 0.1),
                                  "B": Uniform(0.0, 0.2)})
        backward = UncertainModel({"B": Uniform(0.0, 0.2),
                                   "A": Uniform(0.0, 0.1)})
        assert forward.fingerprint == backward.fingerprint
        assert forward == backward
        assert hash(forward) == hash(backward)

    def test_fingerprint_sensitivity(self, model):
        renamed = UncertainModel({"A2": LogNormal(-5.0, 0.5),
                                  "B": Beta(2.0, 50.0)})
        reparam = UncertainModel({"A": LogNormal(-5.0, 0.6),
                                  "B": Beta(2.0, 50.0)})
        retyped = UncertainModel({"A": Normal(-5.0, 0.5),
                                  "B": Beta(2.0, 50.0)})
        fingerprints = {model.fingerprint, renamed.fingerprint,
                        reparam.fingerprint, retyped.fingerprint}
        assert len(fingerprints) == 4

    def test_name_is_display_metadata(self, model):
        other = UncertainModel(dict(model), name="other display name")
        assert other == model

    def test_usable_as_dict_key(self, model):
        assert {model: 1}[UncertainModel(dict(model))] == 1

    def test_updated_and_restricted(self, model):
        grown = model.updated({"C": PointMass(0.5)})
        assert set(grown) == {"A", "B", "C"}
        assert set(model) == {"A", "B"}          # original untouched
        assert set(grown.restricted(["A", "C"])) == {"A", "C"}

    def test_means_are_clipped(self):
        wide = UncertainModel({"A": LogNormal(1.0, 0.5)})
        assert wide.means()["A"] == 1.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(UQError):
            UncertainModel({})
        with pytest.raises(UQError):
            UncertainModel({"A": 0.5})


class TestDistributionFingerprint:
    def test_covers_class_and_fields(self):
        text = distribution_fingerprint(LogNormal(-5.0, 0.5))
        assert text.startswith("LogNormal(")
        assert "mu=-5.0" in text and "sigma=0.5" in text

    def test_rejects_non_distributions(self):
        with pytest.raises(UQError):
            distribution_fingerprint(0.5)

    def test_rejects_non_dataclass_distributions(self):
        from repro.stats.distributions import Distribution

        class Opaque(Distribution):
            def ppf(self, p):
                return 0.5

        with pytest.raises(UQError):
            distribution_fingerprint(Opaque())


class TestLognormalErrorFactor:
    def test_median_and_error_factor(self):
        dist = lognormal_error_factor(1e-4, 3.0)
        assert dist.ppf(0.5) == pytest.approx(1e-4, rel=1e-9)
        assert dist.ppf(0.95) / dist.ppf(0.5) == pytest.approx(3.0,
                                                               rel=1e-9)
        assert dist.ppf(0.5) / dist.ppf(0.05) == pytest.approx(3.0,
                                                               rel=1e-9)

    def test_rejects_bad_parameters(self):
        with pytest.raises(UQError):
            lognormal_error_factor(0.0, 3.0)
        with pytest.raises(UQError):
            lognormal_error_factor(1e-4, 1.0)


class TestFromErrorFactors:
    def test_covers_leaves_with_defaults(self, bridge_tree):
        model = from_error_factors(bridge_tree, 3.0)
        assert set(model) == {"A", "B", "C"}
        assert model["A"].ppf(0.5) == pytest.approx(0.3, rel=1e-9)

    def test_overrides_win(self, bridge_tree):
        beta = Beta(3.0, 7.0)
        model = from_error_factors(bridge_tree, 3.0,
                                   overrides={"A": beta})
        assert model["A"] == beta

    def test_skips_leaves_without_defaults(self, inhibit_tree):
        model = from_error_factors(inhibit_tree, 3.0)
        assert set(model) == {"A", "B", "env"}

    def test_rejects_trees_without_any_defaults(self):
        tree = FaultTree(hazard("H", OR_gate=[primary("A"),
                                              primary("B")]))
        with pytest.raises(UQError):
            from_error_factors(tree)

    def test_sigma_matches_conventional_z95(self):
        dist = lognormal_error_factor(1.0, 10.0)
        assert dist.sigma == pytest.approx(math.log(10.0) / 1.6448536,
                                           rel=1e-6)
