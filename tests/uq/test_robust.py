"""Robust percentile-risk objectives over safety models."""

import pytest

from repro.elbtunnel import (
    build_fault_tree_model,
    elbtunnel_uncertain_models,
    robust_timer_problem,
    standalone_tree,
    standalone_uncertain_model,
)
from repro.errors import UQError
from repro.opt import nelder_mead
from repro.stats import Uniform
from repro.uq import RobustCostObjective, UncertainModel, robust_problem


@pytest.fixture(scope="module")
def model():
    return build_fault_tree_model()


@pytest.fixture(scope="module")
def uncertain():
    return elbtunnel_uncertain_models()


class TestRobustCostObjective:
    def test_deterministic_common_random_numbers(self, model, uncertain):
        objective = RobustCostObjective(model, uncertain, n_samples=64,
                                        seed=0, q=95.0)
        x = (19.0, 15.6)
        assert objective(x) == objective(x)
        rebuilt = RobustCostObjective(model, uncertain, n_samples=64,
                                      seed=0, q=95.0)
        assert rebuilt(x) == objective(x)

    def test_percentiles_are_ordered(self, model, uncertain):
        x = (19.0, 15.6)
        costs = [RobustCostObjective(model, uncertain, n_samples=128,
                                     seed=1, q=q)(x)
                 for q in (5.0, 50.0, 95.0)]
        assert costs[0] < costs[1] < costs[2]

    def test_median_tracks_the_point_estimate(self, model, uncertain):
        """The epistemic median cost sits near the point-estimate cost
        (the distributions are centred on the calibrated values)."""
        x = (19.0, 15.6)
        median = RobustCostObjective(model, uncertain, n_samples=512,
                                     seed=2, q=50.0)(x)
        point = model.cost(x)
        assert median == pytest.approx(point, rel=0.25)

    def test_cost_samples_shape_and_mix(self, model, uncertain):
        objective = RobustCostObjective(model, uncertain, n_samples=32,
                                        seed=0)
        samples = objective.cost_samples((19.0, 15.6))
        assert samples.shape == (32,)
        assert (samples > 0.0).all()
        # Dropping one hazard's uncertainty narrows, not shifts-to-zero.
        partial = {name: model_
                   for name, model_ in uncertain.items()
                   if name == "H_Alr"}
        narrower = RobustCostObjective(model, partial, n_samples=32,
                                       seed=0)
        assert narrower.cost_samples((19.0, 15.6)).shape == (32,)

    def test_validation(self, model, uncertain):
        with pytest.raises(UQError):
            RobustCostObjective(model, {}, n_samples=32)
        with pytest.raises(UQError):
            RobustCostObjective(model, uncertain, n_samples=1)
        with pytest.raises(UQError):
            RobustCostObjective(model, uncertain, n_samples=32, q=101.0)
        with pytest.raises(UQError):
            RobustCostObjective(model, uncertain, n_samples=32,
                                sampler="bad")
        with pytest.raises(UQError):
            RobustCostObjective(model, {"nope": list(
                uncertain.values())[0]}, n_samples=32)

    def test_rejects_overlap_with_assignments(self, model):
        overlapping = {"H_Col": UncertainModel(
            {"OT1": Uniform(0.0, 0.1)})}
        with pytest.raises(UQError, match="both"):
            RobustCostObjective(model, overlapping, n_samples=32)

    def test_rejects_non_leaf_uncertain_events(self, model):
        bad = {"H_Col": UncertainModel({"nonsense": Uniform(0.0, 0.1)})}
        with pytest.raises(UQError, match="not leaves"):
            RobustCostObjective(model, bad, n_samples=32)


class TestRobustProblem:
    def test_counts_evaluations_inside_the_box(self, model, uncertain):
        problem = robust_problem(model, uncertain, n_samples=64, seed=0,
                                 q=95.0)
        value = problem((19.0, 15.6))
        assert problem.evaluations == 1
        assert value > 0.0
        assert "p95" in problem.name

    def test_optimum_lands_near_the_paper_optimum(self):
        """Robust optimization of the timers: the p95 optimum stays in
        the neighbourhood of the paper's (19, 15.6) point optimum —
        the epistemic rates shift the level, not the argmin."""
        problem = robust_timer_problem(n_samples=64, seed=0, q=95.0)
        result = nelder_mead(problem, x0=(30.0, 30.0))
        assert result.converged
        t1, t2 = result.x
        assert 17.0 <= t1 <= 21.0
        assert 14.0 <= t2 <= 17.5
        assert result.fun <= problem((30.0, 30.0))

    def test_robust_value_exceeds_point_value_at_high_q(self, model,
                                                        uncertain):
        problem = robust_problem(model, uncertain, n_samples=256,
                                 seed=3, q=95.0)
        assert problem((19.0, 15.6)) > model.cost((19.0, 15.6))


class TestStandaloneModels:
    @pytest.mark.parametrize("name", ["collision", "false-alarm",
                                      "corridor"])
    def test_cover_every_leaf_without_default(self, name):
        from repro.uq import propagate
        tree = standalone_tree(name)
        model = standalone_uncertain_model(name)
        result = propagate(tree, model, n_samples=32, seed=0)
        assert result.n_samples == 32
        assert all(0.0 <= v <= 1.0 for v in result.samples)

    def test_unknown_names_rejected(self):
        with pytest.raises(UQError):
            standalone_tree("fig2")
        with pytest.raises(UQError):
            standalone_uncertain_model("fig2")
