"""UncertaintyJob: engine integration, sharding determinism, caching."""

import json

import pytest

from repro.elbtunnel import corridor_fault_tree, corridor_uncertain_model
from repro.engine import Engine, UncertaintyJob
from repro.errors import EngineError
from repro.stats import Uniform
from repro.uq import UncertainModel, from_error_factors, reference_propagate


@pytest.fixture(scope="module")
def tree():
    return corridor_fault_tree(sections=6)


@pytest.fixture(scope="module")
def model(tree):
    return corridor_uncertain_model(sections=6)


class TestValidation:
    def test_requires_uncertain_model(self, tree):
        with pytest.raises(EngineError):
            UncertaintyJob(tree, {"A": 0.5})

    def test_rejects_bad_parameters(self, tree, model):
        with pytest.raises(EngineError):
            UncertaintyJob(tree, model, samples=0)
        with pytest.raises(EngineError):
            UncertaintyJob(tree, model, sampler="sobol")
        with pytest.raises(EngineError):
            UncertaintyJob(tree, model, method="inclusion_exclusion")
        with pytest.raises(EngineError):
            UncertaintyJob(tree, model, chunks=0)

    def test_describe(self, tree, model):
        text = UncertaintyJob(tree, model, samples=128).describe()
        assert "uncertainty" in text and "128" in text


class TestDeterminism:
    def test_bit_identical_across_worker_counts(self, tree, model):
        """The ISSUE-4 determinism pin: workers 1/2/4 agree bit for bit,
        and all match the scalar per-sample reference loop."""
        results = []
        for workers in (1, 2, 4):
            engine = Engine(workers=workers)
            job = UncertaintyJob(tree, model, samples=96, seed=11,
                                 sampler="lhs", chunks=4)
            results.append(engine.run(job))
        assert results[0].samples == results[1].samples
        assert results[0].samples == results[2].samples
        reference = reference_propagate(tree, model, n_samples=96,
                                        seed=11, sampler="lhs")
        assert results[0].samples == reference.samples

    def test_bit_identical_across_chunk_counts(self, tree, model):
        results = []
        for chunks in (1, 3, 7):
            engine = Engine(workers=2)
            job = UncertaintyJob(tree, model, samples=50, seed=4,
                                 sampler="mc", chunks=chunks)
            results.append(engine.run(job))
        assert results[0].samples == results[1].samples
        assert results[0].samples == results[2].samples

    def test_serial_run_equals_pooled_run(self, tree, model):
        job = UncertaintyJob(tree, model, samples=64, seed=2)
        serial = job.run_serial()
        pooled = Engine(workers=3).run(
            UncertaintyJob(tree, model, samples=64, seed=2))
        assert serial.samples == pooled.samples


class TestFingerprints:
    def test_semantically_identical_jobs_share_keys(self, tree, model):
        a = UncertaintyJob(tree, model, samples=64, seed=2)
        b = UncertaintyJob(corridor_fault_tree(sections=6),
                           corridor_uncertain_model(sections=6),
                           samples=64, seed=2)
        assert a.fingerprint() == b.fingerprint()

    def test_every_option_feeds_the_key(self, tree, model):
        base = UncertaintyJob(tree, model, samples=64, seed=2)
        variants = [
            UncertaintyJob(tree, model, samples=65, seed=2),
            UncertaintyJob(tree, model, samples=64, seed=3),
            UncertaintyJob(tree, model, samples=64, seed=2,
                           sampler="mc"),
            UncertaintyJob(tree, model, samples=64, seed=2,
                           method="rare_event"),
            UncertaintyJob(tree, model.updated(
                {"Signal not shown": Uniform(0.0, 0.1)}),
                samples=64, seed=2),
        ]
        keys = {base.fingerprint()} | {v.fingerprint()
                                       for v in variants}
        assert len(keys) == len(variants) + 1

    def test_chunks_are_an_execution_detail(self, tree, model):
        a = UncertaintyJob(tree, model, samples=64, seed=2, chunks=2)
        b = UncertaintyJob(tree, model, samples=64, seed=2, chunks=9)
        assert a.fingerprint() == b.fingerprint()


class TestCaching:
    def test_cache_hit_returns_equal_result(self, tree, model):
        engine = Engine(workers=1)
        first = engine.run(UncertaintyJob(tree, model, samples=48,
                                          seed=7))
        second = engine.run(UncertaintyJob(tree, model, samples=48,
                                           seed=7))
        assert engine.executed == 1
        assert engine.stats().cache["hits"] == 1
        assert second == first
        assert second.samples == first.samples

    def test_cache_payloads_are_byte_equal(self, tree, model):
        """Two independent executions encode to byte-identical JSON —
        the disk-persisted cache is reproducible across sessions."""
        job = UncertaintyJob(tree, model, samples=48, seed=7)
        a = json.dumps(UncertaintyJob.encode_result(job.run_serial()),
                       sort_keys=True).encode()
        b = json.dumps(UncertaintyJob.encode_result(job.run_serial()),
                       sort_keys=True).encode()
        assert a == b

    def test_disk_round_trip(self, tree, model, tmp_path):
        path = str(tmp_path / "uq-cache.json")
        engine = Engine(workers=1, cache_path=path)
        job = UncertaintyJob(tree, model, samples=32, seed=1)
        original = engine.run(job)
        engine.save_cache()

        fresh = Engine(workers=1, cache_path=path)
        revived = fresh.run(UncertaintyJob(tree, model, samples=32,
                                           seed=1))
        assert fresh.executed == 0
        assert revived == original


class TestSmallModelsThroughJobs:
    def test_error_factor_model_on_fixture_tree(self, bridge_tree):
        model = from_error_factors(bridge_tree, 3.0)
        result = Engine(workers=1).run(
            UncertaintyJob(bridge_tree, model, samples=40, seed=0))
        assert result.n_samples == 40
        reference = reference_propagate(bridge_tree, model,
                                        n_samples=40, seed=0)
        assert result.samples == reference.samples
