"""Sobol indices: closed-form pins on analytic functions, tree analyses."""

import numpy as np
import pytest

from repro.errors import UQError
from repro.fta import FaultTree
from repro.fta.dsl import AND, OR, hazard, primary
from repro.stats import Uniform
from repro.uq import (
    UncertainModel,
    sobol_from_samples,
    sobol_indices,
    tornado,
    uniform_matrix,
)


def additive_design(coefficients, n, seed=0):
    """Saltelli evaluations of ``Y = sum(a_i * X_i)``, ``X_i ~ U(0,1)``."""
    d = len(coefficients)
    design = uniform_matrix(n, 2 * d, seed=seed, sampler="mc")
    a_matrix, b_matrix = design[:, :d], design[:, d:]

    def f(matrix):
        return matrix @ np.asarray(coefficients)

    f_ab = {}
    for i in range(d):
        mixed = a_matrix.copy()
        mixed[:, i] = b_matrix[:, i]
        f_ab[f"x{i}"] = f(mixed)
    return f(a_matrix), f(b_matrix), f_ab


class TestSobolClosedForm:
    def test_additive_function_matches_analytic_indices(self):
        """The ISSUE-4 pin: closed-form Sobol values within 2 %.

        For ``Y = 4 X1 + 2 X2 + 1 X3`` with independent uniforms the
        variance decomposes exactly: ``S_i = T_i = a_i^2 / sum(a_j^2)``
        — (16, 4, 1) / 21.
        """
        coefficients = (4.0, 2.0, 1.0)
        f_a, f_b, f_ab = additive_design(coefficients, n=60_000, seed=1)
        first, total, variance = sobol_from_samples(f_a, f_b, f_ab)
        # Var(Y) = sum(a_i^2 / 12) for independent uniforms.
        assert variance == pytest.approx(21.0 / 12.0, rel=0.02)
        expected = {f"x{i}": c * c / 21.0
                    for i, c in enumerate(coefficients)}
        for name, value in expected.items():
            assert first[name] == pytest.approx(value, abs=0.02)
            assert total[name] == pytest.approx(value, abs=0.02)

    def test_constant_output_gives_zero_indices(self):
        n = 100
        flat = np.full(n, 0.5)
        first, total, variance = sobol_from_samples(flat, flat,
                                                    {"x": flat.copy()})
        assert first == {"x": 0.0}
        assert total == {"x": 0.0}
        assert variance == 0.0

    def test_input_validation(self):
        with pytest.raises(UQError):
            sobol_from_samples(np.ones(3), np.ones(4), {})
        with pytest.raises(UQError):
            sobol_from_samples(np.ones(4), np.ones(4),
                               {"x": np.ones(3)})


class TestSobolOnTrees:
    @pytest.fixture
    def or_tree(self):
        return FaultTree(hazard("H", OR_gate=[primary("A", 0.01),
                                              primary("B", 0.01),
                                              primary("C", 0.01)]))

    def test_rare_event_or_tree_is_additive(self, or_tree):
        """rare_event on an OR tree is literally ``sum(p_i)``: the wide
        uniform dominates, and S ~ T with variances in closed form."""
        model = UncertainModel({"A": Uniform(0.0, 0.12),
                                "B": Uniform(0.0, 0.04),
                                "C": Uniform(0.0, 0.02)})
        indices = sobol_indices(or_tree, model, n_samples=40_000,
                                seed=2, method="rare_event")
        variances = {"A": 0.12 ** 2, "B": 0.04 ** 2, "C": 0.02 ** 2}
        total_var = sum(variances.values())
        for name, var in variances.items():
            expected = var / total_var
            assert indices.first[name] == pytest.approx(expected,
                                                        abs=0.02)
            assert indices.total[name] == pytest.approx(expected,
                                                        abs=0.02)
        assert indices.ranking()[0][0] == "A"

    def test_deterministic_per_seed(self, or_tree):
        model = UncertainModel({"A": Uniform(0.0, 0.1)})
        a = sobol_indices(or_tree, model, n_samples=256, seed=3)
        b = sobol_indices(or_tree, model, n_samples=256, seed=3)
        assert a.first == b.first and a.total == b.total

    def test_interaction_shows_in_total_index(self):
        """In an AND tree the inputs only act jointly: totals carry the
        interaction that first-order indices miss."""
        tree = FaultTree(hazard("H", AND_gate=[primary("A", 0.5),
                                               primary("B", 0.5)]))
        model = UncertainModel({"A": Uniform(0.0, 1.0),
                                "B": Uniform(0.0, 1.0)})
        indices = sobol_indices(tree, model, n_samples=40_000, seed=4)
        for name in ("A", "B"):
            assert indices.total[name] > indices.first[name]
            assert indices.total[name] == pytest.approx(4.0 / 7.0,
                                                        abs=0.03)
            assert indices.first[name] == pytest.approx(3.0 / 7.0,
                                                        abs=0.03)

    def test_rejects_unknown_events_and_tiny_budgets(self, or_tree):
        model = UncertainModel({"Z": Uniform(0.0, 0.1)})
        with pytest.raises(UQError):
            sobol_indices(or_tree, model, n_samples=64)
        good = UncertainModel({"A": Uniform(0.0, 0.1)})
        with pytest.raises(UQError):
            sobol_indices(or_tree, good, n_samples=1)
        with pytest.raises(UQError):
            sobol_indices(or_tree, good, n_samples=64, sampler="bad")


class TestTornado:
    @pytest.fixture
    def or_tree(self):
        return FaultTree(hazard("H", OR_gate=[primary("A", 0.01),
                                              primary("B", 0.01)]))

    def test_ranking_by_swing(self, or_tree):
        model = UncertainModel({"A": Uniform(0.0, 0.2),
                                "B": Uniform(0.009, 0.011)})
        entries = tornado(or_tree, model, method="rare_event")
        assert [e.event for e in entries] == ["A", "B"]
        assert entries[0].swing > entries[1].swing
        assert entries[0].low < entries[0].baseline < entries[0].high

    def test_swing_matches_quantiles_on_additive_tree(self, or_tree):
        model = UncertainModel({"A": Uniform(0.0, 0.2)})
        entries = tornado(or_tree, model, low_q=0.25, high_q=0.75,
                          method="rare_event")
        # rare_event OR is additive, so the swing is exactly the
        # inter-quantile width of A's distribution.
        assert entries[0].swing == pytest.approx(0.1, rel=1e-9)

    def test_rejects_bad_quantiles(self, or_tree):
        model = UncertainModel({"A": Uniform(0.0, 0.2)})
        with pytest.raises(UQError):
            tornado(or_tree, model, low_q=0.9, high_q=0.1)
