"""Sampling designs: determinism, stratification, matrix assembly."""

import numpy as np
import pytest

from repro.errors import UQError
from repro.stats import LogNormal, Uniform
from repro.uq import UncertainModel, probability_matrix, uniform_matrix


class TestUniformMatrix:
    def test_deterministic_per_seed(self):
        for sampler in ("mc", "lhs"):
            a = uniform_matrix(50, 3, seed=9, sampler=sampler)
            b = uniform_matrix(50, 3, seed=9, sampler=sampler)
            assert np.array_equal(a, b)
            c = uniform_matrix(50, 3, seed=10, sampler=sampler)
            assert not np.array_equal(a, c)

    def test_samplers_differ(self):
        a = uniform_matrix(50, 3, seed=9, sampler="mc")
        b = uniform_matrix(50, 3, seed=9, sampler="lhs")
        assert not np.array_equal(a, b)

    def test_shape_and_open_interval(self):
        u = uniform_matrix(200, 4, seed=0, sampler="mc")
        assert u.shape == (200, 4)
        assert (u > 0.0).all() and (u < 1.0).all()

    def test_lhs_stratification(self):
        """Each column holds exactly one draw per quantile stratum."""
        n = 64
        u = uniform_matrix(n, 5, seed=3, sampler="lhs")
        for j in range(5):
            strata = np.floor(u[:, j] * n).astype(int)
            assert sorted(strata) == list(range(n))

    def test_mc_is_not_stratified(self):
        n = 64
        u = uniform_matrix(n, 1, seed=3, sampler="mc")
        strata = np.floor(u[:, 0] * n).astype(int)
        assert sorted(strata) != list(range(n))

    def test_rejects_bad_arguments(self):
        with pytest.raises(UQError):
            uniform_matrix(0, 3)
        with pytest.raises(UQError):
            uniform_matrix(3, 0)
        with pytest.raises(UQError):
            uniform_matrix(3, 3, sampler="sobol")


class TestProbabilityMatrix:
    @pytest.fixture
    def model(self):
        return UncertainModel({"A": Uniform(0.1, 0.2),
                               "C": Uniform(0.3, 0.4)})

    def test_columns_follow_leaf_order(self, model):
        matrix = probability_matrix(model, ["A", "B", "C"], 100,
                                    seed=1, defaults={"B": 0.05})
        assert matrix.shape == (100, 3)
        assert ((matrix[:, 0] >= 0.1) & (matrix[:, 0] <= 0.2)).all()
        assert (matrix[:, 1] == 0.05).all()
        assert ((matrix[:, 2] >= 0.3) & (matrix[:, 2] <= 0.4)).all()

    def test_sampled_columns_match_ppf_batch(self, model):
        matrix = probability_matrix(model, ["A", "C"], 64, seed=5,
                                    sampler="lhs")
        u = uniform_matrix(64, 2, seed=5, sampler="lhs")
        expected_a = model["A"].ppf_batch(u[:, 0])
        assert np.array_equal(matrix[:, 0], expected_a)

    def test_clipping_into_unit_interval(self):
        # LogNormal(mu=1) has most of its mass above 1.
        model = UncertainModel({"A": LogNormal(1.0, 0.5)})
        matrix = probability_matrix(model, ["A"], 500, seed=2)
        assert matrix.max() == 1.0
        assert (matrix <= 1.0).all() and (matrix >= 0.0).all()

    def test_unknown_uncertain_event_rejected(self, model):
        with pytest.raises(UQError, match="not leaves"):
            probability_matrix(model, ["A", "B"], 10,
                               defaults={"B": 0.1})

    def test_missing_default_rejected(self):
        model = UncertainModel({"A": Uniform(0.1, 0.2)})
        with pytest.raises(UQError, match="neither"):
            probability_matrix(model, ["A", "B"], 10)

    def test_invalid_default_rejected(self):
        model = UncertainModel({"A": Uniform(0.1, 0.2)})
        with pytest.raises(UQError, match="\\[0, 1\\]"):
            probability_matrix(model, ["A", "B"], 10,
                               defaults={"B": 1.5})

    def test_rejects_zero_samples(self, model):
        with pytest.raises(UQError):
            probability_matrix(model, ["A", "C"], 0)
