"""JobRegistry: id assignment, life cycle, history bound."""

import pytest

from repro.engine import Engine, QuantifyJob
from repro.errors import ServeError
from repro.fta import FaultTree
from repro.fta.dsl import hazard, primary
from repro.serve import JobRegistry


def make_job(p=0.1):
    top = hazard("H", OR_gate=[primary("A", p), primary("B", 0.2)])
    return QuantifyJob(FaultTree(top), method="exact")


def finished_outcome(job):
    return Engine(workers=1).run_shared(job)


class TestLifecycle:
    def test_ids_are_monotonic(self):
        registry = JobRegistry()
        records = [registry.create(make_job()) for _ in range(3)]
        assert [r.id for r in records] == ["j-000001", "j-000002",
                                          "j-000003"]

    def test_created_record_fields(self):
        registry = JobRegistry()
        job = make_job()
        record = registry.create(job)
        assert record.status == "queued"
        assert record.kind == "quantify"
        assert record.fingerprint == job.fingerprint()
        assert not record.finished
        assert record.submitted_at > 0

    def test_full_transition(self):
        registry = JobRegistry()
        job = make_job()
        record = registry.create(job)
        registry.mark_running(record.id)
        assert registry.get(record.id).status == "running"
        outcome = finished_outcome(job)
        registry.mark_done(record.id, outcome, 0.123)
        final = registry.get(record.id)
        assert final.status == "done" and final.finished
        assert final.cache_hit is False
        assert final.coalesced is False
        assert final.wall_time_s == outcome.wall_time
        assert final.result == 0.123
        assert final.finished_at >= final.started_at

    def test_failed_transition(self):
        registry = JobRegistry()
        record = registry.create(make_job())
        registry.mark_running(record.id)
        registry.mark_failed(record.id, "timeout")
        final = registry.get(record.id)
        assert final.status == "failed" and final.error == "timeout"

    def test_unknown_id_raises_404(self):
        registry = JobRegistry()
        with pytest.raises(ServeError) as excinfo:
            registry.get("j-999999")
        assert excinfo.value.status == 404

    def test_as_dict_hides_result_unless_done(self):
        registry = JobRegistry()
        job = make_job()
        record = registry.create(job)
        assert "result" not in record.as_dict()
        registry.mark_done(record.id, finished_outcome(job), 1.0)
        assert registry.get(record.id).as_dict()["result"] == 1.0
        assert "result" not in registry.get(record.id).as_dict(
            include_result=False)


class TestHistory:
    def test_finished_records_are_bounded(self):
        registry = JobRegistry(history=3)
        job = make_job()
        outcome = finished_outcome(job)
        ids = []
        for _ in range(6):
            record = registry.create(job)
            registry.mark_running(record.id)
            registry.mark_done(record.id, outcome, 0.0)
            ids.append(record.id)
        assert len(registry) == 3
        with pytest.raises(ServeError):
            registry.get(ids[0])
        assert registry.get(ids[-1]).status == "done"

    def test_active_records_never_evicted(self):
        registry = JobRegistry(history=1)
        job = make_job()
        active = [registry.create(job) for _ in range(5)]
        outcome = finished_outcome(job)
        done = registry.create(job)
        registry.mark_done(done.id, outcome, 0.0)
        # All five queued records survive despite history=1.
        for record in active:
            assert registry.get(record.id).status == "queued"

    def test_counts(self):
        registry = JobRegistry()
        job = make_job()
        registry.create(job)
        running = registry.create(job)
        registry.mark_running(running.id)
        failed = registry.create(job)
        registry.mark_running(failed.id)
        registry.mark_failed(failed.id, "x")
        counts = registry.counts()
        assert counts["queued"] == 1
        assert counts["running"] == 1
        assert counts["failed"] == 1
        assert counts["done"] == 0
        assert counts["total"] == 3

    def test_list_newest_first(self):
        registry = JobRegistry()
        first = registry.create(make_job())
        second = registry.create(make_job())
        listed = registry.list()
        assert [r.id for r in listed] == [second.id, first.id]
        assert [r.id for r in registry.list(limit=1)] == [second.id]

    def test_bad_history(self):
        with pytest.raises(ServeError):
            JobRegistry(history=0)
