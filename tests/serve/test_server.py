"""End-to-end service tests over real HTTP on an ephemeral port."""

import json
import threading
import time

import pytest

from repro.engine import Engine, job_from_spec
from repro.errors import ServeError
from repro.serve import RiskServer, ServeClient, ServerConfig

QUANTIFY = {"type": "quantify", "tree": "corridor", "method": "exact"}
MONTECARLO = {"type": "montecarlo", "tree": "corridor",
              "samples": 100_000, "seed": 11}


@pytest.fixture
def server():
    instance = RiskServer(ServerConfig(
        port=0, workers=1, max_concurrency=2, queue_limit=4,
        request_timeout=30.0)).start()
    yield instance
    instance.shutdown(drain=True, timeout=10.0)


@pytest.fixture
def client(server):
    with ServeClient(server.host, server.port, timeout=30.0) as c:
        yield c


class TestEndpoints:
    def test_health(self, client):
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["uptime_s"] >= 0.0
        assert payload["active_requests"] == 0

    def test_submit_streams_events_in_order(self, client):
        events = client.submit([QUANTIFY])
        kinds = [event["event"] for event in events]
        assert kinds == ["accepted", "started", "result", "done"]
        accepted, _started, result, done = events
        assert accepted["id"] == result["id"]
        assert accepted["fingerprint"] == result["fingerprint"]
        assert result["cache_hit"] is False
        assert result["coalesced"] is False
        assert done["jobs"] == 1 and done["failed"] == 0
        # The streamed value matches a direct engine evaluation.
        expected = Engine(workers=1).run(job_from_spec(QUANTIFY))
        assert result["result"] == expected

    def test_multi_job_submission_keeps_order(self, client):
        events = client.submit([QUANTIFY, MONTECARLO])
        results = [e for e in events if e["event"] == "result"]
        assert [r["index"] for r in results] == [0, 1]
        assert [r["type"] for r in results] == ["quantify",
                                                "montecarlo"]

    def test_second_submission_is_a_cache_hit(self, client):
        first = client.results([QUANTIFY])[0]
        second = client.results([QUANTIFY])[0]
        assert first["cache_hit"] is False
        assert second["cache_hit"] is True
        assert second["result"] == first["result"]
        assert second["fingerprint"] == first["fingerprint"]

    def test_job_status_endpoint(self, client):
        result = client.results([QUANTIFY])[0]
        record = client.job(result["id"])
        assert record["status"] == "done"
        assert record["fingerprint"] == result["fingerprint"]
        assert record["result"] == result["result"]
        assert record["wall_time_s"] == result["wall_time_s"]

    def test_jobs_listing(self, client):
        ids = [client.results([QUANTIFY])[0]["id"],
               client.results([MONTECARLO])[0]["id"]]
        listed = client.jobs()
        assert [record["id"] for record in listed[:2]] == ids[::-1]
        assert all("result" not in record for record in listed)

    def test_stats_endpoint(self, client):
        client.results([QUANTIFY])
        client.results([QUANTIFY])
        stats = client.stats()
        assert stats["jobs"]["done"] == 2
        assert stats["engine"]["executed"] == 1
        assert stats["cache"]["hits"] >= 1
        assert stats["cache"]["size"] >= 1
        assert stats["server"]["accepted"] == 2
        assert 0.0 <= stats["coalescing"]["coalesce_rate"] <= 1.0
        assert stats["incremental"]["sessions"] == 0

    def test_incremental_spec_updates_stats(self, client):
        spec = {"type": "incremental", "tree": "corridor",
                "edits": [{"op": "set_rate",
                           "event": "Signal not shown",
                           "probability": 2e-4}]}
        result = client.results([spec])[0]["result"]
        assert result["steps"][0]["value"] != result["baseline"]
        stats = client.stats()
        assert stats["incremental"]["sessions"] == 1
        assert stats["incremental"]["module_compiles"] >= 1

    def test_per_job_failure_keeps_stream_alive(self, client):
        # fig2 has no leaf defaults: quantifying it without
        # probabilities fails, but the next job still runs.
        events = client.submit([{"type": "quantify", "tree": "fig2"},
                                QUANTIFY])
        kinds = [event["event"] for event in events]
        assert kinds.count("error") == 1
        assert kinds.count("result") == 1
        done = events[-1]
        assert done["jobs"] == 2 and done["failed"] == 1
        failed_id = [e for e in events if e["event"] == "error"][0]["id"]
        assert client.job(failed_id)["status"] == "failed"


class TestErrors:
    def test_invalid_json_body_is_400(self, client):
        response = client._request("POST", "/jobs", b"{not json")
        assert response.status == 400
        assert "invalid JSON" in json.loads(response.read())["error"]

    def test_bad_job_spec_is_400(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.submit([{"type": "wat"}])
        assert excinfo.value.status == 400

    def test_empty_payload_is_400(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.submit([])
        assert excinfo.value.status == 400

    def test_tree_file_references_are_rejected(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.submit([{"type": "quantify",
                            "tree": {"file": "/etc/passwd"}}])
        assert excinfo.value.status == 400
        assert "not allowed" in str(excinfo.value)

    def test_unknown_paths_are_404(self, client):
        assert client._request("GET", "/nope").status == 404
        response = client._request("POST", "/nope", b"{}")
        assert response.status == 404

    def test_unknown_job_id_is_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.job("j-999999")
        assert excinfo.value.status == 404


class TestBackPressure:
    def test_saturated_queue_answers_429(self, server, client):
        # Deterministically occupy every admission slot, then submit.
        for _ in range(server.config.queue_limit):
            assert server.try_admit()
        try:
            with pytest.raises(ServeError) as excinfo:
                client.submit([QUANTIFY])
            assert excinfo.value.status == 429
            assert server.rejected >= 1
        finally:
            for _ in range(server.config.queue_limit):
                server.release()
        # Slots released: the same submission now succeeds.
        assert client.results([QUANTIFY])[0]["result"] > 0.0

    def test_queued_job_times_out_with_error_event(self):
        instance = RiskServer(ServerConfig(
            port=0, workers=1, max_concurrency=1, queue_limit=4,
            request_timeout=0.1)).start()
        try:
            # Exhaust the only compute slot so the job queues forever.
            assert instance._slots.acquire(timeout=1.0)
            with ServeClient(instance.host, instance.port,
                             timeout=10.0) as c:
                events = c.submit([QUANTIFY])
                errors = [e for e in events if e["event"] == "error"]
                assert len(errors) == 1
                assert "compute slot" in errors[0]["error"]
                assert c.job(errors[0]["id"])["status"] == "failed"
                # Cache hits bypass the compute gate even when it is
                # exhausted: warm a fingerprint through a second server
                # sharing the engine? Simpler: release and recompute.
            instance._slots.release()
            with ServeClient(instance.host, instance.port,
                             timeout=10.0) as c:
                warm = c.results([QUANTIFY])[0]
                assert warm["cache_hit"] is False  # first computation
                hit = c.results([QUANTIFY])[0]
                assert hit["cache_hit"] is True
        finally:
            instance.shutdown(drain=True, timeout=5.0)

    def test_config_validation(self):
        with pytest.raises(ServeError):
            ServerConfig(max_concurrency=0).validate()
        with pytest.raises(ServeError):
            ServerConfig(queue_limit=0).validate()
        with pytest.raises(ServeError):
            ServerConfig(request_timeout=0.0).validate()


class TestCoalescingOverHTTP:
    def test_concurrent_identical_submissions_compute_once(self):
        server = RiskServer(ServerConfig(
            port=0, workers=1, max_concurrency=8, queue_limit=16,
            request_timeout=60.0)).start()
        spec = {"type": "montecarlo", "tree": "corridor",
                "samples": 400_000, "seed": 5}
        results = []
        lock = threading.Lock()

        def submit():
            with ServeClient(server.host, server.port,
                             timeout=60.0) as c:
                envelope = c.results([spec])[0]
            with lock:
                results.append(envelope)

        try:
            threads = [threading.Thread(target=submit)
                       for _ in range(5)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert len(results) == 5
            assert server.engine.executed == 1
            computed = sum(1 for r in results
                           if not r["cache_hit"] and not r["coalesced"])
            assert computed == 1
            # Every client got the byte-identical payload.
            assert len({json.dumps(r["result"], sort_keys=True)
                        for r in results}) == 1
        finally:
            server.shutdown(drain=True, timeout=10.0)


class TestShutdown:
    def wait_down(self, instance, deadline=10.0):
        end = time.time() + deadline
        while time.time() < end:
            try:
                with ServeClient(instance.host, instance.port,
                                 timeout=1.0) as probe:
                    probe.health()
            except ServeError:
                return True
            time.sleep(0.05)
        return False

    def test_shutdown_endpoint_drains_and_stops(self):
        instance = RiskServer(ServerConfig(port=0)).start()
        with ServeClient(instance.host, instance.port,
                         timeout=10.0) as c:
            c.results([QUANTIFY])
            ack = c.shutdown_server()
        assert ack["status"] == "shutting down"
        assert self.wait_down(instance)

    def test_draining_server_rejects_new_work(self):
        instance = RiskServer(ServerConfig(port=0)).start()
        try:
            with instance._state:
                instance._draining = True
            with ServeClient(instance.host, instance.port,
                             timeout=10.0) as c:
                assert c.health()["status"] == "draining"
                with pytest.raises(ServeError) as excinfo:
                    c.submit([QUANTIFY])
                assert excinfo.value.status == 429
        finally:
            instance.shutdown(drain=False)

    def test_cache_persists_across_server_lifetimes(self, tmp_path):
        cache_path = str(tmp_path / "serve-cache.json")
        first = RiskServer(ServerConfig(port=0,
                                        cache_path=cache_path)).start()
        with ServeClient(first.host, first.port, timeout=10.0) as c:
            cold = c.results([QUANTIFY])[0]
            assert cold["cache_hit"] is False
        first.shutdown(drain=True, timeout=10.0)

        second = RiskServer(ServerConfig(port=0,
                                         cache_path=cache_path)).start()
        try:
            with ServeClient(second.host, second.port,
                             timeout=10.0) as c:
                warm = c.results([QUANTIFY])[0]
                assert warm["cache_hit"] is True
                assert warm["result"] == cold["result"]
        finally:
            second.shutdown(drain=True, timeout=10.0)

    def test_sqlite_cache_backend_in_stats(self, tmp_path):
        config = ServerConfig(port=0,
                              cache_path=str(tmp_path / "serve.db"))
        instance = RiskServer(config).start()
        try:
            with ServeClient(instance.host, instance.port,
                             timeout=10.0) as c:
                cold = c.results([QUANTIFY])[0]
                assert cold["cache_hit"] is False
                cache = c.stats()["cache"]
                assert cache["backend"] == "sqlite"
                assert cache["misses"] >= 1
                assert cache["evictions"] == 0
        finally:
            instance.shutdown(drain=True, timeout=10.0)

        # The sqlite store survives the server lifetime: a fresh
        # server answers the same job from disk.
        second = RiskServer(config).start()
        try:
            with ServeClient(second.host, second.port,
                             timeout=10.0) as c:
                assert c.results([QUANTIFY])[0]["cache_hit"] is True
        finally:
            second.shutdown(drain=True, timeout=10.0)

    def test_start_twice_is_an_error(self, server):
        with pytest.raises(ServeError, match="already started"):
            server.start()
