#!/usr/bin/env python
"""Validate intra-repo markdown links in README.md and docs/.

Every relative link target (``[text](path)``, ``[text](path#anchor)``)
must exist on disk, resolved against the file that contains it.
External schemes (http/https/mailto) are skipped; bare anchors
(``#section``) are checked against the headings of the containing
file.  Exit status 1 lists every broken link — the CI docs job runs
this next to ``generate_api.py --check``.
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Inline markdown links, skipping images; code spans are stripped
#: before matching so `[x](y)` inside backticks is not a link.
LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN = re.compile(r"`[^`]*`")
FENCE = re.compile(r"^(```|~~~)")
EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def heading_anchors(path: pathlib.Path) -> set:
    """GitHub-style anchors for every markdown heading in *path*."""
    anchors = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence or not line.startswith("#"):
            continue
        title = line.lstrip("#").strip()
        title = CODE_SPAN.sub(lambda m: m.group(0).strip("`"), title)
        anchor = re.sub(r"[^\w\s-]", "", title.lower())
        anchors.add(re.sub(r"[\s]+", "-", anchor).strip("-"))
    return anchors


def check_file(path: pathlib.Path) -> list:
    """Broken-link messages for one markdown file."""
    problems = []
    in_fence = False
    for number, line in enumerate(path.read_text().splitlines(), 1):
        if FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in LINK.findall(CODE_SPAN.sub("", line)):
            if EXTERNAL.match(target):
                continue
            location = f"{path.relative_to(ROOT)}:{number}"
            target, _, anchor = target.partition("#")
            resolved = (path.parent / target).resolve() if target \
                else path
            if not resolved.exists():
                problems.append(
                    f"{location}: broken link target {target!r}")
                continue
            if anchor and resolved.suffix == ".md":
                if anchor not in heading_anchors(resolved):
                    problems.append(
                        f"{location}: missing anchor "
                        f"#{anchor} in {target or path.name!r}")
    return problems


def main() -> int:
    files = [ROOT / "README.md"] + sorted(
        (ROOT / "docs").glob("*.md"))
    problems = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} markdown files: "
          f"{len(problems)} broken links")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
