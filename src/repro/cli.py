"""Command-line interface: ``python -m repro <command>``.

The paper names "intuitive tool support" as a key feature for industrial
application (Sect. V); this CLI exposes the library's main workflows
without writing Python:

* ``study``     — the full Elbtunnel reproduction summary
* ``optimize``  — optimize the Elbtunnel timers with a chosen method
* ``fig5``      — render the Fig. 5 cost surface
* ``fig6``      — render the Fig. 6 false-alarm curves
* ``cutsets``   — minimal cut sets of a built-in or JSON fault tree
* ``report``    — full quantitative FTA report of a JSON fault tree
* ``simulate``  — run the traffic simulation for a design variant
* ``batch``     — run a JSON list of evaluation jobs through the
  :mod:`repro.engine` (parallel workers, content-addressed cache)
* ``serve``     — the same jobs as a long-running HTTP service with a
  shared engine, request coalescing and streamed results
  (:mod:`repro.serve`)
* ``uq``        — epistemic uncertainty and Sobol sensitivity of a
  tree's top-event probability (:mod:`repro.uq`)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Safety optimization: fault tree analysis combined "
                    "with mathematical optimization (DSN 2004 "
                    "reproduction).")
    sub = parser.add_subparsers(dest="command", required=True)

    study = sub.add_parser("study",
                           help="full Elbtunnel reproduction summary")
    study.add_argument("--simulate", action="store_true",
                       help="cross-check the Fig. 6 checkpoints with "
                            "batched DES replications")
    study.add_argument("--replications", type=int, default=4,
                       help="replications per variant for --simulate "
                            "(default: 4)")
    study.add_argument("--days", type=float, default=60.0,
                       help="simulated days per replication for "
                            "--simulate (default: 60)")
    study.add_argument("--workers", type=int, default=1,
                       help="worker processes for the simulation shards")

    optimize = sub.add_parser("optimize",
                              help="optimize the Elbtunnel timers")
    optimize.add_argument("--method", default="zoom",
                          help="optimization method (default: zoom)")

    fig5 = sub.add_parser("fig5", help="render the Fig. 5 cost surface")
    fig5.add_argument("--points", type=int, default=13,
                      help="grid resolution per axis")

    fig6 = sub.add_parser("fig6",
                          help="render the Fig. 6 false-alarm curves")
    fig6.add_argument("--points", type=int, default=21,
                      help="samples per curve")
    fig6.add_argument("--simulate", action="store_true",
                      help="append a batched-DES cross-check of the "
                           "checkpoints")
    fig6.add_argument("--replications", type=int, default=4,
                      help="replications per variant for --simulate "
                           "(default: 4)")
    fig6.add_argument("--days", type=float, default=60.0,
                      help="simulated days per replication for "
                           "--simulate (default: 60)")
    fig6.add_argument("--workers", type=int, default=1,
                      help="worker processes for the simulation shards")

    cutsets = sub.add_parser("cutsets",
                             help="minimal cut sets of a fault tree")
    cutsets.add_argument("--tree",
                         choices=["fig2", "collision", "false-alarm"],
                         default="fig2",
                         help="built-in Elbtunnel tree (default: fig2)")
    cutsets.add_argument("--file", help="JSON fault tree file instead")

    report = sub.add_parser("report",
                            help="quantitative FTA report of a JSON tree")
    report.add_argument("file", help="JSON fault tree file")
    report.add_argument("--top", type=int, default=10,
                        help="cut sets / events to show")
    report.add_argument("--uncertain", action="store_true",
                        help="append an epistemic-uncertainty section "
                             "(lognormal error factors around the leaf "
                             "defaults)")
    report.add_argument("--ef", type=float, default=3.0,
                        help="error factor for --uncertain (default: 3)")

    simulate = sub.add_parser("simulate",
                              help="run the Elbtunnel traffic simulation")
    simulate.add_argument("--variant",
                          choices=["without_LB4", "with_LB4",
                                   "lb_at_odfinal"],
                          default="without_LB4")
    simulate.add_argument("--days", type=float, default=90.0,
                          help="simulated duration in days")
    simulate.add_argument("--timer2", type=float, default=15.6,
                          help="runtime of timer 2 in minutes")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--replications", type=int, default=1,
                          help="independent replications run as one "
                               "batch (default: 1)")
    simulate.add_argument("--workers", type=int, default=1,
                          help="worker processes for the replication "
                               "shards")
    simulate.add_argument("--json", action="store_true", dest="as_json",
                          help="emit machine-readable JSON instead of "
                               "text")

    batch = sub.add_parser(
        "batch",
        help="run a JSON list of engine jobs (quantify/sweep/montecarlo)")
    batch.add_argument("file", help="JSON job list file")
    batch.add_argument("--workers", type=int, default=1,
                       help="worker processes for shardable jobs")
    batch.add_argument("--cache",
                       help="result-cache file persisted across runs "
                            "(JSON or sqlite, see --cache-backend)")
    batch.add_argument("--cache-backend",
                       choices=["auto", "json", "sqlite"], default="auto",
                       help="cache backend; auto picks sqlite for "
                            ".db/.sqlite/.sqlite3 paths (default: auto)")
    batch.add_argument("--cache-ttl", type=float,
                       help="seconds before cached entries expire "
                            "(sqlite backend only)")
    batch.add_argument("--cache-max-bytes", type=int,
                       help="payload byte budget before LRU eviction "
                            "(sqlite backend only)")
    batch.add_argument("--warm-manifest",
                       help="warm the cache from a manifest of hot "
                            "fingerprints before running")
    batch.add_argument("--write-manifest",
                       help="after the run, write the hottest cache "
                            "fingerprints to this manifest file")
    batch.add_argument("--compiled", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="evaluate sweeps through the repro.compile "
                            "vectorized batch evaluator (default: "
                            "--compiled; results are bit-identical "
                            "either way)")
    batch.add_argument("--fault-plan",
                       help="JSON fault-injection plan (see "
                            "docs/resilience.md) applied to the pool "
                            "and cache for chaos testing")
    batch.add_argument("--json", action="store_true", dest="as_json",
                       help="emit machine-readable JSON instead of text")

    whatif = sub.add_parser(
        "whatif",
        help="incremental what-if: apply JSON edits to a fault tree "
             "and stream re-quantified results")
    whatif.add_argument("edits",
                        help="JSON file with a list of edit operations "
                             "('-' reads stdin); each edit is e.g. "
                             '{"op": "set_rate", "event": ..., '
                             '"probability": ...}')
    whatif.add_argument("--tree",
                        choices=["fig2", "collision", "false-alarm",
                                 "corridor"],
                        default="corridor",
                        help="built-in fault tree (default: corridor)")
    whatif.add_argument("--file",
                        help="load the fault tree from a JSON file "
                             "instead of a built-in")
    whatif.add_argument("--sift-threshold", type=int,
                        help="dynamically reorder (sift) any module BDD "
                             "larger than this many nodes")
    whatif.add_argument("--cache",
                        help="persist per-module tapes/values to this "
                             "cache file across runs")
    whatif.add_argument("--cache-backend",
                        choices=["auto", "json", "sqlite"], default="auto",
                        help="cache backend; auto picks sqlite for "
                             ".db/.sqlite/.sqlite3 paths (default: auto)")
    whatif.add_argument("--cache-ttl", type=float,
                        help="seconds before cached entries expire "
                             "(sqlite backend only)")
    whatif.add_argument("--cache-max-bytes", type=int,
                        help="payload byte budget before LRU eviction "
                             "(sqlite backend only)")
    whatif.add_argument("--json", action="store_true", dest="as_json",
                        help="stream machine-readable NDJSON instead "
                             "of text")

    serve = sub.add_parser(
        "serve",
        help="serve engine jobs over HTTP (streamed NDJSON results)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port, 0 for an ephemeral one "
                            "(default: 8080)")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes for shardable jobs")
    serve.add_argument("--cache",
                       help="result-cache file loaded on start and "
                            "persisted on shutdown (JSON or sqlite, "
                            "see --cache-backend)")
    serve.add_argument("--cache-backend",
                       choices=["auto", "json", "sqlite"], default="auto",
                       help="cache backend; auto picks sqlite for "
                            ".db/.sqlite/.sqlite3 paths (default: auto)")
    serve.add_argument("--cache-capacity", type=int, default=4096,
                       help="entry capacity of the shared result cache "
                            "(default: 4096)")
    serve.add_argument("--cache-ttl", type=float,
                       help="seconds before cached entries expire "
                            "(sqlite backend only)")
    serve.add_argument("--cache-max-bytes", type=int,
                       help="payload byte budget before LRU eviction "
                            "(sqlite backend only)")
    serve.add_argument("--warm-manifest",
                       help="warm the cache from a manifest of hot "
                            "fingerprints before taking traffic")
    serve.add_argument("--max-concurrency", type=int, default=8,
                       help="engine computations allowed at once "
                            "(default: 8)")
    serve.add_argument("--queue-limit", type=int, default=32,
                       help="concurrent requests admitted before "
                            "answering 429 (default: 32)")
    serve.add_argument("--timeout", type=float, default=60.0,
                       help="seconds a queued job may wait before it "
                            "fails (default: 60)")
    serve.add_argument("--fault-plan",
                       help="JSON fault-injection plan (see "
                            "docs/resilience.md) applied to the pool, "
                            "cache and event streams for chaos testing")

    uq = sub.add_parser(
        "uq",
        help="epistemic uncertainty of a tree's top-event probability")
    uq.add_argument("--tree",
                    choices=["collision", "false-alarm", "corridor"],
                    default="collision",
                    help="built-in Elbtunnel tree with its bundled "
                         "uncertain-rate model (default: collision)")
    uq.add_argument("--file",
                    help="JSON fault tree file instead (distributions "
                         "derived as lognormal error factors around the "
                         "leaf defaults)")
    uq.add_argument("--samples", type=int, default=2000,
                    help="sample count (default: 2000)")
    uq.add_argument("--sampler", choices=["lhs", "mc"], default="lhs",
                    help="sampling design (default: lhs)")
    uq.add_argument("--seed", type=int, default=0)
    uq.add_argument("--method", default="exact",
                    help="quantification method (default: exact)")
    uq.add_argument("--percentiles", default="5,50,95",
                    help="comma-separated percentiles to report")
    uq.add_argument("--ef", type=float, default=3.0,
                    help="error factor for --file trees (default: 3)")
    uq.add_argument("--sobol", action="store_true",
                    help="add Sobol first/total sensitivity indices")
    uq.add_argument("--workers", type=int, default=1,
                    help="worker processes for the propagation shards")
    uq.add_argument("--json", action="store_true", dest="as_json",
                    help="emit machine-readable JSON instead of text")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        handler = _HANDLERS[args.command]
        handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_study(args) -> None:
    from repro.elbtunnel import full_study
    replications = args.replications if args.simulate else 0
    print(full_study(simulation_replications=replications,
                     simulation_days=args.days,
                     workers=args.workers).summary())


def _cmd_optimize(args) -> None:
    from repro.elbtunnel import optimum_study
    print(optimum_study(method=args.method).summary())


def _cmd_fig5(args) -> None:
    from repro.elbtunnel import fig5_surface
    from repro.viz import format_surface
    surface = fig5_surface(points=args.points)
    print(format_surface(surface.t1_values, surface.t2_values,
                         surface.cost,
                         title="Fig. 5 — f_cost(T1 rows, T2 columns)"))


def _cmd_fig6(args) -> None:
    from repro.elbtunnel import fig6_series, fig6_simulation_check
    from repro.viz import format_series, line_chart
    series = fig6_series(points=args.points)
    print(line_chart(series, y_min=0.0, y_max=1.0,
                     title="Fig. 6 — P(false alarm | correct OHV) "
                           "vs. T2 [min]"))
    print()
    print(format_series(series, title="Values"))
    if args.simulate:
        check = fig6_simulation_check(replications=args.replications,
                                      days=args.days,
                                      workers=args.workers)
        print()
        print(check.summary())


def _load_tree(args):
    from repro.elbtunnel import (
        collision_fault_tree,
        false_alarm_fault_tree,
        fig2_fault_tree,
    )
    from repro.fta import tree_from_json
    if getattr(args, "file", None):
        with open(args.file) as handle:
            return tree_from_json(handle.read())
    builders = {"fig2": fig2_fault_tree,
                "collision": collision_fault_tree,
                "false-alarm": false_alarm_fault_tree}
    return builders[args.tree]()


def _cmd_cutsets(args) -> None:
    from repro.fta import mocus
    from repro.viz import format_table
    tree = _load_tree(args)
    cut_sets = mocus(tree)
    print(format_table(
        ["minimal cut set", "order"],
        [[str(cs), cs.order] for cs in cut_sets],
        title=f"Minimal cut sets of {tree.name!r} "
              f"({len(cut_sets.single_points_of_failure)} single points "
              "of failure)"))


def _cmd_report(args) -> None:
    from repro.fta import tree_from_json
    from repro.fta.reporting import analyze
    with open(args.file) as handle:
        tree = tree_from_json(handle.read())
    print(analyze(tree).to_text(top=args.top))
    if args.uncertain:
        from repro.uq import from_error_factors, propagate
        model = from_error_factors(tree, error_factor=args.ef)
        result = propagate(tree, model, n_samples=2000,
                           method="rare_event"
                           if tree.is_coherent else "exact")
        print()
        print(result.summary())


def _cmd_simulate(args) -> None:
    import json
    from repro.elbtunnel import (
        COUNTER_FIELDS,
        DesignVariant,
        SimulationConfig,
        TrafficConfig,
    )
    from repro.elbtunnel.study import CORRIDOR_OHV_RATE
    from repro.engine import Engine, SimulationJob
    config = SimulationConfig(
        duration=60.0 * 24 * args.days, timer1=30.0, timer2=args.timer2,
        variant=DesignVariant(args.variant),
        traffic=TrafficConfig(ohv_rate=CORRIDOR_OHV_RATE, p_correct=1.0,
                              hv_odfinal_rate=0.13),
        seed=args.seed)
    job = SimulationJob(config, replications=args.replications)
    batch = Engine(workers=args.workers).run(job)
    pooled = batch.pooled()
    result = pooled.result
    lo, hi = pooled.alarm_ci

    if args.as_json:
        payload = {
            "job": job.describe(),
            "variant": args.variant,
            "days": args.days,
            "replications": batch.replications,
            "seeds": list(batch.seeds),
            "counters": [dict(zip(COUNTER_FIELDS, row))
                         for row in batch.counters.rows()],
            "pooled": {
                "counters": dict(zip(COUNTER_FIELDS,
                                     result.counters())),
                "correct_ohv_alarm_fraction":
                    pooled.correct_ohv_alarm_fraction,
                "ci": [lo, hi],
                "confidence": pooled.confidence,
                "between_variance": pooled.between_variance,
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return

    print(f"variant          : {args.variant}")
    print(f"simulated        : {args.days:g} days x "
          f"{batch.replications} replications, "
          f"{result.ohvs_total} OHVs, {result.hv_crossings} HV crossings")
    print(f"false alarms     : {result.false_alarms}")
    print(f"collisions       : {result.collisions}")
    print(f"P(alarm|OHV)     : {result.correct_ohv_alarm_fraction:.4f} "
          f"[{lo:.4f}, {hi:.4f}]")
    if batch.replications > 1:
        print(f"between-run var  : {pooled.between_variance:.3g}")
        fractions = batch.alarm_fractions()
        for replication in range(batch.replications):
            row = batch.result(replication)
            print(f"  rep {replication:<3}: "
                  f"P = {fractions[replication]:.4f}, "
                  f"{row.false_alarms} false alarms, "
                  f"{row.collisions} collisions")


def _cmd_batch(args) -> None:
    import json
    from repro.engine import (
        Engine,
        MonteCarloJob,
        QuantifyJob,
        SweepJob,
        jobs_from_payload,
        result_envelope,
    )
    from repro.errors import EngineError
    with open(args.file) as handle:
        try:
            spec = json.load(handle)
        except json.JSONDecodeError as exc:
            raise EngineError(f"invalid job file: {exc}") from None
    jobs = jobs_from_payload(spec, compiled=args.compiled)
    fault_plan = None
    if args.fault_plan:
        from repro.resilience import load_fault_plan
        fault_plan = load_fault_plan(args.fault_plan)
    engine = Engine(workers=args.workers, cache_path=args.cache,
                    cache_backend=args.cache_backend,
                    cache_ttl=args.cache_ttl,
                    cache_max_bytes=args.cache_max_bytes,
                    warm_manifest=args.warm_manifest,
                    fault_plan=fault_plan)
    for job in jobs:
        engine.submit(job)
    # The same path the server takes per request: run_shared records
    # fingerprint/cache/wall-time provenance for the result envelope.
    outcomes = engine.run_all_shared()
    results = [outcome.result for outcome in outcomes]
    if args.cache:
        engine.save_cache()
    if args.write_manifest:
        from repro.engine import write_manifest
        write_manifest(args.write_manifest, engine.cache.hot_keys())

    if args.as_json:
        payload = [result_envelope(job, outcome, job_id=f"job-{i}",
                                   index=i - 1)
                   for i, (job, outcome)
                   in enumerate(zip(jobs, outcomes), 1)]
        stats = engine.stats()
        print(json.dumps({"results": payload,
                          "stats": {"backend": stats.cache_backend,
                                    **stats.cache}}, indent=2,
                         sort_keys=True))
        return
    print(f"batch: {len(results)} jobs from {args.file}")
    for index, (job, result) in enumerate(zip(jobs, results), 1):
        if isinstance(job, QuantifyJob):
            line = f"P = {result:.6g}"
        elif isinstance(job, SweepJob):
            point, value = result.best()
            at = ", ".join(f"{k}={v:g}" for k, v in sorted(point.items()))
            line = (f"{len(result)} points, "
                    f"min {value:.6g} at ({at}), "
                    f"max {max(result.values):.6g}")
        elif isinstance(job, MonteCarloJob):
            line = (f"p = {result.probability:.6g} "
                    f"[{result.ci_low:.6g}, {result.ci_high:.6g}] "
                    f"@{result.confidence:.0%}, n={result.samples}")
        else:  # pragma: no cover - job kinds are closed above
            line = repr(result)
        print(f"[{index}] {job.describe()}: {line}")
    print(f"engine: {engine.stats().summary()}")


def _describe_edit(edit) -> str:
    op = edit.get("op") if isinstance(edit, dict) else None
    if op == "set_rate":
        return f"set_rate {edit.get('event')}={edit.get('probability'):g}"
    if op == "set_house":
        return f"set_house {edit.get('event')}={edit.get('state')}"
    if op == "set_gate":
        suffix = f", k={edit['k']}" if "k" in edit else ""
        return (f"set_gate {edit.get('event')}"
                f"->{edit.get('type')}{suffix}")
    return repr(edit)


def _cmd_whatif(args) -> None:
    import json
    from repro.engine.cache import create_cache
    from repro.errors import IncrementalError
    from repro.incremental import IncrementalSession

    if args.edits == "-":
        raw = sys.stdin.read()
    else:
        with open(args.edits) as handle:
            raw = handle.read()
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise IncrementalError(f"invalid edits file: {exc}") from None
    if isinstance(payload, dict):
        edits = payload.get("edits")
        probabilities = payload.get("probabilities")
    else:
        edits, probabilities = payload, None
    if not isinstance(edits, list):
        raise IncrementalError(
            "the edits file must hold a JSON list of edits "
            "(or an object with an 'edits' list)")

    if getattr(args, "file", None):
        from repro.fta import tree_from_json
        with open(args.file) as handle:
            tree = tree_from_json(handle.read())
    else:
        from repro.elbtunnel import (
            collision_fault_tree,
            corridor_fault_tree,
            false_alarm_fault_tree,
            fig2_fault_tree,
        )
        builders = {"fig2": fig2_fault_tree,
                    "collision": collision_fault_tree,
                    "false-alarm": false_alarm_fault_tree,
                    "corridor": corridor_fault_tree}
        tree = builders[args.tree]()

    cache = None
    if args.cache:
        cache = create_cache(backend=args.cache_backend, path=args.cache,
                             ttl=args.cache_ttl,
                             max_bytes=args.cache_max_bytes)
    session = IncrementalSession(tree, probabilities, cache=cache,
                                 sift_threshold=args.sift_threshold)
    baseline = session.quantify()
    # Stream one line per step so an interactive caller (or a pipe) sees
    # each re-quantification as it lands, not after the whole script.
    if args.as_json:
        print(json.dumps({"event": "baseline", "tree": tree.name,
                          "modules": session.modules,
                          "value": baseline}), flush=True)
        for index, edit in enumerate(edits, 1):
            report = session.apply([edit])
            print(json.dumps({"event": "edit", "index": index,
                              **report.as_dict()}), flush=True)
        print(json.dumps({"event": "done",
                          "stats": session.stats.as_dict()}), flush=True)
    else:
        print(f"whatif {tree.name!r}: baseline P = {baseline:.6g} "
              f"({len(session.modules)} modules)", flush=True)
        for index, edit in enumerate(edits, 1):
            report = session.apply([edit])
            dirty = ", ".join(report.dirty)
            print(f"[{index}] {_describe_edit(edit)}: "
                  f"P = {report.value:.6g} (dirty: {dirty}; "
                  f"{report.wall_time_s * 1000.0:.2f} ms)", flush=True)
        stats = session.stats.as_dict()
        print(f"stats: {stats['module_compiles']} compiles, "
              f"{stats['tape_hits']} tape hits, "
              f"{stats['value_hits']} value hits, "
              f"{stats['value_misses']} evaluations")
    if cache is not None:
        cache.save()


def _cmd_serve(args) -> None:
    from repro.serve import ServerConfig, serve
    fault_plan = None
    if args.fault_plan:
        from repro.resilience import load_fault_plan
        fault_plan = load_fault_plan(args.fault_plan)
    config = ServerConfig(host=args.host, port=args.port,
                          workers=args.workers,
                          cache_path=args.cache,
                          cache_backend=args.cache_backend,
                          cache_capacity=args.cache_capacity,
                          cache_ttl=args.cache_ttl,
                          cache_max_bytes=args.cache_max_bytes,
                          warm_manifest=args.warm_manifest,
                          max_concurrency=args.max_concurrency,
                          queue_limit=args.queue_limit,
                          request_timeout=args.timeout,
                          fault_plan=fault_plan)
    serve(config)


def _parse_percentiles(text: str):
    from repro.errors import UQError
    try:
        values = [float(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise UQError(
            f"percentiles must be comma-separated numbers, "
            f"got {text!r}") from None
    if not values or not all(0.0 <= q <= 100.0 for q in values):
        raise UQError(
            f"percentiles must lie in [0, 100], got {text!r}")
    return values


def _cmd_uq(args) -> None:
    import json
    from repro.elbtunnel import standalone_tree, standalone_uncertain_model
    from repro.engine import Engine, UncertaintyJob
    from repro.fta import tree_from_json
    from repro.uq import from_error_factors, sobol_indices
    from repro.viz import histogram, line_chart, tornado_table
    qs = _parse_percentiles(args.percentiles)
    if args.file:
        with open(args.file) as handle:
            tree = tree_from_json(handle.read())
        model = from_error_factors(tree, error_factor=args.ef)
    else:
        tree = standalone_tree(args.tree)
        model = standalone_uncertain_model(args.tree)
    engine = Engine(workers=args.workers)
    job = UncertaintyJob(tree, model, samples=args.samples,
                         seed=args.seed, sampler=args.sampler,
                         method=args.method)
    result = engine.run(job)
    sobol = None
    if args.sobol:
        sobol = sobol_indices(tree, model,
                              n_samples=max(2, args.samples // 2),
                              seed=args.seed, sampler=args.sampler,
                              method=args.method)

    if args.as_json:
        payload = {
            "job": job.describe(),
            "mean": result.mean,
            "std": result.std,
            "percentiles": {f"{q:g}": result.percentile(q) for q in qs},
            "interval90": list(result.interval(0.90)),
            "samples": result.n_samples,
            "sampler": result.sampler,
            "seed": result.seed,
            "method": result.method,
        }
        if sobol is not None:
            payload["sobol"] = {"first": sobol.first,
                                "total": sobol.total}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    print(result.summary())
    for q in qs:
        print(f"  p{q:g}".ljust(11) + f": {result.percentile(q):.6g}")
    print()
    print(histogram(list(result.samples), bins=12,
                    title="Top-event probability distribution"))
    curve = result.exceedance_curve()
    if len(curve) > 1:
        lo, hi = result.interval(0.90)
        band = [(t, 0.0, 1.0) for t, _p in curve if lo <= t <= hi]
        print()
        print(line_chart(
            {"P(risk > t)": curve},
            bands={"90% credible region": band} if band else None,
            y_min=0.0, y_max=1.0, width=56, height=12,
            title="Exceedance curve — probability the true risk "
                  "exceeds t"))
    if sobol is not None:
        print()
        print(tornado_table(
            sobol.first, sobol.total,
            title=f"Sobol sensitivity ({sobol.n_samples} samples)"))


_HANDLERS = {
    "study": _cmd_study,
    "optimize": _cmd_optimize,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "cutsets": _cmd_cutsets,
    "report": _cmd_report,
    "simulate": _cmd_simulate,
    "batch": _cmd_batch,
    "whatif": _cmd_whatif,
    "serve": _cmd_serve,
    "uq": _cmd_uq,
}


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
