"""repro — Safety Optimization (Ortmeier & Reif, DSN 2004).

A complete implementation of *safety optimization*: quantitative fault
tree analysis extended with constraint probabilities and parameterized
probabilities, combined with mathematical optimization of a hazard cost
function, plus the Elbtunnel height-control case study the paper
evaluates on.

Quickstart::

    from repro.elbtunnel import build_safety_model
    from repro.core import SafetyOptimizer

    model = build_safety_model()
    result = SafetyOptimizer(model).optimize("zoom")
    print(result.summary())

Subpackages
-----------
``repro.core``       safety optimization (the paper's contribution)
``repro.fta``        fault tree analysis substrate
``repro.bdd``        ROBDD engine for exact quantification
``repro.compile``    vectorized quantification compiler (batch evaluators)
``repro.engine``     parallel batch evaluation with result caching
``repro.uq``         epistemic uncertainty quantification & sensitivity
``repro.stats``      distributions, reliability models, estimation
``repro.opt``        optimization algorithms over compact boxes
``repro.sim``        discrete-event simulation and Monte Carlo engines
``repro.elbtunnel``  the Elbtunnel case study
``repro.viz``        ASCII tables and plots for benchmark reports
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
