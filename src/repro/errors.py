"""Exception hierarchy for the safety-optimization library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate by subsystem.
"""


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class FaultTreeError(ReproError):
    """A fault tree is structurally invalid or used incorrectly."""


class ValidationError(FaultTreeError):
    """A fault tree failed structural validation (cycles, bad arity, ...)."""


class QuantificationError(ReproError):
    """Probability quantification failed (missing data, bad method, ...)."""


class DistributionError(ReproError):
    """A probability distribution was parameterized or used incorrectly."""


class OptimizationError(ReproError):
    """An optimization run could not be performed or did not converge."""


class BDDError(ReproError):
    """A binary decision diagram operation failed."""


class SimulationError(ReproError):
    """A discrete-event simulation or Monte Carlo run failed."""


class ModelError(ReproError):
    """A safety model is inconsistent (unknown parameter, missing cost, ...)."""


class SerializationError(ReproError):
    """Reading or writing a fault tree representation failed."""


class EngineError(ReproError):
    """A batch-evaluation engine job is invalid or could not be run."""


class IncrementalError(ReproError):
    """An incremental what-if session or edit operation is invalid."""


class UQError(ReproError):
    """An uncertainty-quantification model or analysis is invalid."""


class ServeError(ReproError):
    """A risk-analysis service request failed or was rejected.

    Carries the HTTP ``status`` the server answered with (0 for purely
    client-side failures such as an unreachable server).
    """

    def __init__(self, message: str, status: int = 0):
        super().__init__(message)
        self.status = int(status)


class ServeUnavailableError(ServeError):
    """The service could not be reached within the client's retry budget.

    Raised by :class:`~repro.serve.client.ServeClient` after its bounded
    reconnect attempts (or its circuit breaker) gave up — a *typed*
    signal that the server is down or unreachable, as opposed to a
    request the server answered with an error status.
    """


class ResilienceError(ReproError):
    """A fault-injection plan or resilience policy is invalid."""
