"""Batched multi-replication Elbtunnel entrance simulation.

:func:`simulate_batch` runs R independent replications of the traffic
simulation (:mod:`repro.elbtunnel.simulation`) as one batch instead of R
sequential :func:`~repro.elbtunnel.simulation.simulate` calls.  Per-
replication seeds come from :func:`repro.sim.batch.replication_seeds`,
counters land in a structure-of-arrays
:class:`~repro.sim.batch.CounterMatrix`, and statistics (pooled Wilson
interval, per-replication intervals, between-replication variance) are
batch reductions.

**Bit-identity contract.**  Replication ``r`` of a batch produces
*exactly* the counters of the scalar kernel at the same seed::

    simulate_batch(config, n).result(r)
        == simulate(replace(config, seed=replication_seeds(config.seed,
                                                           n)[r]))

The scalar path stays in the tree as the oracle (``tests/elbtunnel``
pins the equivalence, mirroring ``tests/bdd/_reference.py``), and the
equality is integer-exact — not statistical — at any worker or shard
count.

**How the fast path is fast.**  When no spurious-detection Poisson
chains are configured (``fd_*_rate == 0`` — the Fig. 6 corridor
workloads), every RNG draw's *position* in the stream is known before
the event loop runs: the traffic streams are drawn eagerly (exactly as
the scalar kernel draws them), and the in-loop draws (OD-miss
Bernoullis) occur at statically known events in time order.  The kernel
therefore pre-draws the uniforms in one block from the same seeded
stream, replays the few hundred vehicle events through an inlined copy
of the controller state machine (recording the controller state
timeline), and then resolves the tens of thousands of HV-crossing
events — 90+ % of all events — with vectorized NumPy index lookups and
comparisons.  No floating-point *arithmetic* moves to NumPy, only exact
comparisons and integer reductions, so there is no ULP hazard: every
float is produced by the same scalar Python expressions the kernel
classes evaluate.

Spurious-detection configs draw from the shared RNG lazily (each fired
trigger schedules — and draws for — the next), with data-dependent
interleaving that cannot be pre-drawn; those replications run the scalar
:class:`~repro.elbtunnel.simulation.EntranceSimulation` unchanged
(identical by construction) while still gaining batch sharding, pooling
and caching through :class:`~repro.engine.jobs.SimulationJob`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from math import log
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.elbtunnel.config import DesignVariant
from repro.elbtunnel.simulation import (
    COUNTER_FIELDS,
    PooledSimulation,
    SimulationConfig,
    SimulationResult,
    pool_results,
    simulate,
)
from repro.errors import SimulationError
# The scalar kernel draws transit times by inverse transform through
# TruncatedNormal.ppf; the batch kernel evaluates the same quantile
# expression with its constant parts hoisted, so it needs the same
# internal normal-CDF kernels the distribution evaluates.
from repro.stats.distributions import (
    TruncatedNormal,
    _big_phi,
    _big_phi_inv,
)
from repro.sim.batch import (
    CounterMatrix,
    between_replication_variance,
    per_replication_wilson,
    replication_seeds,
)

#: Event kinds of the inlined vehicle timeline (scheduling order of the
#: scalar kernel: LBpre, LBpost, ODfinal area — per vehicle).
_LBPRE, _LBPOST, _ODFINAL = 0, 1, 2


def fast_path_supported(config: SimulationConfig) -> bool:
    """True when the vectorized replication kernel applies.

    Spurious-detection Poisson chains (``fd_*_rate > 0``) draw their
    next-gap lazily when the previous trigger fires, so the RNG draw
    order depends on simulated data and cannot be pre-drawn; such
    configs run the scalar kernel per replication instead.
    """
    return (config.fd_lbpre_rate == 0.0 and config.fd_lbpost_rate == 0.0
            and config.fd_odfinal_rate == 0.0)


def _fast_counters(config: SimulationConfig) -> Tuple[int, ...]:
    """One replication through the vectorized kernel.

    Returns the :data:`~repro.elbtunnel.simulation.COUNTER_FIELDS` row,
    bit-identical to ``simulate(config).counters()``.
    """
    duration = config.duration
    traffic = config.traffic
    with_lb4 = config.variant is DesignVariant.WITH_LB4
    lb_at_od = config.variant is DesignVariant.LB_AT_ODFINAL
    timer1 = config.timer1
    timer2 = config.timer2
    p_miss = config.od_miss_probability
    lb_passage = config.lb_passage_time
    single_ohv = config.single_ohv_assumption

    # ------------------------------------------------------------------
    # Traffic streams — the exact draws (and draw order) of the scalar
    # kernel's TrafficGenerator, inlined: per OHV one exponential gap,
    # the route draws, then the two truncated-normal transit samples;
    # afterwards the HV-crossing Poisson stream, all from the same
    # seeded generator stream.  The truncated-normal quantile is
    # ``mu + sigma * phi_inv(lo + u * mass)`` with ``lo``/``mass``
    # constants of the distribution — hoisted out of the loop, computed
    # by the distribution object itself so the float values match
    # ``TruncatedNormal.ppf`` bit-for-bit.
    # ------------------------------------------------------------------
    transit = TruncatedNormal(mu=traffic.transit_mean,
                              sigma=traffic.transit_std, lower=0.0)
    transit_lo = _big_phi(transit._alpha())
    transit_mass = transit._mass()
    transit_mu = transit.mu
    transit_sigma = transit.sigma
    phi_inv = _big_phi_inv

    rand = random.Random(config.seed).random
    ohv_rate = traffic.ohv_rate
    p_correct = traffic.p_correct
    p_wrong_early = traffic.p_wrong_early

    # Vehicle timelines as flat lists (object/property access per event
    # is the scalar loop's single biggest constant factor).
    arrivals: List[float] = []
    t_lbpost: List[float] = []
    t_odfinal: List[float] = []
    is_correct: List[bool] = []
    is_left: List[bool] = []     # wrong lane already visible at LBpost
    is_cross: List[bool] = []    # drives through ODfinal's scan area
    ohvs_correct = 0
    time = 0.0
    while True:
        time += -log(1.0 - rand()) / ohv_rate
        if time > duration:
            break
        # TrafficGenerator._route(): one draw, a second for wrong OHVs.
        if rand() < p_correct:
            correct, left, cross = True, False, False
            ohvs_correct += 1
        else:
            correct = False
            left = rand() < p_wrong_early
            cross = True
        u = rand()
        if u <= 0.0:
            u = 5e-324
        zone1 = transit_mu + transit_sigma * phi_inv(
            transit_lo + u * transit_mass)
        u = rand()
        if u <= 0.0:
            u = 5e-324
        zone2 = transit_mu + transit_sigma * phi_inv(
            transit_lo + u * transit_mass)
        lbpost = time + zone1
        arrivals.append(time)
        t_lbpost.append(lbpost)
        t_odfinal.append(lbpost + zone2)
        is_correct.append(correct)
        is_left.append(left)
        is_cross.append(cross)

    crossing_times: List[float] = []
    if traffic.hv_odfinal_rate > 0.0:
        rate = traffic.hv_odfinal_rate
        append = crossing_times.append
        time = 0.0
        while True:
            time += -log(1.0 - rand()) / rate
            if time > duration:
                break
            append(time)

    n_vehicles = len(arrivals)
    n_crossings = len(crossing_times)

    # Executed vehicle events, in execution order.  The scalar kernel
    # schedules all vehicle events before any crossing, so sequence
    # numbers are 3i + {0, 1, 2} and every crossing breaks time ties
    # *after* every vehicle event; run_until executes times <= duration.
    events: List[Tuple[float, int, int, int]] = []
    event_append = events.append
    for i in range(n_vehicles):
        seq = 3 * i
        event_append((arrivals[i], seq, _LBPRE, i))
        if t_lbpost[i] <= duration:
            event_append((t_lbpost[i], seq + 1, _LBPOST, i))
        if t_odfinal[i] <= duration:
            event_append((t_odfinal[i], seq + 2, _ODFINAL, i))
    events.sort()

    # ------------------------------------------------------------------
    # Pre-draw the in-loop uniforms.  With no FD chains, the simulation
    # RNG is consulted exactly at: LBpost passages on the left lane
    # (ODleft), ODfinal-area passages of crossing OHVs (ODfinal), and
    # every HV crossing (ODfinal) — in event-execution order.  Drawing
    # that block up front from the same seeded stream reproduces the
    # scalar draws positionally.
    # ------------------------------------------------------------------
    rng = random.Random(config.seed ^ 0x5AFE)
    rand = rng.random
    vehicle_draws: List[Tuple[float, int, int]] = []   # (time, kind, i)
    for time, _seq, kind, i in events:
        if kind == _LBPOST:
            if is_left[i]:
                vehicle_draws.append((time, kind, i))
        elif kind == _ODFINAL and is_cross[i]:
            vehicle_draws.append((time, kind, i))
    u_lbpost: Dict[int, float] = {}
    u_odfinal: Dict[int, float] = {}
    if not vehicle_draws:
        u_crossings = [rand() for _ in range(n_crossings)]
    else:
        u_crossings = [0.0] * n_crossings
        drawn = 0
        for time, kind, i in vehicle_draws:
            # Crossings strictly earlier than this vehicle event draw
            # first; at equal times the vehicle event's lower sequence
            # number wins.
            while drawn < n_crossings and crossing_times[drawn] < time:
                u_crossings[drawn] = rand()
                drawn += 1
            if kind == _LBPOST:
                u_lbpost[i] = rand()
            else:
                u_odfinal[i] = rand()
        for index in range(drawn, n_crossings):
            u_crossings[index] = rand()

    # ------------------------------------------------------------------
    # Vehicle events: an inlined replay of HeightControl +
    # EntranceSimulation handlers on local state, recording the
    # controller-state timeline the crossing stream reads.
    # ------------------------------------------------------------------
    neg_inf = float("-inf")
    lbpost_armed_until = neg_inf
    odfinal_armed_until = neg_inf
    lb4_window_until = neg_inf
    zone2_count = 0
    incorrect_inside = 0
    alarms_total = 0
    justified_alarms = 0
    false_alarms = 0
    collisions = 0
    alarmed = [False] * n_vehicles
    #: Fig. 6 attribution windows: (t_lbpost, window_end, t_odfinal) per
    #: correct OHV, in opening order (ascending t_lbpost).
    windows: List[Tuple[float, float, float]] = []
    #: False alarms raised at vehicle events (kept for generality; an
    #: OHV-raised alarm always has its rule-breaking raiser inside the
    #: controlled area, hence is justified).
    vehicle_false_alarm_times: List[float] = []

    snap_times = [neg_inf]
    snap_armed = [neg_inf]
    snap_zone2 = [0]
    snap_lb4 = [neg_inf]
    snap_incorrect = [0]

    for time, _seq, kind, i in events:
        if kind == _LBPRE:
            if not is_correct[i]:
                incorrect_inside += 1
            armed = time + timer1
            if armed > lbpost_armed_until:
                lbpost_armed_until = armed
        elif kind == _LBPOST:
            raised = False
            if time <= lbpost_armed_until:
                if single_ohv:
                    # Flawed original design: drop supervision after the
                    # first passage.
                    lbpost_armed_until = time
                if is_left[i] and u_lbpost[i] >= p_miss:
                    raised = True
                    alarmed[i] = True
                    alarms_total += 1
                    if incorrect_inside:
                        justified_alarms += 1
                    else:
                        false_alarms += 1
                        vehicle_false_alarm_times.append(time)
                else:
                    armed = time + timer2
                    if armed > odfinal_armed_until:
                        odfinal_armed_until = armed
                    if with_lb4:
                        zone2_count += 1
            if not raised and is_correct[i]:
                window_end = time + timer2
                if with_lb4 and t_odfinal[i] < window_end:
                    window_end = t_odfinal[i]
                windows.append((time, window_end, t_odfinal[i]))
        else:  # _ODFINAL
            if lb_at_od:
                until = time + lb_passage
                if until > lb4_window_until:
                    lb4_window_until = until
            if is_cross[i]:
                if u_odfinal[i] >= p_miss:
                    critical = time <= odfinal_armed_until
                    if with_lb4 and zone2_count <= 0:
                        critical = False
                    if lb_at_od and time > lb4_window_until:
                        critical = False
                    if critical:
                        alarmed[i] = True
                        alarms_total += 1
                        if incorrect_inside:
                            justified_alarms += 1
                        else:
                            false_alarms += 1
                            vehicle_false_alarm_times.append(time)
            elif with_lb4:
                if zone2_count > 0:
                    zone2_count -= 1
            if not is_correct[i]:
                incorrect_inside -= 1
                if not alarmed[i]:
                    collisions += 1
        snap_times.append(time)
        snap_armed.append(odfinal_armed_until)
        snap_zone2.append(zone2_count)
        snap_lb4.append(lb4_window_until)
        snap_incorrect.append(incorrect_inside)

    # ------------------------------------------------------------------
    # HV crossings, vectorized.  Crossings read controller state but
    # never write it (an ODfinal high reading does not re-arm anything),
    # so each crossing sees the state after the last vehicle event at or
    # before its time — a searchsorted lookup into the timeline.  All
    # comparisons are exact; the compared floats were produced by the
    # same scalar expressions the kernel classes evaluate.
    # ------------------------------------------------------------------
    correct_ohvs_alarmed = 0
    if n_crossings:
        times = np.array(crossing_times, dtype=np.float64)
        sensed = np.array(u_crossings, dtype=np.float64) >= p_miss
        state = np.searchsorted(np.array(snap_times, dtype=np.float64),
                                times, side="right") - 1
        raised = times <= np.array(snap_armed, dtype=np.float64)[state]
        if with_lb4:
            raised &= np.array(snap_zone2, dtype=np.int64)[state] > 0
        if lb_at_od:
            raised &= times <= np.array(snap_lb4,
                                        dtype=np.float64)[state]
        raised &= sensed
        justified = np.array(snap_incorrect,
                             dtype=np.int64)[state] > 0
        raised_count = int(np.count_nonzero(raised))
        justified_count = int(np.count_nonzero(raised & justified))
        alarms_total += raised_count
        justified_alarms += justified_count
        false_alarms += raised_count - justified_count
        crossing_false_times = times[raised & ~justified]
    else:
        crossing_false_times = np.empty(0, dtype=np.float64)

    # ------------------------------------------------------------------
    # Fig. 6 attribution: mark every window a false alarm falls into.
    # Which alarm marks a window first does not change the counters (a
    # window counts once, when any false alarm matches it), so marking
    # after the loops is exact; alarms are processed in time order with
    # a frontier over the opening-ordered window list.
    # ------------------------------------------------------------------
    if windows and (vehicle_false_alarm_times
                    or crossing_false_times.size):
        if vehicle_false_alarm_times:
            false_times = sorted(
                vehicle_false_alarm_times
                + crossing_false_times.tolist())
        else:
            false_times = crossing_false_times.tolist()
        n_windows = len(windows)
        marked = bytearray(n_windows)
        active: List[int] = []
        opened = 0
        for now in false_times:
            while opened < n_windows and windows[opened][0] <= now:
                active.append(opened)
                opened += 1
            if not active:
                continue
            still_active: List[int] = []
            for index in active:
                t_post, window_end, t_odf = windows[index]
                if window_end < now:
                    continue
                still_active.append(index)
                if marked[index]:
                    continue
                if lb_at_od and abs(now - t_odf) > lb_passage:
                    continue
                marked[index] = 1
                correct_ohvs_alarmed += 1
            active = still_active

    return (n_vehicles, ohvs_correct, n_vehicles - ohvs_correct,
            n_crossings, alarms_total, false_alarms, justified_alarms,
            collisions, correct_ohvs_alarmed)


def _scalar_counters(config: SimulationConfig) -> Tuple[int, ...]:
    """One replication through the scalar oracle kernel."""
    return simulate(config).counters()


def replicate_counters(config: SimulationConfig,
                       seeds: Sequence[int]) -> List[Tuple[int, ...]]:
    """Counter rows for one replication per seed, in seed order.

    The shard worker of :class:`~repro.engine.jobs.SimulationJob`: rows
    are pure functions of ``(config, seed)``, so any partition of the
    seed list across processes reassembles to the same batch.
    """
    kernel = _fast_counters if fast_path_supported(config) \
        else _scalar_counters
    rows = []
    for seed in seeds:
        seed = int(seed)
        run_config = config if config.seed == seed \
            else replace(config, seed=seed)
        rows.append(kernel(run_config))
    return rows


@dataclass(frozen=True)
class BatchSimulationResult:
    """Counters and statistics of R batched replications."""

    #: Per-run simulated duration (every replication shares the config).
    duration: float
    seeds: Tuple[int, ...]
    counters: CounterMatrix

    @property
    def replications(self) -> int:
        return len(self.seeds)

    def result(self, replication: int) -> SimulationResult:
        """One replication's counters as a scalar-shaped result."""
        return SimulationResult.from_counters(
            self.duration, self.counters.row(replication))

    @property
    def results(self) -> List[SimulationResult]:
        """All replications as scalar-shaped results, in order."""
        return [self.result(r) for r in range(self.replications)]

    def pooled(self, confidence: float = 0.95) -> PooledSimulation:
        """Replication-pooled counters and Wilson interval."""
        return pool_results(self.results, confidence)

    def alarm_fractions(self) -> np.ndarray:
        """The per-replication Fig. 6 statistic as a float array.

        Replications without a correct OHV get the same ``0.0``
        placeholder as ``SimulationResult.correct_ohv_alarm_fraction``;
        the statistics (:meth:`between_variance`, :meth:`pooled`)
        exclude such replications as carrying no data.
        """
        alarmed = self.counters.column("correct_ohvs_alarmed")
        correct = self.counters.column("ohvs_correct")
        return np.divide(alarmed, correct,
                         out=np.zeros(self.replications),
                         where=correct > 0)

    def alarm_cis(self, confidence: float = 0.95
                  ) -> List[Tuple[float, float]]:
        """Per-replication Wilson intervals of the Fig. 6 statistic."""
        return per_replication_wilson(
            self.counters.column("correct_ohvs_alarmed"),
            self.counters.column("ohvs_correct"), confidence)

    def between_variance(self) -> float:
        """Between-replication variance of the Fig. 6 statistic.

        Matches the :func:`~repro.elbtunnel.simulation.pool_results`
        contract: replications without a correct OHV are excluded (their
        fraction is a placeholder, not an observation).
        """
        informative = self.counters.column("ohvs_correct") > 0
        return between_replication_variance(
            self.alarm_fractions()[informative])

    @classmethod
    def from_rows(cls, duration: float, seeds: Sequence[int],
                  rows: Sequence[Tuple[int, ...]]
                  ) -> "BatchSimulationResult":
        """Assemble a batch result from per-replication counter rows."""
        if len(rows) != len(seeds):
            raise SimulationError(
                f"got {len(rows)} counter rows for {len(seeds)} seeds")
        matrix = CounterMatrix(COUNTER_FIELDS, len(seeds))
        for replication, row in enumerate(rows):
            matrix.set_row(replication, row)
        return cls(duration=float(duration),
                   seeds=tuple(int(s) for s in seeds), counters=matrix)

    def encode(self) -> Dict[str, object]:
        """JSON-safe encoding (for the engine's persistable cache)."""
        return {"duration": self.duration,
                "seeds": list(self.seeds),
                "counters": [list(row) for row in self.counters.rows()]}

    @classmethod
    def decode(cls, encoded: Mapping[str, object]
               ) -> "BatchSimulationResult":
        """Inverse of :meth:`encode`."""
        return cls.from_rows(encoded["duration"], encoded["seeds"],
                             [tuple(row) for row in encoded["counters"]])


def simulate_batch(config: SimulationConfig, replications: int = 1,
                   seed: Optional[int] = None) -> BatchSimulationResult:
    """Run ``replications`` independent replications as one batch.

    Replication seeds derive from ``seed`` (default: ``config.seed``)
    via :func:`repro.sim.batch.replication_seeds`; each replication's
    counters are bit-identical to ``simulate()`` at that seed.  This is
    the in-process engine; :class:`~repro.engine.jobs.SimulationJob`
    shards the same computation across a worker pool and caches it.
    """
    base_seed = config.seed if seed is None else int(seed)
    seeds = replication_seeds(base_seed, replications)
    rows = replicate_counters(config, seeds)
    return BatchSimulationResult.from_rows(config.duration, seeds, rows)
