"""Epistemic uncertainty models for the Elbtunnel case study.

The paper's quantitative inputs are calibrated estimates (Sect. V warns
the conclusions "depend a lot on how well the statistical model reflects
reality"); the configuration constants in
:class:`~repro.elbtunnel.config.ElbtunnelConfig` are point values.  This
module states what is plausibly *known* about them:

* rate-like constants (the accumulated ``Pconst1``/``Pconst2``, sensor
  false-detection probabilities) get lognormal error-factor
  distributions, the way reliability databases report rate uncertainty;
* the traffic fraction ``P(OHV critical)`` gets a Beta posterior as it
  would come out of :func:`repro.stats.bayes.update_binomial` on
  operating counts (a Jeffreys prior updated with roughly ten observed
  critical OHVs);
* overtime and exposure-window probabilities that depend on the timers
  are *design-parameterized*, not epistemic — the robust problem keeps
  them as assignments and samples only the genuinely uncertain leaves.

:func:`robust_timer_problem` assembles the paper's timer optimization
with the collision and false-alarm hazards quantified at a chosen risk
percentile — the Sect. IV-C optimization made robust.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.elbtunnel.config import ElbtunnelConfig
from repro.elbtunnel.faulttrees import (
    build_fault_tree_model,
    collision_fault_tree,
    corridor_fault_tree,
    false_alarm_fault_tree,
)
from repro.elbtunnel.model import COLLISION, FALSE_ALARM
from repro.errors import UQError
from repro.fta.events import PrimaryFailure
from repro.stats.bayes import Beta
from repro.stats.distributions import TruncatedNormal
from repro.stats.reliability import ExposureWindowModel
from repro.uq.robust import robust_problem
from repro.uq.spec import UncertainModel, lognormal_error_factor

#: Error factors used for the accumulated/rate-like constants: the
#: residual cut-set aggregates (``Pconst1/2``) are the least observable
#: quantities and get the widest band.
EF_RESIDUAL = 10.0
EF_RATE = 3.0

#: Pseudo-count of observed critical OHVs behind the Beta posterior of
#: ``P(OHV critical)`` (a Jeffreys prior updated with ~10 events).
_CRITICAL_EVENTS = 10.5


def _critical_posterior(p_mean: float) -> Beta:
    """Beta posterior of ``P(OHV critical)`` with the given mean.

    Shaped like ``update_binomial(jeffreys_prior(), 10, n)`` for the
    demand count ``n`` that makes the posterior mean hit the calibrated
    point value — operating-experience uncertainty, not a made-up band.
    """
    if not 0.0 < p_mean < 1.0:
        raise UQError(
            f"P(OHV critical) must be in (0, 1), got {p_mean}")
    return Beta(_CRITICAL_EVENTS,
                _CRITICAL_EVENTS * (1.0 - p_mean) / p_mean)


def collision_uncertain_model(config: ElbtunnelConfig = ElbtunnelConfig()
                              ) -> UncertainModel:
    """Uncertainty over the collision tree's non-parameterized leaves."""
    return UncertainModel({
        "OHV_critical": _critical_posterior(config.p_ohv_critical),
        "Other collision causes": lognormal_error_factor(
            config.p_const1, EF_RESIDUAL),
    }, name="collision rates")


def false_alarm_uncertain_model(config: ElbtunnelConfig =
                                ElbtunnelConfig()) -> UncertainModel:
    """Uncertainty over the false-alarm tree's non-parameterized leaf."""
    return UncertainModel({
        "Other false alarm causes": lognormal_error_factor(
            config.p_const2, EF_RESIDUAL),
    }, name="false-alarm rates")


def elbtunnel_uncertain_models(config: ElbtunnelConfig = ElbtunnelConfig()
                               ) -> Dict[str, UncertainModel]:
    """Per-hazard uncertain models for :func:`robust_timer_problem`."""
    return {COLLISION: collision_uncertain_model(config),
            FALSE_ALARM: false_alarm_uncertain_model(config)}


def corridor_uncertain_model(sections: int = 64) -> UncertainModel:
    """Error-factor model over every leaf of the corridor tree.

    The production-scale UQ workload: ``2 * sections + 1`` lognormal
    leaves pushed through the corridor tree — the benchmark case of
    ``benchmarks/test_bench_uq.py``.  Medians come from the tree's own
    declared leaf probabilities (one source of truth); the error factor
    scales with observability — EF 3 on the per-section OHV
    probabilities, EF 5 on the shared signalling chain, EF 10 on the
    residual aggregates.
    """
    distributions = {}
    for event in corridor_fault_tree(sections).iter_events():
        if not isinstance(event, PrimaryFailure):
            continue
        if event.name == "Signal not shown":
            error_factor = 5.0
        elif event.name.startswith("Other collision causes"):
            error_factor = EF_RESIDUAL
        else:
            error_factor = EF_RATE
        distributions[event.name] = lognormal_error_factor(
            event.probability, error_factor)
    return UncertainModel(distributions, name="corridor rates")


def standalone_uncertain_model(tree_name: str,
                               config: ElbtunnelConfig = ElbtunnelConfig(),
                               t1: float = 19.0, t2: float = 15.6
                               ) -> UncertainModel:
    """A complete uncertain model for one built-in quantitative tree.

    For CLI-style standalone propagation every leaf needs either a
    default or a distribution; the timer-dependent leaves are frozen at
    the operating point ``(t1, t2)`` — the paper's optimum by default —
    and wrapped in rate-style error factors.
    """
    transit = TruncatedNormal(mu=config.transit_mean,
                              sigma=config.transit_std, lower=0.0)
    if tree_name == "collision":
        return collision_uncertain_model(config).updated({
            "OT1": lognormal_error_factor(transit.sf(t1), EF_RATE),
            "OT2": lognormal_error_factor(transit.sf(t2), EF_RATE),
        })
    if tree_name == "false-alarm":
        hv_window = ExposureWindowModel(config.hv_odfinal_rate)
        fd_window = ExposureWindowModel(config.fd_lbpost_rate)
        armed = config.p_ohv_present + \
            (1.0 - config.p_ohv_present) * config.p_fd_lbpre * \
            fd_window.probability(t1)
        return false_alarm_uncertain_model(config).updated({
            "HV_ODfinal": lognormal_error_factor(
                hv_window.probability(t2), EF_RATE),
            "ODfinal_armed": lognormal_error_factor(armed, EF_RATE),
        })
    if tree_name == "corridor":
        return corridor_uncertain_model()
    raise UQError(
        f"no uncertain model for tree {tree_name!r}; expected "
        f"'collision', 'false-alarm' or 'corridor'")


def standalone_tree(tree_name: str,
                    config: ElbtunnelConfig = ElbtunnelConfig()):
    """The fault tree matching :func:`standalone_uncertain_model`."""
    builders = {"collision": lambda: collision_fault_tree(config),
                "false-alarm": lambda: false_alarm_fault_tree(config),
                "corridor": corridor_fault_tree}
    try:
        builder = builders[tree_name]
    except KeyError:
        raise UQError(
            f"unknown built-in tree {tree_name!r}; expected one of "
            f"{sorted(builders)}") from None
    return builder()


def robust_timer_problem(config: ElbtunnelConfig = ElbtunnelConfig(),
                         n_samples: int = 256, seed: int = 0,
                         sampler: str = "lhs", q: float = 95.0,
                         method: str = "rare_event",
                         name: Optional[str] = None):
    """The Elbtunnel timer optimization against percentile risk.

    Wraps :func:`~repro.elbtunnel.faulttrees.build_fault_tree_model`
    (OT1/OT2 and the ODfinal leaves stay parameterized in T1/T2) with
    the epistemic rate models above, and returns an
    :class:`~repro.opt.problem.Problem` minimizing the ``q``-th
    percentile of the hazard cost — drive it with any optimizer in
    :mod:`repro.opt`::

        from repro.opt import nelder_mead
        problem = robust_timer_problem(q=95.0)
        result = nelder_mead(problem, x0=(30.0, 30.0))
    """
    model = build_fault_tree_model(config, method=method)
    return robust_problem(model, elbtunnel_uncertain_models(config),
                          n_samples=n_samples, seed=seed,
                          sampler=sampler, q=q,
                          name=name or f"Elbtunnel timers @ p{q:g}")
