"""Analytic statistical model of the Elbtunnel height control (Sect. IV).

Implements the paper's formulas verbatim:

* driving time per zone ~ Normal(mu=4, sigma=2) truncated at 0
  (Sect. IV-C), giving the overtime probabilities
  ``P(OT1)(T1) = 1 - P_OHV1(Time <= T1)`` and analogously ``P(OT2)(T2)``;
* exposure-window parameterizations for ``P(FD_LBpost)(T1)`` and
  ``P(HV_ODfinal)(T2)`` — the longer a timer keeps its detector armed,
  the likelier a spurious trigger falls inside the window;
* the constrained hazard formulas of Sect. IV-B.3:

  ``P(HCol) = Pconst1 + P(OHVcrit) * (P(OT1) + (1 - P(OT1)) * P(OT2))``

  ``P(HAlr) = Pconst2 + (P(OHV) + (1 - P(OHV)) * P(FD_LBpre) *
  P(FD_LBpost)(T1)) * P(HV_ODfinal)(T2)``

* the cost function of Sect. IV-C.1:
  ``f_cost(T1, T2) = 100000 * P(HCol)(T1, T2) + 1 * P(HAlr)(T1, T2)``.

And the Fig. 6 analysis: the probability that a *correctly driving* OHV
trips a false alarm, for the three design variants, in the increased-OHV-
traffic environment.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.core.cost import CostModel, HazardCost
from repro.core.model import FormulaHazard, SafetyModel
from repro.core.parameters import Parameter, ParameterSpace
from repro.core.parametric import (
    ParametricProbability,
    exceedance,
    from_model,
)
from repro.elbtunnel.config import DesignVariant, ElbtunnelConfig
from repro.errors import ModelError
from repro.stats.distributions import TruncatedNormal
from repro.stats.reliability import ExposureWindowModel

#: Canonical hazard names (paper Sect. IV-B.1).
COLLISION = "H_Col"
FALSE_ALARM = "H_Alr"

#: Canonical parameter names (paper Sect. IV: runtimes of timers 1 and 2).
TIMER1 = "T1"
TIMER2 = "T2"


def transit_distribution(config: ElbtunnelConfig) -> TruncatedNormal:
    """Zone driving time: Normal(mu, sigma) truncated to non-negatives."""
    return TruncatedNormal(mu=config.transit_mean, sigma=config.transit_std,
                           lower=0.0)


# ----------------------------------------------------------------------
# Parameterized probabilities (Sect. IV-C)
# ----------------------------------------------------------------------
def p_overtime_zone1(config: ElbtunnelConfig) -> ParametricProbability:
    """``P(OT1)(T1)``: OHV needs longer than timer 1's runtime in zone 1."""
    return exceedance(transit_distribution(config), TIMER1,
                      label="P(OT1)(T1)")


def p_overtime_zone2(config: ElbtunnelConfig) -> ParametricProbability:
    """``P(OT2)(T2)``: OHV needs longer than timer 2's runtime in zone 2."""
    return exceedance(transit_distribution(config), TIMER2,
                      label="P(OT2)(T2)")


def p_fd_lbpost(config: ElbtunnelConfig) -> ParametricProbability:
    """``P(FD_LBpost)(T1)``: false detection of LBpost while armed."""
    return from_model(ExposureWindowModel(config.fd_lbpost_rate), TIMER1,
                      label="P(FDLBpost)(T1)")


def p_hv_odfinal(config: ElbtunnelConfig) -> ParametricProbability:
    """``P(HV_ODfinal)(T2)``: a high vehicle under ODfinal while armed."""
    return from_model(ExposureWindowModel(config.hv_odfinal_rate), TIMER2,
                      label="P(HVODfinal)(T2)")


# ----------------------------------------------------------------------
# Hazard formulas (Sect. IV-B.3, parameterized per Sect. IV-C)
# ----------------------------------------------------------------------
def collision_probability(config: ElbtunnelConfig) -> ParametricProbability:
    """``P(HCol)(T1, T2)`` exactly as printed in the paper."""
    ot1 = p_overtime_zone1(config)
    ot2 = p_overtime_zone2(config)
    p_crit = config.p_ohv_critical
    pconst1 = config.p_const1

    def formula(values: Dict[str, float]) -> float:
        o1 = ot1(values)
        o2 = ot2(values)
        return pconst1 + p_crit * (o1 + (1.0 - o1) * o2)

    return ParametricProbability(formula, {TIMER1, TIMER2},
                                 label="P(HCol)(T1,T2)")


def false_alarm_probability(config: ElbtunnelConfig) -> ParametricProbability:
    """``P(HAlr)(T1, T2)`` exactly as printed in the paper.

    The constraint (Sect. IV-B.3) is "the ODfinal sensor is armed":
    either an OHV activated it or both light barriers false-detected —
    ``P(OHV) + (1 - P(OHV)) * P(FD_LBpre) * P(FD_LBpost)(T1)`` — and a
    high vehicle is then misread while the sensor is armed,
    ``P(HV_ODfinal)(T2)``.
    """
    fd_post = p_fd_lbpost(config)
    hv_final = p_hv_odfinal(config)
    p_ohv = config.p_ohv_present
    q_pre = config.p_fd_lbpre
    pconst2 = config.p_const2

    def formula(values: Dict[str, float]) -> float:
        armed = p_ohv + (1.0 - p_ohv) * q_pre * fd_post(values)
        return pconst2 + armed * hv_final(values)

    return ParametricProbability(formula, {TIMER1, TIMER2},
                                 label="P(HAlr)(T1,T2)")


# ----------------------------------------------------------------------
# The safety model & cost function (Sect. IV-C.1)
# ----------------------------------------------------------------------
def parameter_space(config: ElbtunnelConfig) -> ParameterSpace:
    """Timer runtimes T1, T2 over their compact domain, baseline 30/30."""
    return ParameterSpace([
        Parameter(TIMER1, config.timer_min, config.timer_max,
                  default=config.timer1_default, unit="min",
                  description="runtime of timer 1 (zone-1 supervision)"),
        Parameter(TIMER2, config.timer_min, config.timer_max,
                  default=config.timer2_default, unit="min",
                  description="runtime of timer 2 (ODfinal activation)"),
    ])


def cost_model(config: ElbtunnelConfig) -> CostModel:
    """Collision costs 100 000 units, a false alarm costs 1 (Sect. IV-C.1)."""
    return CostModel([
        HazardCost(COLLISION, config.cost_collision,
                   "OHV collides with the tunnel entrance"),
        HazardCost(FALSE_ALARM, config.cost_false_alarm,
                   "unnecessary emergency stop of the tunnel"),
    ])


def build_safety_model(config: ElbtunnelConfig = ElbtunnelConfig()
                       ) -> SafetyModel:
    """The complete Elbtunnel safety-optimization model."""
    return SafetyModel(
        space=parameter_space(config),
        hazards={
            COLLISION: FormulaHazard(collision_probability(config)),
            FALSE_ALARM: FormulaHazard(false_alarm_probability(config)),
        },
        cost_model=cost_model(config),
        name="Elbtunnel height control")


def cost_function(config: ElbtunnelConfig = ElbtunnelConfig()):
    """``f_cost(T1, T2)`` as a plain callable of two floats."""
    model = build_safety_model(config)

    def f_cost(t1: float, t2: float) -> float:
        return model.cost((t1, t2))

    return f_cost


# ----------------------------------------------------------------------
# Fig. 6: per-OHV false alarm probability under the design variants
# ----------------------------------------------------------------------
def correct_ohv_alarm_probability(
        t2: float, variant: DesignVariant = DesignVariant.WITHOUT_LB4,
        config: ElbtunnelConfig = ElbtunnelConfig()) -> float:
    """P(false alarm | a correctly driving OHV is in the controlled area).

    Evaluated in the heavy-traffic environment of Fig. 6 (high vehicles
    under ODfinal at rate ``hv_odfinal_rate_heavy``):

    * ``WITHOUT_LB4`` — ODfinal stays armed for the full runtime ``t2``;
      the alarm fires iff a rule-violating HV passes within the window:
      ``1 - exp(-lambda * t2)``.
    * ``WITH_LB4`` — the extra light barrier stops timer 2 when the OHV
      leaves zone 2, so the armed window is ``min(transit, t2)``:
      ``1 - E[exp(-lambda * min(X, t2))]`` (closed form via the truncated
      normal's capped MGF).
    * ``LB_AT_ODFINAL`` — ODfinal is only critical while the OHV actually
      passes the light barrier (or the barrier false-detects):
      ``1 - (1 - q_fd) * exp(-lambda * t_pass)``.
    """
    if t2 <= 0.0:
        raise ModelError(f"timer runtime must be > 0, got {t2}")
    lam = config.hv_odfinal_rate_heavy
    if variant is DesignVariant.WITHOUT_LB4:
        return -math.expm1(-lam * t2)
    if variant is DesignVariant.WITH_LB4:
        transit = transit_distribution(config)
        return 1.0 - transit.capped_mgf(-lam, t2)
    if variant is DesignVariant.LB_AT_ODFINAL:
        survive = (1.0 - config.p_fd_lb4) * \
            math.exp(-lam * config.lb_passage_time)
        return 1.0 - survive
    raise ModelError(f"unknown design variant {variant!r}")


def fig6_series(config: ElbtunnelConfig = ElbtunnelConfig(),
                t2_min: float = 5.0, t2_max: float = 25.0,
                points: int = 41) -> Dict[str, list]:
    """The two curves of Fig. 6 plus the LB-at-ODfinal improvement.

    Returns a mapping from variant value (``without_LB4`` etc.) to a list
    of ``(t2, probability)`` pairs.
    """
    if points < 2 or not t2_min < t2_max:
        raise ModelError("need points >= 2 and t2_min < t2_max")
    step = (t2_max - t2_min) / (points - 1)
    series: Dict[str, list] = {}
    for variant in DesignVariant:
        series[variant.value] = [
            (t2_min + i * step,
             correct_ohv_alarm_probability(t2_min + i * step, variant,
                                           config))
            for i in range(points)
        ]
    return series
