"""Discrete-event simulation of the northern tunnel entrance.

Wires the traffic model (:mod:`repro.elbtunnel.vehicles`), the sensors
(:mod:`repro.elbtunnel.sensors`) and the controller state machine
(:mod:`repro.elbtunnel.controller`) onto the DES kernel
(:mod:`repro.sim.kernel`) and measures hazard frequencies directly:

* **false alarms** — emergency stops with no rule-breaking OHV inside the
  controlled area,
* **collisions** — rule-breaking OHVs that reach an old tube without an
  emergency stop having been raised for them,
* the **Fig. 6 statistic** — the fraction of *correctly driving* OHVs
  whose armed window caught a false alarm.

The simulation is an independent check of the analytic model: with
matching rates, the measured per-OHV false-alarm fraction must agree with
:func:`repro.elbtunnel.model.correct_ohv_alarm_probability` within
sampling error (tested and benchmarked).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.elbtunnel.config import DesignVariant
from repro.elbtunnel.controller import Alarm, HeightControl
from repro.elbtunnel.sensors import LightBarrier, OverheadDetector
from repro.elbtunnel.vehicles import (
    Lane,
    TrafficConfig,
    TrafficGenerator,
    Vehicle,
)
from repro.errors import SimulationError
from repro.sim.batch import between_replication_variance
from repro.sim.kernel import Simulator
from repro.stats.estimation import pooled_wilson_ci, wilson_ci

#: The integer counters of :class:`SimulationResult`, in declaration
#: order — the row layout of batched replication runs
#: (:mod:`repro.elbtunnel.batch`) and their bit-identity contract.
COUNTER_FIELDS = ("ohvs_total", "ohvs_correct", "ohvs_incorrect",
                  "hv_crossings", "alarms_total", "false_alarms",
                  "justified_alarms", "collisions",
                  "correct_ohvs_alarmed")


@dataclass(frozen=True)
class SimulationConfig:
    """All inputs of one simulation run."""

    duration: float = 60.0 * 24 * 30          # minutes (30 days)
    timer1: float = 30.0
    timer2: float = 30.0
    variant: DesignVariant = DesignVariant.WITHOUT_LB4
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    #: Spurious-trigger rates (per minute powered) of the light barriers.
    fd_lbpre_rate: float = 0.0
    fd_lbpost_rate: float = 0.0
    fd_odfinal_rate: float = 0.0
    #: Per-passage miss probability of the overhead detectors.
    od_miss_probability: float = 0.0
    #: Physical passage time of a light barrier (minutes).
    lb_passage_time: float = 0.3
    #: Reproduce the pre-fix design flaw: LBpost supervision dropped
    #: after the first OHV passage (see HeightControl).
    single_ohv_assumption: bool = False
    seed: int = 0

    def __post_init__(self):
        if self.duration <= 0:
            raise SimulationError("duration must be positive")
        if self.timer1 <= 0 or self.timer2 <= 0:
            raise SimulationError("timer runtimes must be positive")
        for name in ("fd_lbpre_rate", "fd_lbpost_rate", "fd_odfinal_rate"):
            if getattr(self, name) < 0:
                raise SimulationError(f"{name} must be >= 0")
        if not 0.0 <= self.od_miss_probability <= 1.0:
            raise SimulationError("od_miss_probability must be in [0, 1]")


@dataclass
class SimulationResult:
    """Counters and derived statistics of one run."""

    duration: float
    ohvs_total: int = 0
    ohvs_correct: int = 0
    ohvs_incorrect: int = 0
    hv_crossings: int = 0
    alarms_total: int = 0
    false_alarms: int = 0
    justified_alarms: int = 0
    collisions: int = 0
    correct_ohvs_alarmed: int = 0

    @property
    def correct_ohv_alarm_fraction(self) -> float:
        """The Fig. 6 statistic: P(false alarm | correctly driving OHV)."""
        if self.ohvs_correct == 0:
            return 0.0
        return self.correct_ohvs_alarmed / self.ohvs_correct

    def correct_ohv_alarm_ci(self, confidence: float = 0.95):
        """Wilson confidence interval of the Fig. 6 statistic."""
        if self.ohvs_correct == 0:
            raise SimulationError("no correct OHVs simulated")
        return wilson_ci(self.correct_ohvs_alarmed, self.ohvs_correct,
                         confidence)

    @property
    def false_alarm_rate(self) -> float:
        """False alarms per minute of operation."""
        return self.false_alarms / self.duration

    def counters(self) -> Tuple[int, ...]:
        """The integer counters as a row (:data:`COUNTER_FIELDS` order)."""
        return tuple(getattr(self, name) for name in COUNTER_FIELDS)

    @classmethod
    def from_counters(cls, duration: float,
                      row: Tuple[int, ...]) -> "SimulationResult":
        """Rebuild a result from a counter row (inverse of :meth:`counters`)."""
        if len(row) != len(COUNTER_FIELDS):
            raise SimulationError(
                f"expected {len(COUNTER_FIELDS)} counters, got {len(row)}")
        return cls(duration=duration,
                   **{name: int(value)
                      for name, value in zip(COUNTER_FIELDS, row)})


@dataclass(frozen=True)
class PooledSimulation:
    """Replication-pooled counters and statistics of a batch of runs.

    ``result`` holds the summed counters (its ``duration`` is the total
    simulated time across replications, so ``false_alarm_rate`` stays a
    per-minute rate); ``alarm_ci`` is the *pooled* Wilson interval of the
    Fig. 6 statistic — per-replication Bernoulli windows are exchangeable
    across independently seeded runs, so pooling the raw counts and
    intervalling once is exact, unlike averaging per-run intervals.
    """

    replications: int
    result: SimulationResult
    alarm_ci: Tuple[float, float]
    confidence: float
    #: Unbiased between-replication variance of the per-run Fig. 6
    #: fraction (0.0 for a single replication).
    between_variance: float

    @property
    def correct_ohv_alarm_fraction(self) -> float:
        """The pooled Fig. 6 statistic."""
        return self.result.correct_ohv_alarm_fraction


def pool_results(results, confidence: float = 0.95) -> PooledSimulation:
    """Pool per-replication :class:`SimulationResult` objects.

    Counters are summed; the Fig. 6 statistic gets a pooled Wilson
    interval via :func:`repro.stats.estimation.pooled_wilson_ci` over
    the per-replication ``(correct_ohvs_alarmed, ohvs_correct)`` counts.
    Replications that simulated no correct OHV contribute their summed
    counters but are excluded from the interval and the
    between-replication variance (they carry no data on the
    proportion); raises :class:`SimulationError` when *no* replication
    simulated a correct OHV.
    """
    results = list(results)
    if not results:
        raise SimulationError("cannot pool an empty list of results")
    pooled = SimulationResult.from_counters(
        sum(r.duration for r in results),
        tuple(sum(getattr(r, name) for r in results)
              for name in COUNTER_FIELDS))
    # Replications without a single correct OHV carry no information
    # about the proportion: excluded from the interval *and* from the
    # between-replication spread (their fraction property's 0.0 is a
    # placeholder, not an observation).
    informative = [r for r in results if r.ohvs_correct > 0]
    if not informative:
        raise SimulationError("no correct OHVs simulated in any "
                              "replication")
    _successes, _trials, ci = pooled_wilson_ci(
        [(r.correct_ohvs_alarmed, r.ohvs_correct)
         for r in informative], confidence)
    variance = between_replication_variance(
        [r.correct_ohv_alarm_fraction for r in informative])
    return PooledSimulation(replications=len(results), result=pooled,
                            alarm_ci=ci, confidence=confidence,
                            between_variance=variance)


class EntranceSimulation:
    """One simulated northern-entrance deployment."""

    def __init__(self, config: SimulationConfig):
        self.config = config
        self._rng = random.Random(config.seed ^ 0x5AFE)
        self._sim = Simulator()
        self._controller = HeightControl(
            config.timer1, config.timer2, config.variant,
            lb_passage_time=config.lb_passage_time,
            single_ohv_assumption=config.single_ohv_assumption)
        self._od_left = OverheadDetector(
            "ODleft", p_miss=config.od_miss_probability)
        self._od_final = OverheadDetector(
            "ODfinal", p_miss=config.od_miss_probability,
            fd_rate=config.fd_odfinal_rate)
        self._lb_pre = LightBarrier("LBpre", fd_rate=config.fd_lbpre_rate)
        self._lb_post = LightBarrier("LBpost",
                                     fd_rate=config.fd_lbpost_rate)
        self.result = SimulationResult(duration=config.duration)
        #: Correct OHVs whose attribution window may still catch an alarm.
        self._open_windows: List[Vehicle] = []
        #: Rule-breaking OHVs currently inside the controlled area.
        self._incorrect_inside: List[Vehicle] = []

    # ------------------------------------------------------------------
    # Event wiring
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Build the event schedule, run it, return the counters."""
        config = self.config
        generator = TrafficGenerator(config.traffic, seed=config.seed)
        for vehicle in generator.ohvs_until(config.duration):
            self._schedule_ohv(vehicle)
        for crossing_time in generator.hv_crossings_until(config.duration):
            self.result.hv_crossings += 1
            self._sim.schedule_at(
                crossing_time,
                lambda t=crossing_time: self._hv_under_odfinal(t))
        self._schedule_false_detections()
        self._sim.run_until(config.duration)
        return self.result

    def _schedule_ohv(self, vehicle: Vehicle) -> None:
        self.result.ohvs_total += 1
        if vehicle.is_correct:
            self.result.ohvs_correct += 1
        else:
            self.result.ohvs_incorrect += 1
        self._sim.schedule_at(vehicle.arrival_time,
                              lambda v=vehicle: self._at_lbpre(v))
        self._sim.schedule_at(vehicle.time_at_lbpost,
                              lambda v=vehicle: self._at_lbpost(v))
        self._sim.schedule_at(vehicle.time_at_odfinal,
                              lambda v=vehicle: self._at_odfinal_area(v))

    def _schedule_false_detections(self) -> None:
        """Spurious light-barrier triggers as Poisson processes."""

        def chain(barrier: LightBarrier, deliver) -> None:
            gap = barrier.next_false_detection(self._rng)
            if gap == float("inf"):
                return
            when = self._sim.now + gap

            def fire() -> None:
                deliver(self._sim.now)
                chain(barrier, deliver)

            if when <= self.config.duration:
                self._sim.schedule_at(when, fire)

        chain(self._lb_pre, self._controller.lbpre_triggered)
        chain(self._lb_post,
              lambda now: self._controller.lbpost_triggered(
                  now, Lane.RIGHT, od_left_high=False))
        if self._od_final.fd_rate > 0.0:
            chain_od = self._od_final

            def od_fd(now: float) -> None:
                self._classify(self._controller.odfinal_high(now))

            chain(LightBarrier("ODfinal-fd", fd_rate=chain_od.fd_rate),
                  od_fd)

    # ------------------------------------------------------------------
    # Vehicle passage handlers
    # ------------------------------------------------------------------
    def _at_lbpre(self, vehicle: Vehicle) -> None:
        now = self._sim.now
        if not vehicle.is_correct:
            self._incorrect_inside.append(vehicle)
        if self._lb_pre.detects(vehicle):
            self._controller.lbpre_triggered(now)

    def _at_lbpost(self, vehicle: Vehicle) -> None:
        now = self._sim.now
        if not self._lb_post.detects(vehicle):
            return
        od_left_high = False
        if vehicle.lane_at_lbpost is Lane.LEFT:
            od_left_high = self._od_left.senses(vehicle, self._rng)
        alarm = self._controller.lbpost_triggered(
            now, vehicle.lane_at_lbpost, od_left_high)
        if alarm is not None:
            vehicle.alarmed = True
            self._classify(alarm)
        elif vehicle.is_correct:
            # The OHV armed ODfinal: open its attribution window for the
            # Fig. 6 statistic.
            self._open_windows.append(vehicle)

    def _at_odfinal_area(self, vehicle: Vehicle) -> None:
        now = self._sim.now
        # Every OHV physically passes the ODfinal location; in the
        # LB-at-ODfinal design this opens the critical window.
        if self.config.variant is DesignVariant.LB_AT_ODFINAL:
            self._controller.lb4_triggered(now)
        if vehicle.crosses_odfinal:
            # A rule-breaking OHV inside ODfinal's scan area.
            if self._od_final.senses(vehicle, self._rng):
                alarm = self._controller.odfinal_high(now)
                if alarm is not None:
                    vehicle.alarmed = True
                    self._classify(alarm)
        elif self.config.variant is DesignVariant.WITH_LB4:
            # A correct OHV enters tube 4: LB4 counts it out of zone 2.
            self._controller.lb4_triggered(now)
        self._vehicle_leaves(vehicle)

    def _hv_under_odfinal(self, now: float) -> None:
        """A rule-violating high vehicle crosses ODfinal's scan area."""
        if self._od_final.senses_crossing(self._rng):
            self._classify(self._controller.odfinal_high(now))

    def _vehicle_leaves(self, vehicle: Vehicle) -> None:
        now = self._sim.now
        if not vehicle.is_correct:
            if vehicle in self._incorrect_inside:
                self._incorrect_inside.remove(vehicle)
            if not vehicle.alarmed:
                # Reached an old tube without an emergency stop.
                self.result.collisions += 1
        # Expire attribution windows that can no longer catch alarms
        # (a window stays open for timer2 after the LBpost passage).
        self._open_windows = [
            v for v in self._open_windows
            if v.time_at_lbpost + self.config.timer2 >= now]

    # ------------------------------------------------------------------
    # Alarm classification
    # ------------------------------------------------------------------
    def _classify(self, alarm: Optional[Alarm]) -> None:
        if alarm is None:
            return
        self.result.alarms_total += 1
        justified = bool(self._incorrect_inside)
        alarm.justified = justified
        if justified:
            self.result.justified_alarms += 1
            return
        self.result.false_alarms += 1
        now = alarm.time
        for vehicle in self._open_windows:
            if vehicle.alarmed:
                continue
            window_end = vehicle.time_at_lbpost + self.config.timer2
            if self.config.variant is DesignVariant.WITH_LB4:
                window_end = min(window_end, vehicle.time_at_tunnel)
            elif self.config.variant is DesignVariant.LB_AT_ODFINAL:
                if abs(now - vehicle.time_at_odfinal) > \
                        self.config.lb_passage_time:
                    continue
            if vehicle.time_at_lbpost <= now <= window_end:
                vehicle.alarmed = True
                self.result.correct_ohvs_alarmed += 1


def simulate(config: SimulationConfig) -> SimulationResult:
    """Convenience wrapper: build, run and return the result."""
    return EntranceSimulation(config).run()
