"""Traffic model of the northern tunnel entrance.

Vehicle classes follow Sect. IV-A: normal cars (irrelevant to the height
control — no sensor reacts to them), high vehicles (HVs: trucks/buses,
allowed in all tubes, detected by overhead detectors) and overhigh
vehicles (OHVs: only allowed in the new tube 4, detected by light
barriers *and* overhead detectors).

The generator produces two Poisson streams:

* OHV arrivals at LBpre; each OHV is *correct* (keeps the right lane to
  tube 4, as road traffic regulations require) with probability
  ``p_correct``, otherwise it heads for an old tube — on the left lane
  from LBpost on, or by switching lanes inside zone 2;
* rule-violating HVs crossing the ODfinal scan area on the left lanes
  (the paper: "some drivers always ignore this rule!") at a fixed rate.

Zone transit times are truncated-normal, the paper's driving-time model.
"""

from __future__ import annotations

import enum
import itertools
import random
from dataclasses import dataclass
from typing import Iterator

from repro.errors import SimulationError
from repro.stats.distributions import TruncatedNormal


class VehicleType(enum.Enum):
    """Height class of a vehicle."""

    CAR = "car"
    HIGH = "hv"
    OVERHIGH = "ohv"


class Lane(enum.Enum):
    """Lane position relevant to the detectors."""

    LEFT = "left"
    RIGHT = "right"


class Route(enum.Enum):
    """Where an OHV is actually heading."""

    #: Correct: right lane all the way into tube 4.
    TUBE4 = "tube4"
    #: Wrong from the start: left lane at LBpost (towards the west tube).
    LEFT_AT_LBPOST = "left_at_lbpost"
    #: Wrong late: right lane at LBpost, switches left inside zone 2.
    SWITCH_IN_ZONE2 = "switch_in_zone2"


@dataclass
class Vehicle:
    """One simulated vehicle with its timeline through the entrance."""

    vehicle_id: int
    vtype: VehicleType
    route: Route
    arrival_time: float          # at LBpre
    zone1_time: float            # LBpre -> LBpost
    zone2_time: float            # LBpost -> ODfinal / tunnel entrance
    alarmed: bool = False        # an emergency stop fired during transit

    @property
    def is_correct(self) -> bool:
        """True for an OHV following the rules into tube 4."""
        return self.route is Route.TUBE4

    @property
    def lane_at_lbpost(self) -> Lane:
        return Lane.LEFT if self.route is Route.LEFT_AT_LBPOST \
            else Lane.RIGHT

    @property
    def crosses_odfinal(self) -> bool:
        """True when the vehicle drives through ODfinal's scan area.

        ODfinal scans the left lanes towards the west/mid tubes; a correct
        OHV on the right lane never enters it.
        """
        return self.route in (Route.LEFT_AT_LBPOST, Route.SWITCH_IN_ZONE2)

    @property
    def time_at_lbpost(self) -> float:
        return self.arrival_time + self.zone1_time

    @property
    def time_at_odfinal(self) -> float:
        return self.time_at_lbpost + self.zone2_time

    @property
    def time_at_tunnel(self) -> float:
        return self.time_at_odfinal


@dataclass(frozen=True)
class TrafficConfig:
    """Arrival rates and behaviour probabilities of the traffic model."""

    #: OHV arrivals at LBpre (per minute).
    ohv_rate: float = 1.0 / 120.0
    #: Probability an OHV drives correctly into tube 4.
    p_correct: float = 0.99
    #: Among incorrect OHVs, probability the error is visible already at
    #: LBpost (left lane) rather than a lane switch inside zone 2.
    p_wrong_early: float = 0.5
    #: Rule-violating HVs crossing the ODfinal area (per minute).
    hv_odfinal_rate: float = 0.13
    #: Zone transit time distribution (the paper's Normal(4, 2), >= 0).
    transit_mean: float = 4.0
    transit_std: float = 2.0

    def __post_init__(self):
        if self.ohv_rate <= 0 or self.hv_odfinal_rate < 0:
            raise SimulationError("arrival rates must be positive")
        for name in ("p_correct", "p_wrong_early"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise SimulationError(f"{name} must be in [0, 1]")
        if self.transit_mean <= 0 or self.transit_std <= 0:
            raise SimulationError("transit parameters must be positive")


class TrafficGenerator:
    """Deterministic (seeded) generator of the two traffic streams."""

    def __init__(self, config: TrafficConfig, seed: int = 0):
        self.config = config
        self._rng = random.Random(seed)
        self._ids = itertools.count(1)
        self._transit = TruncatedNormal(
            mu=config.transit_mean, sigma=config.transit_std, lower=0.0)

    def _exponential_gap(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def _route(self) -> Route:
        if self._rng.random() < self.config.p_correct:
            return Route.TUBE4
        if self._rng.random() < self.config.p_wrong_early:
            return Route.LEFT_AT_LBPOST
        return Route.SWITCH_IN_ZONE2

    def ohvs_until(self, end_time: float) -> Iterator[Vehicle]:
        """Yield OHV arrivals with full timelines up to ``end_time``."""
        time = 0.0
        while True:
            time += self._exponential_gap(self.config.ohv_rate)
            if time > end_time:
                return
            yield Vehicle(
                vehicle_id=next(self._ids),
                vtype=VehicleType.OVERHIGH,
                route=self._route(),
                arrival_time=time,
                zone1_time=self._transit.sample(self._rng),
                zone2_time=self._transit.sample(self._rng))

    def hv_crossings_until(self, end_time: float) -> Iterator[float]:
        """Yield times of rule-violating HVs under ODfinal."""
        if self.config.hv_odfinal_rate <= 0.0:
            return
        time = 0.0
        while True:
            time += self._exponential_gap(self.config.hv_odfinal_rate)
            if time > end_time:
                return
            yield time
