"""The Elbtunnel height-control case study (paper Sect. IV).

Analytic statistical model, fault trees, a discrete-event traffic
simulation of the northern entrance, and the end-to-end safety
optimization study reproducing Fig. 5, Fig. 6 and the quoted results.
"""

from repro.elbtunnel.config import (
    DEFAULT_CONFIG,
    DesignVariant,
    ElbtunnelConfig,
)
from repro.elbtunnel.controller import Alarm, HeightControl
from repro.elbtunnel.faulttrees import (
    build_fault_tree_model,
    collision_fault_tree,
    corridor_fault_tree,
    false_alarm_fault_tree,
    fig2_fault_tree,
)
from repro.elbtunnel.model import (
    COLLISION,
    FALSE_ALARM,
    TIMER1,
    TIMER2,
    build_safety_model,
    collision_probability,
    correct_ohv_alarm_probability,
    cost_function,
    false_alarm_probability,
    fig6_series,
    transit_distribution,
)
from repro.elbtunnel.risk import (
    RiskAssessment,
    assess_variant,
    collision_event_tree,
    compare_variants,
)
from repro.elbtunnel.batch import (
    BatchSimulationResult,
    fast_path_supported,
    simulate_batch,
)
from repro.elbtunnel.simulation import (
    COUNTER_FIELDS,
    EntranceSimulation,
    PooledSimulation,
    SimulationConfig,
    SimulationResult,
    pool_results,
    simulate,
)
from repro.elbtunnel.uncertain import (
    collision_uncertain_model,
    corridor_uncertain_model,
    elbtunnel_uncertain_models,
    false_alarm_uncertain_model,
    robust_timer_problem,
    standalone_tree,
    standalone_uncertain_model,
)
from repro.elbtunnel.study import (
    Fig5Surface,
    Fig6SimulationCheck,
    Fig6Study,
    FullStudy,
    fig5_surface,
    fig6_simulation_check,
    fig6_study,
    full_study,
    optimum_study,
)
from repro.elbtunnel.vehicles import (
    Lane,
    Route,
    TrafficConfig,
    TrafficGenerator,
    Vehicle,
    VehicleType,
)

__all__ = [
    "ElbtunnelConfig",
    "DEFAULT_CONFIG",
    "DesignVariant",
    "COLLISION",
    "FALSE_ALARM",
    "TIMER1",
    "TIMER2",
    "build_safety_model",
    "build_fault_tree_model",
    "cost_function",
    "collision_probability",
    "false_alarm_probability",
    "correct_ohv_alarm_probability",
    "fig6_series",
    "transit_distribution",
    "fig2_fault_tree",
    "collision_fault_tree",
    "corridor_fault_tree",
    "false_alarm_fault_tree",
    "HeightControl",
    "Alarm",
    "Vehicle",
    "VehicleType",
    "Lane",
    "Route",
    "TrafficConfig",
    "TrafficGenerator",
    "SimulationConfig",
    "SimulationResult",
    "EntranceSimulation",
    "simulate",
    "COUNTER_FIELDS",
    "PooledSimulation",
    "pool_results",
    "BatchSimulationResult",
    "simulate_batch",
    "fast_path_supported",
    "collision_uncertain_model",
    "false_alarm_uncertain_model",
    "corridor_uncertain_model",
    "elbtunnel_uncertain_models",
    "standalone_tree",
    "standalone_uncertain_model",
    "robust_timer_problem",
    "RiskAssessment",
    "assess_variant",
    "collision_event_tree",
    "compare_variants",
    "fig5_surface",
    "Fig5Surface",
    "fig6_study",
    "Fig6Study",
    "fig6_simulation_check",
    "Fig6SimulationCheck",
    "optimum_study",
    "full_study",
    "FullStudy",
]
