"""Fault trees of the Elbtunnel height control (paper Sect. II & IV-B).

Four trees are provided:

* :func:`fig2_fault_tree` — the qualitative collision tree of the paper's
  Fig. 2, expanded down to the primary failures of Sect. IV-B.1
  (F = {HV_ODleft, FD_ODleft, MD_ODleft, HV_ODfinal, FD_ODfinal,
  MD_ODfinal, OT1, OT2, FD_LBpre, FD_LBpost}).  Used for the cut set
  reproduction (benchmark Fig. 2).
* :func:`collision_fault_tree` — the quantitative collision tree of
  Sect. IV-B.2/B.3: the timer-overrun cut sets {OT1}, {OT2} guarded by
  the INHIBIT condition "OHV critical" (an OHV heading for the west or
  mid tube), plus the accumulated remainder ``Pconst1``.
* :func:`false_alarm_fault_tree` — the quantitative false-alarm tree:
  {HV_ODfinal} guarded by the INHIBIT condition "ODfinal armed" (an OHV
  activated it, or both light barriers false-detected), plus ``Pconst2``.
* :func:`corridor_fault_tree` — the production-scale corridor model: one
  wide OR over monitored road sections sharing the accumulated
  signalling-failure leaf; the largest Elbtunnel tree and the cold-path
  benchmark workload of ``benchmarks/test_bench_bdd.py``.

Quantifying the two quantitative trees with parameterized leaf
probabilities reproduces the closed-form hazard formulas of
:mod:`repro.elbtunnel.model` — tested in ``tests/elbtunnel``.
"""

from __future__ import annotations

from repro.core.model import FaultTreeHazard, SafetyModel
from repro.core.parametric import ParametricProbability, from_function
from repro.elbtunnel.config import ElbtunnelConfig
from repro.elbtunnel.model import (
    COLLISION,
    FALSE_ALARM,
    cost_model,
    p_fd_lbpost,
    p_hv_odfinal,
    p_overtime_zone1,
    p_overtime_zone2,
    parameter_space,
)
from repro.fta.dsl import AND, INHIBIT, OR, condition, hazard, primary
from repro.fta.tree import FaultTree

#: Leaf names in the paper's notation (Sect. IV-B.1).
OT1 = "OT1"
OT2 = "OT2"
HV_ODFINAL = "HV_ODfinal"
FD_ODFINAL = "FD_ODfinal"
MD_ODFINAL = "MD_ODfinal"
HV_ODLEFT = "HV_ODleft"
FD_ODLEFT = "FD_ODleft"
MD_ODLEFT = "MD_ODleft"
FD_LBPRE = "FD_LBpre"
FD_LBPOST = "FD_LBpost"

#: INHIBIT condition names.
OHV_CRITICAL = "OHV_critical"
ODFINAL_ARMED = "ODfinal_armed"


def fig2_fault_tree() -> FaultTree:
    """The qualitative collision tree (Fig. 2, expanded to Sect. IV-B.1).

    Structure: a collision happens when the OHV ignores the stop signals
    OR the signals are not on; the latter because the signal hardware is
    out of order OR the detection chain never activated them — the timer
    overruns {OT1}, {OT2} and the missed detections {MD_ODleft},
    {MD_ODfinal}.
    """
    ignores = primary("OHV ignores signal",
                      description="driver disregards the emergency stop")
    out_of_order = primary("Signal out of order",
                           description="signal lights hardware failure")
    not_activated = OR(
        "Signal not activated",
        primary(OT1, description="OHV slower than timer 1 in zone 1"),
        primary(OT2, description="OHV slower than timer 2 in zone 2"),
        primary(MD_ODLEFT,
                description="OD left misses an OHV on the left lane"),
        primary(MD_ODFINAL,
                description="OD final misses an OHV that switched lanes"),
        description="the detection chain never triggered the signals")
    not_on = OR("Signal not on", out_of_order, not_activated,
                description="stop signals were not shown")
    top = hazard("Collision", OR_gate=[ignores, not_on],
                 description="an OHV collides with the old tunnel entrance")
    return FaultTree(top)


def collision_fault_tree(config: ElbtunnelConfig = ElbtunnelConfig()
                         ) -> FaultTree:
    """Quantitative collision tree (Sect. IV-B.2/B.3).

    Minimal cut sets: {OT1 | OHV_critical}, {OT2 | OHV_critical}, and the
    accumulated single leaf "other collision causes" carrying ``Pconst1``.
    """
    ohv_critical = condition(
        OHV_CRITICAL, probability=config.p_ohv_critical,
        description="an OHV is driving towards the west or mid tube")
    overrun = OR(
        "Timer overrun",
        primary(OT1, description="driving time in zone 1 exceeds T1"),
        primary(OT2, description="driving time in zone 2 exceeds T2"),
        description="a supervision timer expired while the OHV was "
                    "still in its zone")
    guarded = INHIBIT("Unprotected OHV passage", overrun, ohv_critical,
                      description="timer overrun matters only for an OHV "
                                  "heading towards an old tube")
    rest = primary("Other collision causes", probability=config.p_const1,
                   description="accumulated probability of the remaining "
                               "minimal cut sets (Pconst1)")
    top = hazard(COLLISION, OR_gate=[guarded, rest],
                 description="collision of an OHV with the tunnel entrance")
    return FaultTree(top)


def false_alarm_fault_tree(config: ElbtunnelConfig = ElbtunnelConfig()
                           ) -> FaultTree:
    """Quantitative false-alarm tree (Sect. IV-B.2/B.3).

    Dominating cut set: {HV_ODfinal | ODfinal_armed}; everything else is
    accumulated into "other false alarm causes" (``Pconst2``).  The
    condition's probability is the paper's ``Pconstraint1 = P(OHV) +
    (1 - P(OHV)) * P(FD_LBpre) * P(FD_LBpost)`` — parameterized in T1
    when quantified through :func:`build_fault_tree_model`.
    """
    armed = condition(
        ODFINAL_ARMED,
        description="ODfinal is armed: an OHV activated it or both light "
                    "barriers false-detected")
    hv = primary(HV_ODFINAL,
                 description="a high vehicle below ODfinal is interpreted "
                             "as an OHV")
    guarded = INHIBIT("HV misread while armed", hv, armed,
                      description="an HV below ODfinal only matters while "
                                  "the sensor is armed")
    rest = primary("Other false alarm causes", probability=config.p_const2,
                   description="accumulated probability of the remaining "
                               "minimal cut sets (Pconst2)")
    top = hazard(FALSE_ALARM, OR_gate=[guarded, rest],
                 description="unnecessary emergency stop of the tunnel")
    return FaultTree(top)


def odfinal_armed_probability(config: ElbtunnelConfig
                              ) -> ParametricProbability:
    """Constraint probability ``Pconstraint1`` as a function of T1."""
    fd_post = p_fd_lbpost(config)
    p_ohv = config.p_ohv_present
    q_pre = config.p_fd_lbpre

    def formula(values):
        return p_ohv + (1.0 - p_ohv) * q_pre * fd_post(values)

    return from_function(formula, fd_post.parameters,
                         label="Pconstraint1(T1)")


def corridor_fault_tree(sections: int = 64) -> FaultTree:
    """Production-scale model: collision anywhere along the corridor.

    The paper analyzes one OHV at the decisive tunnel entrance; a
    deployed height control supervises a whole approach corridor of
    ``sections`` monitored road sections.  A collision at section ``s``
    needs an OHV in that section ignoring the stop signals *and* the
    shared signalling chain down — the common cause across all sections,
    accumulated into one leaf exactly as the paper accumulates residual
    cut sets into ``Pconst1``/``Pconst2`` (Sect. IV-B.2).  Each section
    additionally carries its own accumulated residual-cause leaf.

    This is the largest Elbtunnel tree (``2 * sections + 1`` primary
    failures) and the cold-path benchmark workload of
    ``benchmarks/test_bench_bdd.py``: one wide OR over section branches
    that all share the signalling leaf — the shape that dominates
    fault-tree analysis cost at fleet scale.
    """
    signal_down = primary(
        "Signal not shown",
        probability=1e-4,
        description="shared signalling chain failure (accumulated: "
                    "signal hardware, detection chain, timers)")
    branches = []
    for s in range(1, sections + 1):
        ohv = primary(f"OHV in section {s} ignores stop",
                      probability=1e-3,
                      description="an overheight vehicle traverses "
                                  f"section {s} while signals are dark")
        branches.append(AND(f"Collision at section {s}", ohv, signal_down))
    for s in range(1, sections + 1):
        branches.append(primary(
            f"Other collision causes in section {s}",
            probability=1e-6,
            description="accumulated residual minimal cut sets of "
                        f"section {s} (Pconst-style)"))
    top = hazard("Corridor collision", OR_gate=branches,
                 description="an OHV collides somewhere along the "
                             "supervised approach corridor")
    return FaultTree(top)


def build_fault_tree_model(config: ElbtunnelConfig = ElbtunnelConfig(),
                           method: str = "rare_event") -> SafetyModel:
    """The Elbtunnel safety model quantified through its fault trees.

    Numerically equivalent (up to negligible higher-order terms) to the
    closed-form :func:`repro.elbtunnel.model.build_safety_model`; exists
    to exercise the full FTA pipeline — MOCUS, constraint probabilities,
    parameterized leaves — on the paper's own case study.
    """
    collision = FaultTreeHazard(
        collision_fault_tree(config),
        assignments={
            OT1: p_overtime_zone1(config),
            OT2: p_overtime_zone2(config),
        },
        method=method)
    false_alarm = FaultTreeHazard(
        false_alarm_fault_tree(config),
        assignments={
            HV_ODFINAL: p_hv_odfinal(config),
            ODFINAL_ARMED: odfinal_armed_probability(config),
        },
        method=method)
    return SafetyModel(
        space=parameter_space(config),
        hazards={COLLISION: collision, FALSE_ALARM: false_alarm},
        cost_model=cost_model(config),
        name="Elbtunnel height control (fault tree quantification)")
