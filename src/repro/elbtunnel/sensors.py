"""Sensor models: light barriers and overhead detectors (Sect. IV-A).

Two failure modes from Sect. IV-B.1 are modelled per sensor:

* **False detection (FD)** — "the sensor does indicate a vehicle although
  there is none"; possible for all sensors, modelled as a Poisson process
  while the sensor is powered.
* **Miss detection (MD)** — "the sensor does not indicate a vehicle,
  although there is one"; only the microwave overhead detectors miss,
  light barriers do not (per the paper's failure classification).

High vehicles below an overhead detector are *correctly* sensed but
*incorrectly classified* — "overhead detectors cannot distinguish between
high vehicles and OHVs" — so the HV case is reported as a detection, and
the classification error is the controller's problem, exactly as in the
real system.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.elbtunnel.vehicles import Vehicle, VehicleType
from repro.errors import SimulationError


@dataclass
class LightBarrier:
    """A light barrier scanning all lanes of one direction.

    Detects only OHVs (the beam height is above HV roofs).  ``fd_rate``
    is the Poisson rate of spurious triggers per minute of powered
    operation; light barriers do not miss (MD "only possible for
    microwave sensors").
    """

    name: str
    fd_rate: float = 0.0

    def __post_init__(self):
        if self.fd_rate < 0.0:
            raise SimulationError(f"{self.name}: fd_rate must be >= 0")

    def detects(self, vehicle: Vehicle) -> bool:
        """True when the passing vehicle trips the barrier."""
        return vehicle.vtype is VehicleType.OVERHIGH

    def next_false_detection(self, rng: random.Random) -> float:
        """Time until the next spurious trigger (inf when fd_rate is 0)."""
        if self.fd_rate <= 0.0:
            return float("inf")
        return rng.expovariate(self.fd_rate)


@dataclass
class OverheadDetector:
    """A microwave overhead detector scanning one lane group.

    Senses *high* vehicles (HVs and OHVs) but cannot tell them apart; it
    misses a vehicle with probability ``p_miss`` and produces spurious
    detections at Poisson rate ``fd_rate`` while powered.
    """

    name: str
    p_miss: float = 0.0
    fd_rate: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.p_miss <= 1.0:
            raise SimulationError(f"{self.name}: p_miss must be in [0, 1]")
        if self.fd_rate < 0.0:
            raise SimulationError(f"{self.name}: fd_rate must be >= 0")

    def senses(self, vehicle: Vehicle, rng: random.Random) -> bool:
        """True when the detector reports a high vehicle for this passage."""
        if vehicle.vtype is VehicleType.CAR:
            return False
        return rng.random() >= self.p_miss

    def senses_crossing(self, rng: random.Random) -> bool:
        """Sensing outcome for an anonymous high-vehicle crossing."""
        return rng.random() >= self.p_miss

    def next_false_detection(self, rng: random.Random) -> float:
        """Time until the next spurious trigger (inf when fd_rate is 0)."""
        if self.fd_rate <= 0.0:
            return float("inf")
        return rng.expovariate(self.fd_rate)
