"""The height-control state machine (Sect. IV-A) and its design variants.

Logic of the deployed control (northern entrance):

* an OHV at **LBpre** arms LBpost supervision and starts **timer 1**
  (runtime T1); when the timer expires, LBpost is switched off again
  ("to prevent unnecessary alarms through faulty triggering of LBpre");
* an OHV at **LBpost** on the **left** lane, confirmed by **ODleft**,
  triggers an immediate emergency stop;
* an OHV at **LBpost** on the **right** lane arms **ODfinal** and starts
  **timer 2** (runtime T2);
* a high vehicle sensed by **ODfinal** while it is armed triggers an
  emergency stop — this is where rule-violating HVs cause false alarms.

Variants (Sect. IV-C.2):

* :attr:`~repro.elbtunnel.config.DesignVariant.WITH_LB4` — an extra light
  barrier at the tube-4 entrance counts OHVs out of zone 2 and disarms
  ODfinal when none remain;
* :attr:`~repro.elbtunnel.config.DesignVariant.LB_AT_ODFINAL` — a light
  barrier co-located with ODfinal; its readings only count while an OHV
  is physically passing (or the barrier false-detects).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.elbtunnel.config import DesignVariant
from repro.elbtunnel.vehicles import Lane
from repro.errors import SimulationError


@dataclass
class Alarm:
    """One emergency stop signalled by the controller."""

    time: float
    source: str                    # "od_left" or "od_final"
    justified: Optional[bool] = None   # classified by the simulation


class HeightControl:
    """The height-control state machine, decoupled from the simulator.

    All methods take the current time explicitly; the simulation layer
    owns the clock and delivers sensor events in time order.  Delivering
    events out of order raises :class:`SimulationError`.
    """

    def __init__(self, timer1: float, timer2: float,
                 variant: DesignVariant = DesignVariant.WITHOUT_LB4,
                 lb_passage_time: float = 0.3,
                 single_ohv_assumption: bool = False):
        if timer1 <= 0.0 or timer2 <= 0.0:
            raise SimulationError("timer runtimes must be positive")
        self.timer1 = timer1
        self.timer2 = timer2
        self.variant = variant
        self.lb_passage_time = lb_passage_time
        #: The original design flaw found by model checking (Sect. IV-A,
        #: [10]): the control assumed a single OHV per activation, so
        #: LBpost supervision was dropped after the first passage.  Two
        #: OHVs entering zone 1 together then leave the second one
        #: unsupervised.  Kept as an opt-in flag to reproduce the flaw.
        self.single_ohv_assumption = single_ohv_assumption
        self.alarms: List[Alarm] = []
        self._last_time = -math.inf
        self._lbpost_armed_until = -math.inf
        self._odfinal_armed_until = -math.inf
        self._lb4_window_until = -math.inf
        self._zone2_count = 0

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    def lbpost_armed(self, now: float) -> bool:
        """Is LBpost supervision active (timer 1 running)?"""
        return now <= self._lbpost_armed_until

    def odfinal_armed(self, now: float) -> bool:
        """Is ODfinal active — would a high reading raise an alarm?"""
        if self.variant is DesignVariant.WITH_LB4 and self._zone2_count <= 0:
            return False
        return now <= self._odfinal_armed_until

    def _odfinal_critical(self, now: float) -> bool:
        armed = self.odfinal_armed(now)
        if self.variant is DesignVariant.LB_AT_ODFINAL:
            return armed and now <= self._lb4_window_until
        return armed

    # ------------------------------------------------------------------
    # Sensor events
    # ------------------------------------------------------------------
    def _advance(self, now: float) -> None:
        if now < self._last_time - 1e-12:
            raise SimulationError(
                f"event at {now} delivered after {self._last_time}")
        self._last_time = max(self._last_time, now)

    def lbpre_triggered(self, now: float) -> None:
        """An OHV (or a false detection) at LBpre: start timer 1."""
        self._advance(now)
        self._lbpost_armed_until = max(self._lbpost_armed_until,
                                       now + self.timer1)

    def lbpost_triggered(self, now: float, lane: Lane,
                         od_left_high: bool = False) -> Optional[Alarm]:
        """An OHV (or FD) at LBpost while supervision may be active.

        Left lane + ODleft confirmation raises an immediate emergency
        stop; right lane arms ODfinal and starts timer 2.  Returns the
        alarm if one was raised.
        """
        self._advance(now)
        if not self.lbpost_armed(now):
            return None
        if self.single_ohv_assumption:
            # Flawed original design: assume this was the only OHV in
            # zone 1 and drop supervision immediately.
            self._lbpost_armed_until = now
        if lane is Lane.LEFT and od_left_high:
            return self._raise(now, "od_left")
        self._odfinal_armed_until = max(self._odfinal_armed_until,
                                        now + self.timer2)
        if self.variant is DesignVariant.WITH_LB4:
            self._zone2_count += 1
        return None

    def odfinal_high(self, now: float) -> Optional[Alarm]:
        """ODfinal senses a high vehicle (HV, OHV, or a false detection)."""
        self._advance(now)
        if self._odfinal_critical(now):
            return self._raise(now, "od_final")
        return None

    def lb4_triggered(self, now: float) -> None:
        """The extra light barrier fires (variant-dependent meaning).

        WITH_LB4: one OHV left zone 2 into tube 4 — count it out and
        disarm ODfinal when the zone is empty.  LB_AT_ODFINAL: an OHV is
        passing the ODfinal location — open the critical window.
        """
        self._advance(now)
        if self.variant is DesignVariant.WITH_LB4:
            if self._zone2_count > 0:
                self._zone2_count -= 1
        elif self.variant is DesignVariant.LB_AT_ODFINAL:
            self._lb4_window_until = max(self._lb4_window_until,
                                         now + self.lb_passage_time)

    # ------------------------------------------------------------------
    def _raise(self, now: float, source: str) -> Alarm:
        alarm = Alarm(time=now, source=source)
        self.alarms.append(alarm)
        return alarm
