"""End-to-end reproduction study: all figures and quoted results.

One entry point per published artifact:

* :func:`fig5_surface` — the cost function around its minimum (Fig. 5),
* :func:`optimum_study` — the optimal runtimes and baseline comparison
  quoted in Sect. IV-C.2 ("approximately 19 resp. 15.6 minutes ...
  improvement of about 10 % in false alarm risk, while the risk for
  collision does not change (less than 0.1 %)"),
* :func:`fig6_study` — the per-OHV false-alarm curves (Fig. 6) with the
  four quoted checkpoints,
* :func:`full_study` — everything, as one report object.

The benchmark suite prints these; EXPERIMENTS.md records paper-vs-measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.optimizer import SafetyOptimizationResult, SafetyOptimizer
from repro.elbtunnel.config import DesignVariant, ElbtunnelConfig
from repro.elbtunnel.model import (
    COLLISION,
    FALSE_ALARM,
    build_safety_model,
    correct_ohv_alarm_probability,
    fig6_series,
)
from repro.errors import ModelError


@dataclass(frozen=True)
class Fig5Surface:
    """Sampled cost surface over (T1, T2) — the data behind Fig. 5."""

    t1_values: Tuple[float, ...]
    t2_values: Tuple[float, ...]
    #: ``cost[i][j]`` = cost at (t1_values[i], t2_values[j]).
    cost: Tuple[Tuple[float, ...], ...]

    def minimum(self) -> Tuple[float, float, float]:
        """Grid minimum: (t1, t2, cost).

        Ties break deterministically on the first occurrence in row-major
        order (smallest t1 index, then smallest t2 index) — ``argmin``
        over the flattened surface instead of a nested Python scan.
        """
        surface = np.asarray(self.cost, dtype=np.float64)
        flat = int(surface.argmin())
        i, j = divmod(flat, surface.shape[1])
        return (self.t1_values[i], self.t2_values[j], float(surface[i, j]))


def fig5_surface(config: ElbtunnelConfig = ElbtunnelConfig(),
                 t1_range: Tuple[float, float] = (15.0, 20.0),
                 t2_range: Tuple[float, float] = (15.0, 18.0),
                 points: int = 21) -> Fig5Surface:
    """Sample the cost function on the paper's Fig. 5 window."""
    if points < 2:
        raise ModelError(f"need points >= 2, got {points}")
    model = build_safety_model(config)
    t1_step = (t1_range[1] - t1_range[0]) / (points - 1)
    t2_step = (t2_range[1] - t2_range[0]) / (points - 1)
    t1_values = tuple(t1_range[0] + i * t1_step for i in range(points))
    t2_values = tuple(t2_range[0] + j * t2_step for j in range(points))
    cost = tuple(
        tuple(model.cost((t1, t2)) for t2 in t2_values)
        for t1 in t1_values)
    return Fig5Surface(t1_values, t2_values, cost)


def optimum_study(config: ElbtunnelConfig = ElbtunnelConfig(),
                  method: str = "zoom") -> SafetyOptimizationResult:
    """Optimize the timers against the engineers' (30, 30) baseline."""
    model = build_safety_model(config)
    baseline = (config.timer1_default, config.timer2_default)
    return SafetyOptimizer(model).optimize(method, baseline=baseline)


@dataclass(frozen=True)
class Fig6Checkpoints:
    """The four false-alarm figures quoted in Sect. IV-C.2."""

    without_lb4_at_opt: float      # paper: > 80 % at T2 ~ 15.6
    without_lb4_at_30: float       # paper: > 95 % at T2 = 30
    with_lb4_at_opt: float         # paper: ~ 40 %
    lb_at_odfinal: float           # paper: ~ 4 %


@dataclass(frozen=True)
class Fig6SimulationCheck:
    """Stochastic cross-check of the Fig. 6 checkpoints.

    Batched DES replications per design variant (run through the
    engine's ``SimulationJob``) next to the analytic probability: the
    measured per-OHV false-alarm fraction must agree within sampling
    error, which the pooled Wilson interval quantifies.
    """

    timer2: float
    replications: int
    days: float
    seed: int
    #: Variant value -> (measured fraction, ci_low, ci_high, analytic).
    measured: Dict[str, Tuple[float, float, float, float]]

    def summary(self) -> str:
        """Per-variant measured-vs-analytic report lines."""
        lines = [f"Fig. 6 simulation check "
                 f"({self.replications} replications x {self.days:g} "
                 f"days at T2 = {self.timer2:g})"]
        for variant, (fraction, lo, hi, analytic) in \
                sorted(self.measured.items()):
            lines.append(
                f"  {variant:<15}: analytic {analytic * 100:5.1f} %  -> "
                f"measured {fraction * 100:5.1f} % "
                f"[{lo * 100:.1f}, {hi * 100:.1f}]")
        return "\n".join(lines)


#: The corridor OHV arrival rate (per minute) shared by the simulation
#: checks, the CLI and the benchmark suite.
CORRIDOR_OHV_RATE = 1.0 / 120.0


def fig6_simulation_check(config: ElbtunnelConfig = ElbtunnelConfig(),
                          timer2: float = 15.6, replications: int = 4,
                          days: float = 60.0, seed: int = 0,
                          workers: int = 1,
                          engine=None) -> Fig6SimulationCheck:
    """Measure the Fig. 6 statistic by batched simulation, per variant.

    Routes through :class:`~repro.engine.jobs.SimulationJob`, so the
    replications shard across ``workers`` processes; results are
    independent of the worker count by construction.  Each call builds
    a fresh in-memory engine — pass a prebuilt ``engine`` (which then
    supersedes ``workers``) to reuse its LRU/disk cache across repeated
    studies.
    """
    from repro.elbtunnel.simulation import SimulationConfig
    from repro.elbtunnel.vehicles import TrafficConfig
    from repro.engine import Engine, SimulationJob
    if engine is None:
        engine = Engine(workers=workers)
    traffic = TrafficConfig(ohv_rate=CORRIDOR_OHV_RATE, p_correct=1.0,
                            hv_odfinal_rate=config.hv_odfinal_rate_heavy,
                            transit_mean=config.transit_mean,
                            transit_std=config.transit_std)
    measured: Dict[str, Tuple[float, float, float, float]] = {}
    for variant in DesignVariant:
        sim_config = SimulationConfig(
            duration=60.0 * 24 * days, timer1=config.timer1_default,
            timer2=timer2, variant=variant, traffic=traffic,
            lb_passage_time=config.lb_passage_time, seed=seed)
        batch = engine.run(SimulationJob(sim_config,
                                         replications=replications))
        pooled = batch.pooled()
        lo, hi = pooled.alarm_ci
        measured[variant.value] = (
            pooled.correct_ohv_alarm_fraction, lo, hi,
            correct_ohv_alarm_probability(timer2, variant, config))
    return Fig6SimulationCheck(timer2=timer2, replications=replications,
                               days=days, seed=seed, measured=measured)


@dataclass(frozen=True)
class Fig6Study:
    """Curves and checkpoints of the Fig. 6 analysis."""

    series: Dict[str, List[Tuple[float, float]]]
    checkpoints: Fig6Checkpoints
    #: Optional stochastic cross-check (batched DES replications).
    simulation: Optional[Fig6SimulationCheck] = None


def fig6_study(config: ElbtunnelConfig = ElbtunnelConfig(),
               optimal_t2: float = 15.6,
               simulation_replications: int = 0,
               simulation_days: float = 60.0,
               simulation_seed: int = 0,
               workers: int = 1) -> Fig6Study:
    """The Fig. 6 curves plus the quoted checkpoints.

    With ``simulation_replications > 0`` the checkpoints are
    cross-checked by that many batched DES replications per variant
    (sharded across ``workers`` through the batch engine).
    """
    series = fig6_series(config)
    checkpoints = Fig6Checkpoints(
        without_lb4_at_opt=correct_ohv_alarm_probability(
            optimal_t2, DesignVariant.WITHOUT_LB4, config),
        without_lb4_at_30=correct_ohv_alarm_probability(
            30.0, DesignVariant.WITHOUT_LB4, config),
        with_lb4_at_opt=correct_ohv_alarm_probability(
            optimal_t2, DesignVariant.WITH_LB4, config),
        lb_at_odfinal=correct_ohv_alarm_probability(
            optimal_t2, DesignVariant.LB_AT_ODFINAL, config))
    simulation = None
    if simulation_replications > 0:
        simulation = fig6_simulation_check(
            config, timer2=optimal_t2,
            replications=simulation_replications,
            days=simulation_days, seed=simulation_seed, workers=workers)
    return Fig6Study(series=series, checkpoints=checkpoints,
                     simulation=simulation)


@dataclass(frozen=True)
class FullStudy:
    """Everything the paper's evaluation section reports."""

    optimum: SafetyOptimizationResult
    fig5: Fig5Surface
    fig6: Fig6Study

    def summary(self) -> str:
        """Multi-line paper-vs-measured report."""
        opt = self.optimum
        t1, t2 = opt.optimum
        comparisons = opt.hazard_comparisons()
        alarm = comparisons[FALSE_ALARM]
        collision = comparisons[COLLISION]
        cp = self.fig6.checkpoints
        lines = [
            "Elbtunnel reproduction summary (paper -> measured)",
            f"  optimal T1           : ~19 min      -> {t1:.2f} min",
            f"  optimal T2           : ~15.6 min    -> {t2:.2f} min",
            f"  cost near optimum    : ~0.0046      -> "
            f"{opt.optimal_cost:.5f}",
            f"  false-alarm improv.  : ~10 %        -> "
            f"{alarm.improvement_percent:.2f} %",
            f"  collision change     : < 0.1 %      -> "
            f"{abs(collision.relative_change) * 100:.3f} %",
            f"  Fig6 w/o LB4 @ opt   : > 80 %       -> "
            f"{cp.without_lb4_at_opt * 100:.1f} %",
            f"  Fig6 w/o LB4 @ 30    : > 95 %       -> "
            f"{cp.without_lb4_at_30 * 100:.1f} %",
            f"  Fig6 with LB4        : ~40 %        -> "
            f"{cp.with_lb4_at_opt * 100:.1f} %",
            f"  Fig6 LB at ODfinal   : ~4 %         -> "
            f"{cp.lb_at_odfinal * 100:.1f} %",
        ]
        if self.fig6.simulation is not None:
            lines.append(self.fig6.simulation.summary())
        return "\n".join(lines)


def full_study(config: ElbtunnelConfig = ElbtunnelConfig(),
               method: str = "zoom",
               simulation_replications: int = 0,
               simulation_days: float = 60.0,
               workers: int = 1) -> FullStudy:
    """Run the complete reproduction and return all artifacts.

    ``simulation_replications > 0`` adds the batched-DES cross-check of
    the Fig. 6 checkpoints (:func:`fig6_simulation_check`).
    """
    optimum = optimum_study(config, method=method)
    fig5 = fig5_surface(config)
    fig6 = fig6_study(config, optimal_t2=optimum.optimum[1],
                      simulation_replications=simulation_replications,
                      simulation_days=simulation_days, workers=workers)
    return FullStudy(optimum=optimum, fig5=fig5, fig6=fig6)
