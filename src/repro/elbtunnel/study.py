"""End-to-end reproduction study: all figures and quoted results.

One entry point per published artifact:

* :func:`fig5_surface` — the cost function around its minimum (Fig. 5),
* :func:`optimum_study` — the optimal runtimes and baseline comparison
  quoted in Sect. IV-C.2 ("approximately 19 resp. 15.6 minutes ...
  improvement of about 10 % in false alarm risk, while the risk for
  collision does not change (less than 0.1 %)"),
* :func:`fig6_study` — the per-OHV false-alarm curves (Fig. 6) with the
  four quoted checkpoints,
* :func:`full_study` — everything, as one report object.

The benchmark suite prints these; EXPERIMENTS.md records paper-vs-measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.optimizer import SafetyOptimizationResult, SafetyOptimizer
from repro.elbtunnel.config import DesignVariant, ElbtunnelConfig
from repro.elbtunnel.model import (
    COLLISION,
    FALSE_ALARM,
    build_safety_model,
    correct_ohv_alarm_probability,
    fig6_series,
)
from repro.errors import ModelError


@dataclass(frozen=True)
class Fig5Surface:
    """Sampled cost surface over (T1, T2) — the data behind Fig. 5."""

    t1_values: Tuple[float, ...]
    t2_values: Tuple[float, ...]
    #: ``cost[i][j]`` = cost at (t1_values[i], t2_values[j]).
    cost: Tuple[Tuple[float, ...], ...]

    def minimum(self) -> Tuple[float, float, float]:
        """Grid minimum: (t1, t2, cost)."""
        best = (0, 0)
        best_cost = float("inf")
        for i, row in enumerate(self.cost):
            for j, value in enumerate(row):
                if value < best_cost:
                    best_cost = value
                    best = (i, j)
        return (self.t1_values[best[0]], self.t2_values[best[1]], best_cost)


def fig5_surface(config: ElbtunnelConfig = ElbtunnelConfig(),
                 t1_range: Tuple[float, float] = (15.0, 20.0),
                 t2_range: Tuple[float, float] = (15.0, 18.0),
                 points: int = 21) -> Fig5Surface:
    """Sample the cost function on the paper's Fig. 5 window."""
    if points < 2:
        raise ModelError(f"need points >= 2, got {points}")
    model = build_safety_model(config)
    t1_step = (t1_range[1] - t1_range[0]) / (points - 1)
    t2_step = (t2_range[1] - t2_range[0]) / (points - 1)
    t1_values = tuple(t1_range[0] + i * t1_step for i in range(points))
    t2_values = tuple(t2_range[0] + j * t2_step for j in range(points))
    cost = tuple(
        tuple(model.cost((t1, t2)) for t2 in t2_values)
        for t1 in t1_values)
    return Fig5Surface(t1_values, t2_values, cost)


def optimum_study(config: ElbtunnelConfig = ElbtunnelConfig(),
                  method: str = "zoom") -> SafetyOptimizationResult:
    """Optimize the timers against the engineers' (30, 30) baseline."""
    model = build_safety_model(config)
    baseline = (config.timer1_default, config.timer2_default)
    return SafetyOptimizer(model).optimize(method, baseline=baseline)


@dataclass(frozen=True)
class Fig6Checkpoints:
    """The four false-alarm figures quoted in Sect. IV-C.2."""

    without_lb4_at_opt: float      # paper: > 80 % at T2 ~ 15.6
    without_lb4_at_30: float       # paper: > 95 % at T2 = 30
    with_lb4_at_opt: float         # paper: ~ 40 %
    lb_at_odfinal: float           # paper: ~ 4 %


@dataclass(frozen=True)
class Fig6Study:
    """Curves and checkpoints of the Fig. 6 analysis."""

    series: Dict[str, List[Tuple[float, float]]]
    checkpoints: Fig6Checkpoints


def fig6_study(config: ElbtunnelConfig = ElbtunnelConfig(),
               optimal_t2: float = 15.6) -> Fig6Study:
    """The Fig. 6 curves plus the quoted checkpoints."""
    series = fig6_series(config)
    checkpoints = Fig6Checkpoints(
        without_lb4_at_opt=correct_ohv_alarm_probability(
            optimal_t2, DesignVariant.WITHOUT_LB4, config),
        without_lb4_at_30=correct_ohv_alarm_probability(
            30.0, DesignVariant.WITHOUT_LB4, config),
        with_lb4_at_opt=correct_ohv_alarm_probability(
            optimal_t2, DesignVariant.WITH_LB4, config),
        lb_at_odfinal=correct_ohv_alarm_probability(
            optimal_t2, DesignVariant.LB_AT_ODFINAL, config))
    return Fig6Study(series=series, checkpoints=checkpoints)


@dataclass(frozen=True)
class FullStudy:
    """Everything the paper's evaluation section reports."""

    optimum: SafetyOptimizationResult
    fig5: Fig5Surface
    fig6: Fig6Study

    def summary(self) -> str:
        """Multi-line paper-vs-measured report."""
        opt = self.optimum
        t1, t2 = opt.optimum
        comparisons = opt.hazard_comparisons()
        alarm = comparisons[FALSE_ALARM]
        collision = comparisons[COLLISION]
        cp = self.fig6.checkpoints
        lines = [
            "Elbtunnel reproduction summary (paper -> measured)",
            f"  optimal T1           : ~19 min      -> {t1:.2f} min",
            f"  optimal T2           : ~15.6 min    -> {t2:.2f} min",
            f"  cost near optimum    : ~0.0046      -> "
            f"{opt.optimal_cost:.5f}",
            f"  false-alarm improv.  : ~10 %        -> "
            f"{alarm.improvement_percent:.2f} %",
            f"  collision change     : < 0.1 %      -> "
            f"{abs(collision.relative_change) * 100:.3f} %",
            f"  Fig6 w/o LB4 @ opt   : > 80 %       -> "
            f"{cp.without_lb4_at_opt * 100:.1f} %",
            f"  Fig6 w/o LB4 @ 30    : > 95 %       -> "
            f"{cp.without_lb4_at_30 * 100:.1f} %",
            f"  Fig6 with LB4        : ~40 %        -> "
            f"{cp.with_lb4_at_opt * 100:.1f} %",
            f"  Fig6 LB at ODfinal   : ~4 %         -> "
            f"{cp.lb_at_odfinal * 100:.1f} %",
        ]
        return "\n".join(lines)


def full_study(config: ElbtunnelConfig = ElbtunnelConfig(),
               method: str = "zoom") -> FullStudy:
    """Run the complete reproduction and return all artifacts."""
    optimum = optimum_study(config, method=method)
    fig5 = fig5_surface(config)
    fig6 = fig6_study(config, optimal_t2=optimum.optimum[1])
    return FullStudy(optimum=optimum, fig5=fig5, fig6=fig6)
