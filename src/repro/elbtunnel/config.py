"""Configuration constants of the Elbtunnel height-control case study.

The paper publishes the driving-time distribution (Normal, mu = 4 min,
sigma = 2 min), the cost ratio (collision = 100 000 x false alarm), the
engineers' initial timer guesses (30 min each), and the headline results.
It does *not* publish the underlying traffic statistics (arrival rates,
sensor fault rates, the accumulated constants ``Pconst1/2``).  Those are
calibrated here so that every published checkpoint is reproduced:

* optimal runtimes approximately (19, 15.6) minutes,
* cost near the optimum approximately 0.0046 (Fig. 5's z-axis),
* about 10 % false-alarm risk improvement vs. the (30, 30) baseline,
* collision risk change below 0.1 %,
* Fig. 6: > 80 % of correctly driving OHVs trigger an alarm at
  T2 = 15.6 (> 95 % at 30) without LB4, roughly 40 % with LB4, roughly
  4 % with a light barrier at ODfinal.

See DESIGN.md ("Substitutions") and EXPERIMENTS.md for the calibration
record.  All times are in minutes; all rates are per minute.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import ModelError


class DesignVariant(enum.Enum):
    """The three height-control designs analyzed in Sect. IV-C.2."""

    #: The deployed design: ODfinal stays armed for the full timer-2 runtime.
    WITHOUT_LB4 = "without_LB4"
    #: Extra light barrier at the tube-4 entrance stops timer 2 when the
    #: OHV has passed (paper's first proposed fix; ~40 % residual alarms).
    WITH_LB4 = "with_LB4"
    #: Light barrier co-located with ODfinal: the detector is only
    #: critical while an OHV actually passes it (~4 % residual alarms).
    LB_AT_ODFINAL = "lb_at_odfinal"


@dataclass(frozen=True)
class ElbtunnelConfig:
    """All numeric inputs of the Elbtunnel analysis.

    Published values keep the paper's numbers; unpublished ones are
    calibrated (see module docstring).
    """

    # -- published: driving time per zone (paper Sect. IV-C) -------------
    transit_mean: float = 4.0          # minutes, mu of the normal model
    transit_std: float = 2.0           # minutes, sigma of the normal model

    # -- published: cost model (paper Sect. IV-C.1) ----------------------
    cost_collision: float = 100_000.0  # relative units
    cost_false_alarm: float = 1.0

    # -- published: engineers' baseline & domain -------------------------
    timer1_default: float = 30.0       # minutes ("initial guesses of 30")
    timer2_default: float = 30.0
    timer_min: float = 5.0             # compact optimization domain
    timer_max: float = 30.0

    # -- calibrated: probabilities of the statistical model --------------
    #: P(OHV critical): an OHV in the controlled area is heading towards
    #: the west or mid tube (footnote 3).
    p_ohv_critical: float = 5.0e-3
    #: P(OHV): an OHV is present in the controlled area (Sect. IV-B.3).
    p_ohv_present: float = 1.342e-3
    #: Per-passage false-detection probability of light barrier LBpre.
    p_fd_lbpre: float = 1.0e-4
    #: Poisson rate of false detections of LBpost while armed (per min).
    fd_lbpost_rate: float = 1.03e-5
    #: Poisson rate of rule-violating high vehicles under ODfinal while it
    #: is armed (per min) — normal traffic level.
    hv_odfinal_rate: float = 4.0e-3
    #: Accumulated probability of all other collision cut sets (Pconst1).
    p_const1: float = 3.9e-8
    #: Accumulated probability of all other false-alarm cut sets (Pconst2).
    p_const2: float = 5.54e-4

    # -- calibrated: Fig. 6 increased-OHV-traffic scenario ---------------
    #: Poisson rate of high vehicles under ODfinal in the heavy-traffic
    #: environment of Fig. 6 (per min).
    hv_odfinal_rate_heavy: float = 0.13
    #: Time an OHV needs to physically pass a light barrier (minutes).
    lb_passage_time: float = 0.3
    #: Per-passage false-detection probability of the extra light barrier
    #: (LB4 / LB at ODfinal variants).
    p_fd_lb4: float = 1.0e-3

    def __post_init__(self):
        if self.transit_mean <= 0 or self.transit_std <= 0:
            raise ModelError("transit time parameters must be positive")
        if not 0 < self.timer_min < self.timer_max:
            raise ModelError("need 0 < timer_min < timer_max")
        for name in ("p_ohv_critical", "p_ohv_present", "p_fd_lbpre",
                     "p_const1", "p_const2", "p_fd_lb4"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ModelError(f"{name} must be in [0, 1], got {value}")
        for name in ("fd_lbpost_rate", "hv_odfinal_rate",
                     "hv_odfinal_rate_heavy"):
            if getattr(self, name) < 0.0:
                raise ModelError(f"{name} must be >= 0")
        if self.cost_collision < 0 or self.cost_false_alarm < 0:
            raise ModelError("costs must be >= 0")
        if self.lb_passage_time <= 0:
            raise ModelError("lb_passage_time must be > 0")

    def heavy_traffic(self) -> "ElbtunnelConfig":
        """The Fig. 6 environment: OHV/HV traffic strongly increased."""
        return replace(self, hv_odfinal_rate=self.hv_odfinal_rate_heavy)

    def with_rates(self, **overrides) -> "ElbtunnelConfig":
        """Return a copy with selected fields replaced (scenario studies)."""
        return replace(self, **overrides)


DEFAULT_CONFIG = ElbtunnelConfig()
