"""Integrated risk assessment of the Elbtunnel designs (full PRA).

Combines everything into the figure an operator actually budgets for:
expected cost per year, per design variant.

* the **collision chain** as an event tree: an incorrect OHV approaches
  an old tube (initiator), the detection chain may fail (quantified from
  the collision fault tree), the stop signals may be out of order, the
  driver may ignore them — only the all-barriers-fail path collides;
* the **false alarm rate** from the analytic model, converted to events
  per year through the OHV traffic rate;
* the paper's cost weights fold both into one money-per-year figure.

This extends the paper's per-event cost function (Sect. IV-C.1) to a
*rate*-based risk metric and lets the three design variants (deployed,
+LB4, LB at ODfinal) be compared on one axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.elbtunnel.config import DesignVariant, ElbtunnelConfig
from repro.elbtunnel.faulttrees import OT1, OT2, collision_fault_tree
from repro.elbtunnel.model import (
    correct_ohv_alarm_probability,
    p_overtime_zone1,
    p_overtime_zone2,
)
from repro.errors import ModelError
from repro.fta.eventtrees import BranchPoint, EventTree

#: Minutes per year, the rate conversion used throughout.
MINUTES_PER_YEAR = 60.0 * 24 * 365


@dataclass(frozen=True)
class RiskAssessment:
    """Integrated yearly risk of one design variant."""

    variant: DesignVariant
    timer1: float
    timer2: float
    collisions_per_year: float
    false_alarms_per_year: float
    expected_cost_per_year: float

    def __repr__(self) -> str:
        return (f"RiskAssessment({self.variant.value}: "
                f"{self.expected_cost_per_year:.2f} cost units/year)")


def collision_event_tree(config: ElbtunnelConfig, timer1: float,
                         timer2: float,
                         incorrect_ohv_rate_per_year: float) -> EventTree:
    """The collision chain as an event tree.

    Branch order: detection chain (fault-tree backed, with the timers'
    parameterized overtime probabilities), stop-signal hardware, driver
    compliance.
    """
    values = {"T1": timer1, "T2": timer2}
    detection = BranchPoint(
        "detection chain", collision_fault_tree(config),
        probabilities={
            OT1: p_overtime_zone1(config)(values),
            OT2: p_overtime_zone2(config)(values),
        })

    def rule(failures: Tuple[bool, ...]) -> str:
        return "collision" if all(failures) else "stopped"

    return EventTree(
        initiator="incorrect OHV approaches old tube",
        frequency=incorrect_ohv_rate_per_year,
        branches=[
            detection,
            BranchPoint("stop signals", config.p_fd_lb4),
            BranchPoint("driver compliance", 0.01),
        ],
        outcome_rule=rule)


def assess_variant(variant: DesignVariant,
                   config: ElbtunnelConfig = ElbtunnelConfig(),
                   timer1: float = 19.0, timer2: float = 15.6,
                   ohv_rate_per_minute: float = 1.0 / 120.0,
                   p_incorrect: float = 0.01) -> RiskAssessment:
    """Yearly risk of one design variant at a timer configuration.

    Parameters
    ----------
    variant:
        The ODfinal design option (alters the false-alarm rate only;
        the collision chain is shared).
    config:
        The statistical model constants.
    timer1, timer2:
        Timer runtimes in minutes.
    ohv_rate_per_minute:
        OHV arrivals at the northern entrance.
    p_incorrect:
        Fraction of OHVs heading for an old tube (the collision
        initiator).
    """
    if not 0.0 <= p_incorrect <= 1.0:
        raise ModelError(
            f"p_incorrect must be in [0, 1], got {p_incorrect}")
    if ohv_rate_per_minute <= 0.0:
        raise ModelError("ohv_rate_per_minute must be > 0")

    ohvs_per_year = ohv_rate_per_minute * MINUTES_PER_YEAR
    incorrect_per_year = ohvs_per_year * p_incorrect
    correct_per_year = ohvs_per_year - incorrect_per_year

    event_tree = collision_event_tree(config, timer1, timer2,
                                      incorrect_per_year)
    collisions = event_tree.evaluate().frequency_of("collision")

    # Each correctly driving OHV trips a false alarm with the variant's
    # Fig. 6 probability (heavy-traffic environment).
    p_alarm = correct_ohv_alarm_probability(timer2, variant, config)
    false_alarms = correct_per_year * p_alarm

    cost = collisions * config.cost_collision + \
        false_alarms * config.cost_false_alarm
    return RiskAssessment(
        variant=variant, timer1=timer1, timer2=timer2,
        collisions_per_year=collisions,
        false_alarms_per_year=false_alarms,
        expected_cost_per_year=cost)


def compare_variants(config: ElbtunnelConfig = ElbtunnelConfig(),
                     timer1: float = 19.0, timer2: float = 15.6,
                     **kwargs) -> Dict[DesignVariant, RiskAssessment]:
    """Integrated yearly risk of all three designs, same configuration."""
    return {variant: assess_variant(variant, config, timer1, timer2,
                                    **kwargs)
            for variant in DesignVariant}
