"""Markdown study reports for safety models.

One call produces the document a safety engineer would circulate: the
model inventory, the optimization outcome with baseline comparison, the
tornado sensitivity ranking, the hazard trade-off front, and optional
environment-scenario comparisons — the complete paper workflow
(Sect. III + IV) rendered for humans.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.model import SafetyModel
from repro.core.optimizer import SafetyOptimizer
from repro.core.scenarios import Scenario, compare_scenarios
from repro.core.sensitivity import tornado
from repro.core.tradeoff import hazard_front


def markdown_report(model: SafetyModel, method: str = "nelder_mead",
                    scenarios: Optional[Sequence[Scenario]] = None,
                    front_points: int = 15,
                    **optimize_options) -> str:
    """Run the full study on ``model`` and render it as Markdown.

    Sections: model inventory, optimization result, per-hazard risk
    changes, tornado sensitivity, sampled Pareto front, and (when
    ``scenarios`` are given) a cross-scenario cost comparison at the
    found optimum.
    """
    result = SafetyOptimizer(model).optimize(method, **optimize_options)
    lines: List[str] = []
    lines.append(f"# Safety optimization report — {model.name}")
    lines.append("")

    # ------------------------------------------------------------- model
    lines.append("## Model")
    lines.append("")
    lines.append("| Parameter | Domain | Baseline |")
    lines.append("|---|---|---|")
    for parameter in model.space:
        baseline = f"{parameter.default:g}" if parameter.has_default \
            else "—"
        unit = f" {parameter.unit}" if parameter.unit else ""
        lines.append(f"| {parameter.name} | [{parameter.lower:g}, "
                     f"{parameter.upper:g}]{unit} | {baseline}{unit} |")
    lines.append("")
    lines.append("| Hazard | Cost per occurrence |")
    lines.append("|---|---|")
    for hazard_name in sorted(model.hazards):
        lines.append(f"| {hazard_name} | "
                     f"{model.cost_model.cost_of(hazard_name):g} |")
    lines.append("")

    # ------------------------------------------------------ optimization
    lines.append(f"## Optimal configuration ({method})")
    lines.append("")
    point = ", ".join(
        f"{name} = {value:.4g}"
        for name, value in zip(model.space.names, result.optimum))
    lines.append(f"* optimum: **{point}**")
    lines.append(f"* expected cost: **{result.optimal_cost:.6g}**")
    if result.baseline is not None:
        lines.append(f"* baseline cost: {result.baseline_cost:.6g} "
                     f"(improvement "
                     f"{result.cost_improvement_percent:.2f} %)")
    lines.append("")
    lines.append("| Hazard | P at optimum | P at baseline | Change |")
    lines.append("|---|---|---|---|")
    if result.baseline_hazards is not None:
        for name, cmp_ in sorted(result.hazard_comparisons().items()):
            lines.append(
                f"| {name} | {cmp_.optimized:.4e} | "
                f"{cmp_.baseline:.4e} | "
                f"{cmp_.improvement_percent:+.2f} % |")
    else:
        for name, p in sorted(result.hazard_probabilities.items()):
            lines.append(f"| {name} | {p:.4e} | — | — |")
    lines.append("")

    # --------------------------------------------------------- tornado
    lines.append("## Parameter sensitivity (tornado)")
    lines.append("")
    lines.append("| Parameter | Cost at lower bound | Cost at upper "
                 "bound | Swing |")
    lines.append("|---|---|---|---|")
    for bar in tornado(model, point=result.optimum):
        lines.append(f"| {bar.parameter} | {bar.cost_at_low:.6g} | "
                     f"{bar.cost_at_high:.6g} | {bar.swing:.3g} |")
    lines.append("")

    # ------------------------------------------------------------ front
    lines.append("## Hazard trade-off front")
    lines.append("")
    hazard_names = sorted(model.hazards)
    header = " | ".join(["configuration"] +
                        [f"P({name})" for name in hazard_names])
    lines.append(f"| {header} |")
    lines.append("|" + "---|" * (1 + len(hazard_names)))
    for pareto_point in hazard_front(model, points_per_dim=front_points):
        config = ", ".join(f"{v:.3g}" for v in pareto_point.x)
        values = " | ".join(f"{v:.4e}"
                            for v in pareto_point.objectives)
        lines.append(f"| ({config}) | {values} |")
    lines.append("")

    # -------------------------------------------------------- scenarios
    if scenarios:
        lines.append("## Environment scenarios (cost at the optimum)")
        lines.append("")
        values = compare_scenarios(
            scenarios, lambda m: m.cost(
                m.space.box().clip(result.optimum)))
        lines.append("| Scenario | Expected cost |")
        lines.append("|---|---|")
        for name, value in sorted(values.items()):
            lines.append(f"| {name} | {value:.6g} |")
        lines.append("")

    return "\n".join(lines)
