"""The :class:`SafetyModel`: hazards, parameters and costs wired together.

This is the object the whole method operates on (paper Sect. III): a set
of hazards whose probabilities are functions of the system's free
parameters, plus a cost model linking them.  Hazard probabilities can come
from two sources:

* :class:`FaultTreeHazard` — a fault tree whose leaf probabilities are
  parameterized (paper Eq. 3/4: substitute ``P(PF)(X)`` into the cut set
  sum), with a configurable quantification method and constraint policy;
* :class:`FormulaHazard` — a closed-form
  :class:`~repro.core.parametric.ParametricProbability`, for models like
  the paper's Sect. IV-B.3 formulas where the cut set structure has
  already been folded into an explicit expression.

``SafetyModel.to_problem()`` produces the optimization problem of
Sect. III-B; :class:`~repro.core.optimizer.SafetyOptimizer` drives it.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.core.cost import CostModel
from repro.core.parameters import ParameterSpace
from repro.core.parametric import ParametricProbability, as_parametric
from repro.errors import ModelError
from repro.fta.constraints import ConstraintPolicy
from repro.fta.cutsets import CutSetCollection, mocus
from repro.fta.quantify import hazard_probability as _quantify
from repro.fta.tree import FaultTree
from repro.opt.problem import Problem, Vector

Values = Dict[str, float]
Assignment = Union[float, ParametricProbability]


class HazardModel:
    """Base: something that maps parameter values to a hazard probability."""

    parameters: frozenset

    def probability(self, values: Values) -> float:
        """Hazard probability for one parameter valuation."""
        raise NotImplementedError


class FormulaHazard(HazardModel):
    """A hazard given by a closed-form parametric probability."""

    def __init__(self, formula: ParametricProbability):
        self.formula = as_parametric(formula)
        self.parameters = self.formula.parameters

    def probability(self, values: Values) -> float:
        return self.formula(values)

    def __repr__(self) -> str:
        return f"FormulaHazard({self.formula.label})"


class FaultTreeHazard(HazardModel):
    """A hazard quantified from a fault tree with parameterized leaves.

    Parameters
    ----------
    tree:
        The hazard's fault tree.
    assignments:
        Maps leaf names (primary failures and conditions) to either fixed
        probabilities or :class:`ParametricProbability` objects.  Leaves
        absent here must carry default probabilities on their events.
    method:
        Quantification method (see :func:`repro.fta.quantify.hazard_probability`);
        the paper's standard choice is ``rare_event``.
    policy:
        Constraint-probability policy for INHIBIT conditions.
    compiled:
        Evaluate through :mod:`repro.compile` where the method supports
        it (default).  The tree is compiled once and reused across every
        :meth:`probability` call — the optimizer-objective hot path —
        with results bit-identical to the interpreted quantification.
    """

    def __init__(self, tree: FaultTree,
                 assignments: Optional[Mapping[str, Assignment]] = None,
                 method: str = "rare_event",
                 policy: ConstraintPolicy = ConstraintPolicy.INDEPENDENT,
                 compiled: bool = True):
        self.tree = tree
        self.method = method
        self.policy = policy
        self.compiled = bool(compiled)
        self._evaluator = None
        self.assignments: Dict[str, ParametricProbability] = {}
        for name, value in (assignments or {}).items():
            if name not in tree:
                raise ModelError(
                    f"assignment for unknown leaf {name!r} "
                    f"in tree {tree.name!r}")
            self.assignments[name] = as_parametric(value)
        self.parameters = frozenset().union(
            *(p.parameters for p in self.assignments.values())) \
            if self.assignments else frozenset()
        # Cut sets do not depend on the parameter values; cache them once
        # so repeated evaluations during optimization stay cheap.
        self._cut_sets: Optional[CutSetCollection] = None
        if method in ("rare_event", "mcub", "inclusion_exclusion") \
                and tree.is_coherent:
            self._cut_sets = mocus(tree)

    def _compiled_evaluator(self):
        """The lazily built (and then reused) compiled evaluator.

        Returns ``None`` when compilation is disabled or the method is
        not compilable (e.g. ``inclusion_exclusion``, or cut-set methods
        on non-coherent trees — those fall back to the interpreted path
        and fail there with the interpreted path's own diagnostics).
        """
        if not self.compiled:
            return None
        if self._evaluator is None:
            from repro.compile import compile_tree, supports_compilation
            if not supports_compilation(self.tree, self.method):
                self.compiled = False
                return None
            self._evaluator = compile_tree(
                self.tree, self.method, self.policy,
                cut_sets=self._cut_sets)
        return self._evaluator

    def probability(self, values: Values) -> float:
        overrides = {name: p(values)
                     for name, p in self.assignments.items()}
        evaluator = self._compiled_evaluator()
        if evaluator is not None:
            return evaluator.scalar(overrides)
        return _quantify(self.tree, overrides, method=self.method,
                         policy=self.policy, cut_sets=self._cut_sets)

    def probability_batch(self, points: Sequence[Values]) -> List[float]:
        """Hazard probabilities for many parameter valuations at once.

        The compiled batch path: parameterized leaves are evaluated per
        point (closures stay in-process), then the whole batch runs
        through one :mod:`repro.compile` evaluation.  Falls back to
        per-point :meth:`probability` calls for non-compilable methods;
        values are identical either way.
        """
        overrides = [{name: p(values)
                      for name, p in self.assignments.items()}
                     for values in points]
        evaluator = self._compiled_evaluator()
        if evaluator is not None:
            return [float(v) for v in evaluator.evaluate(overrides)]
        return [_quantify(self.tree, o, method=self.method,
                          policy=self.policy, cut_sets=self._cut_sets)
                for o in overrides]

    def to_sweep_job(self, axes=None, grid=None, chunks=None):
        """Package a grid quantification of this hazard as an engine job.

        Give exactly one of ``axes`` (per-parameter value lists whose
        cartesian product forms the grid) or ``grid`` (explicit list of
        parameter valuations).  The job inherits this hazard's tree,
        assignments, method and policy.
        """
        from repro.engine.jobs import SweepJob
        if (axes is None) == (grid is None):
            raise ModelError("give exactly one of axes= or grid=")
        if axes is not None:
            return SweepJob.from_axes(self.tree, self.assignments, axes,
                                      method=self.method,
                                      policy=self.policy, chunks=chunks,
                                      compiled=self.compiled)
        return SweepJob(self.tree, self.assignments, grid,
                        method=self.method, policy=self.policy,
                        chunks=chunks, compiled=self.compiled)

    def probability_grid(self, axes=None, grid=None, engine=None):
        """Quantify this hazard over a parameter grid.

        The engine-backed fast path for grid sweeps: with an
        :class:`~repro.engine.Engine` the evaluation is chunked across
        its worker pool and content-address cached; without one the same
        job runs serially in-process.  Returns a
        :class:`~repro.engine.SweepResult` either way, with values
        identical to calling :meth:`probability` point by point.
        """
        job = self.to_sweep_job(axes=axes, grid=grid)
        if engine is None:
            return job.run_serial()
        return engine.run(job)

    def __repr__(self) -> str:
        return (f"FaultTreeHazard({self.tree.name!r}, "
                f"method={self.method!r}, "
                f"{len(self.assignments)} parameterized leaves)")


class SafetyModel:
    """A complete safety-optimization model.

    Parameters
    ----------
    space:
        The free parameters and their compact domains.
    hazards:
        Mapping from hazard name to its :class:`HazardModel` (or a bare
        :class:`ParametricProbability`, auto-wrapped).
    cost_model:
        The hazard cost weights; must cover exactly the hazards given.
    name:
        Display name of the system under analysis.
    """

    def __init__(self, space: ParameterSpace,
                 hazards: Mapping[str, Union[HazardModel,
                                             ParametricProbability]],
                 cost_model: CostModel, name: str = "system"):
        if not hazards:
            raise ModelError("safety model needs at least one hazard")
        self.space = space
        self.name = name
        self.hazards: Dict[str, HazardModel] = {}
        for hazard_name, model in hazards.items():
            if isinstance(model, HazardModel):
                self.hazards[hazard_name] = model
            else:
                self.hazards[hazard_name] = FormulaHazard(model)
        self.cost_model = cost_model
        self._validate()

    def _validate(self) -> None:
        model_hazards = set(self.hazards)
        cost_hazards = set(self.cost_model.hazards)
        if model_hazards != cost_hazards:
            raise ModelError(
                f"cost model hazards {sorted(cost_hazards)} do not match "
                f"model hazards {sorted(model_hazards)}")
        known = set(self.space.names)
        for hazard_name, hazard in self.hazards.items():
            unknown = hazard.parameters - known
            if unknown:
                raise ModelError(
                    f"hazard {hazard_name!r} reads parameters "
                    f"{sorted(unknown)} not present in the parameter space")

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _values(self, point: Union[Sequence[float], Values]) -> Values:
        if isinstance(point, dict):
            # Round-trip through the vector form validates completeness.
            return self.space.to_dict(self.space.to_vector(point))
        return self.space.to_dict(point)

    def hazard_probability(self, hazard: str,
                           point: Union[Sequence[float], Values]) -> float:
        """Probability of one hazard at a configuration."""
        try:
            model = self.hazards[hazard]
        except KeyError:
            raise ModelError(f"unknown hazard {hazard!r}") from None
        return model.probability(self._values(point))

    def hazard_probabilities(self, point: Union[Sequence[float], Values]
                             ) -> Dict[str, float]:
        """Probabilities of all hazards at a configuration."""
        values = self._values(point)
        return {name: model.probability(values)
                for name, model in self.hazards.items()}

    def cost(self, point: Union[Sequence[float], Values]) -> float:
        """Expected cost at a configuration (paper Eq. 6)."""
        return self.cost_model.mean_cost(self.hazard_probabilities(point))

    def cost_breakdown(self, point: Union[Sequence[float], Values]
                       ) -> Dict[str, float]:
        """Per-hazard cost contributions at a configuration."""
        return self.cost_model.contributions(
            self.hazard_probabilities(point))

    # ------------------------------------------------------------------
    # Optimization interface
    # ------------------------------------------------------------------
    def to_problem(self) -> Problem:
        """The minimization problem of Sect. III-B over the parameter box."""
        return Problem(lambda x: self.cost(x), self.space.box(),
                       name=f"{self.name}:cost")

    def objectives(self, point: Vector) -> tuple:
        """Hazard-probability vector for multi-objective analysis."""
        probabilities = self.hazard_probabilities(point)
        return tuple(probabilities[name] for name in sorted(self.hazards))

    def __repr__(self) -> str:
        return (f"SafetyModel({self.name!r}, "
                f"hazards={sorted(self.hazards)}, "
                f"parameters={list(self.space.names)})")
