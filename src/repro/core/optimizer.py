"""The :class:`SafetyOptimizer` facade: run the optimization, report results.

Ties the safety model to the optimization substrate and packages the
outcome the way the paper reports it (Sect. IV-C.2): the optimal
configuration, its cost, per-hazard probabilities, and the comparison
against the baseline configuration ("much less than the initial guesses of
30 minutes ... an improvement of about 10 % in false alarm risk, while the
risk for collision does not change (less than 0.1 %)").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.model import SafetyModel
from repro.errors import OptimizationError
from repro.opt.anneal import simulated_annealing
from repro.opt.coordinate import coordinate_descent
from repro.opt.de import differential_evolution
from repro.opt.gradient import gradient_descent
from repro.opt.grid import grid_search, zoom_search
from repro.opt.neldermead import nelder_mead
from repro.opt.problem import OptResult, Problem, Vector
from repro.opt.scipy_bridge import scipy_minimize

_METHODS: Dict[str, Callable[..., OptResult]] = {
    "zoom": zoom_search,
    "grid": grid_search,
    "gradient": gradient_descent,
    "coordinate": coordinate_descent,
    "nelder_mead": nelder_mead,
    "annealing": simulated_annealing,
    "differential_evolution": differential_evolution,
    "scipy": scipy_minimize,
}


@dataclass(frozen=True)
class HazardComparison:
    """Baseline-vs-optimum comparison of one hazard's probability."""

    hazard: str
    baseline: float
    optimized: float

    @property
    def relative_change(self) -> float:
        """Signed relative change; negative means risk went down."""
        if self.baseline == 0.0:
            return 0.0 if self.optimized == 0.0 else float("inf")
        return (self.optimized - self.baseline) / self.baseline

    @property
    def improvement_percent(self) -> float:
        """Risk reduction in percent (positive = improvement)."""
        return -100.0 * self.relative_change


@dataclass(frozen=True)
class SafetyOptimizationResult:
    """Outcome of a safety-optimization run."""

    model_name: str
    method: str
    optimum: Vector
    optimal_cost: float
    hazard_probabilities: Dict[str, float]
    opt_result: OptResult
    baseline: Optional[Vector] = None
    baseline_cost: Optional[float] = None
    baseline_hazards: Optional[Dict[str, float]] = None

    @property
    def cost_improvement_percent(self) -> Optional[float]:
        """Cost reduction vs. baseline in percent (None without baseline)."""
        if self.baseline_cost is None or self.baseline_cost == 0.0:
            return None
        return 100.0 * (self.baseline_cost - self.optimal_cost) \
            / self.baseline_cost

    def hazard_comparisons(self) -> Dict[str, HazardComparison]:
        """Per-hazard baseline-vs-optimum comparisons."""
        if self.baseline_hazards is None:
            raise OptimizationError(
                "no baseline available; optimize with a baseline point")
        return {
            name: HazardComparison(name, self.baseline_hazards[name],
                                   self.hazard_probabilities[name])
            for name in self.hazard_probabilities
        }

    def summary(self) -> str:
        """A multi-line human-readable report of the run."""
        lines = [f"Safety optimization of {self.model_name!r} "
                 f"({self.method})"]
        point = ", ".join(f"{v:.4g}" for v in self.optimum)
        lines.append(f"  optimum       : ({point})")
        lines.append(f"  optimal cost  : {self.optimal_cost:.6g}")
        for name, p in sorted(self.hazard_probabilities.items()):
            lines.append(f"  P({name})     : {p:.6g}")
        if self.baseline is not None:
            base = ", ".join(f"{v:.4g}" for v in self.baseline)
            lines.append(f"  baseline      : ({base}) "
                         f"cost {self.baseline_cost:.6g}")
            for name, cmp_ in sorted(self.hazard_comparisons().items()):
                lines.append(
                    f"  {name}: {cmp_.baseline:.4g} -> "
                    f"{cmp_.optimized:.4g} "
                    f"({cmp_.improvement_percent:+.2f}% improvement)")
        return "\n".join(lines)


class SafetyOptimizer:
    """Runs safety optimization on a :class:`SafetyModel`."""

    def __init__(self, model: SafetyModel):
        self.model = model

    def available_methods(self) -> list:
        """Names accepted by :meth:`optimize`."""
        return sorted(_METHODS)

    def optimize(self, method: str = "nelder_mead",
                 baseline: Optional[Vector] = None,
                 **options) -> SafetyOptimizationResult:
        """Minimize the model's cost function.

        Parameters
        ----------
        method:
            One of :meth:`available_methods`.
        baseline:
            The pre-optimization configuration to compare against;
            defaults to the parameter defaults when all are set.
        options:
            Forwarded to the underlying optimizer.
        """
        try:
            optimizer = _METHODS[method]
        except KeyError:
            raise OptimizationError(
                f"unknown method {method!r}; "
                f"expected one of {sorted(_METHODS)}") from None
        problem: Problem = self.model.to_problem()
        result = optimizer(problem, **options)
        hazards = self.model.hazard_probabilities(result.x)

        if baseline is None:
            try:
                baseline = self.model.space.defaults()
            except Exception:
                baseline = None
        baseline_cost = None
        baseline_hazards = None
        if baseline is not None:
            baseline = self.model.space.box().clip(baseline)
            baseline_cost = self.model.cost(baseline)
            baseline_hazards = self.model.hazard_probabilities(baseline)

        return SafetyOptimizationResult(
            model_name=self.model.name, method=method, optimum=result.x,
            optimal_cost=result.fun, hazard_probabilities=hazards,
            opt_result=result, baseline=baseline,
            baseline_cost=baseline_cost, baseline_hazards=baseline_hazards)

    def optimize_all(self, methods: Optional[list] = None,
                     baseline: Optional[Vector] = None,
                     **options) -> Dict[str, SafetyOptimizationResult]:
        """Run several methods and return their results keyed by name."""
        results = {}
        for method in methods or self.available_methods():
            results[method] = self.optimize(method, baseline=baseline,
                                            **options)
        return results
