"""Uncertainty propagation through safety models.

"It is our experience, that the results of this analysis depend a lot on
how well the statistical model reflects reality" (Sect. V).  This module
quantifies that dependence: declare distributions over the uncertain
*inputs* of a model (accumulated constants, arrival rates, sensor fault
probabilities), sample them, rebuild the model per sample, and report the
induced distribution of any output — a hazard probability, the expected
cost, or the location of the optimum itself.

The result answers the review question every quantitative safety case
faces: *if your input numbers are off by their plausible ranges, does
the conclusion survive?*
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.errors import ModelError
from repro.stats.distributions import Distribution

#: Builds a model-output value from one concrete input sample.
OutputFn = Callable[[Dict[str, float]], float]


@dataclass(frozen=True)
class UncertaintyResult:
    """Sampled distribution of one model output."""

    name: str
    samples: Tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def std(self) -> float:
        m = self.mean
        n = len(self.samples)
        if n < 2:
            return 0.0
        return (sum((x - m) ** 2 for x in self.samples) / (n - 1)) ** 0.5

    def percentile(self, q: float) -> float:
        """Linear-interpolation percentile, ``q`` in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ModelError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        position = q / 100.0 * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        frac = position - low
        return ordered[low] * (1.0 - frac) + ordered[high] * frac

    def interval(self, confidence: float = 0.90) -> Tuple[float, float]:
        """Central credible interval from the sample percentiles."""
        if not 0.0 < confidence < 1.0:
            raise ModelError(
                f"confidence must be in (0, 1), got {confidence}")
        tail = (1.0 - confidence) / 2.0 * 100.0
        return (self.percentile(tail), self.percentile(100.0 - tail))

    def __repr__(self) -> str:
        lo, hi = self.interval()
        return (f"UncertaintyResult({self.name}: mean={self.mean:.4g}, "
                f"90% interval [{lo:.4g}, {hi:.4g}], "
                f"n={len(self.samples)})")


def latin_hypercube(inputs: Dict[str, Distribution], samples: int,
                    seed: int = 0) -> List[Dict[str, float]]:
    """Latin hypercube sample of the input distributions.

    Each input's quantile range is split into ``samples`` equal strata;
    one draw per stratum, shuffled independently per input — better
    space coverage than plain Monte Carlo at small sample counts.
    """
    if samples < 1:
        raise ModelError(f"samples must be >= 1, got {samples}")
    if not inputs:
        raise ModelError("no uncertain inputs declared")
    rng = random.Random(seed)
    columns: Dict[str, List[float]] = {}
    for name, dist in inputs.items():
        strata = []
        for i in range(samples):
            u = (i + rng.random()) / samples
            u = min(max(u, 1e-12), 1.0 - 1e-12)
            strata.append(dist.ppf(u))
        rng.shuffle(strata)
        columns[name] = strata
    return [{name: columns[name][i] for name in inputs}
            for i in range(samples)]


def propagate(inputs: Dict[str, Distribution], output: OutputFn,
              samples: int = 200, seed: int = 0,
              name: str = "output") -> UncertaintyResult:
    """Propagate input uncertainty through ``output``.

    ``output`` receives one concrete input sample (name -> value) and
    returns the model quantity of interest — typically it rebuilds a
    :class:`~repro.core.model.SafetyModel` from the sampled constants
    and evaluates a cost or hazard probability.
    """
    draws = latin_hypercube(inputs, samples, seed)
    values = [float(output(draw)) for draw in draws]
    return UncertaintyResult(name=name, samples=tuple(values))


def sobol_first_order(inputs: Dict[str, Distribution], output: OutputFn,
                      samples: int = 1024,
                      seed: int = 0) -> Dict[str, float]:
    """First-order Sobol sensitivity indices (Saltelli estimator).

    ``S_i = Var(E[Y | X_i]) / Var(Y)`` measures how much of the output
    variance each uncertain input explains on its own — which of the
    contested statistical assumptions (Sect. V) actually moves the
    conclusion.  Uses two independent sample matrices A and B plus the
    pick-freeze matrices ``A_B^i`` (Saltelli 2010), costing
    ``samples * (d + 2)`` output evaluations.

    Indices are clipped into [0, 1]; with ``samples`` around 1000 expect
    absolute accuracy of a few percent on smooth models.
    """
    if samples < 2:
        raise ModelError(f"samples must be >= 2, got {samples}")
    if not inputs:
        raise ModelError("no uncertain inputs declared")
    rng = random.Random(seed)
    names = list(inputs)

    def draw_matrix() -> List[Dict[str, float]]:
        rows = []
        for _ in range(samples):
            row = {}
            for name in names:
                u = min(max(rng.random(), 1e-12), 1.0 - 1e-12)
                row[name] = inputs[name].ppf(u)
            rows.append(row)
        return rows

    a_rows = draw_matrix()
    b_rows = draw_matrix()
    f_a = [float(output(row)) for row in a_rows]
    f_b = [float(output(row)) for row in b_rows]
    all_values = f_a + f_b
    mean = sum(all_values) / len(all_values)
    variance = sum((v - mean) ** 2 for v in all_values) / \
        (len(all_values) - 1)
    if variance <= 0.0:
        return {name: 0.0 for name in names}

    indices: Dict[str, float] = {}
    for name in names:
        mixed = [dict(a_row, **{name: b_row[name]})
                 for a_row, b_row in zip(a_rows, b_rows)]
        f_mixed = [float(output(row)) for row in mixed]
        estimate = sum(fb * (fm - fa) for fb, fm, fa in
                       zip(f_b, f_mixed, f_a)) / samples
        indices[name] = min(1.0, max(0.0, estimate / variance))
    return indices


def propagate_many(inputs: Dict[str, Distribution],
                   outputs: Dict[str, OutputFn], samples: int = 200,
                   seed: int = 0) -> Dict[str, UncertaintyResult]:
    """Propagate the *same* input samples through several outputs.

    Sharing the draws keeps the outputs comparable (common random
    numbers) and amortizes expensive model rebuilds when the output
    functions share work via closures.
    """
    draws = latin_hypercube(inputs, samples, seed)
    results: Dict[str, UncertaintyResult] = {}
    for name, fn in outputs.items():
        values = [float(fn(draw)) for draw in draws]
        results[name] = UncertaintyResult(name=name, samples=tuple(values))
    return results
