"""Trade-off analysis between opposed hazards.

"It is clear that it is not possible to minimize both risks at the same
time.  We could also give formal proof for this" (Sect. IV-B.1).  This
module provides the quantitative version of that statement:

* :func:`hazards_opposed` checks, over a sampled grid, whether two hazards
  ever improve together — if their minimizers differ and no sampled point
  dominates on both, they are genuinely opposed;
* :func:`hazard_front` computes the sampled Pareto front between all
  hazards of a model, exposing the full space of defensible
  configurations instead of the single point a fixed cost ratio selects;
* :func:`cost_ratio_sensitivity` re-optimizes under varied cost weights —
  how far does the "optimal" timer setting move when the assessed cost of
  a collision is 10x higher or lower?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.cost import CostModel, HazardCost
from repro.core.model import SafetyModel
from repro.core.optimizer import SafetyOptimizer
from repro.errors import ModelError
from repro.opt.pareto import ParetoPoint, pareto_filter
from repro.opt.problem import Vector


@dataclass(frozen=True)
class OppositionReport:
    """Evidence that two hazards cannot be minimized simultaneously."""

    hazard_a: str
    hazard_b: str
    argmin_a: Vector
    argmin_b: Vector
    opposed: bool

    def __repr__(self) -> str:
        verdict = "opposed" if self.opposed else "not opposed"
        return (f"OppositionReport({self.hazard_a} vs {self.hazard_b}: "
                f"{verdict})")


def hazards_opposed(model: SafetyModel, hazard_a: str, hazard_b: str,
                    points_per_dim: int = 15) -> OppositionReport:
    """Check on a sampled grid whether two hazards are opposed.

    Opposed means: no sampled configuration minimizes both at once — the
    minimizer of one is strictly worse than some other point for the
    other hazard.
    """
    for name in (hazard_a, hazard_b):
        if name not in model.hazards:
            raise ModelError(f"unknown hazard {name!r}")
    grid = model.space.box().grid(points_per_dim)
    values_a = [model.hazard_probability(hazard_a, x) for x in grid]
    values_b = [model.hazard_probability(hazard_b, x) for x in grid]
    index_a = min(range(len(grid)), key=lambda i: (values_a[i], values_b[i]))
    index_b = min(range(len(grid)), key=lambda i: (values_b[i], values_a[i]))
    min_a, min_b = min(values_a), min(values_b)
    # Opposed iff no grid point attains both minima simultaneously.
    joint = any(values_a[i] <= min_a and values_b[i] <= min_b
                for i in range(len(grid)))
    return OppositionReport(
        hazard_a=hazard_a, hazard_b=hazard_b,
        argmin_a=grid[index_a], argmin_b=grid[index_b],
        opposed=not joint)


def hazard_front(model: SafetyModel,
                 points_per_dim: int = 21) -> List[ParetoPoint]:
    """Sampled Pareto front across all hazards of the model.

    Objectives are ordered by sorted hazard name (matching
    :meth:`SafetyModel.objectives`).
    """
    grid = model.space.box().grid(points_per_dim)
    points = [ParetoPoint(x, model.objectives(x)) for x in grid]
    return pareto_filter(points)


def cost_ratio_sensitivity(model: SafetyModel, hazard: str,
                           factors: Sequence[float],
                           method: str = "nelder_mead",
                           **options) -> Dict[float, Tuple[Vector, float]]:
    """Re-optimize with one hazard's cost scaled by each factor.

    Returns ``factor -> (optimum, optimal cost)``.  Large movements of the
    optimum under modest factor changes flag configurations that hinge on
    contestable cost assessments.
    """
    if hazard not in model.hazards:
        raise ModelError(f"unknown hazard {hazard!r}")
    if not factors:
        raise ModelError("need at least one cost factor")
    results: Dict[float, Tuple[Vector, float]] = {}
    for factor in factors:
        if factor <= 0.0:
            raise ModelError(f"cost factors must be > 0, got {factor}")
        scaled_costs = [
            HazardCost(name,
                       model.cost_model.cost_of(name) * factor
                       if name == hazard
                       else model.cost_model.cost_of(name))
            for name in model.cost_model.hazards
        ]
        variant = SafetyModel(model.space, model.hazards,
                              CostModel(scaled_costs),
                              name=f"{model.name}[{hazard}x{factor:g}]")
        outcome = SafetyOptimizer(variant).optimize(method, **options)
        results[factor] = (outcome.optimum, outcome.optimal_cost)
    return results
