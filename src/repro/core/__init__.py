"""Safety optimization — the paper's contribution (Sect. III).

Wire a fault-tree (or closed-form) hazard model with parameterized
probabilities, a cost model, and a compact parameter space into a
:class:`SafetyModel`; run :class:`SafetyOptimizer` to find the optimal
configuration; use the sensitivity, scenario and trade-off tools to probe
how robust that optimum is.
"""

from repro.core.cost import CostModel, HazardCost
from repro.core.model import (
    FaultTreeHazard,
    FormulaHazard,
    HazardModel,
    SafetyModel,
)
from repro.core.optimizer import (
    HazardComparison,
    SafetyOptimizationResult,
    SafetyOptimizer,
)
from repro.core.parameters import Parameter, ParameterSpace
from repro.core.parametric import (
    ParametricProbability,
    as_parametric,
    constant,
    evaluate_grid,
    exceedance,
    from_cdf,
    from_function,
    from_model,
    from_table,
    grid_points,
    identity,
    scaled,
)
from repro.core.report import markdown_report
from repro.core.scenarios import Scenario, compare_scenarios, scenario_series
from repro.core.sensitivity import (
    TornadoBar,
    local_sensitivities,
    parameter_sweep,
    sweep,
    tornado,
)
from repro.core.tradeoff import (
    OppositionReport,
    cost_ratio_sensitivity,
    hazard_front,
    hazards_opposed,
)
from repro.core.uncertainty import (
    UncertaintyResult,
    latin_hypercube,
    propagate,
    propagate_many,
    sobol_first_order,
)

__all__ = [
    "Parameter",
    "ParameterSpace",
    "ParametricProbability",
    "as_parametric",
    "constant",
    "from_function",
    "from_cdf",
    "exceedance",
    "from_model",
    "from_table",
    "scaled",
    "identity",
    "grid_points",
    "evaluate_grid",
    "HazardCost",
    "CostModel",
    "HazardModel",
    "FormulaHazard",
    "FaultTreeHazard",
    "SafetyModel",
    "SafetyOptimizer",
    "SafetyOptimizationResult",
    "HazardComparison",
    "local_sensitivities",
    "tornado",
    "TornadoBar",
    "sweep",
    "parameter_sweep",
    "Scenario",
    "compare_scenarios",
    "scenario_series",
    "hazards_opposed",
    "OppositionReport",
    "hazard_front",
    "cost_ratio_sensitivity",
    "UncertaintyResult",
    "latin_hypercube",
    "propagate",
    "propagate_many",
    "sobol_first_order",
    "markdown_report",
]
