"""Cost functions over hazards (paper Sect. III-A).

The cost function "describes the total costs that all hazards together
cause in average to the operator": a weighted sum of hazard probabilities,
the weights being each hazard's assessed cost (paper Eq. 5/6).  The
Elbtunnel weighting is ``Cost(collision) = 100000 * Cost(false alarm)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.errors import ModelError


@dataclass(frozen=True)
class HazardCost:
    """The assessed cost of one hazard occurrence.

    ``cost`` is in arbitrary but consistent units (the paper notes the
    common if uncomfortable practice of using cash); only ratios between
    hazards matter for the location of the optimum.
    """

    hazard: str
    cost: float
    description: str = ""

    def __post_init__(self):
        if not self.hazard:
            raise ModelError("hazard name must be non-empty")
        if self.cost < 0.0:
            raise ModelError(
                f"cost of {self.hazard!r} must be >= 0, got {self.cost}")


class CostModel:
    """A weighted-sum cost model over a set of hazards.

    ``mean_cost`` evaluates paper Eq. 5:
    ``f_cost = sum_i Cost_Hi * P(Hi)``.
    """

    def __init__(self, hazard_costs: Iterable[HazardCost]):
        costs = list(hazard_costs)
        if not costs:
            raise ModelError("cost model needs at least one hazard cost")
        names = [c.hazard for c in costs]
        if len(set(names)) != len(names):
            raise ModelError(f"duplicate hazard names in cost model: {names}")
        self._costs: Dict[str, HazardCost] = {c.hazard: c for c in costs}

    @property
    def hazards(self) -> List[str]:
        """Hazard names covered by this cost model."""
        return list(self._costs)

    def cost_of(self, hazard: str) -> float:
        """The per-occurrence cost of one hazard."""
        try:
            return self._costs[hazard].cost
        except KeyError:
            raise ModelError(
                f"no cost assessed for hazard {hazard!r}") from None

    def mean_cost(self, hazard_probabilities: Dict[str, float]) -> float:
        """Expected cost for given hazard probabilities (paper Eq. 5).

        Every hazard in the model must be present; extra entries are
        rejected to catch wiring mistakes early.
        """
        missing = set(self._costs) - set(hazard_probabilities)
        if missing:
            raise ModelError(
                f"missing hazard probabilities for {sorted(missing)}")
        extra = set(hazard_probabilities) - set(self._costs)
        if extra:
            raise ModelError(
                f"no cost assessed for hazards {sorted(extra)}")
        total = 0.0
        for name, probability in hazard_probabilities.items():
            if not 0.0 <= probability <= 1.0:
                raise ModelError(
                    f"probability of {name!r} must be in [0, 1], "
                    f"got {probability}")
            total += self._costs[name].cost * probability
        return total

    def contributions(self, hazard_probabilities: Dict[str, float]
                      ) -> Dict[str, float]:
        """Per-hazard cost contributions (same validation as mean_cost)."""
        self.mean_cost(hazard_probabilities)  # validate
        return {name: self._costs[name].cost * p
                for name, p in hazard_probabilities.items()}

    def __repr__(self) -> str:
        inner = ", ".join(f"{c.hazard}={c.cost:g}"
                          for c in self._costs.values())
        return f"CostModel({inner})"
