"""Sensitivity analysis of cost and hazard probabilities.

"Even if the statistics are not very elaborate, safety optimization can
help by giving a rough estimation about how important the different
parameters are" (Sect. V).  This module quantifies that importance:

* :func:`local_sensitivities` — partial derivatives of the cost at a
  configuration (central finite differences),
* :func:`tornado` — one-at-a-time parameter ranging: swing each parameter
  over its full domain while holding the others at the study point, and
  report the induced cost range (the classic tornado diagram data),
* :func:`sweep` — the raw one-parameter series behind plots like the
  paper's Fig. 6 (probability of false alarm against the runtime of
  timer 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.model import SafetyModel
from repro.errors import ModelError


@dataclass(frozen=True)
class TornadoBar:
    """One parameter's cost swing for a tornado diagram."""

    parameter: str
    low_value: float
    high_value: float
    cost_at_low: float
    cost_at_high: float
    base_cost: float

    @property
    def swing(self) -> float:
        """Total cost range induced by this parameter alone."""
        return abs(self.cost_at_high - self.cost_at_low)


def local_sensitivities(model: SafetyModel, point: Sequence[float],
                        rel_step: float = 1e-5) -> Dict[str, float]:
    """Central-difference partial derivatives of the cost at ``point``.

    Steps are relative to each parameter's domain width and clipped to the
    domain, falling back to one-sided differences at the walls.
    """
    box = model.space.box()
    x = box.clip(tuple(point))
    base = model.cost(x)
    result: Dict[str, float] = {}
    for i, parameter in enumerate(model.space):
        h = max(rel_step * (parameter.upper - parameter.lower), 1e-12)
        up = list(x)
        down = list(x)
        up[i] = min(x[i] + h, parameter.upper)
        down[i] = max(x[i] - h, parameter.lower)
        span = up[i] - down[i]
        if span <= 0.0:
            result[parameter.name] = 0.0
            continue
        f_up = model.cost(tuple(up)) if up[i] != x[i] else base
        f_down = model.cost(tuple(down)) if down[i] != x[i] else base
        result[parameter.name] = (f_up - f_down) / span
    return result


def tornado(model: SafetyModel,
            point: Optional[Sequence[float]] = None) -> List[TornadoBar]:
    """One-at-a-time full-range cost swings, sorted widest first."""
    box = model.space.box()
    x = box.clip(tuple(point)) if point is not None \
        else model.space.defaults()
    base = model.cost(x)
    bars: List[TornadoBar] = []
    for i, parameter in enumerate(model.space):
        low_point = list(x)
        high_point = list(x)
        low_point[i] = parameter.lower
        high_point[i] = parameter.upper
        bars.append(TornadoBar(
            parameter=parameter.name,
            low_value=parameter.lower, high_value=parameter.upper,
            cost_at_low=model.cost(tuple(low_point)),
            cost_at_high=model.cost(tuple(high_point)),
            base_cost=base))
    bars.sort(key=lambda b: b.swing, reverse=True)
    return bars


def sweep(fn: Callable[[float], float], lower: float, upper: float,
          points: int = 50) -> List[Tuple[float, float]]:
    """Evaluate a scalar function on an even grid; returns (x, y) pairs."""
    if points < 2:
        raise ModelError(f"need at least 2 points, got {points}")
    if not lower < upper:
        raise ModelError(f"need lower < upper, got [{lower}, {upper}]")
    step = (upper - lower) / (points - 1)
    return [(lower + i * step, fn(lower + i * step))
            for i in range(points)]


def parameter_sweep(model: SafetyModel, parameter: str,
                    point: Sequence[float], points: int = 50,
                    quantity: str = "cost",
                    hazard: Optional[str] = None
                    ) -> List[Tuple[float, float]]:
    """Sweep one parameter over its domain, others fixed at ``point``.

    ``quantity`` is ``"cost"`` or ``"hazard"`` (then ``hazard`` names which
    one) — the latter generates exactly the series of the paper's Fig. 6.
    """
    if parameter not in model.space:
        raise ModelError(f"unknown parameter {parameter!r}")
    if quantity not in ("cost", "hazard"):
        raise ModelError(
            f"quantity must be 'cost' or 'hazard', got {quantity!r}")
    if quantity == "hazard" and hazard is None:
        raise ModelError("quantity='hazard' requires the hazard name")
    box = model.space.box()
    x = list(box.clip(tuple(point)))
    index = model.space.names.index(parameter)
    spec = model.space[parameter]

    def evaluate(value: float) -> float:
        x[index] = value
        if quantity == "cost":
            return model.cost(tuple(x))
        return model.hazard_probability(hazard, tuple(x))

    return sweep(evaluate, spec.lower, spec.upper, points)
