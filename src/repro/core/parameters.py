"""Free parameters of a system and their compact domains.

"Many real world applications have free parameters, which influence safety
requirements: the tolerance of a speed indicator, accepted time delay
between request and answers or the average maintenance interval" (Sect. I).
A :class:`Parameter` is one such quantity with a compact interval domain
(the paper's restriction guaranteeing the minimum exists); a
:class:`ParameterSpace` is the ordered collection of them, convertible to
an optimization :class:`~repro.opt.problem.Box` and back.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import ModelError
from repro.opt.problem import Box, Vector


@dataclass(frozen=True)
class Parameter:
    """A named free parameter over a compact interval.

    ``default`` is the configuration in use before optimization (e.g. the
    engineers' 30-minute timer guess) — the baseline every improvement is
    reported against.
    """

    name: str
    lower: float
    upper: float
    default: float = math.nan
    unit: str = ""
    description: str = ""

    def __post_init__(self):
        if not self.name:
            raise ModelError("parameter name must be non-empty")
        if not (math.isfinite(self.lower) and math.isfinite(self.upper)):
            raise ModelError(
                f"parameter {self.name!r} needs a compact (finite) domain")
        if not self.lower < self.upper:
            raise ModelError(
                f"parameter {self.name!r} needs lower < upper, got "
                f"[{self.lower}, {self.upper}]")
        if not math.isnan(self.default) and not \
                self.lower <= self.default <= self.upper:
            raise ModelError(
                f"default of {self.name!r} must lie in "
                f"[{self.lower}, {self.upper}], got {self.default}")

    @property
    def has_default(self) -> bool:
        """True when a baseline configuration value was given."""
        return not math.isnan(self.default)

    def clamp(self, value: float) -> float:
        """Clamp ``value`` into the parameter's domain."""
        return min(max(value, self.lower), self.upper)


class ParameterSpace:
    """An ordered collection of parameters (the optimization domain)."""

    def __init__(self, parameters: Sequence[Parameter]):
        if not parameters:
            raise ModelError("parameter space must not be empty")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ModelError(f"duplicate parameter names in {names}")
        self._parameters: List[Parameter] = list(parameters)
        self._index: Dict[str, int] = {p.name: i
                                       for i, p in enumerate(parameters)}

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._parameters)

    def __len__(self) -> int:
        return len(self._parameters)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Parameter:
        try:
            return self._parameters[self._index[name]]
        except KeyError:
            raise ModelError(f"unknown parameter {name!r}") from None

    @property
    def names(self) -> Tuple[str, ...]:
        """Parameter names in declaration order."""
        return tuple(p.name for p in self._parameters)

    def box(self) -> Box:
        """The optimization box (product of the parameter intervals)."""
        return Box([(p.lower, p.upper) for p in self._parameters])

    def defaults(self) -> Vector:
        """The baseline configuration vector.

        Raises :class:`ModelError` when any parameter lacks a default.
        """
        missing = [p.name for p in self._parameters if not p.has_default]
        if missing:
            raise ModelError(
                f"parameters without defaults: {', '.join(missing)}")
        return tuple(p.default for p in self._parameters)

    def to_dict(self, point: Sequence[float]) -> Dict[str, float]:
        """Convert a vector into a name->value mapping (validated)."""
        if len(point) != len(self._parameters):
            raise ModelError(
                f"point has {len(point)} components for "
                f"{len(self._parameters)} parameters")
        values = {}
        for parameter, value in zip(self._parameters, point):
            if not parameter.lower - 1e-9 <= value <= parameter.upper + 1e-9:
                raise ModelError(
                    f"value {value} of {parameter.name!r} outside "
                    f"[{parameter.lower}, {parameter.upper}]")
            values[parameter.name] = float(value)
        return values

    def to_vector(self, values: Dict[str, float]) -> Vector:
        """Convert a name->value mapping into an ordered vector."""
        unknown = set(values) - set(self._index)
        if unknown:
            raise ModelError(f"unknown parameters: {sorted(unknown)}")
        missing = set(self._index) - set(values)
        if missing:
            raise ModelError(f"missing parameters: {sorted(missing)}")
        return tuple(float(values[name]) for name in self.names)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{p.name}[{p.lower:g}..{p.upper:g}]" for p in self._parameters)
        return f"ParameterSpace({inner})"
