"""Parameterized probabilities (paper Sect. II-D.2) as composable objects.

A :class:`ParametricProbability` is the paper's functional mapping
``P(PF): Domain(X) -> [0, 1]`` — a probability that depends on named free
parameters.  Instances compose under the independence algebra:

* ``a & b``   — both occur:      ``P = a * b``
* ``a | b``   — at least one:    ``P = 1 - (1-a)(1-b)``
* ``~a``      — complement:      ``P = 1 - a``
* ``a + b``   — rare-event sum (clipped at 1) — the paper's Eq. 3/4 shape
* ``a * b``   — plain product (alias of ``&`` for independent events)

Constructors cover the idioms of Sect. IV-C:

* :func:`constant` — a fixed probability (the paper's ``Pconst1/2``),
* :func:`from_cdf` — ``P(X <= T)`` of a driving-time distribution,
* :func:`exceedance` — ``P(X > T)``, the overtime probabilities
  ``P(OT1)(T1) = 1 - P_OHV(Time <= T1)``,
* :func:`from_model` — any :class:`~repro.stats.reliability.ReliabilityModel`
  applied to one parameter (exposure windows etc.),
* :func:`from_function` — escape hatch for arbitrary formulas.

Every instance declares which parameters it reads, so a
:class:`~repro.core.model.SafetyModel` can check hazard/parameter wiring
statically (the paper's footnote 2: "not every hazard depends on all free
parameters, but rather only on a subset").
"""

from __future__ import annotations

import itertools
import uuid
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Sequence,
    Tuple,
)

from repro.errors import ModelError
from repro.stats.distributions import Distribution
from repro.stats.reliability import ReliabilityModel

Values = Dict[str, float]


#: Per-process salt for opaque fingerprints: tokens of two different
#: processes can never collide through a disk-persisted cache.
_OPAQUE_SALT = uuid.uuid4().hex
_opaque_counter = itertools.count(1)


def _opaque_fingerprint(parameters: FrozenSet[str]) -> str:
    """A unique content token for a probability we cannot introspect.

    Raw callables are not content-addressable, so each instance gets a
    token that is unique per object and per process: the engine cache
    can still reuse results for the *same* probability object, but two
    different callables can never be mistaken for one another — a
    conservative cache miss instead of a silently wrong hit.
    """
    return (f"opaque#{_OPAQUE_SALT}:{next(_opaque_counter)}"
            f"({','.join(sorted(parameters))})")


class ParametricProbability:
    """A probability as a function of named free parameters.

    ``fingerprint`` is the content token :mod:`repro.engine` hashes into
    cache keys.  The constructors in this module derive it from their
    actual inputs (distribution parameters, exact float reprs, table
    points), so rebuilt-but-identical probabilities share cache entries;
    probabilities wrapping arbitrary callables get an opaque per-object
    token instead — they never produce a wrong cache hit, only misses.
    """

    def __init__(self, fn: Callable[[Values], float],
                 parameters: Iterable[str], label: str = "",
                 fingerprint: str = ""):
        self._fn = fn
        self.parameters: FrozenSet[str] = frozenset(parameters)
        self.label = label or "p(" + ", ".join(sorted(self.parameters)) + ")"
        self.fingerprint = fingerprint \
            or _opaque_fingerprint(self.parameters)

    def __call__(self, values: Values) -> float:
        missing = self.parameters - set(values)
        if missing:
            raise ModelError(
                f"{self.label}: missing parameter values for "
                f"{sorted(missing)}")
        p = float(self._fn(values))
        # Clamp tiny numerical excursions; reject real violations.
        if -1e-9 <= p < 0.0:
            return 0.0
        if 1.0 < p <= 1.0 + 1e-9:
            return 1.0
        if not 0.0 <= p <= 1.0:
            raise ModelError(
                f"{self.label} produced {p}, outside [0, 1], "
                f"at {dict(sorted(values.items()))}")
        return p

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __and__(self, other: "ParametricProbability") \
            -> "ParametricProbability":
        other = as_parametric(other)
        return ParametricProbability(
            lambda v: self(v) * other(v),
            self.parameters | other.parameters,
            f"({self.label} & {other.label})",
            f"({self.fingerprint} & {other.fingerprint})")

    def __or__(self, other: "ParametricProbability") \
            -> "ParametricProbability":
        other = as_parametric(other)
        return ParametricProbability(
            lambda v: 1.0 - (1.0 - self(v)) * (1.0 - other(v)),
            self.parameters | other.parameters,
            f"({self.label} | {other.label})",
            f"({self.fingerprint} | {other.fingerprint})")

    def __invert__(self) -> "ParametricProbability":
        return ParametricProbability(
            lambda v: 1.0 - self(v), self.parameters, f"~{self.label}",
            f"~{self.fingerprint}")

    def __add__(self, other) -> "ParametricProbability":
        other = as_parametric(other)
        return ParametricProbability(
            lambda v: min(1.0, self(v) + other(v)),
            self.parameters | other.parameters,
            f"({self.label} + {other.label})",
            f"({self.fingerprint} + {other.fingerprint})")

    __radd__ = __add__

    def __mul__(self, other) -> "ParametricProbability":
        other = as_parametric(other)
        return ParametricProbability(
            lambda v: self(v) * other(v),
            self.parameters | other.parameters,
            f"({self.label} * {other.label})",
            f"({self.fingerprint} * {other.fingerprint})")

    __rmul__ = __mul__

    def rename(self, label: str) -> "ParametricProbability":
        """Return the same probability with a new display label."""
        return ParametricProbability(self._fn, self.parameters, label,
                                     self.fingerprint)

    def __repr__(self) -> str:
        return f"ParametricProbability({self.label})"


def as_parametric(value) -> ParametricProbability:
    """Coerce floats to :func:`constant`; pass instances through."""
    if isinstance(value, ParametricProbability):
        return value
    if isinstance(value, (int, float)):
        return constant(float(value))
    raise ModelError(
        f"cannot interpret {value!r} as a parametric probability")


def constant(p: float, label: str = "") -> ParametricProbability:
    """A parameter-independent probability (the paper's ``Pconst``)."""
    if not 0.0 <= p <= 1.0:
        raise ModelError(f"constant probability must be in [0, 1], got {p}")
    return ParametricProbability(
        lambda _v: p, frozenset(), label or f"{p:g}",
        f"const({float(p)!r})")


def from_function(fn: Callable[[Values], float], parameters: Iterable[str],
                  label: str = "") -> ParametricProbability:
    """Wrap an arbitrary ``values -> probability`` function.

    The callable cannot be content-hashed, so the result carries an
    opaque per-object fingerprint: engine caches reuse results for this
    object but never conflate two different functions.
    """
    return ParametricProbability(fn, parameters, label)


def from_cdf(distribution: Distribution, parameter: str,
             label: str = "") -> ParametricProbability:
    """``P(X <= x)`` where ``x`` is the named free parameter.

    E.g. the probability that an OHV clears a zone within the timer
    runtime: ``from_cdf(TruncatedNormal(4, 2), "T1")``.
    """
    return ParametricProbability(
        lambda v: distribution.cdf(v[parameter]), {parameter},
        label or f"P(X<= {parameter})",
        f"cdf({distribution!r};{parameter})")


def exceedance(distribution: Distribution, parameter: str,
               label: str = "") -> ParametricProbability:
    """``P(X > x)`` — the overtime probability ``1 - cdf`` (paper Eq. for
    ``P(OT1)(T1)``)."""
    return ParametricProbability(
        lambda v: distribution.sf(v[parameter]), {parameter},
        label or f"P(X> {parameter})",
        f"sf({distribution!r};{parameter})")


def from_model(model: ReliabilityModel, parameter: str,
               label: str = "") -> ParametricProbability:
    """Apply a reliability model to one named parameter.

    E.g. ``from_model(ExposureWindowModel(rate), "T2")`` is the
    probability that a spurious event falls into an active window of
    length ``T2``.
    """
    return ParametricProbability(
        lambda v: model(v[parameter]), {parameter},
        label or f"{type(model).__name__}({parameter})",
        f"model({model!r};{parameter})")


def from_table(points, parameter: str,
               label: str = "") -> ParametricProbability:
    """Piecewise-linear probability from measured (x, p) pairs.

    The practical escape hatch when no closed-form model fits: feed in
    an empirically measured curve (e.g. alarm fraction per tested timer
    setting) and interpolate.  Outside the table the nearest endpoint is
    held (no extrapolation).  Points are sorted by x; duplicate x values
    and out-of-range probabilities are rejected.
    """
    table = sorted((float(x), float(p)) for x, p in points)
    if len(table) < 2:
        raise ModelError("table needs at least two points")
    xs = [x for x, _p in table]
    if len(set(xs)) != len(xs):
        raise ModelError("table has duplicate x values")
    for _x, p in table:
        if not 0.0 <= p <= 1.0:
            raise ModelError(
                f"table probabilities must be in [0, 1], got {p}")

    def interpolate(values: Values) -> float:
        x = values[parameter]
        if x <= table[0][0]:
            return table[0][1]
        if x >= table[-1][0]:
            return table[-1][1]
        for (x0, p0), (x1, p1) in zip(table, table[1:]):
            if x0 <= x <= x1:
                frac = (x - x0) / (x1 - x0)
                return p0 + frac * (p1 - p0)
        raise ModelError(f"value {x} not covered")  # pragma: no cover

    return ParametricProbability(interpolate, {parameter},
                                 label or f"table({parameter})",
                                 f"table({table!r};{parameter})")


def identity(parameter: str, label: str = "") -> ParametricProbability:
    """The probability that *is* the named parameter (must lie in [0, 1]).

    Lets a probability itself act as a free parameter — e.g. sweeping a
    leaf probability directly over a grid (the ``repro batch`` sweep jobs
    use exactly this).
    """
    return ParametricProbability(
        lambda v: v[parameter], {parameter}, label or f"id({parameter})",
        f"identity({parameter})")


def grid_points(axes: Mapping[str, Sequence[float]]
                ) -> List[Dict[str, float]]:
    """Cartesian product of per-parameter value lists, in row-major order.

    ``axes`` maps parameter names to the values each should take; the
    result lists one ``{name: value}`` dict per grid point, with the last
    axis varying fastest (axes iterate in insertion order).  This is the
    grid construction behind engine sweep jobs
    (:meth:`repro.engine.SweepJob.from_axes`).
    """
    if not axes:
        raise ModelError("grid needs at least one axis")
    names = list(axes)
    columns = []
    for name in names:
        values = [float(v) for v in axes[name]]
        if not values:
            raise ModelError(f"axis {name!r} has no values")
        columns.append(values)
    return [dict(zip(names, combo))
            for combo in itertools.product(*columns)]


def evaluate_grid(probability: ParametricProbability,
                  axes: Mapping[str, Sequence[float]]
                  ) -> List[Tuple[Dict[str, float], float]]:
    """Evaluate a parametric probability on a full parameter grid.

    Returns ``(values, probability)`` pairs in the row-major order of
    :func:`grid_points`.  For fault-tree hazards (where each point costs
    a quantification rather than a formula evaluation) use the
    engine-backed :meth:`repro.core.model.FaultTreeHazard.probability_grid`
    instead.
    """
    probability = as_parametric(probability)
    return [(point, probability(point)) for point in grid_points(axes)]


def scaled(probability: ParametricProbability,
           factor: float) -> ParametricProbability:
    """Multiply a probability by a constant in ``[0, 1]`` (thinning)."""
    if not 0.0 <= factor <= 1.0:
        raise ModelError(f"scale factor must be in [0, 1], got {factor}")
    return ParametricProbability(
        lambda v: factor * probability(v), probability.parameters,
        f"{factor:g}*{probability.label}",
        f"scale({float(factor)!r};{probability.fingerprint})")
