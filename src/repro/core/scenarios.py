"""Environment scenarios: analyzing a design in different working worlds.

The decisive step in the paper's case study (Sect. IV-C.2) was *not* the
optimization itself but re-examining the optimized design in a different
environment: "we introduce an additional parameterized probability in the
system — the rate of correct driving OHVs.  This allows us to answer the
question: How does the control scale if the traffic increases."  That
analysis exposed a major design flaw invisible to both model checking and
standard quantitative FTA.

A :class:`Scenario` is a named factory of safety models (one per design
variant / environment assumption); :func:`compare_scenarios` evaluates a
quantity across scenarios and :func:`scenario_series` produces the
per-scenario sweep series behind multi-curve plots like Fig. 6
("without_LB4" vs. "with_LB4").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.model import SafetyModel
from repro.core.sensitivity import parameter_sweep
from repro.errors import ModelError


@dataclass(frozen=True)
class Scenario:
    """A named system variant: design option and/or environment assumption.

    ``build`` constructs a fresh :class:`SafetyModel` for the scenario;
    ``description`` documents what changed relative to the reference.
    """

    name: str
    build: Callable[[], SafetyModel]
    description: str = ""

    def model(self) -> SafetyModel:
        """Construct the scenario's safety model."""
        model = self.build()
        if not isinstance(model, SafetyModel):
            raise ModelError(
                f"scenario {self.name!r} factory returned "
                f"{type(model).__name__}, expected SafetyModel")
        return model


def compare_scenarios(scenarios: Sequence[Scenario],
                      evaluate: Callable[[SafetyModel], float]
                      ) -> Dict[str, float]:
    """Evaluate one scalar quantity per scenario.

    ``evaluate`` receives each scenario's model (e.g.
    ``lambda m: m.cost(point)``); the result maps scenario names to
    values.
    """
    if not scenarios:
        raise ModelError("need at least one scenario")
    names = [s.name for s in scenarios]
    if len(set(names)) != len(names):
        raise ModelError(f"duplicate scenario names: {names}")
    return {scenario.name: float(evaluate(scenario.model()))
            for scenario in scenarios}


def scenario_series(scenarios: Sequence[Scenario], parameter: str,
                    point: Sequence[float], hazard: str,
                    points: int = 50
                    ) -> Dict[str, List[Tuple[float, float]]]:
    """Per-scenario sweep of one hazard against one parameter.

    Produces the data behind multi-curve comparisons like the paper's
    Fig. 6: one ``(parameter value, hazard probability)`` series per
    scenario, all at the same operating ``point`` for the remaining
    parameters.
    """
    series: Dict[str, List[Tuple[float, float]]] = {}
    for scenario in scenarios:
        model = scenario.model()
        series[scenario.name] = parameter_sweep(
            model, parameter, point, points=points,
            quantity="hazard", hazard=hazard)
    return series
