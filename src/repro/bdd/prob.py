"""Exact probability evaluation over a BDD.

For pairwise-independent variables, the probability that a Boolean function
is true is computed in a single bottom-up pass over its BDD:

``P(node) = (1 - p_var) * P(low) + p_var * P(high)``

This is exact — unlike the paper's standard formula (Eq. 1), which sums
minimal-cut-set products and "neglects second and higher-order terms".  The
benchmark suite uses this evaluator to measure the rare-event
approximation's error.
"""

from __future__ import annotations

from typing import Dict

from repro.bdd.manager import FALSE, TRUE, BDDManager, Node
from repro.errors import BDDError


def probability(manager: BDDManager, node: Node,
                var_probs: Dict[str, float]) -> float:
    """Return ``P(f = 1)`` for independent variables.

    Parameters
    ----------
    manager:
        The manager that owns ``node``.
    node:
        Root of the function's BDD.
    var_probs:
        Mapping from variable name to its probability of being true.
        Every variable in the support of ``node`` must be present and
        inside ``[0, 1]``.
    """
    if node is TRUE:
        return 1.0
    if node is FALSE:
        return 0.0
    prob_by_index: Dict[int, float] = {}
    for name in manager.support(node):
        if name not in var_probs:
            raise BDDError(f"no probability given for variable {name!r}")
        p = var_probs[name]
        if not 0.0 <= p <= 1.0:
            raise BDDError(
                f"probability of {name!r} must be in [0, 1], got {p}")
        prob_by_index[manager.add_var(name)] = p

    cache: Dict[int, float] = {}

    def walk(n: Node) -> float:
        if n is TRUE:
            return 1.0
        if n is FALSE:
            return 0.0
        hit = cache.get(id(n))
        if hit is not None:
            return hit
        p = prob_by_index[n.var]
        value = (1.0 - p) * walk(n.low) + p * walk(n.high)
        cache[id(n)] = value
        return value

    return walk(node)


def conditional_probability(manager: BDDManager, node: Node,
                            var_probs: Dict[str, float],
                            given: str, value: bool) -> float:
    """Return ``P(f = 1 | variable == value)``.

    Computed by restricting the BDD — the basis of Birnbaum importance
    (``P(f|x=1) - P(f|x=0)``) evaluated without the rare-event
    approximation.
    """
    restricted = manager.restrict(node, given, value)
    remaining = {k: v for k, v in var_probs.items() if k != given}
    return probability(manager, restricted, remaining)
