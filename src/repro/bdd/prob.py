"""Exact probability evaluation over a BDD.

For pairwise-independent variables, the probability that a Boolean function
is true is computed in a single bottom-up pass over its BDD:

``P(node) = (1 - p_var) * P(low) + p_var * P(high)``

The pass runs over the manager's arena in ascending index order — a
topological level order, since decision nodes are always created after
their cofactors — so no recursion and no per-node dictionary walk is
involved, and :func:`probability_batch` evaluates the same pass over a
whole ``(batch, n_vars)`` probability matrix with NumPy row arithmetic.

This is exact — unlike the paper's standard formula (Eq. 1), which sums
minimal-cut-set products and "neglects second and higher-order terms".  The
benchmark suite uses this evaluator to measure the rare-event
approximation's error.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.bdd.manager import BDDManager, Node
from repro.errors import BDDError


def probability(manager: BDDManager, node: Node,
                var_probs: Dict[str, float]) -> float:
    """Return ``P(f = 1)`` for independent variables.

    Parameters
    ----------
    manager:
        The manager that owns ``node``.
    node:
        Root of the function's BDD.
    var_probs:
        Mapping from variable name to its probability of being true.
        Every variable in the support of ``node`` must be present and
        inside ``[0, 1]``.
    """
    index = node.index
    if index == 1:
        return 1.0
    if index == 0:
        return 0.0
    vars_, lows, highs = manager.arena
    names = manager.var_names
    values: Dict[int, float] = {0: 0.0, 1: 1.0}
    # Validation folds into the single bottom-up sweep: each support
    # variable is checked the first time a node branching on it appears.
    prob_of: Dict[int, float] = {}
    for n in manager.topological_indices(node):
        var = vars_[n]
        p = prob_of.get(var)
        if p is None:
            name = names[var]
            if name not in var_probs:
                raise BDDError(
                    f"no probability given for variable {name!r}")
            p = var_probs[name]
            if not 0.0 <= p <= 1.0:
                raise BDDError(
                    f"probability of {name!r} must be in [0, 1], got {p}")
            prob_of[var] = p
        values[n] = (1.0 - p) * values[lows[n]] + p * values[highs[n]]
    return values[index]


def probability_batch(manager: BDDManager, node: Node,
                      matrix: "np.ndarray") -> "np.ndarray":
    """Exact probabilities for a whole batch of variable valuations.

    ``matrix`` has shape ``(batch, manager.var_count)``; column ``j``
    holds the probability of the variable at order position ``j`` for
    each batch point.  Returns a ``(batch,)`` array, bit-identical to
    calling :func:`probability` row by row (the per-node arithmetic is
    the same fused expression, applied to whole columns at once).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != manager.var_count:
        raise BDDError(
            f"probability matrix must have shape "
            f"(batch, {manager.var_count}), got {matrix.shape}")
    batch = matrix.shape[0]
    index = node.index
    if index == 1:
        return np.ones(batch)
    if index == 0:
        return np.zeros(batch)
    vars_, lows, highs = manager.arena
    order = manager.topological_indices(node)
    for var in {vars_[n] for n in order}:
        column = matrix[:, var]
        if not np.all((column >= 0.0) & (column <= 1.0)):
            raise BDDError(
                f"probability of {manager.var_name(var)!r} must be "
                "in [0, 1]")
    values: Dict[int, np.ndarray] = {0: np.zeros(batch),
                                     1: np.ones(batch)}
    for n in order:
        p = matrix[:, vars_[n]]
        values[n] = (1.0 - p) * values[lows[n]] + p * values[highs[n]]
    return values[index]


def conditional_probability(manager: BDDManager, node: Node,
                            var_probs: Dict[str, float],
                            given: str, value: bool) -> float:
    """Return ``P(f = 1 | variable == value)``.

    Computed by restricting the BDD — the basis of Birnbaum importance
    (``P(f|x=1) - P(f|x=0)``) evaluated without the rare-event
    approximation.
    """
    restricted = manager.restrict(node, given, value)
    remaining = {k: v for k, v in var_probs.items() if k != given}
    return probability(manager, restricted, remaining)
