"""ROBDD arena kernel: nodes as indices into parallel integer arrays.

Nodes live in a *node arena* inside :class:`BDDManager` — three parallel
lists ``var[] / low[] / high[]`` indexed by integer node id — instead of a
graph of linked objects.  Index ``0`` is the FALSE terminal, index ``1``
the TRUE terminal, and every decision node is created *after* its
children, so ascending index order is a topological (children-first)
order of every diagram in the manager.  The unique table and the shared
``(op, a, b)`` compute table use packed integer keys, and every traversal
(`apply`, `negate`, ``ite``, ``restrict``, ``sat_count``) runs an explicit
stack, so arbitrarily deep diagrams never hit Python's recursion limit.

The public surface is handle-based: :class:`Node` is a lightweight
interned view onto one arena slot, so structurally identical functions
are still the *same object* and equality remains identity, exactly as in
the linked-node kernel this module replaces.  Terminals are the
module-level singletons :data:`TRUE` and :data:`FALSE`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from repro.errors import BDDError

#: Integer opcodes for the shared compute table.
_OP_AND = 0
_OP_OR = 1
_OP_XOR = 2

#: Sentinel "variable" of the terminals: sorts after every real variable.
_NO_VAR = (1 << 60)


class Node:
    """A handle to one BDD node: an index into a manager's arena.

    ``index`` is the node's arena slot (``0`` = FALSE, ``1`` = TRUE).
    Handles are interned per manager, so two handles denote the same
    Boolean function iff they are the same object.  The linked-node
    attributes ``var`` / ``low`` / ``high`` / ``value`` are kept as
    read-only views onto the arena for compatibility and debugging; the
    kernel itself only ever touches indices.
    """

    __slots__ = ("manager", "index", "value")

    def __init__(self, manager: Optional["BDDManager"], index: int,
                 value: Optional[bool] = None):
        self.manager = manager
        self.index = index
        self.value = value

    @property
    def is_terminal(self) -> bool:
        """True for the TRUE/FALSE leaves."""
        return self.index < 2

    @property
    def var(self) -> Optional[int]:
        """Variable order index (``None`` for terminals)."""
        if self.index < 2:
            return None
        return self.manager._vars[self.index]

    @property
    def low(self) -> Optional["Node"]:
        """Cofactor for ``var = 0`` (``None`` for terminals)."""
        if self.index < 2:
            return None
        return self.manager._node(self.manager._lows[self.index])

    @property
    def high(self) -> Optional["Node"]:
        """Cofactor for ``var = 1`` (``None`` for terminals)."""
        if self.index < 2:
            return None
        return self.manager._node(self.manager._highs[self.index])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.index < 2:
            return f"<{'TRUE' if self.index else 'FALSE'}>"
        return f"<Node {self.index} var={self.var}>"


TRUE = Node(None, 1, True)
FALSE = Node(None, 0, False)


class BDDManager:
    """Owns the node arena, variable ordering and all compute tables.

    Variables are registered by name with :meth:`add_var` (or implicitly
    by :meth:`var`); their registration order is the BDD order.  All
    boolean connectives are provided, each memoized in the manager's
    typed ``(op, a, b)`` compute table; :meth:`ite` has its own ternary
    table.  The raw arrays are readable through :attr:`arena` and
    :meth:`topological_indices` so downstream passes (probability,
    tape lowering, cut-set extraction) can run directly over indices.
    """

    def __init__(self):
        # Arena slots 0/1 are the terminals; their var sorts last so the
        # apply loop can treat them uniformly.
        self._vars: List[int] = [_NO_VAR, _NO_VAR]
        self._lows: List[int] = [0, 1]
        self._highs: List[int] = [0, 1]
        self._handles: List[Optional[Node]] = [FALSE, TRUE]
        self._unique: Dict[int, int] = {}
        self._compute: Dict[int, int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._not_cache: Dict[int, int] = {}
        self._var_names: List[str] = []
        self._var_index: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def add_var(self, name: str) -> int:
        """Register ``name`` (idempotent) and return its order index."""
        index = self._var_index.get(name)
        if index is not None:
            return index
        index = len(self._var_names)
        self._var_names.append(name)
        self._var_index[name] = index
        return index

    def var(self, name: str) -> Node:
        """Return the BDD of the single variable ``name``."""
        index = self.add_var(name)
        return self._node(self._mk(index, 0, 1))

    def var_name(self, index: int) -> str:
        """Return the name of the variable at order position ``index``."""
        try:
            return self._var_names[index]
        except IndexError:
            raise BDDError(f"no variable with index {index}") from None

    @property
    def var_count(self) -> int:
        """Number of registered variables."""
        return len(self._var_names)

    @property
    def var_names(self) -> List[str]:
        """Variable names in order position; treat as read-only."""
        return self._var_names

    @property
    def node_count(self) -> int:
        """Number of live interned decision nodes (terminals excluded)."""
        return len(self._vars) - 2

    # ------------------------------------------------------------------
    # Arena access
    # ------------------------------------------------------------------
    @property
    def arena(self) -> Tuple[List[int], List[int], List[int]]:
        """The ``(var, low, high)`` arrays, indexed by node id.

        Slots 0/1 are the FALSE/TRUE terminals (their ``var`` entry is a
        sentinel that sorts after every real variable).  Treat the lists
        as read-only views: they are the live arena, not a copy.
        """
        return self._vars, self._lows, self._highs

    def topological_indices(self, node: Union[Node, int]) -> List[int]:
        """Reachable decision-node indices, children before parents.

        Decision nodes are always created after their cofactors, so
        ascending arena order is a topological level order — the
        iteration order used by every bottom-up pass (probability,
        sat-count, tape lowering, cut-set extraction).
        """
        index = node.index if isinstance(node, Node) else node
        if index < 2:
            return []
        lows, highs = self._lows, self._highs
        seen: Set[int] = {index}
        add = seen.add
        stack = [index]
        push = stack.append
        while stack:
            n = stack.pop()
            low = lows[n]
            if low > 1 and low not in seen:
                add(low)
                push(low)
            high = highs[n]
            if high > 1 and high not in seen:
                add(high)
                push(high)
        return sorted(seen)

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def _node(self, index: int) -> Node:
        """Interned handle for an arena index."""
        handle = self._handles[index]
        if handle is None:
            handle = Node(self, index)
            self._handles[index] = handle
        return handle

    def _mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = ((var << 32 | low) << 32) | high
        index = self._unique.get(key)
        if index is None:
            index = len(self._vars)
            self._vars.append(var)
            self._lows.append(low)
            self._highs.append(high)
            self._handles.append(None)
            self._unique[key] = index
        return index

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------
    def apply_and(self, a: Node, b: Node) -> Node:
        """Conjunction of two BDDs."""
        return self._node(self._apply(_OP_AND, a.index, b.index))

    def apply_or(self, a: Node, b: Node) -> Node:
        """Disjunction of two BDDs."""
        return self._node(self._apply(_OP_OR, a.index, b.index))

    def apply_xor(self, a: Node, b: Node) -> Node:
        """Exclusive or of two BDDs."""
        return self._node(self._apply(_OP_XOR, a.index, b.index))

    def negate(self, a: Node) -> Node:
        """Negation of a BDD."""
        return self._node(self._neg(a.index))

    def _fold(self, op: int, nodes, empty: int) -> Node:
        """Balanced pairwise reduction of an associative apply.

        Produces the same canonical diagram as a linear fold (the ROBDD
        of the combined function is unique for a fixed variable order)
        but visits far fewer operand pairs: a linear fold re-descends the
        whole accumulated diagram at every step, a balanced fold mostly
        combines small disjoint diagrams.
        """
        items = [node.index for node in nodes]
        if not items:
            return self._node(empty)
        while len(items) > 1:
            merged = [self._apply(op, items[i], items[i + 1])
                      for i in range(0, len(items) - 1, 2)]
            if len(items) % 2:
                merged.append(items[-1])
            items = merged
        return self._node(items[0])

    def and_all(self, nodes) -> Node:
        """Conjunction of an iterable of BDDs (TRUE when empty)."""
        return self._fold(_OP_AND, nodes, 1)

    def or_all(self, nodes) -> Node:
        """Disjunction of an iterable of BDDs (FALSE when empty)."""
        return self._fold(_OP_OR, nodes, 0)

    def ite(self, cond: Node, then: Node, otherwise: Node) -> Node:
        """If-then-else composition ``cond ? then : otherwise``."""
        return self._node(self._ite(cond.index, then.index,
                                    otherwise.index))

    def at_least(self, k: int, nodes: List[Node]) -> Node:
        """K-of-N combination: true when at least ``k`` inputs are true.

        Implemented by dynamic programming over the inputs, which keeps
        the intermediate diagram count at ``O(n * k)`` applies.
        """
        n = len(nodes)
        if k <= 0:
            return TRUE
        if k > n:
            return FALSE
        # state[j] = BDD of "at least j of the inputs seen so far are true"
        state = [1] + [0] * k
        for node in nodes:
            index = node.index
            for j in range(k, 0, -1):
                state[j] = self._apply(
                    _OP_OR, state[j],
                    self._apply(_OP_AND, state[j - 1], index))
        return self._node(state[k])

    # -- kernel ---------------------------------------------------------
    @staticmethod
    def _terminal(op: int, x: int, y: int) -> int:
        """Terminal rule for a normalized (``x <= y``) operand pair.

        Returns the result index, or ``-1`` when Shannon expansion is
        required.  With ``x <= y``, any terminal operand is ``x``.
        """
        if op == _OP_AND:
            if x == 0:
                return 0
            if x == 1:
                return y
            if x == y:
                return x
        elif op == _OP_OR:
            if x == 1:
                return 1
            if x == 0:
                return y
            if x == y:
                return x
        else:  # XOR
            if x == y:
                return 0
            if x == 0:
                return y
        return -1

    def _apply(self, op: int, a: int, b: int) -> int:
        """Shannon-expansion apply over indices, iterative and memoized.

        All three opcodes are commutative, so operand pairs are
        normalized (``x <= y``) before the packed-key cache lookup,
        which merges the two symmetric cache entries into one.
        """
        if a > b:
            a, b = b, a
        terminal = self._terminal
        result = terminal(op, a, b)
        if result >= 0:
            return result
        compute = self._compute
        root_key = ((a << 32 | b) << 2) | op
        hit = compute.get(root_key)
        if hit is not None:
            return hit
        vars_, lows, highs = self._vars, self._lows, self._highs
        unique = self._unique
        handles = self._handles
        # The hot loop inlines the terminal rules and node interning
        # (_terminal/_mk) — call overhead dominates their tiny bodies.
        stack = [(a, b, False)]
        push = stack.append
        while stack:
            x, y, ready = stack.pop()
            key = ((x << 32 | y) << 2) | op
            if key in compute:
                continue
            vx = vars_[x]
            vy = vars_[y]
            if vx <= vy:
                x0, x1 = lows[x], highs[x]
                var = vx
            else:
                x0 = x1 = x
                var = vy
            if vy <= vx:
                y0, y1 = lows[y], highs[y]
            else:
                y0 = y1 = y
            if x0 > y0:
                x0, y0 = y0, x0
            if x1 > y1:
                x1, y1 = y1, x1
            lo = terminal(op, x0, y0)
            hi = terminal(op, x1, y1)
            if ready or (lo >= 0 and hi >= 0):
                if lo < 0:
                    lo = compute[((x0 << 32 | y0) << 2) | op]
                if hi < 0:
                    hi = compute[((x1 << 32 | y1) << 2) | op]
                if lo == hi:
                    compute[key] = lo
                    continue
                ukey = ((var << 32 | lo) << 32) | hi
                index = unique.get(ukey)
                if index is None:
                    index = len(vars_)
                    vars_.append(var)
                    lows.append(lo)
                    highs.append(hi)
                    handles.append(None)
                    unique[ukey] = index
                compute[key] = index
                continue
            push((x, y, True))
            if hi < 0:
                push((x1, y1, False))
            if lo < 0:
                push((x0, y0, False))
        return compute[root_key]

    def _neg(self, a: int) -> int:
        """Iterative complement with a persistent per-manager cache."""
        if a < 2:
            return a ^ 1
        cache = self._not_cache
        hit = cache.get(a)
        if hit is not None:
            return hit
        vars_, lows, highs = self._vars, self._lows, self._highs
        stack = [(a, False)]
        push = stack.append
        while stack:
            n, ready = stack.pop()
            if n in cache:
                continue
            lo, hi = lows[n], highs[n]
            if ready:
                nl = lo ^ 1 if lo < 2 else cache[lo]
                nh = hi ^ 1 if hi < 2 else cache[hi]
                cache[n] = self._mk(vars_[n], nl, nh)
                continue
            push((n, True))
            if hi > 1 and hi not in cache:
                push((hi, False))
            if lo > 1 and lo not in cache:
                push((lo, False))
        return cache[a]

    def _ite_terminal(self, f: int, g: int, h: int) -> int:
        if f == 1:
            return g
        if f == 0:
            return h
        if g == h:
            return g
        if g == 1 and h == 0:
            return f
        if g == 0 and h == 1:
            return self._neg(f)
        return -1

    def _ite(self, f: int, g: int, h: int) -> int:
        """Ternary if-then-else over indices, iterative and memoized."""
        terminal = self._ite_terminal
        result = terminal(f, g, h)
        if result >= 0:
            return result
        cache = self._ite_cache
        root_key = (f, g, h)
        hit = cache.get(root_key)
        if hit is not None:
            return hit
        vars_, lows, highs = self._vars, self._lows, self._highs
        stack = [(f, g, h, False)]
        push = stack.append
        while stack:
            x, y, z, ready = stack.pop()
            key = (x, y, z)
            if key in cache:
                continue
            v = vars_[x]
            if vars_[y] < v:
                v = vars_[y]
            if vars_[z] < v:
                v = vars_[z]
            if vars_[x] == v:
                x0, x1 = lows[x], highs[x]
            else:
                x0 = x1 = x
            if vars_[y] == v:
                y0, y1 = lows[y], highs[y]
            else:
                y0 = y1 = y
            if vars_[z] == v:
                z0, z1 = lows[z], highs[z]
            else:
                z0 = z1 = z
            if ready:
                lo = terminal(x0, y0, z0)
                if lo < 0:
                    lo = cache[(x0, y0, z0)]
                hi = terminal(x1, y1, z1)
                if hi < 0:
                    hi = cache[(x1, y1, z1)]
                cache[key] = self._mk(v, lo, hi)
                continue
            push((x, y, z, True))
            if terminal(x1, y1, z1) < 0:
                push((x1, y1, z1, False))
            if terminal(x0, y0, z0) < 0:
                push((x0, y0, z0, False))
        return cache[root_key]

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------
    def restrict(self, node: Node, var_name: str, value: bool) -> Node:
        """Cofactor: fix ``var_name`` to ``value`` and simplify."""
        if var_name not in self._var_index:
            raise BDDError(f"unknown variable {var_name!r}")
        target = self._var_index[var_name]
        vars_, lows, highs = self._vars, self._lows, self._highs
        cache: Dict[int, int] = {}

        def done(n: int) -> bool:
            # Terminals and nodes ordered past the target are unchanged.
            return n < 2 or vars_[n] > target or n in cache

        def resolved(n: int) -> int:
            if n < 2 or vars_[n] > target:
                return n
            return cache[n]

        stack = [(node.index, False)]
        push = stack.append
        while stack:
            n, ready = stack.pop()
            if n < 2 or vars_[n] > target or n in cache:
                continue
            if vars_[n] == target:
                cache[n] = highs[n] if value else lows[n]
                continue
            lo, hi = lows[n], highs[n]
            if ready:
                cache[n] = self._mk(vars_[n], resolved(lo), resolved(hi))
                continue
            push((n, True))
            if not done(hi):
                push((hi, False))
            if not done(lo):
                push((lo, False))
        return self._node(resolved(node.index))

    def support(self, node: Node) -> set:
        """Return the set of variable names the function depends on."""
        names = self._var_names
        return {names[self._vars[n]]
                for n in self.topological_indices(node)}

    def size(self, node: Node) -> int:
        """Number of decision nodes reachable from ``node``."""
        return len(self.topological_indices(node))

    def sift(self, node: Node, max_growth: float = 1.2, rounds: int = 1):
        """Dynamically reorder variables to shrink the diagram at ``node``.

        Runs Rudell sifting on a detached levelized copy (this arena is
        append-only and cannot swap levels in place) and returns a
        :class:`repro.bdd.sift.SiftResult` whose ``manager``/``root``
        hold the same function under the improved order.  This arena and
        every diagram in it stay valid and unchanged.
        """
        from repro.bdd.sift import sift as _sift
        return _sift(self, node, max_growth=max_growth, rounds=rounds)

    def evaluate(self, node: Node, assignment: Dict[str, bool]) -> bool:
        """Evaluate the function for a full variable assignment."""
        vars_, lows, highs = self._vars, self._lows, self._highs
        names = self._var_names
        current = node.index
        while current > 1:
            name = names[vars_[current]]
            try:
                bit = assignment[name]
            except KeyError:
                raise BDDError(
                    f"assignment missing variable {name!r}") from None
            current = highs[current] if bit else lows[current]
        return current == 1

    def sat_count(self, node: Node) -> int:
        """Number of satisfying assignments over all registered variables."""
        total = self.var_count
        index = node.index
        if index == 1:
            return 2 ** total
        if index == 0:
            return 0
        vars_, lows, highs = self._vars, self._lows, self._highs
        counts: Dict[int, int] = {}
        for n in self.topological_indices(node):
            var = vars_[n]
            acc = 0
            for child in (lows[n], highs[n]):
                if child == 1:
                    acc += 2 ** (total - var - 1)
                elif child != 0:
                    acc += counts[child] * 2 ** (vars_[child] - var - 1)
            counts[n] = acc
        return counts[index] * 2 ** vars_[index]
