"""ROBDD node store with unique and compute tables.

Nodes are interned: structurally identical nodes are the same object, so
equality is identity and the diagram is canonical for a fixed variable
order.  Terminals are the module-level singletons :data:`TRUE` and
:data:`FALSE`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import BDDError


class Node:
    """A BDD node: terminal or ``(var, low, high)`` decision node.

    ``var`` is the variable index in the manager's order (lower index =
    closer to the root).  ``low`` is the cofactor for ``var = 0``, ``high``
    for ``var = 1``.  Terminals carry ``var = None`` and a boolean
    ``value``.
    """

    __slots__ = ("var", "low", "high", "value")

    def __init__(self, var: Optional[int], low: Optional["Node"],
                 high: Optional["Node"], value: Optional[bool] = None):
        self.var = var
        self.low = low
        self.high = high
        self.value = value

    @property
    def is_terminal(self) -> bool:
        """True for the TRUE/FALSE leaves."""
        return self.var is None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.is_terminal:
            return f"<{'TRUE' if self.value else 'FALSE'}>"
        return f"<Node var={self.var}>"


TRUE = Node(None, None, None, True)
FALSE = Node(None, None, None, False)


class BDDManager:
    """Owns variable ordering and node interning for one family of BDDs.

    Variables are registered by name with :meth:`add_var` (or implicitly by
    :meth:`var`); their registration order is the BDD order.  All boolean
    connectives are provided, each memoized in a per-manager compute table.
    """

    def __init__(self):
        self._unique: Dict[Tuple[int, int, int], Node] = {}
        self._apply_cache: Dict[Tuple[str, int, int], Node] = {}
        self._not_cache: Dict[int, Node] = {}
        self._var_names: List[str] = []
        self._var_index: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def add_var(self, name: str) -> int:
        """Register ``name`` (idempotent) and return its order index."""
        if name in self._var_index:
            return self._var_index[name]
        index = len(self._var_names)
        self._var_names.append(name)
        self._var_index[name] = index
        return index

    def var(self, name: str) -> Node:
        """Return the BDD of the single variable ``name``."""
        index = self.add_var(name)
        return self._mk(index, FALSE, TRUE)

    def var_name(self, index: int) -> str:
        """Return the name of the variable at order position ``index``."""
        try:
            return self._var_names[index]
        except IndexError:
            raise BDDError(f"no variable with index {index}") from None

    @property
    def var_count(self) -> int:
        """Number of registered variables."""
        return len(self._var_names)

    @property
    def node_count(self) -> int:
        """Number of live interned decision nodes (terminals excluded)."""
        return len(self._unique)

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def _mk(self, var: int, low: Node, high: Node) -> Node:
        if low is high:
            return low
        key = (var, id(low), id(high))
        node = self._unique.get(key)
        if node is None:
            node = Node(var, low, high)
            self._unique[key] = node
        return node

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------
    def apply_and(self, a: Node, b: Node) -> Node:
        """Conjunction of two BDDs."""
        return self._apply("and", a, b)

    def apply_or(self, a: Node, b: Node) -> Node:
        """Disjunction of two BDDs."""
        return self._apply("or", a, b)

    def apply_xor(self, a: Node, b: Node) -> Node:
        """Exclusive or of two BDDs."""
        return self._apply("xor", a, b)

    def negate(self, a: Node) -> Node:
        """Negation of a BDD."""
        if a is TRUE:
            return FALSE
        if a is FALSE:
            return TRUE
        cached = self._not_cache.get(id(a))
        if cached is not None:
            return cached
        result = self._mk(a.var, self.negate(a.low), self.negate(a.high))
        self._not_cache[id(a)] = result
        return result

    def and_all(self, nodes) -> Node:
        """Conjunction of an iterable of BDDs (TRUE when empty)."""
        result = TRUE
        for node in nodes:
            result = self.apply_and(result, node)
        return result

    def or_all(self, nodes) -> Node:
        """Disjunction of an iterable of BDDs (FALSE when empty)."""
        result = FALSE
        for node in nodes:
            result = self.apply_or(result, node)
        return result

    def ite(self, cond: Node, then: Node, otherwise: Node) -> Node:
        """If-then-else composition ``cond ? then : otherwise``."""
        return self.apply_or(self.apply_and(cond, then),
                             self.apply_and(self.negate(cond), otherwise))

    def at_least(self, k: int, nodes: List[Node]) -> Node:
        """K-of-N combination: true when at least ``k`` inputs are true.

        Implemented by dynamic programming over the inputs, which keeps
        the intermediate diagram count at ``O(n * k)`` applies.
        """
        n = len(nodes)
        if k <= 0:
            return TRUE
        if k > n:
            return FALSE
        # state[j] = BDD of "at least j of the inputs seen so far are true"
        state = [TRUE] + [FALSE] * k
        for node in nodes:
            for j in range(k, 0, -1):
                state[j] = self.apply_or(
                    state[j], self.apply_and(state[j - 1], node))
        return state[k]

    def _apply(self, op: str, a: Node, b: Node) -> Node:
        terminal = self._apply_terminal(op, a, b)
        if terminal is not None:
            return terminal
        key = (op, id(a), id(b))
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        # Shannon expansion on the top-most variable of the two operands.
        a_var = a.var if not a.is_terminal else None
        b_var = b.var if not b.is_terminal else None
        if b_var is None or (a_var is not None and a_var < b_var):
            var = a_var
            a_low, a_high = a.low, a.high
            b_low, b_high = b, b
        elif a_var is None or b_var < a_var:
            var = b_var
            a_low, a_high = a, a
            b_low, b_high = b.low, b.high
        else:
            var = a_var
            a_low, a_high = a.low, a.high
            b_low, b_high = b.low, b.high
        result = self._mk(var,
                          self._apply(op, a_low, b_low),
                          self._apply(op, a_high, b_high))
        self._apply_cache[key] = result
        return result

    @staticmethod
    def _apply_terminal(op: str, a: Node, b: Node) -> Optional[Node]:
        if op == "and":
            if a is FALSE or b is FALSE:
                return FALSE
            if a is TRUE:
                return b
            if b is TRUE:
                return a
            if a is b:
                return a
        elif op == "or":
            if a is TRUE or b is TRUE:
                return TRUE
            if a is FALSE:
                return b
            if b is FALSE:
                return a
            if a is b:
                return a
        elif op == "xor":
            if a is b:
                return FALSE
            if a is FALSE:
                return b
            if b is FALSE:
                return a
            if a is TRUE and b is TRUE:
                return FALSE
        else:
            raise BDDError(f"unknown boolean operation {op!r}")
        return None

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------
    def restrict(self, node: Node, var_name: str, value: bool) -> Node:
        """Cofactor: fix ``var_name`` to ``value`` and simplify."""
        if var_name not in self._var_index:
            raise BDDError(f"unknown variable {var_name!r}")
        index = self._var_index[var_name]
        cache: Dict[int, Node] = {}

        def walk(n: Node) -> Node:
            if n.is_terminal or n.var > index:
                return n
            hit = cache.get(id(n))
            if hit is not None:
                return hit
            if n.var == index:
                result = n.high if value else n.low
            else:
                result = self._mk(n.var, walk(n.low), walk(n.high))
            cache[id(n)] = result
            return result

        return walk(node)

    def support(self, node: Node) -> set:
        """Return the set of variable names the function depends on."""
        names = set()
        seen = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if n.is_terminal or id(n) in seen:
                continue
            seen.add(id(n))
            names.add(self._var_names[n.var])
            stack.append(n.low)
            stack.append(n.high)
        return names

    def size(self, node: Node) -> int:
        """Number of decision nodes reachable from ``node``."""
        seen = set()
        stack = [node]
        count = 0
        while stack:
            n = stack.pop()
            if n.is_terminal or id(n) in seen:
                continue
            seen.add(id(n))
            count += 1
            stack.append(n.low)
            stack.append(n.high)
        return count

    def evaluate(self, node: Node, assignment: Dict[str, bool]) -> bool:
        """Evaluate the function for a full variable assignment."""
        current = node
        while not current.is_terminal:
            name = self._var_names[current.var]
            try:
                bit = assignment[name]
            except KeyError:
                raise BDDError(
                    f"assignment missing variable {name!r}") from None
            current = current.high if bit else current.low
        return bool(current.value)

    def sat_count(self, node: Node) -> int:
        """Number of satisfying assignments over all registered variables."""
        total_vars = self.var_count
        cache: Dict[int, int] = {}

        def walk(n: Node, depth: int) -> int:
            if n is TRUE:
                return 2 ** (total_vars - depth)
            if n is FALSE:
                return 0
            key = id(n)
            hit = cache.get(key)
            if hit is None:
                hit = walk(n.low, n.var + 1) + walk(n.high, n.var + 1)
                cache[key] = hit
            return hit * 2 ** (n.var - depth)

        return walk(node, 0)
