"""Dynamic variable reordering (Rudell sifting) for the arena kernel.

The static orders of :mod:`repro.fta.quantify` are heuristics; adversarial
trees exist where every static order produces an exponentially large BDD
while some interleaving stays linear.  This module adds the classic
remedy: *sifting* (Rudell 1993).  Each variable is moved through every
order position via adjacent-level swaps — a purely local operation that
only rewrites nodes on the two swapped levels — and left at the position
minimizing the diagram size.

The arena :class:`~repro.bdd.manager.BDDManager` is append-only and relies
on ascending arena index being a topological order, so levels cannot be
swapped in place there.  Sifting therefore runs on a detached *levelized*
copy (:class:`_Levelized`): dict-based node tables with reference counts
and a live unique table, supporting in-place adjacent swaps, then rebuilt
bottom-up into a fresh manager whose variable registration order is the
final level order.

Entry points: :func:`sift` / :meth:`BDDManager.sift`, returning a
:class:`SiftResult` with the new manager, root, order, and size counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, TYPE_CHECKING

from repro.errors import BDDError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.bdd.manager import BDDManager, Node


@dataclass(frozen=True)
class SiftResult:
    """Outcome of one sifting run.

    ``manager``/``root`` are a fresh arena holding the same function under
    the sifted order; ``order`` is the final variable order (top level
    first); ``size_before``/``size_after`` count decision nodes; ``swaps``
    counts adjacent-level exchanges performed while searching.
    """

    manager: "BDDManager"
    root: "Node"
    order: Tuple[str, ...]
    size_before: int
    size_after: int
    swaps: int

    @property
    def shrank(self) -> bool:
        return self.size_after < self.size_before


class _Levelized:
    """A mutable, levelized, reference-counted copy of one diagram.

    Nodes are integer ids; 0/1 are the terminals.  ``_var`` maps a node to
    its *variable id* (stable across reordering), while ``_level_of`` /
    ``_var_at`` translate between variable ids and order positions.  The
    unique table spans all levels, keyed ``(var, low, high)``.  Reference
    counts (the root holds one) keep the tables garbage-free: dead nodes
    are removed eagerly, so ``len(self._var)`` *is* the diagram size.
    """

    def __init__(self, manager: "BDDManager", root: "Node"):
        vars_, lows, highs = manager.arena
        self._var: Dict[int, int] = {}
        self._low: Dict[int, int] = {}
        self._high: Dict[int, int] = {}
        self._ref: Dict[int, int] = {}
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self.root = root.index
        for index in manager.topological_indices(root):
            var, low, high = vars_[index], lows[index], highs[index]
            self._var[index] = var
            self._low[index] = low
            self._high[index] = high
            self._unique[(var, low, high)] = index
            for child in (low, high):
                if child > 1:
                    self._ref[child] = self._ref.get(child, 0) + 1
        if self.root > 1:
            self._ref[self.root] = self._ref.get(self.root, 0) + 1
        self._next_id = len(vars_)
        count = manager.var_count
        self._level_of: List[int] = list(range(count))
        self._var_at: List[int] = list(range(count))
        self.swaps = 0

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Live decision-node count (tables hold no garbage)."""
        return len(self._var)

    def _mk(self, var: int, low: int, high: int) -> int:
        """Find-or-create without touching reference counts of the result."""
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = self._next_id
            self._next_id += 1
            self._var[node] = var
            self._low[node] = low
            self._high[node] = high
            self._ref[node] = 0
            self._unique[key] = node
            for child in (low, high):
                if child > 1:
                    self._ref[child] += 1
        return node

    def _incref(self, node: int) -> None:
        if node > 1:
            self._ref[node] += 1

    def _decref(self, node: int) -> None:
        stack = [node]
        while stack:
            current = stack.pop()
            if current < 2:
                continue
            self._ref[current] -= 1
            if self._ref[current] == 0:
                low, high = self._low[current], self._high[current]
                stack.append(low)
                stack.append(high)
                del self._unique[(self._var[current], low, high)]
                del self._var[current]
                del self._low[current]
                del self._high[current]
                del self._ref[current]

    # ------------------------------------------------------------------
    # The adjacent-swap primitive
    # ------------------------------------------------------------------
    def swap(self, level: int) -> None:
        """Exchange ``level`` and ``level + 1`` without changing the function.

        Nodes of the upper variable ``u`` with no cofactor labelled by the
        lower variable ``v`` simply sink one level (same triple, nothing
        to do).  The others are rewritten *in place* — keeping their id,
        so parents above need no updates — to

            (u, f0, f1)  ->  (v, mk(u, f00, f10), mk(u, f01, f11))

        where ``fij`` are the cofactors at ``u = i``, ``v = j``.  A node
        pre-swap at the ``v`` level never references a ``u`` node (levels
        are ordered), so the rewrites cannot collide with each other or
        with the sinking nodes in the unique table.
        """
        u = self._var_at[level]
        v = self._var_at[level + 1]
        var_, low_, high_ = self._var, self._low, self._high
        plans = []
        for node, var in var_.items():
            if var != u:
                continue
            f0, f1 = low_[node], high_[node]
            low_is_v = f0 > 1 and var_[f0] == v
            high_is_v = f1 > 1 and var_[f1] == v
            if not (low_is_v or high_is_v):
                continue
            f00, f01 = (low_[f0], high_[f0]) if low_is_v else (f0, f0)
            f10, f11 = (low_[f1], high_[f1]) if high_is_v else (f1, f1)
            plans.append((node, f0, f1, f00, f01, f10, f11))
        for node, f0, f1, _, _, _, _ in plans:
            del self._unique[(u, f0, f1)]
        for node, f0, f1, f00, f01, f10, f11 in plans:
            # New cofactors first (keeps shared subgraphs alive), then
            # release the old ones.
            new_low = self._mk(u, f00, f10)
            new_high = self._mk(u, f01, f11)
            self._incref(new_low)
            self._incref(new_high)
            var_[node] = v
            low_[node] = new_low
            high_[node] = new_high
            self._unique[(v, new_low, new_high)] = node
            self._decref(f0)
            self._decref(f1)
        self._var_at[level] = v
        self._var_at[level + 1] = u
        self._level_of[u] = level + 1
        self._level_of[v] = level
        self.swaps += 1

    # ------------------------------------------------------------------
    # Sifting search
    # ------------------------------------------------------------------
    def sift_once(self, max_growth: float) -> None:
        """One full pass: sift each variable to its locally best level.

        Variables are processed by descending level population (the
        classic heuristic: big levels first).  Each is bubbled to the
        bottom, then to the top, tracking the best size seen; the search
        in a direction is abandoned early once the size exceeds
        ``max_growth`` times the best, and the variable is finally moved
        back to its best level.
        """
        levels = len(self._var_at)
        population: Dict[int, int] = {}
        for var in self._var.values():
            population[var] = population.get(var, 0) + 1
        by_weight = sorted(population, key=lambda var: (-population[var],
                                                        self._level_of[var]))
        for var in by_weight:
            best_size = self.size
            best_level = self._level_of[var]
            level = best_level
            while level < levels - 1:
                self.swap(level)
                level += 1
                if self.size < best_size:
                    best_size, best_level = self.size, level
                elif self.size > max_growth * best_size:
                    break
            while level > 0:
                self.swap(level - 1)
                level -= 1
                if self.size < best_size:
                    best_size, best_level = self.size, level
                elif self.size > max_growth * best_size:
                    break
            while level < best_level:
                self.swap(level)
                level += 1
            while level > best_level:
                self.swap(level - 1)
                level -= 1

    # ------------------------------------------------------------------
    # Rebuild into a fresh arena
    # ------------------------------------------------------------------
    def rebuild(self, names: List[str]) -> Tuple["BDDManager", "Node"]:
        """Reconstruct the diagram in a new manager under the final order.

        Variables register top level first, so the new variable index of
        a node equals its level — preserving the arena invariant that
        children (deeper levels) are created before their parents.
        """
        from repro.bdd.manager import BDDManager

        manager = BDDManager()
        for var in self._var_at:
            manager.add_var(names[var])
        level_of = self._level_of
        mapping = {0: 0, 1: 1}
        by_depth = sorted(self._var,
                          key=lambda node: -level_of[self._var[node]])
        for node in by_depth:
            mapping[node] = manager._mk(level_of[self._var[node]],
                                        mapping[self._low[node]],
                                        mapping[self._high[node]])
        return manager, manager._node(mapping[self.root])


def sift(manager: "BDDManager", root: "Node", max_growth: float = 1.2,
         rounds: int = 1) -> SiftResult:
    """Reorder variables to shrink the diagram rooted at ``root``.

    Returns a :class:`SiftResult` holding a *new* manager/root pair; the
    input arena is left untouched (other diagrams in it stay valid).
    ``max_growth`` bounds how far a variable's search may inflate the
    diagram past the best size seen before the direction is abandoned;
    ``rounds`` repeats the full pass (later rounds usually converge fast).

    Terminal roots and diagrams over fewer than three variables have no
    reordering freedom worth exploring and are returned as-is (copied).
    """
    detached_terminal = root.manager is None and root.index < 2
    if root.manager is not manager and not detached_terminal:
        raise BDDError("node does not belong to this manager")
    if max_growth < 1.0:
        raise BDDError(f"max_growth must be >= 1.0, got {max_growth!r}")
    if rounds < 1:
        raise BDDError(f"rounds must be >= 1, got {rounds!r}")
    names = list(manager.var_names)
    levelized = _Levelized(manager, root)
    size_before = levelized.size
    if root.index > 1 and manager.var_count >= 3:
        for _ in range(rounds):
            before = levelized.size
            levelized.sift_once(max_growth)
            if levelized.size >= before:
                break
    new_manager, new_root = levelized.rebuild(names)
    order = tuple(names[var] for var in levelized._var_at)
    return SiftResult(manager=new_manager, root=new_root, order=order,
                      size_before=size_before, size_after=levelized.size,
                      swaps=levelized.swaps)
