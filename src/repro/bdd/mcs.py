"""Minimal cut set extraction from a BDD (Rauzy's minimal solutions).

For a *monotone* (coherent) function — which every AND/OR/K-of-N fault tree
is — the prime implicants are exactly the minimal cut sets.  They are
obtained from the BDD by the classic ``minsol`` construction: at each node,
solutions of the high branch that are already solutions of the low branch
need not assert the node's variable; the remainder do.

The result is canonical: a sorted list of frozensets of variable names.
:mod:`repro.fta.cutsets` (MOCUS) must agree with this module on every tree —
that cross-check is both a test and a benchmark.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from repro.bdd.manager import FALSE, TRUE, BDDManager, Node


def minimal_cut_sets(manager: BDDManager,
                     node: Node) -> List[FrozenSet[str]]:
    """Return the minimal cut sets of a monotone function as frozensets.

    The function must be coherent (built from AND/OR/K-of-N over positive
    literals); behaviour on non-monotone functions is the minimal
    *solutions* of the BDD, which may not be prime implicants.
    """
    cache: Dict[int, Set[FrozenSet[str]]] = {}

    def walk(n: Node) -> Set[FrozenSet[str]]:
        if n is TRUE:
            return {frozenset()}
        if n is FALSE:
            return set()
        hit = cache.get(id(n))
        if hit is not None:
            return hit
        name = manager.var_name(n.var)
        low_sets = walk(n.low)
        high_sets = walk(n.high)
        # Solutions of the low branch are solutions regardless of this
        # variable.  Solutions of the high branch require the variable
        # unless some low-branch solution already covers them.
        result: Set[FrozenSet[str]] = set(low_sets)
        for cut in high_sets:
            extended = cut | {name}
            if not _is_superset_of_any(extended, low_sets):
                result.add(extended)
        result = _minimize(result)
        cache[id(n)] = result
        return result

    return sorted(walk(node), key=lambda cs: (len(cs), sorted(cs)))


def _is_superset_of_any(candidate: FrozenSet[str],
                        sets: Set[FrozenSet[str]]) -> bool:
    return any(existing <= candidate for existing in sets)


def _minimize(sets: Set[FrozenSet[str]]) -> Set[FrozenSet[str]]:
    """Remove any set that is a strict superset of another (absorption)."""
    ordered = sorted(sets, key=len)
    kept: List[FrozenSet[str]] = []
    for cut in ordered:
        if not any(existing < cut or existing == cut for existing in kept):
            kept.append(cut)
    return set(kept)
