"""Minimal cut set extraction from a BDD (Rauzy's minimal solutions).

For a *monotone* (coherent) function — which every AND/OR/K-of-N fault tree
is — the prime implicants are exactly the minimal cut sets.  They are
obtained from the BDD by the classic ``minsol`` construction: at each node,
solutions of the high branch that are already solutions of the low branch
need not assert the node's variable; the remainder do.

The construction runs bottom-up over the manager's arena (children-first
index order, no recursion) and represents every cut set as an integer
*bitmask* over variable order positions, so subsumption is a single
``a & b == a`` test.  No per-node absorption pass is needed at all: the
low family never contains the node's bit while every kept high solution
does, and both families are antichains by induction, so their union is
already minimal — the quadratic re-minimization the linked-node
implementation ran at every node was a no-op by construction.

The result is canonical: a sorted list of frozensets of variable names.
:mod:`repro.fta.cutsets` (MOCUS) must agree with this module on every tree —
that cross-check is both a test and a benchmark.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.bdd.manager import BDDManager, Node


def minimal_cut_sets(manager: BDDManager,
                     node: Node) -> List[FrozenSet[str]]:
    """Return the minimal cut sets of a monotone function as frozensets.

    The function must be coherent (built from AND/OR/K-of-N over positive
    literals); behaviour on non-monotone functions is the minimal
    *solutions* of the BDD, which may not be prime implicants.
    """
    index = node.index
    if index == 1:
        return [frozenset()]
    if index == 0:
        return []
    vars_, lows, highs = manager.arena
    # families[n] = minimal solution masks of node n (an antichain),
    # held as (popcount, mask) pairs in ascending popcount order so the
    # subsumption scan can stop at the first low mask with more bits
    # than the candidate.
    families: Dict[int, Tuple[Tuple[int, int], ...]] = {0: (), 1: ((0, 0),)}
    for n in manager.topological_indices(node):
        bit = 1 << vars_[n]
        low_family = families[lows[n]]
        extended: List[Tuple[int, int]] = []
        for popcount, mask in families[highs[n]]:
            mask |= bit
            popcount += 1
            # A high-branch solution needs the variable unless some
            # low-branch solution already covers it.
            subsumed = False
            for low_popcount, low_mask in low_family:
                if low_popcount > popcount:
                    break
                if low_mask & mask == low_mask:
                    subsumed = True
                    break
            if not subsumed:
                extended.append((popcount, mask))
        if extended:
            # Both runs are popcount-sorted; Timsort merges them in
            # linear time.
            families[n] = tuple(sorted(low_family + tuple(extended)))
        else:
            families[n] = low_family
    names = manager.var_names
    result = [frozenset(name for i, name in enumerate(names)
                        if mask >> i & 1)
              for _size, mask in families[index]]
    return sorted(result, key=lambda cs: (len(cs), sorted(cs)))
