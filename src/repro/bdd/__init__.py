"""Reduced ordered binary decision diagrams (ROBDDs).

Fault trees are monotone Boolean functions of their primary failures; BDDs
give a canonical representation from which the *exact* top-event probability
(no rare-event approximation, no independence-order truncation) and the
complete set of minimal cut sets can be computed.  The paper's standard
formula (Eq. 1) "neglects second and higher-order terms"; this engine is the
reference against which that approximation's error is measured
(benchmark A2).

The implementation is an index-based *arena* kernel:

* :class:`BDDManager` owns the node arena (parallel ``var/low/high``
  integer arrays), the variable order, and packed-integer unique and
  compute tables; :class:`Node` is a lightweight interned handle, so
  equality is still identity and diagrams are canonical for a fixed
  variable order,
* boolean operations go through an iterative Shannon-expansion ``apply``
  with integer opcodes (plus a true ternary ``ite``); every traversal
  uses an explicit stack, so deep diagrams never hit the recursion limit,
* :func:`~repro.bdd.prob.probability` evaluates the function's satisfaction
  probability in one bottom-up pass over the leveled arena, and
  :func:`~repro.bdd.prob.probability_batch` runs the same pass over a
  whole ``(batch, n_vars)`` probability matrix,
* :func:`~repro.bdd.mcs.minimal_cut_sets` extracts prime implicants of the
  monotone function via Rauzy's minimal-solutions construction on integer
  bitmasks with popcount-grouped absorption,
* :func:`~repro.bdd.sift.sift` dynamically reorders variables (Rudell
  sifting over an adjacent-level-swap primitive) for diagrams that blow
  up under the static orders.
"""

from repro.bdd.manager import FALSE, TRUE, BDDManager, Node
from repro.bdd.mcs import minimal_cut_sets
from repro.bdd.prob import probability, probability_batch
from repro.bdd.sift import SiftResult, sift

__all__ = [
    "BDDManager",
    "Node",
    "TRUE",
    "FALSE",
    "probability",
    "probability_batch",
    "minimal_cut_sets",
    "SiftResult",
    "sift",
]
