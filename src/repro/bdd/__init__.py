"""Reduced ordered binary decision diagrams (ROBDDs).

Fault trees are monotone Boolean functions of their primary failures; BDDs
give a canonical representation from which the *exact* top-event probability
(no rare-event approximation, no independence-order truncation) and the
complete set of minimal cut sets can be computed.  The paper's standard
formula (Eq. 1) "neglects second and higher-order terms"; this engine is the
reference against which that approximation's error is measured
(benchmark A2).

The implementation is a classic unique-table/compute-table ROBDD:

* :class:`BDDManager` owns the node store and variable order,
* boolean operations go through Shannon-expansion ``apply`` with
  memoization,
* :func:`~repro.bdd.prob.probability` evaluates the function's satisfaction
  probability given independent variable probabilities in one
  bottom-up pass,
* :func:`~repro.bdd.mcs.minimal_cut_sets` extracts prime implicants of the
  monotone function via Rauzy's minimal-solutions construction.
"""

from repro.bdd.manager import FALSE, TRUE, BDDManager, Node
from repro.bdd.mcs import minimal_cut_sets
from repro.bdd.prob import probability

__all__ = [
    "BDDManager",
    "Node",
    "TRUE",
    "FALSE",
    "probability",
    "minimal_cut_sets",
]
